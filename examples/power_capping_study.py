"""Power-capping study: why temporal resolution matters (paper Fig. 1).

Reruns the paper's motivating experiment: Graph500 (BFS) under a node-level
power cap, sweeping the power-reading interval (PI) and the capping action
interval (AI). Coarse readings hide spikes; slow actions stretch
excursions; both cost peak power and energy.

Run with:  python examples/power_capping_study.py
"""

from repro.hardware import ARM_PLATFORM, NodeSimulator
from repro.monitor import CappingPolicy, EnergyAccount, run_capped
from repro.workloads import default_catalog


def main() -> None:
    catalog = default_catalog(seed=2023)
    sim = NodeSimulator(ARM_PLATFORM, seed=17)
    workload = catalog.get("graph500_bfs")
    cap_w = 75.0
    duration = 300

    configs = [
        ("uncapped", None),
        ("PI=1s  AI=1s ", CappingPolicy(cap_w, 1, 1)),
        ("PI=10s AI=1s ", CappingPolicy(cap_w, 10, 1)),
        ("PI=1s  AI=10s", CappingPolicy(cap_w, 1, 10)),
        ("PI=1s  AI=30s", CappingPolicy(cap_w, 1, 30)),
    ]

    print(f"Graph500 BFS, {duration}s, cap {cap_w:.0f} W (node level)\n")
    print(f"{'config':>14} | {'peak W':>7} | {'mean W':>7} | {'energy kJ':>9} | "
          f"{'s over cap':>10} | {'DVFS actions':>12}")
    print("-" * 75)

    baseline_energy = None
    for label, policy in configs:
        if policy is None:
            bundle = sim.run_controlled(
                workload, lambda t, h: ARM_PLATFORM.default_freq_ghz,
                duration_s=duration,
            )
            n_actions = 0
        else:
            bundle, controller = run_capped(sim, workload, policy, duration_s=duration)
            n_actions = len(controller.actions)
        account = EnergyAccount.from_trace(bundle.node, cap_w=cap_w)
        if label.startswith("PI=1s  AI=1s"):
            baseline_energy = account.energy_kj
        print(f"{label:>14} | {account.peak_w:7.1f} | {account.mean_w:7.1f} | "
              f"{account.energy_kj:9.2f} | {account.time_above_cap_s:10.0f} | "
              f"{n_actions:12d}")

    print(
        "\nThe paper's observation reproduced: slowing the capping loop "
        "(AI 1s -> 30s)\nraises peak power and total energy — the case for "
        "high-resolution monitoring."
    )
    if baseline_energy is not None:
        print(f"(fast-loop baseline energy: {baseline_energy:.2f} kJ)")


if __name__ == "__main__":
    main()
