"""Deploying HighRPM on an x86/RAPL system (paper §6.3, Table 9).

On Intel hosts the ground-truth channel is RAPL: monotone energy counters
read through perf at 1 s intervals and differentiated into watts. This
example shows the full x86 path — including the counter-diff conversion
with 32-bit wraparound — and falls back to the emulator when no real
``/sys/class/powercap`` tree exists (as in this container).

Run with:  python examples/x86_rapl_deployment.py
"""

from repro.core import HighRPM, HighRPMConfig
from repro.hardware import X86_PLATFORM, NodeSimulator
from repro.ml import mape
from repro.sensors import IPMISensor, RAPLEmulator
from repro.sensors.hosts import rapl_available
from repro.workloads import default_catalog


def main() -> None:
    if rapl_available():
        print("real RAPL sysfs tree detected — a host reader could supply "
              "live pkg/dram power here (see repro.sensors.hosts).")
    else:
        print("no RAPL on this host; using the emulator (counter quantisation "
              "+ 32-bit wraparound included).")

    catalog = default_catalog(seed=2023)
    sim = NodeSimulator(X86_PLATFORM, seed=42)
    rapl = RAPLEmulator(seed=7)

    # Training campaign: RAPL supplies the component labels.
    train_names = ["spec_gcc", "spec_mcf", "parsec_ferret", "hpcc_hpl",
                   "hpcc_stream", "parsec_radix"]
    print(f"\ncollecting {len(train_names)} training runs with RAPL labels ...")
    train = [sim.run(catalog.get(n), duration_s=150) for n in train_names]

    highrpm = HighRPM(
        HighRPMConfig(miss_interval=10),
        p_bottom=X86_PLATFORM.min_node_power_w,
        p_upper=X86_PLATFORM.max_node_power_w,
    )
    highrpm.fit_initial(train)

    # Monitor an unseen application; evaluate against RAPL readings, exactly
    # as the paper does on its Tianhe-like cluster.
    target = catalog.get("hpcg")
    bundle = sim.run(target, duration_s=300)
    readings = IPMISensor(X86_PLATFORM, seed=13).sample(bundle)
    result = highrpm.monitor_online(bundle.pmcs.matrix, readings)

    p_pkg, p_ram = rapl.measure(bundle)
    print(f"\nunseen application: {target.name} on {X86_PLATFORM.name}")
    print(f"  node power : mean {result.p_node.mean():.1f} W, "
          f"MAPE {mape(bundle.node.values, result.p_node):.2f}%")
    print(f"  vs RAPL pkg: mean {p_pkg.values.mean():.1f} W, "
          f"restored CPU MAPE {mape(p_pkg.values, result.p_cpu):.2f}%")
    print(f"  vs RAPL ram: mean {p_ram.values.mean():.1f} W, "
          f"restored MEM MAPE {mape(p_ram.values, result.p_mem):.2f}%")

    # Show the raw counter path once, for the curious.
    samples = rapl.read_series(bundle.slice(0, 20))
    print("\nfirst raw RAPL reads (counter units):")
    for s in samples[:4]:
        print(f"  t={s.t_s:>2}s pkg={s.pkg_counter:>12d} ram={s.ram_counter:>12d}")


if __name__ == "__main__":
    main()
