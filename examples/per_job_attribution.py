"""Per-job power attribution on a shared node (disaggregation extension).

Two jobs share a node; the operator wants each job's power bill. The
attribution model is trained on the same solo campaign HighRPM already
uses, each job's own cgroup-level counters give a demand estimate, and the
restored CPU power is split — conserving the (trusted) total exactly.

Run with:  python examples/per_job_attribution.py
"""

import numpy as np

from repro.attribution import ColocationSimulator, PerJobAttributor
from repro.hardware import ARM_PLATFORM, NodeSimulator
from repro.ml import mape
from repro.workloads import default_catalog


def main() -> None:
    catalog = default_catalog(seed=2023)
    solo_sim = NodeSimulator(ARM_PLATFORM, seed=23)

    print("training the demand model on solo instrumented runs ...")
    solo = [solo_sim.run(catalog.get(n), duration_s=120)
            for n in ("spec_gcc", "spec_mcf", "hpcc_hpl",
                      "hpcc_stream", "parsec_ferret", "parsec_radix")]
    attributor = PerJobAttributor(ARM_PLATFORM).fit(solo)

    colo = ColocationSimulator(ARM_PLATFORM, seed=19)
    mixes = [
        ("compute + memory", ["hpcc_hpl", "hpcc_stream"]),
        ("compute + compute", ["hpcc_dgemm", "spec_x264"]),
        ("three-way mix", ["spec_gcc", "hpcc_stream", "hpcg"]),
    ]
    for label, names in mixes:
        bundle = colo.run([catalog.get(n) for n in names], duration_s=200)
        parts = attributor.attribute_bundle(bundle)
        print(f"\n{label} ({len(bundle)} s, node CPU "
              f"{bundle.cpu.mean_power():.1f} W):")
        for name, est, truth in zip(bundle.job_names, parts,
                                    bundle.job_cpu_power):
            print(f"  {name:>14}: attributed {est.mean():5.1f} W "
                  f"(true {truth.values.mean():5.1f} W, "
                  f"MAPE {mape(truth.values, est):5.2f}%)")
        conserved = np.allclose(np.sum(parts, axis=0), bundle.cpu.values)
        print(f"  total conserved exactly: {conserved}")


if __name__ == "__main__":
    main()
