"""Historical power-log analysis with StaticTRR (paper §4.2.1).

Scenario: a cluster operator has weeks of coarse IPMI logs (one node-power
reading every 10 s) plus the PMC stream from the monitoring daemon, and
wants per-second energy/power characteristics of past jobs — spikes
included. StaticTRR is the offline tool for exactly this: spline the
readings for the trend, decision-tree residuals for the fluctuations, fuse
with Algorithm 1.

Run with:  python examples/historical_log_analysis.py
"""

import numpy as np

from repro.core import HighRPMConfig, StaticTRR
from repro.hardware import ARM_PLATFORM, NodeSimulator
from repro.interp import CubicSplineInterpolator
from repro.ml import mape
from repro.monitor import EnergyAccount
from repro.sensors import IPMISensor
from repro.types import PowerTrace
from repro.workloads import default_catalog


def main() -> None:
    catalog = default_catalog(seed=2023)
    sim = NodeSimulator(ARM_PLATFORM, seed=3)
    ipmi = IPMISensor(ARM_PLATFORM, seed=11)
    config = HighRPMConfig(miss_interval=10)

    jobs = ["graph500_bfs", "hpcc_fft", "spec_mcf", "parsec_canneal"]
    print(f"{'job':>16} | {'IM-only kJ':>10} | {'restored kJ':>11} | "
          f"{'true kJ':>8} | {'peak W':>7} | {'TRR MAPE%':>9} | {'spline MAPE%':>12}")
    print("-" * 90)

    for name in jobs:
        bundle = sim.run(catalog.get(name), duration_s=400)
        readings = ipmi.sample(bundle)

        # What the operator had: hold-last-reading energy accounting.
        hold = np.repeat(readings.values, 10)[: len(bundle)]
        im_only = PowerTrace(np.maximum(hold, 0.0)).energy_joules() / 1e3

        # StaticTRR restoration.
        trr = StaticTRR(config, p_upper=ARM_PLATFORM.max_node_power_w,
                        p_bottom=ARM_PLATFORM.min_node_power_w)
        restored = trr.fit_restore(bundle.pmcs.matrix, readings)
        account = EnergyAccount.from_trace(PowerTrace(restored.p_trr))

        # Spline-only comparison (the trend without the ResModel).
        spline = CubicSplineInterpolator().fit(
            readings.indices.astype(float), readings.values
        )
        p_spline = spline.predict(np.arange(len(bundle), dtype=float))

        truth = bundle.node
        print(
            f"{name:>16} | {im_only:10.2f} | {account.energy_kj:11.2f} | "
            f"{truth.energy_joules() / 1e3:8.2f} | {account.peak_w:7.1f} | "
            f"{mape(truth.values, restored.p_trr):9.2f} | "
            f"{mape(truth.values, p_spline):12.2f}"
        )

    print(
        "\nStaticTRR recovers per-second structure the 0.1 Sa/s log misses;\n"
        "the ResModel column shows what the PMC residuals add over the spline."
    )


if __name__ == "__main__":
    main()
