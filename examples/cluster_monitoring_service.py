"""Cluster-wide monitoring service with active learning (paper §4.1).

Scenario: HighRPM deployed "as a service on the control node and shared
with other computing nodes". One model, many nodes; each node has its own
BMC (with its own noise/quantisation quirks), and the active-learning stage
adapts the shared model with reinforcement samples from each node's
unlabeled runs.

The runs are observed through the :class:`FleetMonitor` front-end: all
nodes advance chunk by chunk per tick and the cross-node model inference
is batched through the compiled flat-array layer — bit-identical to
sequential ``observe_run`` calls, cheaper per sample. A JSONL sink streams
every chunk to disk as it is produced.

Run with:  python examples/cluster_monitoring_service.py
"""

import tempfile
from pathlib import Path

from repro.core import HighRPM, HighRPMConfig
from repro.hardware import ARM_PLATFORM, NodeSimulator
from repro.ml import mape
from repro.monitor import FleetMonitor, PowerMonitorService
from repro.obs import MetricsRegistry, render_prometheus
from repro.sensors import IPMISensor
from repro.stream import JsonlSink, iter_jsonl
from repro.workloads import default_catalog


def main() -> None:
    catalog = default_catalog(seed=2023)
    # Collect everything the service emits — counters, pipeline spans,
    # self-overhead — into one registry, printed at the end of the run.
    registry = MetricsRegistry()

    # ---- control node: train the shared model -----------------------------
    control_sim = NodeSimulator(ARM_PLATFORM, seed=100)
    train_names = ["spec_gcc", "spec_mcf", "parsec_ferret", "hpcc_hpl",
                   "hpcc_stream", "parsec_radix", "spec_lbm", "parsec_dedup"]
    train = [control_sim.run(catalog.get(n), duration_s=150) for n in train_names]
    highrpm = HighRPM(
        HighRPMConfig(miss_interval=10),
        p_bottom=ARM_PLATFORM.min_node_power_w,
        p_upper=ARM_PLATFORM.max_node_power_w,
    )
    highrpm.fit_initial(train)
    jsonl_path = Path(tempfile.mkstemp(suffix=".jsonl", prefix="cluster_")[1])
    sink = JsonlSink(jsonl_path)
    service = PowerMonitorService(
        highrpm, ARM_PLATFORM, registry=registry, sinks=[sink]
    )

    # ---- compute nodes: distinct hardware realisations --------------------
    node_sims = {
        f"node-{k}": NodeSimulator(ARM_PLATFORM, seed=200 + k) for k in range(3)
    }
    for k, node_id in enumerate(node_sims):
        service.register_node(
            node_id, IPMISensor(ARM_PLATFORM, noise_w=0.3 + 0.1 * k, seed=300 + k)
        )

    # ---- observe a mixed job stream per node ------------------------------
    # Each wave schedules one job per node; the fleet monitor interleaves
    # the three runs in 64-sample chunks and batches their ResModel/SRR
    # predictions across nodes per tick.
    schedule = {
        "node-0": ["hpcg", "graph500_bfs"],
        "node-1": ["hpcc_fft", "spec_xz"],
        "node-2": ["smg2000", "parsec_canneal"],
    }
    fleet = FleetMonitor(service, chunk_size=64)
    print(f"{'node':>7} | {'job':>15} | {'node W':>7} | {'CPU W':>6} | "
          f"{'MEM W':>6} | {'node MAPE%':>10}")
    print("-" * 66)
    for wave in zip(*schedule.values()):
        jobs = dict(zip(schedule, wave))
        bundles = {
            node_id: node_sims[node_id].run(catalog.get(job), duration_s=200)
            for node_id, job in jobs.items()
        }
        results = fleet.observe_all(bundles, online=True)
        for node_id, job in jobs.items():
            result = results[node_id]
            print(
                f"{node_id:>7} | {job:>15} | {result.p_node.mean():7.1f} | "
                f"{result.p_cpu.mean():6.1f} | {result.p_mem.mean():6.1f} | "
                f"{mape(bundles[node_id].node.values, result.p_node):10.2f}"
            )

    # ---- active learning: adapt to one node's behaviour -------------------
    print("\nactive-learning round on node-2 (unlabeled run) ...")
    adapt_bundle = node_sims["node-2"].run(catalog.get("parsec_vips"), duration_s=200)
    service.adapt("node-2", adapt_bundle)
    bundle = node_sims["node-2"].run(catalog.get("smg2000"), duration_s=200)
    result = service.observe_run("node-2", bundle, online=True)
    print(f"post-adaptation smg2000 node MAPE: "
          f"{mape(bundle.node.values, result.p_node):.2f}%")

    for node_id in service.node_ids:
        log = service.log(node_id)
        print(f"{node_id}: {len(log)} restored samples across runs {log.runs}")

    # ---- the JSONL sink saw every chunk as it streamed ---------------------
    sink.close()
    records = list(iter_jsonl(jsonl_path))
    chunks = [r for r in records if r["event"] == "chunk"]
    ends = [r for r in records if r["event"] == "end_run"]
    print(f"\nJSONL sink: {len(chunks)} chunk records, "
          f"{len(ends)} run boundaries in {jsonl_path}")
    jsonl_path.unlink()

    # ---- operator report for one node --------------------------------------
    from repro.monitor import render_node_report

    print()
    print(render_node_report(service.log("node-0"), run_lengths=[200, 200]))

    # ---- what the instrumentation saw (docs/observability.md) --------------
    print("\nmetrics snapshot (exposition excerpt):")
    excerpt = [
        line for line in render_prometheus(registry).splitlines()
        if line.startswith(("repro_monitor_runs_total",
                            "repro_monitor_samples_total",
                            "repro_monitor_overhead_budget_fraction"))
    ]
    print("\n".join(excerpt))
    print()
    print(service.tracer.render())
    print(service.profiler.render())


if __name__ == "__main__":
    main()
