"""Cluster-wide monitoring service behind the fleet daemon (paper §4.1).

Scenario: HighRPM deployed "as a service on the control node and shared
with other computing nodes". One model, many nodes — here hosted the way
a real deployment would run it: a :class:`repro.serve.FleetDaemon`
shards the fleet across workers, merges their output on the control
side, and serves Prometheus ``/metrics``, a ``/healthz`` probe, and a
live ndjson ``/stream`` over HTTP. One node's BMC feed is dead from the
start; it degrades to model-only restoration while its neighbours stay
healthy.

The script scrapes all three endpoints over real HTTP while the daemon
runs, lets the bounded run count drain naturally, scores every node's
restored power against the simulator's ground truth, and finishes with
the active-learning round the paper schedules between deployments.

Run with:  python examples/cluster_monitoring_service.py
"""

import json
import tempfile
from pathlib import Path
from urllib.request import urlopen

from repro.hardware import NodeSimulator, get_platform
from repro.ml import mape
from repro.monitor import PowerMonitorService
from repro.sensors import IPMISensor
from repro.serve import FleetDaemon, ServeConfig, train_model
from repro.stream import iter_jsonl
from repro.workloads import default_catalog


def main() -> None:
    jsonl_path = Path(tempfile.mkstemp(suffix=".jsonl", prefix="cluster_")[1])
    jsonl_path.unlink()  # the daemon appends; start from nothing
    config = ServeConfig(
        nodes=4, shards=2, runs=2, run_seconds=120, chunk_size=64,
        port=0, ndjson=str(jsonl_path), keep_results=True,
        fault_nodes={"node3": "dead-feed"},
    )

    # ---- control node: train the shared model, boot the daemon ------------
    print(f"training the shared model ({config.train_seconds}s traces) ...")
    model = train_model(config)
    daemon = FleetDaemon(config, model=model)
    daemon.start()
    host, port = daemon.address
    base = f"http://{host}:{port}"
    print(f"daemon up: {config.nodes} nodes over {config.shards} shards "
          f"at {base}\n")

    # ---- scrape the health probe while the fleet ticks --------------------
    with urlopen(f"{base}/healthz") as response:
        health = json.load(response)
    print(f"/healthz: status={health['status']} shards=" +
          str({s: v["state"] for s, v in health["shards"].items()}))

    # ---- follow /stream to the end --------------------------------------
    # Chunk records arrive as the shards produce them; with bounded runs
    # the daemon drains on its own and closes the stream after the last
    # record, so reading to EOF is reading the whole deployment.
    with urlopen(f"{base}/stream") as stream:
        streamed = [json.loads(line) for line in stream]
    daemon.wait()

    # ---- the merged exposition, scraped like Prometheus would -------------
    with urlopen(f"{base}/metrics") as response:
        exposition = response.read().decode()
    daemon.stop()
    excerpt = [
        line for line in exposition.splitlines()
        if line.startswith(("repro_monitor_runs_total",
                            "repro_monitor_samples_total",
                            "repro_serve_events_total"))
    ]
    print("\n/metrics excerpt (fleet totals, merged across shards):")
    print("\n".join(excerpt))

    # ---- score the daemon's results against simulator ground truth --------
    # Per-node seeds derive from the global node index, so the reference
    # bundles are reconstructable bit-for-bit outside the daemon.
    spec = get_platform(config.platform)
    catalog = default_catalog(config.seed)
    workload = catalog.get(config.workload)
    print(f"\n{'node':>6} | {'runs':>4} | {'mode':>10} | {'node W':>7} | "
          f"{'CPU W':>6} | {'MEM W':>6} | {'node MAPE%':>10}")
    print("-" * 70)
    for node_id, index in config.node_plan():
        truth = NodeSimulator(spec, seed=config.seed + index).run(
            workload, duration_s=config.run_seconds
        )
        results = daemon.results[node_id]
        last = results[-1]
        print(f"{node_id:>6} | {len(results):>4} | {last.mode:>10} | "
              f"{last.p_node.mean():7.1f} | {last.p_cpu.mean():6.1f} | "
              f"{last.p_mem.mean():6.1f} | "
              f"{mape(truth.node.values, last.p_node):10.2f}")

    final = daemon.healthz()
    print(f"\nfinal health: status={final['status']} "
          f"outage_nodes={final['outage_nodes']} drained={final['drained']}")

    # ---- the stream and the ndjson file carry the same records ------------
    persisted = list(iter_jsonl(jsonl_path))
    chunks = [r for r in persisted if r["event"] == "chunk"]
    ends = [r for r in persisted if r["event"] == "end_run"]
    assert len(streamed) == len(persisted)
    print(f"stream/ndjson: {len(chunks)} chunk records, {len(ends)} run "
          f"boundaries ({jsonl_path.name}); /stream saw the same "
          f"{len(streamed)} records")
    jsonl_path.unlink()

    # ---- active learning between deployments ------------------------------
    # The daemon never adapts its shared model (observation must stay
    # side-effect free across shards); the paper's active-learning stage
    # runs between deployments, on the control node, with the same model.
    print("\nactive-learning round on node2's hardware (unlabeled run) ...")
    node_sim = NodeSimulator(spec, seed=config.seed + 2)
    service = PowerMonitorService(model, spec)
    service.register_node(
        "node2", IPMISensor(spec, interval_s=config.interval_s,
                            seed=config.seed + 2)
    )
    test = node_sim.run(catalog.get("smg2000"), duration_s=120)
    before = service.observe_run("node2", test, online=True)
    # Adapt on another unlabeled run of the job this node keeps running.
    # Active learning fine-tunes the SRR split, so the component
    # attribution is where the round shows up.
    service.adapt("node2", node_sim.run(catalog.get("smg2000"),
                                        duration_s=120))
    after = service.observe_run("node2", test, online=True)
    for name, b, a, t in (("CPU", before.p_cpu, after.p_cpu,
                           test.cpu.values),
                          ("MEM", before.p_mem, after.p_mem,
                           test.mem.values)):
        print(f"smg2000 {name} MAPE: {mape(t, b):.2f}% before "
              f"adaptation, {mape(t, a):.2f}% after")


if __name__ == "__main__":
    main()
