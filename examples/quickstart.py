"""Quickstart: restore high-resolution power from slow IPMI readings.

This walks the full HighRPM deployment story on a simulated ARM node:

1. run an instrumented training campaign (direct measurement available);
2. train the framework (initial learning stage);
3. monitor a new, unseen benchmark from 0.1 Sa/s IPMI readings + PMCs;
4. compare the restored 1 Sa/s estimates against ground truth.

Run with:  python examples/quickstart.py
"""

from repro.core import HighRPM, HighRPMConfig
from repro.hardware import ARM_PLATFORM, NodeSimulator
from repro.ml import score_report
from repro.sensors import IPMISensor
from repro.workloads import default_catalog


def main() -> None:
    catalog = default_catalog(seed=2023)
    sim = NodeSimulator(ARM_PLATFORM, seed=1)

    # ---- 1. instrumented training campaign --------------------------------
    train_names = [
        "spec_gcc", "spec_mcf", "spec_x264", "parsec_ferret",
        "parsec_streamcluster", "hpcc_hpl", "hpcc_stream", "parsec_radix",
    ]
    print(f"running {len(train_names)} instrumented training benchmarks ...")
    train = [sim.run(catalog.get(n), duration_s=150) for n in train_names]

    # ---- 2. initial learning stage ----------------------------------------
    config = HighRPMConfig(miss_interval=10)  # 0.1 Sa/s -> 1 Sa/s (10x)
    highrpm = HighRPM(
        config,
        p_bottom=ARM_PLATFORM.min_node_power_w,
        p_upper=ARM_PLATFORM.max_node_power_w,
    )
    print("training HighRPM (DynamicTRR + SRR) ...")
    highrpm.fit_initial(train)

    # ---- 3. monitor an unseen program --------------------------------------
    target = catalog.get("hpcg")  # never seen during training
    bundle = sim.run(target, duration_s=300)
    ipmi = IPMISensor(ARM_PLATFORM, seed=9)
    readings = ipmi.sample(bundle)
    print(
        f"monitoring {target.name}: {len(readings)} IPMI readings "
        f"({ipmi.sample_rate_sa_s:.1f} Sa/s) over {len(bundle)} s"
    )
    result = highrpm.monitor_online(bundle.pmcs.matrix, readings)

    # ---- 4. evaluate against ground truth ----------------------------------
    print(f"\nrestored {len(result)} samples at 1 Sa/s "
          f"({len(result) // len(readings)}x the IM rate)\n")
    for label, truth, estimate in [
        ("P_node", bundle.node.values, result.p_node),
        ("P_cpu ", bundle.cpu.values, result.p_cpu),
        ("P_mem ", bundle.mem.values, result.p_mem),
    ]:
        print(f"  {label}: {score_report(truth, estimate)}")

    mean_w = result.p_node.mean()
    print(f"\nmean node power {mean_w:.1f} W "
          f"(CPU {result.p_cpu.mean():.1f} W, MEM {result.p_mem.mean():.1f} W, "
          f"other {result.p_other.mean():.1f} W)")


if __name__ == "__main__":
    main()
