"""Anomaly detection on restored power streams.

The point of high-resolution monitoring is to *react*: spikes that a
0.1 Sa/s log never shows can trip thermal limits, and level shifts flag
phase changes or misbehaving jobs. This example restores a bursty Graph500
run from slow IPMI readings and runs the spike/level-shift detector on the
restored 1 Sa/s stream, comparing against what the raw IM log would catch.

Run with:  python examples/anomaly_detection.py
"""

import numpy as np

from repro.core import HighRPM, HighRPMConfig
from repro.hardware import ARM_PLATFORM, NodeSimulator
from repro.monitor.anomaly import PowerAnomalyDetector
from repro.sensors import IPMISensor
from repro.workloads import default_catalog


def main() -> None:
    catalog = default_catalog(seed=2023)
    sim = NodeSimulator(ARM_PLATFORM, seed=29)
    train = [sim.run(catalog.get(n), duration_s=150)
             for n in ("spec_gcc", "spec_mcf", "hpcc_hpl",
                       "hpcc_stream", "parsec_ferret", "parsec_radix")]
    hr = HighRPM(HighRPMConfig(miss_interval=10),
                 p_bottom=ARM_PLATFORM.min_node_power_w,
                 p_upper=ARM_PLATFORM.max_node_power_w)
    hr.fit_initial(train)

    bundle = sim.run(catalog.get("graph500_bfs"), duration_s=400)
    readings = IPMISensor(ARM_PLATFORM, seed=31).sample(bundle)
    result = hr.monitor_online(bundle.pmcs.matrix, readings)

    detector = PowerAnomalyDetector(spike_z=3.5, shift_w=8.0, window_s=15)
    on_truth = detector.detect(bundle.node.values)
    on_restored = detector.detect(result.p_node)
    # What the raw 0.1 Sa/s log shows: hold-last-reading.
    hold = np.repeat(readings.values, readings.interval_s)[: len(bundle)]
    on_im_log = detector.detect(hold)

    print(f"Graph500 BFS, {len(bundle)} s, cap-free run")
    print(f"  anomalies in ground truth      : {len(on_truth)}")
    print(f"  anomalies in restored stream   : {len(on_restored)}")
    print(f"  anomalies visible in raw IM log: {len(on_im_log)}")

    truth_spikes = {a.index for a in on_truth if a.kind == "spike"}
    caught = sum(
        1 for a in on_restored
        if a.kind == "spike" and any(abs(a.index - t) <= 3 for t in truth_spikes)
    )
    if truth_spikes:
        print(f"  restored stream caught {caught}/{len(truth_spikes)} "
              f"ground-truth spikes (±3 s)")

    print("\nfirst few restored-stream events:")
    for a in on_restored[:6]:
        print(f"  t={a.index:>3}s {a.kind:<11} {a.magnitude_w:+.1f} W")


if __name__ == "__main__":
    main()
