"""GPU extension demo (paper §6.4.4): monitoring an accelerated node.

The paper's future-work section argues the HighRPM methodology extends to
any counter-instrumented peripheral. This example runs the whole story on
a CPU+DRAM+GPU node: TRR restores the node power unchanged (it is
component-agnostic), and a three-way SRR distributes the budget over CPU,
DRAM, and GPU.

Run with:  python examples/gpu_node_monitoring.py
"""

import numpy as np

from repro.core import DynamicTRR, HighRPMConfig
from repro.gpu import AcceleratedNodeSimulator, GPUSRR, gpu_workload
from repro.ml import mape
from repro.sensors.base import SparseReadings


def ipmi_like(bundle, interval=10):
    idx = np.arange(interval, len(bundle), interval)
    return SparseReadings(idx, bundle.node.values[idx], interval, len(bundle))


def main() -> None:
    sim = AcceleratedNodeSimulator(seed=13)
    train_names = ["gemm", "stencil", "training_loop", "inference_serving"]
    print(f"training campaign: {train_names}")
    train = [sim.run(gpu_workload(n, seed=4), duration_s=150) for n in train_names]

    config = HighRPMConfig(miss_interval=10)
    trr = DynamicTRR(config)
    trr.fit(train, p_bottom=sim.min_node_power_w, p_upper=sim.max_node_power_w)

    srr = GPUSRR(config)
    pmcs = np.vstack([b.pmcs.matrix for b in train])
    srr.fit(
        pmcs,
        np.concatenate([b.node.values for b in train]),
        np.concatenate([b.cpu.values for b in train]),
        np.concatenate([b.mem.values for b in train]),
        np.concatenate([b.gpu.values for b in train]),
    )

    print(f"\n{'workload':>18} | {'node W':>7} | {'GPU W':>6} | {'CPU W':>6} | "
          f"{'node MAPE%':>10} | {'GPU MAPE%':>9}")
    print("-" * 72)
    for name in ("graph_analytics", "fft_gpu"):
        bundle = sim.run(gpu_workload(name, seed=9), duration_s=240)
        readings = ipmi_like(bundle)
        p_node = trr.restore(bundle.pmcs.matrix, readings)
        p_cpu, p_mem, p_gpu = srr.predict(bundle.pmcs.matrix, p_node)
        print(f"{name:>18} | {p_node.mean():7.1f} | {p_gpu.mean():6.1f} | "
              f"{p_cpu.mean():6.1f} | {mape(bundle.node.values, p_node):10.2f} | "
              f"{mape(bundle.gpu.values, p_gpu):9.2f}")

    print("\nTRR ran unchanged on the accelerated node — the methodology is "
          "component-agnostic,\nexactly the generality §6.4.4 claims.")


if __name__ == "__main__":
    main()
