"""Registry-merge contract: many shard snapshots -> one exposition.

The sharded service daemon serves ``/metrics`` by folding per-shard
registry snapshots through :func:`repro.obs.merge_snapshots`; these tests
pin the collision semantics that ``docs/observability.md`` documents.
"""

import json

import pytest

from repro.errors import ValidationError
from repro.obs import (
    MetricsRegistry,
    merge_snapshots,
    parse_prometheus,
    render_prometheus,
)
from repro.obs.dump import main as dump_main


def _shard_registry(shard: int, runs: int) -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("repro_monitor_runs_total", "Observed runs.",
                ("node", "mode")).labels(
        node=f"node{shard}", mode="static").inc(runs)
    reg.counter("repro_stream_chunks_total", "Chunks per stage.",
                ("stage",)).labels(stage="ingest").inc(10 * (shard + 1))
    reg.gauge("repro_overhead_budget_fraction",
              "Self-overhead share.").set(0.01 * (shard + 1))
    reg.histogram("repro_monitor_readings_per_run", "Readings.",
                  buckets=(1.0, 8.0)).observe(float(shard + 2))
    return reg


def test_disjoint_labels_pass_through():
    merged = merge_snapshots([
        _shard_registry(0, 3).snapshot(), _shard_registry(1, 5).snapshot(),
    ])
    samples = merged["repro_monitor_runs_total"]["samples"]
    by_node = {s["labels"]["node"]: s["value"] for s in samples}
    assert by_node == {"node0": 3.0, "node1": 5.0}


def test_colliding_counters_sum():
    merged = merge_snapshots([
        _shard_registry(0, 3).snapshot(), _shard_registry(1, 5).snapshot(),
    ])
    (sample,) = merged["repro_stream_chunks_total"]["samples"]
    assert sample["labels"] == {"stage": "ingest"}
    assert sample["value"] == 30.0  # 10 + 20


def test_colliding_histograms_sum_bucketwise():
    merged = merge_snapshots([
        _shard_registry(0, 1).snapshot(), _shard_registry(1, 1).snapshot(),
    ])
    (sample,) = merged["repro_monitor_readings_per_run"]["samples"]
    # shard 0 observed 2.0 (<=8 bucket), shard 1 observed 3.0 (<=8 bucket)
    assert sample["count"] == 2
    assert sample["sum"] == 5.0
    les = {le: n for le, n in sample["buckets"]}
    assert les[8.0] == 2 and les[float("inf")] == 2


@pytest.mark.parametrize("policy,expected", [
    ("last", 0.02), ("sum", pytest.approx(0.03)), ("max", 0.02),
])
def test_gauge_collision_policies(policy, expected):
    merged = merge_snapshots(
        [_shard_registry(0, 1).snapshot(), _shard_registry(1, 1).snapshot()],
        gauges=policy,
    )
    (sample,) = merged["repro_overhead_budget_fraction"]["samples"]
    assert sample["value"] == expected


def test_unknown_gauge_policy_rejected():
    with pytest.raises(ValidationError):
        merge_snapshots([_shard_registry(0, 1).snapshot()], gauges="mean")


def test_type_collision_rejected():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("repro_thing_total").inc()
    b.gauge("repro_thing_total").set(1.0)
    with pytest.raises(ValidationError):
        merge_snapshots([a.snapshot(), b.snapshot()])


def test_label_name_collision_rejected():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("repro_thing_total", labels=("node",)).labels(node="x").inc()
    b.counter("repro_thing_total").inc()
    with pytest.raises(ValidationError):
        merge_snapshots([a.snapshot(), b.snapshot()])


def test_histogram_bucket_mismatch_rejected():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.histogram("repro_h", buckets=(1.0, 2.0)).observe(0.5)
    b.histogram("repro_h", buckets=(1.0, 4.0)).observe(0.5)
    with pytest.raises(ValidationError):
        merge_snapshots([a.snapshot(), b.snapshot()])


def test_per_source_labels_avoid_collisions():
    merged = merge_snapshots(
        [_shard_registry(0, 1).snapshot(), _shard_registry(1, 1).snapshot()],
        labels=[{"shard": "s0"}, {"shard": "s1"}],
    )
    samples = merged["repro_stream_chunks_total"]["samples"]
    by_shard = {s["labels"]["shard"]: s["value"] for s in samples}
    assert by_shard == {"s0": 10.0, "s1": 20.0}
    assert "shard" in merged["repro_stream_chunks_total"]["label_names"]


def test_merged_snapshot_round_trips_through_exposition():
    merged = merge_snapshots([
        _shard_registry(0, 3).snapshot(), _shard_registry(1, 5).snapshot(),
    ])
    assert parse_prometheus(render_prometheus(merged)) == merged


def test_dump_cli_merges_multiple_snapshots(tmp_path, capsys):
    paths = []
    for shard in range(2):
        path = tmp_path / f"shard{shard}.json"
        path.write_text(json.dumps(_shard_registry(shard, 2).snapshot()))
        paths.append(str(path))
    assert dump_main(paths) == 0
    out = capsys.readouterr().out
    families = parse_prometheus(out)
    (sample,) = families["repro_stream_chunks_total"]["samples"]
    assert sample["value"] == 30.0

    assert dump_main(paths + ["--label-by-source"]) == 0
    out = capsys.readouterr().out
    families = parse_prometheus(out)
    sources = {
        s["labels"]["source"]
        for s in families["repro_stream_chunks_total"]["samples"]
    }
    assert sources == {"shard0", "shard1"}
