"""Tests for the power anomaly detector."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.monitor.anomaly import Anomaly, PowerAnomalyDetector


@pytest.fixture()
def detector():
    return PowerAnomalyDetector(spike_z=4.0, shift_w=8.0, window_s=15)


def flat(n=200, level=80.0, noise=0.3, seed=0):
    return level + np.random.default_rng(seed).normal(0, noise, n)


class TestSpikes:
    def test_detects_injected_spike(self, detector):
        x = flat()
        x[100] += 20.0
        found = detector.detect(x)
        spikes = [a for a in found if a.kind == "spike"]
        assert any(abs(a.index - 100) <= 1 for a in spikes)
        assert spikes[0].magnitude_w > 10.0

    def test_burst_collapsed_to_one_event(self, detector):
        x = flat()
        x[100:103] += 20.0
        spikes = [a for a in detector.detect(x) if a.kind == "spike"]
        near = [a for a in spikes if 98 <= a.index <= 105]
        assert len(near) == 1

    def test_negative_spike_detected(self, detector):
        x = flat()
        x[50] -= 25.0
        spikes = [a for a in detector.detect(x) if a.kind == "spike"]
        assert any(abs(a.index - 50) <= 1 and a.magnitude_w < 0 for a in spikes)

    def test_clean_trace_quiet(self, detector):
        assert detector.detect(flat()) == []


class TestLevelShifts:
    def test_detects_step(self, detector):
        x = flat(300)
        x[150:] += 15.0
        shifts = [a for a in detector.detect(x) if a.kind == "level_shift"]
        assert any(abs(a.index - 150) <= detector.window_s for a in shifts)
        assert shifts[0].magnitude_w == pytest.approx(15.0, abs=2.0)

    def test_small_step_ignored(self, detector):
        x = flat(300)
        x[150:] += 2.0  # below shift_w
        shifts = [a for a in detector.detect(x) if a.kind == "level_shift"]
        assert shifts == []

    def test_ramp_not_double_counted(self, detector):
        x = flat(300)
        x[150:] += 20.0
        shifts = [a for a in detector.detect(x) if a.kind == "level_shift"]
        assert len(shifts) == 1


class TestMisc:
    def test_short_trace_returns_empty(self, detector):
        assert detector.detect(np.ones(10)) == []

    def test_overload_indices(self, detector):
        x = flat()
        x[[5, 60]] = 200.0
        assert detector.detect_overload(x, limit_w=150.0) == [5, 60]

    def test_invalid_params(self):
        with pytest.raises(ValidationError):
            PowerAnomalyDetector(spike_z=0.0)
        with pytest.raises(ValidationError):
            Anomaly(0, "weird", 1.0)

    def test_restored_trace_spikes_found(self, small_bundle):
        """End-to-end flavour: bursts in a simulated trace are detectable."""
        det = PowerAnomalyDetector(spike_z=3.5, shift_w=10.0, window_s=11)
        found = det.detect(small_bundle.node.values)
        # hpcc_fft has a staged setup phase + bursts; expect some events.
        assert isinstance(found, list)
        for a in found:
            assert 0 <= a.index < len(small_bundle)
