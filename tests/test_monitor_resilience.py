"""Service-side resilience: retry, gating, degradation, health, log paths.

The expensive trained service comes from the session-scoped
``chaos_reference`` fixture; every test registers its own uniquely-named
node so runs never interfere.
"""

import numpy as np
import pytest

from repro.core import PROV_MODEL_ONLY, PROV_RESTORED
from repro.core.highrpm import MonitorResult
from repro.errors import SensorOutageError, TransientSensorError, ValidationError
from repro.faults import FaultySensor, OutageWindow
from repro.hardware import ARM_PLATFORM, NodeSimulator
from repro.ml.metrics import mape
from repro.monitor import (
    DEGRADED,
    HEALTHY,
    OUTAGE,
    NodeHealth,
    ResiliencePolicy,
)
from repro.monitor.resilience import gate_readings, sample_with_retry
from repro.sensors import IPMISensor, SparseReadings
from repro.workloads import default_catalog


def readings_stream(values):
    values = np.asarray(values, dtype=np.float64)
    idx = np.arange(values.shape[0], dtype=np.int64) * 10 + 5
    return SparseReadings(idx, values, 10, int(idx[-1]) + 10)


class TestResiliencePolicy:
    def test_defaults_valid(self):
        p = ResiliencePolicy()
        assert p.min_readings(online=True) == 1
        assert p.min_readings(online=False) == 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"backoff_base_s": -0.1},
            {"gate_margin_fraction": -0.5},
            {"min_readings_static": 3},
            {"min_readings_dynamic": 0},
        ],
    )
    def test_invalid_fields_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            ResiliencePolicy(**kwargs)


class TestNodeHealth:
    def test_status_follows_latest_run(self):
        h = NodeHealth("n0")
        h.record_degraded_run("gated")
        assert h.status == DEGRADED
        h.record_outage_run("dead feed")
        assert h.status == OUTAGE and h.consecutive_failures == 1
        h.record_healthy_run()
        assert h.status == HEALTHY and h.consecutive_failures == 0
        assert h.history == [DEGRADED, OUTAGE, HEALTHY]
        assert h.runs == 3 and h.outages == 1 and h.degraded_runs == 1


class _FlakySensor:
    """Fails the first ``n_fail`` sample() calls with a transient error."""

    def __init__(self, n_fail, payload="ok"):
        self.n_fail = n_fail
        self.calls = 0
        self.payload = payload

    def sample(self, bundle):
        self.calls += 1
        if self.calls <= self.n_fail:
            raise TransientSensorError(f"flake {self.calls}")
        return self.payload


class TestSampleWithRetry:
    def test_recovers_within_budget(self):
        policy = ResiliencePolicy(max_retries=2)
        health = NodeHealth("n0")
        sensor = _FlakySensor(2)
        assert sample_with_retry(sensor, None, policy, health) == "ok"
        assert sensor.calls == 3
        assert health.retries == 2
        # Exponential backoff: 0.05 + 0.10.
        assert health.backoff_total_s == pytest.approx(0.15)

    def test_exhausted_budget_propagates(self):
        policy = ResiliencePolicy(max_retries=1)
        health = NodeHealth("n0")
        with pytest.raises(TransientSensorError):
            sample_with_retry(_FlakySensor(5), None, policy, health)
        assert health.retries == 1

    def test_sleep_callable_receives_backoff(self):
        slept = []
        policy = ResiliencePolicy(max_retries=2, sleep=slept.append)
        sample_with_retry(_FlakySensor(2), None, policy, NodeHealth("n0"))
        assert slept == pytest.approx([0.05, 0.10])

    def test_outage_not_retried(self):
        class Dead:
            calls = 0

            def sample(self, bundle):
                self.calls += 1
                raise SensorOutageError("feed is gone")

        sensor = Dead()
        with pytest.raises(SensorOutageError):
            sample_with_retry(sensor, None, ResiliencePolicy(), NodeHealth("n0"))
        assert sensor.calls == 1


class TestGateReadings:
    def test_in_band_untouched(self):
        r = readings_stream([80.0, 90.0, 100.0])
        out, dropped = gate_readings(r, 60.0, 110.0, 0.25)
        assert out is r and dropped == 0

    def test_glitches_dropped(self):
        r = readings_stream([80.0, 400.0, 90.0, -250.0])
        out, dropped = gate_readings(r, 60.0, 110.0, 0.25)
        assert dropped == 2
        np.testing.assert_array_equal(out.values, [80.0, 90.0])
        assert out.n_dense == r.n_dense

    def test_all_gated_is_none(self):
        r = readings_stream([500.0, 600.0])
        out, dropped = gate_readings(r, 60.0, 110.0, 0.1)
        assert out is None and dropped == 2

    def test_margin_widens_band(self):
        r = readings_stream([120.0, 80.0, 80.0])  # 120 > p_upper but inside margin
        out, dropped = gate_readings(r, 60.0, 110.0, 0.25)
        assert dropped == 0 and len(out) == 3

    def test_invalid_clamps_rejected(self):
        with pytest.raises(ValidationError):
            gate_readings(readings_stream([80.0]), 110.0, 60.0, 0.1)


class TestMonitorLogValidation:
    def test_append_rejects_length_mismatch(self):
        from repro.monitor.service import MonitorLog

        log = MonitorLog("n0")
        bad = MonitorResult(
            p_node=np.ones(10), p_cpu=np.ones(9), p_mem=np.ones(10), mode="static"
        )
        with pytest.raises(ValidationError, match="p_cpu"):
            log.append(bad, "w")
        bad_prov = MonitorResult(
            p_node=np.ones(10), p_cpu=np.ones(10), p_mem=np.ones(10),
            mode="static", provenance=np.zeros(4, dtype=np.uint8),
        )
        with pytest.raises(ValidationError, match="provenance"):
            log.append(bad_prov, "w")
        assert len(log) == 0 and log.runs == []

    def test_append_fills_missing_provenance(self):
        from repro.monitor.service import MonitorLog

        log = MonitorLog("n0")
        log.append(
            MonitorResult(np.ones(5), np.ones(5), np.ones(5), mode="static"), "w"
        )
        assert (log.provenance == PROV_RESTORED).all()
        assert log.modes == ["static"]
        assert log.model_only_fraction() == 0.0

    def test_empty_log_fraction(self):
        from repro.monitor.service import MonitorLog

        assert MonitorLog("n0").model_only_fraction() == 0.0


class TestServiceErrorPaths:
    def test_duplicate_registration_rejected(self, chaos_reference):
        service, _ = chaos_reference
        service.register_node("res-dup")
        with pytest.raises(ValidationError, match="already registered"):
            service.register_node("res-dup")

    def test_unknown_node_everywhere(self, chaos_reference):
        service, bundle = chaos_reference
        for call in (
            lambda: service.log("res-nope"),
            lambda: service.health("res-nope"),
            lambda: service.observe_run("res-nope", bundle),
            lambda: service.adapt("res-nope", bundle),
        ):
            with pytest.raises(ValidationError, match="res-nope"):
                call()


@pytest.fixture(scope="module")
def tiny_bundle():
    """A run shorter than the IM interval (5 s vs 10 s readings)."""
    sim = NodeSimulator(ARM_PLATFORM, seed=404)
    return sim.run(default_catalog(seed=404).get("hpcc_fft"), duration_s=5)


class TestShortBundle:
    """Satellite: observe_run on bundles shorter than the IM interval."""

    def test_sensor_alone_raises(self, tiny_bundle):
        with pytest.raises(ValidationError):
            IPMISensor(ARM_PLATFORM, seed=1).sample(tiny_bundle)

    def test_default_policy_degrades_with_flag(self, chaos_reference, tiny_bundle):
        service, _ = chaos_reference
        service.register_node("res-short")
        result = service.observe_run("res-short", tiny_bundle)
        assert result.mode == "model_only"
        assert len(result) == len(tiny_bundle)
        assert result.model_only_mask.all()
        log = service.log("res-short")
        assert log.model_only_fraction() == 1.0
        health = service.health("res-short")
        assert health.status == OUTAGE
        assert "too short" in health.last_error

    def test_strict_policy_raises_clear_error(self, chaos_reference, tiny_bundle):
        from repro.monitor import PowerMonitorService

        service, _ = chaos_reference
        strict = PowerMonitorService(
            service.model, service.spec,
            policy=ResiliencePolicy(degrade_to_model_only=False),
        )
        strict.register_node("res-short-strict")
        with pytest.raises(ValidationError) as excinfo:
            strict.observe_run("res-short-strict", tiny_bundle)
        msg = str(excinfo.value)
        assert "too short" in msg and "res-short-strict" in msg
        assert "interval" in msg


class TestMidRunOutage:
    """ISSUE acceptance: full mid-run IM outage, graceful degradation."""

    @pytest.fixture(scope="class")
    def outage_run(self, chaos_reference):
        service, bundle = chaos_reference
        n = len(bundle)
        start, dur = n // 3, n // 3
        sensor = FaultySensor(
            IPMISensor(ARM_PLATFORM, seed=31),
            faults=[OutageWindow(start, dur)],
            seed=32,
        )
        service.register_node("res-outage", sensor=sensor)
        result = service.observe_run("res-outage", bundle, online=True)
        return service, bundle, result, (start, start + dur)

    def test_completes_and_flags_outage_samples(self, outage_run):
        service, bundle, result, (t0, t1) = outage_run
        assert len(result) == len(bundle)
        assert np.isfinite(result.p_node).all()
        # Deep inside the outage window the provenance must say model-only...
        mid = (t0 + t1) // 2
        assert result.provenance[mid] == PROV_MODEL_ONLY
        # ...and the log carries the same flags.
        log = service.log("res-outage")
        tail = log.model_only_mask[-len(bundle):]
        assert tail.any()
        assert set(np.flatnonzero(tail)) <= set(range(t0 - 25, t1 + 25))
        assert service.health("res-outage").status == DEGRADED

    def test_outage_mape_within_2x_healthy(self, outage_run):
        _, bundle, result, (t0, t1) = outage_run
        truth = bundle.node.values
        window = np.zeros(len(bundle), dtype=bool)
        window[t0:t1] = True
        mape_outage = mape(truth[window], result.p_node[window])
        mape_healthy = mape(truth[~window], result.p_node[~window])
        assert mape_outage <= 2.0 * mape_healthy, (
            f"outage-window MAPE {mape_outage:.2f}% exceeds twice the "
            f"healthy-window MAPE {mape_healthy:.2f}%"
        )

    def test_session_records_resync_on_recovery(self, chaos_reference):
        # Drive a streaming session directly: readings every 10 s, then a
        # 60 s silence, then the feed returns. The gap exceeds
        # resync_gap_factor x miss_interval, so the recovery second must be
        # recorded as a re-sync (boosted fine-tune).
        service, bundle = chaos_reference
        session = service.model.dynamic_trr.session()
        pmcs = bundle.pmcs.matrix
        truth = bundle.node.values
        gap = range(40, 100)
        for t in range(120):
            reading = (
                float(truth[t]) if t % 10 == 5 and t not in gap else None
            )
            session.step(pmcs[t], reading)
        assert session.resyncs, "feed recovery after a long gap not recorded"
        assert all(t >= 100 for t in session.resyncs)


class TestDeadFeed:
    def test_whole_run_outage_goes_model_only(self, chaos_reference):
        service, bundle = chaos_reference
        sensor = FaultySensor(
            IPMISensor(ARM_PLATFORM, seed=41),
            faults=[OutageWindow(0, 100 * len(bundle))],
            seed=42,
        )
        service.register_node("res-dead", sensor=sensor)
        result = service.observe_run("res-dead", bundle)
        assert result.mode == "model_only"
        assert result.model_only_mask.all()
        health = service.health("res-dead")
        assert health.status == OUTAGE and health.outages == 1
        assert service.log("res-dead").model_only_fraction() == 1.0

    def test_strict_policy_raises_on_outage(self, chaos_reference):
        from repro.monitor import PowerMonitorService

        service, bundle = chaos_reference
        strict = PowerMonitorService(
            service.model, service.spec,
            policy=ResiliencePolicy(degrade_to_model_only=False),
        )
        sensor = FaultySensor(
            IPMISensor(ARM_PLATFORM, seed=43),
            faults=[OutageWindow(0, 100 * len(bundle))],
            seed=44,
        )
        strict.register_node("res-dead-strict", sensor=sensor)
        with pytest.raises(SensorOutageError):
            strict.observe_run("res-dead-strict", bundle)
        assert strict.health("res-dead-strict").status == OUTAGE


class TestRetriesInService:
    def test_transients_retried_and_marked_degraded(self, chaos_reference):
        service, bundle = chaos_reference
        sensor = FaultySensor(IPMISensor(ARM_PLATFORM, seed=51), fail_first=2)
        service.register_node("res-flaky", sensor=sensor)
        result = service.observe_run("res-flaky", bundle)
        assert result.mode in ("dynamic", "static")
        health = service.health("res-flaky")
        assert health.retries == 2
        assert health.status == DEGRADED
