"""Tests for the paper's four evaluation metrics."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.ml import mae, mape, r2_score, rmse, score_report


class TestMape:
    def test_perfect_prediction(self):
        assert mape([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_known_value(self):
        # 50% off on one of two samples -> 25% mean
        assert mape([2.0, 2.0], [2.0, 3.0]) == pytest.approx(25.0)

    def test_symmetric_in_error_sign(self):
        assert mape([10.0], [9.0]) == mape([10.0], [11.0])

    def test_zero_truth_guard(self):
        assert np.isfinite(mape([0.0, 1.0], [1.0, 1.0]))

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            mape([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            mape([], [])


class TestRmseMae:
    def test_rmse_known(self):
        assert rmse([0.0, 0.0], [3.0, 4.0]) == pytest.approx(np.sqrt(12.5))

    def test_mae_known(self):
        assert mae([0.0, 0.0], [3.0, -4.0]) == pytest.approx(3.5)

    def test_rmse_at_least_mae(self, rng):
        t = rng.normal(size=100)
        p = t + rng.normal(size=100)
        assert rmse(t, p) >= mae(t, p)


class TestR2:
    def test_perfect(self):
        assert r2_score([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 1.0

    def test_mean_prediction_is_zero(self):
        t = np.array([1.0, 2.0, 3.0])
        assert r2_score(t, np.full(3, 2.0)) == pytest.approx(0.0)

    def test_worse_than_mean_is_negative(self):
        assert r2_score([1.0, 2.0, 3.0], [3.0, 3.0, 0.0]) < 0.0

    def test_constant_truth_conventions(self):
        assert r2_score([2.0, 2.0], [2.0, 2.0]) == 1.0
        assert r2_score([2.0, 2.0], [1.0, 3.0]) == 0.0


class TestScoreReport:
    def test_bundles_all_four(self, rng):
        t = rng.uniform(50, 100, 50)
        p = t + rng.normal(0, 2, 50)
        r = score_report(t, p)
        assert r.mape == pytest.approx(mape(t, p))
        assert r.rmse == pytest.approx(rmse(t, p))
        assert r.mae == pytest.approx(mae(t, p))
        assert r.r2 == pytest.approx(r2_score(t, p))

    def test_as_row(self):
        r = score_report([1.0, 2.0], [1.0, 2.0])
        assert r.as_row() == (0.0, 0.0, 0.0)

    def test_str_contains_metrics(self):
        assert "MAPE" in str(score_report([1.0], [1.0]))
