"""Tests for the DynamicTRR ensemble and the ASCII plot helpers."""

import numpy as np
import pytest

from repro.core import HighRPMConfig
from repro.core.uncertainty import DynamicTRREnsemble
from repro.errors import NotFittedError, ValidationError
from repro.eval.ascii_plot import histogram, sparkline, strip_chart
from repro.hardware import ARM_PLATFORM


@pytest.fixture(scope="module")
def train_bundles(arm_sim, catalog):
    names = ["spec_gcc", "spec_mcf", "hpcc_hpl", "hpcc_stream"]
    return [arm_sim.run(catalog.get(n), duration_s=100) for n in names]


@pytest.fixture(scope="module")
def restoration(train_bundles, small_bundle, ipmi_readings):
    ens = DynamicTRREnsemble(
        HighRPMConfig(miss_interval=10, lstm_iters=120, seed=9), k=3
    )
    ens.fit(train_bundles, p_bottom=ARM_PLATFORM.min_node_power_w,
            p_upper=ARM_PLATFORM.max_node_power_w)
    return ens.restore(small_bundle.pmcs.matrix, ipmi_readings)


class TestEnsemble:
    def test_shapes(self, restoration, small_bundle):
        assert len(restoration) == len(small_bundle)
        assert restoration.members.shape == (3, len(small_bundle))
        assert (restoration.std >= 0).all()

    def test_spread_collapses_at_readings(self, restoration, ipmi_readings):
        measured = restoration.std[ipmi_readings.indices]
        unmeasured_mask = np.ones(len(restoration), dtype=bool)
        unmeasured_mask[ipmi_readings.indices] = False
        assert measured.mean() <= restoration.std[unmeasured_mask].mean()

    def test_interval_ordering(self, restoration):
        lo, hi = restoration.interval(z=2.0)
        assert (lo <= hi).all()

    def test_coverage_monotone_in_z(self, restoration, small_bundle):
        truth = small_bundle.node.values
        assert restoration.coverage(truth, z=4.0) >= restoration.coverage(truth, z=1.0)

    def test_coverage_validates_length(self, restoration):
        with pytest.raises(ValidationError):
            restoration.coverage(np.ones(3))

    def test_needs_two_members(self):
        with pytest.raises(ValidationError):
            DynamicTRREnsemble(k=1)

    def test_restore_before_fit(self, small_bundle, ipmi_readings):
        with pytest.raises(NotFittedError):
            DynamicTRREnsemble(k=2).restore(
                small_bundle.pmcs.matrix, ipmi_readings)

    def test_members_differ(self, restoration):
        assert not np.allclose(restoration.members[0], restoration.members[1])


class TestAsciiPlot:
    def test_sparkline_width(self, rng):
        s = sparkline(rng.uniform(0, 1, 500), width=40)
        assert len(s) == 40

    def test_sparkline_constant_series(self):
        s = sparkline(np.full(100, 5.0), width=20)
        assert s == "▁" * 20

    def test_sparkline_monotone_ramp(self):
        s = sparkline(np.arange(100.0), width=8)
        levels = ["▁▂▃▄▅▆▇█".index(c) for c in s]
        assert levels == sorted(levels)

    def test_sparkline_empty_rejected(self):
        with pytest.raises(ValidationError):
            sparkline(np.empty(0))

    def test_strip_chart_contains_labels(self, rng):
        text = strip_chart({"node": rng.uniform(60, 90, 100),
                            "cpu": rng.uniform(20, 50, 100)})
        assert "node" in text and "cpu" in text and "mean" in text

    def test_strip_chart_empty_rejected(self):
        with pytest.raises(ValidationError):
            strip_chart({})

    def test_histogram_row_count(self, rng):
        text = histogram(rng.normal(80, 5, 1000), bins=7)
        assert len(text.splitlines()) == 7

    def test_histogram_counts_sum(self, rng):
        x = rng.normal(0, 1, 200)
        text = histogram(x, bins=5)
        total = sum(int(line.rsplit(" ", 1)[1]) for line in text.splitlines())
        assert total == 200
