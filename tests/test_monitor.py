"""Tests for energy accounting, power capping, and the monitor service."""

import numpy as np
import pytest

from repro.core import HighRPM, HighRPMConfig
from repro.errors import CappingError, ValidationError
from repro.hardware import ARM_PLATFORM, NodeSimulator
from repro.monitor import (
    CappingPolicy,
    EnergyAccount,
    PowerCapController,
    PowerMonitorService,
    energy_of,
    peak_of,
    run_capped,
)
from repro.types import PowerTrace


class TestEnergyAccount:
    def test_energy_of_constant_trace(self):
        t = PowerTrace(np.full(100, 90.0))
        assert energy_of(t) == pytest.approx(9000.0)
        assert peak_of(t) == 90.0

    def test_account_fields(self):
        t = PowerTrace(np.array([10.0, 20.0, 30.0, 20.0]))
        acc = EnergyAccount.from_trace(t, cap_w=25.0)
        assert acc.peak_w == 30.0
        assert acc.mean_w == pytest.approx(20.0)
        assert acc.time_above_cap_s == 1.0
        assert acc.energy_kj == pytest.approx(0.08)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValidationError):
            EnergyAccount.from_trace(PowerTrace(np.empty(0)))


class TestCappingPolicy:
    def test_validation(self):
        with pytest.raises(ValidationError):
            CappingPolicy(cap_w=0.0)
        with pytest.raises(ValidationError):
            CappingPolicy(cap_w=50.0, reading_interval_s=0)

    def test_unreachable_cap_rejected(self):
        policy = CappingPolicy(cap_w=ARM_PLATFORM.min_node_power_w - 5)
        with pytest.raises(CappingError):
            PowerCapController(ARM_PLATFORM, policy)


class TestPowerCapController:
    def test_downshifts_when_over_cap(self):
        ctl = PowerCapController(ARM_PLATFORM, CappingPolicy(cap_w=70.0))
        assert ctl.current_freq_ghz == 2.2
        ctl(1, np.array([90.0]))  # reading over cap -> step down
        assert ctl.current_freq_ghz == 1.8

    def test_upshifts_when_under_cap(self):
        ctl = PowerCapController(
            ARM_PLATFORM, CappingPolicy(cap_w=70.0, headroom_w=5.0)
        )
        ctl(1, np.array([90.0]))
        assert ctl.current_freq_ghz == 1.8
        ctl(2, np.array([90.0, 50.0]))
        assert ctl.current_freq_ghz == 2.2

    def test_reading_interval_gates_sensing(self):
        policy = CappingPolicy(cap_w=70.0, reading_interval_s=10)
        ctl = PowerCapController(ARM_PLATFORM, policy)
        # overload visible at t=5, but sensing only happens at multiples of 10
        ctl(5, np.array([95.0] * 5))
        assert ctl.current_freq_ghz == 2.2  # not yet seen

    def test_action_interval_gates_actuation(self):
        policy = CappingPolicy(cap_w=70.0, reading_interval_s=1, action_interval_s=30)
        ctl = PowerCapController(ARM_PLATFORM, policy)
        for t in range(1, 29):
            ctl(t, np.full(t, 95.0))
        assert ctl.current_freq_ghz == 2.2  # action gate still closed
        ctl(30, np.full(30, 95.0))
        assert ctl.current_freq_ghz == 1.8

    def test_actions_logged(self):
        ctl = PowerCapController(ARM_PLATFORM, CappingPolicy(cap_w=70.0))
        ctl(1, np.array([95.0]))
        assert ctl.actions == [(1, 1.8)]


class TestRunCapped:
    def test_capping_reduces_energy_and_peak(self, catalog):
        sim = NodeSimulator(ARM_PLATFORM, seed=4)
        w = catalog.get("graph500_bfs")
        # Baseline: same closed-loop path (same activity/condition streams)
        # with the governor pinned at max frequency.
        free = sim.run_controlled(w, lambda t, h: 2.2, duration_s=200)
        policy = CappingPolicy(cap_w=75.0, reading_interval_s=1, action_interval_s=1)
        capped, ctl = run_capped(sim, w, policy, duration_s=200)
        assert capped.node.energy_joules() < free.node.energy_joules()
        assert capped.node.peak_power() <= free.node.peak_power()
        assert len(ctl.actions) > 0

    def test_slow_actions_raise_energy(self, catalog):
        """Fig. 1's direction: AI 1 s -> 30 s costs energy and peak power."""
        sim = NodeSimulator(ARM_PLATFORM, seed=4)
        w = catalog.get("graph500_bfs")
        fast, _ = run_capped(
            sim, w, CappingPolicy(cap_w=75.0, action_interval_s=1), duration_s=240
        )
        slow, _ = run_capped(
            sim, w, CappingPolicy(cap_w=75.0, action_interval_s=30), duration_s=240
        )
        assert slow.node.energy_joules() >= fast.node.energy_joules()


class TestMonitorService:
    @pytest.fixture(scope="class")
    def service(self, arm_sim, catalog):
        names = ["spec_gcc", "spec_mcf", "hpcc_hpl", "hpcc_stream"]
        train = [arm_sim.run(catalog.get(n), duration_s=120) for n in names]
        cfg = HighRPMConfig(lstm_iters=200, srr_iters=1500, seed=5)
        hr = HighRPM(cfg, p_bottom=ARM_PLATFORM.min_node_power_w,
                     p_upper=ARM_PLATFORM.max_node_power_w)
        hr.fit_initial(train)
        return PowerMonitorService(hr, ARM_PLATFORM)

    def test_register_and_observe(self, service, small_bundle):
        service.register_node("n0", seed=1)
        result = service.observe_run("n0", small_bundle, online=False)
        assert len(result) == len(small_bundle)
        assert len(service.log("n0")) == len(small_bundle)
        assert service.log("n0").runs == [small_bundle.workload]

    def test_multi_node_logs_separate(self, service, small_bundle):
        service.register_node("n1", seed=2)
        service.observe_run("n1", small_bundle, online=False)
        assert len(service.log("n1")) == len(small_bundle)

    def test_duplicate_registration_rejected(self, service):
        with pytest.raises(ValidationError):
            service.register_node("n0")

    def test_unknown_node_rejected(self, service, small_bundle):
        with pytest.raises(ValidationError):
            service.observe_run("ghost", small_bundle)
        with pytest.raises(ValidationError):
            service.log("ghost")

    def test_requires_fitted_model(self):
        with pytest.raises(Exception):
            PowerMonitorService(HighRPM(), ARM_PLATFORM)
