"""Unit tests for the calibration layer: transform, estimators, drift
tracker, and the monitor service's calibrate wiring."""

import numpy as np
import pytest

from repro.calib import (
    IDENTITY,
    CalibrationEstimate,
    CompensationTransform,
    DriftConfig,
    DriftTracker,
    estimate_affine,
    estimate_calibration,
    estimate_drift_calibration,
    estimate_lag,
    normalized_cross_correlation,
)
from repro.calib.check import CalibOutcome, CalibReport, CalibSettings, default_scenarios
from repro.errors import SensorOutageError, ValidationError
from repro.faults import ClockJitter, FaultySensor, GainDrift
from repro.monitor import PowerMonitorService
from repro.sensors import IPMISensor, SparseReadings
from repro.sensors.direct import DirectPowerSensor


def truth_signal(n=300):
    t = np.arange(n, dtype=np.float64)
    return 90.0 + 20.0 * np.sin(t / 11.0) + 6.0 * np.sin(t / 29.0)


def sample_feed(truth, interval=10, lag=0, scale=1.0, offset=0.0, start=0):
    """A sparse feed reporting ``scale*truth+offset``, stamped ``lag`` late."""
    n = truth.shape[0]
    stamped = np.arange(start, n, interval, dtype=np.int64)
    source = stamped - lag
    keep = (source >= 0) & (source < n)
    vals = scale * truth[source[keep]] + offset
    return SparseReadings(stamped[keep], vals, interval, n)


class TestCompensationTransform:
    def test_identity_returns_same_object(self):
        r = sample_feed(truth_signal())
        assert IDENTITY.is_identity
        assert IDENTITY.apply(r) is r
        assert CompensationTransform().apply(r) is r

    def test_affine_correction(self):
        r = sample_feed(truth_signal(), scale=1.0)
        t = CompensationTransform(scale=1.5, offset_w=-3.0)
        out = t.apply(r)
        assert out is not r
        np.testing.assert_allclose(out.values, 1.5 * r.values - 3.0)
        np.testing.assert_array_equal(out.indices, r.indices)

    def test_values_floored_at_zero(self):
        r = sample_feed(truth_signal())
        out = CompensationTransform(scale=1.0, offset_w=-1e6).apply(r)
        assert (out.values == 0.0).all()

    def test_lag_shift_drops_out_of_range(self):
        truth = truth_signal()
        r = sample_feed(truth, interval=10, start=0)
        out = CompensationTransform(lag_s=5).apply(r)
        # The first reading (stamped 0) shifts to -5 and is dropped.
        assert len(out) == len(r) - 1
        np.testing.assert_array_equal(out.indices, r.indices[1:] - 5)
        np.testing.assert_array_equal(out.values, r.values[1:])

    def test_emptying_the_feed_raises(self):
        r = sample_feed(truth_signal(50), interval=10)
        with pytest.raises(SensorOutageError):
            CompensationTransform(lag_s=10_000).apply(r)

    def test_schedule_interpolates_between_knots(self):
        r = sample_feed(truth_signal(200), interval=10)
        t = CompensationTransform(
            knots_s=(0, 100), scales=(1.0, 2.0), offsets_w=(0.0, 10.0)
        )
        out = t.apply(r)
        scales = np.interp(r.indices, [0, 100], [1.0, 2.0])
        offsets = np.interp(r.indices, [0, 100], [0.0, 10.0])
        np.testing.assert_allclose(out.values, scales * r.values + offsets)

    def test_validation(self):
        with pytest.raises(ValidationError):
            CompensationTransform(scale=0.0)
        with pytest.raises(ValidationError):
            CompensationTransform(scale=-1.0)
        with pytest.raises(ValidationError):
            CompensationTransform(knots_s=(0, 10), scales=(1.0,), offsets_w=(0.0, 1.0))
        with pytest.raises(ValidationError):
            CompensationTransform(
                knots_s=(10, 10), scales=(1.0, 1.0), offsets_w=(0.0, 0.0)
            )

    def test_does_not_mutate_input(self):
        r = sample_feed(truth_signal())
        idx, vals = r.indices.copy(), r.values.copy()
        CompensationTransform(lag_s=3, scale=1.2, offset_w=1.0).apply(r)
        np.testing.assert_array_equal(r.indices, idx)
        np.testing.assert_array_equal(r.values, vals)

    def test_as_dict_round_trips_fields(self):
        t = CompensationTransform(lag_s=2, scale=1.1, offset_w=-0.5)
        d = t.as_dict()
        assert d["lag_s"] == 2 and d["scale"] == 1.1 and d["offset_w"] == -0.5


class TestEstimators:
    def test_ncc_is_affine_invariant(self):
        a = truth_signal()
        assert normalized_cross_correlation(a, 3.0 * a - 7.0) == pytest.approx(1.0)
        assert normalized_cross_correlation(a, -2.0 * a) == pytest.approx(-1.0)

    def test_ncc_constant_input_is_zero(self):
        a = truth_signal()
        assert normalized_cross_correlation(a, np.full_like(a, 5.0)) == 0.0

    @pytest.mark.parametrize("lag", [-7, -1, 0, 1, 4, 9])
    def test_lag_recovered_exactly(self, lag):
        truth = truth_signal()
        r = sample_feed(truth, lag=lag, scale=1.3, offset=5.0)
        est_lag, corr = estimate_lag(r, truth, max_lag_s=10)
        assert est_lag == lag
        assert corr == pytest.approx(1.0)

    def test_lag_prefers_smallest_magnitude_on_ties(self):
        truth = np.full(200, 50.0)  # constant: every lag correlates 0.0
        r = sample_feed(truth, interval=10)
        assert estimate_lag(r, truth, max_lag_s=8)[0] == 0

    def test_lag_insufficient_overlap_raises(self):
        truth = truth_signal(40)
        r = sample_feed(truth, interval=20)  # two readings only
        with pytest.raises(ValidationError):
            estimate_lag(r, truth, max_lag_s=5)

    def test_affine_recovered_exactly(self):
        truth = truth_signal()
        feed = 1.4 * truth + 9.0
        scale, offset = estimate_affine(feed, truth)
        # truth = scale*feed + offset
        assert scale == pytest.approx(1.0 / 1.4, rel=1e-9)
        assert offset == pytest.approx(-9.0 / 1.4, rel=1e-9)

    def test_affine_constant_feed_falls_back_to_bias(self):
        truth = truth_signal()
        feed = np.full_like(truth, 30.0)
        scale, offset = estimate_affine(feed, truth)
        assert scale == 1.0
        assert offset == pytest.approx(truth.mean() - 30.0)

    def test_estimate_calibration_end_to_end(self):
        truth = truth_signal()
        r = sample_feed(truth, lag=4, scale=1.25, offset=6.0)
        est = estimate_calibration(r, truth, max_lag_s=8)
        assert est.lag_s == 4
        assert est.sensor_gain == pytest.approx(1.25, rel=1e-6)
        assert est.sensor_bias_w == pytest.approx(6.0, abs=1e-6)
        assert est.correlation == pytest.approx(1.0)
        assert est.residual_rmse_w == pytest.approx(0.0, abs=1e-9)
        out = est.transform().apply(r)
        np.testing.assert_allclose(out.values, truth[out.indices], atol=1e-9)

    def test_reference_length_must_match(self):
        truth = truth_signal()
        r = sample_feed(truth)
        with pytest.raises(ValidationError):
            estimate_calibration(r, truth[:-1])

    def test_estimate_as_dict_has_schedule(self):
        truth = truth_signal()
        est = estimate_calibration(sample_feed(truth), truth)
        d = est.as_dict()
        assert {"lag_s", "scale", "offset_w", "n_drift_knots"} <= set(d)


class TestDriftTracker:
    def test_config_validation(self):
        with pytest.raises(ValidationError):
            DriftConfig(window_s=0)
        with pytest.raises(ValidationError):
            DriftConfig(trigger_percentile=120.0)
        with pytest.raises(ValidationError):
            DriftConfig(trigger_fraction=-0.1)
        with pytest.raises(ValidationError):
            DriftConfig(min_pairs=0)

    def test_stable_feed_never_retriggers(self):
        truth = truth_signal(600)
        r = sample_feed(truth, scale=1.2, offset=3.0, interval=5)
        est, tracker = estimate_drift_calibration(
            r, truth, DriftConfig(window_s=100)
        )
        assert tracker.windows >= 4
        assert tracker.refits == 0  # one initial fit, no drift triggers

    def test_drifting_gain_triggers_refits(self):
        truth = truth_signal(600)
        n = truth.shape[0]
        stamped = np.arange(0, n, 5, dtype=np.int64)
        gain = 1.0 + 0.5 * stamped / (n - 1)
        r = SparseReadings(stamped, gain * truth[stamped], 5, n)
        est, tracker = estimate_drift_calibration(
            r, truth, DriftConfig(window_s=100, trigger_fraction=0.02)
        )
        assert tracker.refits >= 2
        assert len(est.knots_s) == tracker.refits + 1
        out = est.transform().apply(r)
        before = np.abs(r.values - truth[r.indices]).mean()
        after = np.abs(out.values - truth[out.indices]).mean()
        assert after < 0.2 * before

    def test_same_inputs_same_schedule(self):
        truth = truth_signal(600)
        r = sample_feed(truth, scale=1.3, interval=5)
        a = estimate_drift_calibration(r, truth)[0]
        b = estimate_drift_calibration(r, truth)[0]
        assert a == b  # frozen dataclass: bit-identical fields


class TestServiceCalibration:
    def test_set_calibration_validates(self, chaos_reference):
        service, _ = chaos_reference
        with pytest.raises(ValidationError):
            service.set_calibration("no-such-node", IDENTITY)
        service.register_node("calib-unit-a", seed=901)
        with pytest.raises(ValidationError):
            service.set_calibration("calib-unit-a", "not a transform")
        t = CompensationTransform(scale=1.1)
        service.set_calibration("calib-unit-a", t)
        assert service.calibration_for("calib-unit-a") is t
        service.set_calibration("calib-unit-a", None)
        assert service.calibration_for("calib-unit-a") is None

    def test_identity_transform_is_bit_neutral(self, chaos_reference):
        reference, bundle = chaos_reference
        plain = PowerMonitorService(reference.model, reference.spec)
        ident = PowerMonitorService(reference.model, reference.spec)
        plain.register_node("calib-eq", seed=902)
        ident.register_node("calib-eq", seed=902)
        ident.set_calibration("calib-eq", IDENTITY)
        a = plain.observe_run("calib-eq", bundle)
        b = ident.observe_run("calib-eq", bundle)
        np.testing.assert_array_equal(a.p_node, b.p_node)
        np.testing.assert_array_equal(a.p_cpu, b.p_cpu)
        np.testing.assert_array_equal(a.provenance, b.provenance)

    def test_calibrate_node_fits_and_registers(self, chaos_reference):
        reference, bundle = chaos_reference
        service = PowerMonitorService(reference.model, reference.spec)
        faults = (ClockJitter(1, drift_s=4), GainDrift(gain_start=1.2))
        for node in ("calib-fit", "calib-run"):
            service.register_node(node, sensor=FaultySensor(
                IPMISensor(reference.spec, seed=903), faults=faults, seed=904,
            ))
        ref = DirectPowerSensor(reference.spec, seed=905).measure_node(bundle)
        est = service.calibrate_node("calib-fit", bundle, ref.values)
        # 4 s injected skew + 1 s IPMI readout delay, +-1 from the unit
        # random jitter biasing the NCC peak.
        assert est.lag_s in (4, 5, 6)
        assert est.sensor_gain == pytest.approx(1.2, rel=0.1)
        assert service.calibration_for("calib-fit") == est.transform()
        service.set_calibration("calib-run", est.transform())
        result = service.observe_run("calib-run", bundle)
        assert result.mode == "dynamic"
        truth = bundle.node.values
        raw_svc = PowerMonitorService(reference.model, reference.spec)
        raw_svc.register_node("calib-raw", sensor=FaultySensor(
            IPMISensor(reference.spec, seed=903), faults=faults, seed=904,
        ))
        raw = raw_svc.observe_run("calib-raw", bundle)
        err_comp = np.abs(result.p_node - truth).mean()
        err_raw = np.abs(raw.p_node - truth).mean()
        assert err_comp < err_raw

    def test_calibrate_unknown_node_raises(self, chaos_reference):
        service, bundle = chaos_reference
        with pytest.raises(ValidationError):
            service.calibrate_node("no-such-node", bundle, bundle.node.values)

    def test_calibration_metrics_published(self, chaos_reference):
        reference, bundle = chaos_reference
        service = PowerMonitorService(reference.model, reference.spec)
        service.register_node("calib-metrics", seed=906)
        ref = DirectPowerSensor(reference.spec, seed=907).measure_node(bundle)
        service.calibrate_node("calib-metrics", bundle, ref.values)
        snap = service.registry.snapshot()
        assert "repro_calib_estimates_total" in snap
        assert "repro_calib_lag_seconds" in snap
        assert "repro_calib_scale" in snap
        # A near-healthy feed still gets compensated (non-identity fit),
        # so the stage counters appear once a run flows through.
        service.observe_run("calib-metrics", bundle)
        snap = service.registry.snapshot()
        assert "repro_calib_runs_total" in snap

    def test_lag_emptied_feed_degrades_to_model_only(self, chaos_reference):
        reference, bundle = chaos_reference
        service = PowerMonitorService(reference.model, reference.spec)
        service.register_node("calib-dead", seed=908)
        service.set_calibration(
            "calib-dead", CompensationTransform(lag_s=10 * len(bundle))
        )
        result = service.observe_run("calib-dead", bundle)
        assert result.mode == "model_only"


class TestCheckHarness:
    def test_default_scenarios_cover_the_battery(self):
        scenarios = default_scenarios(150)
        names = [s.name for s in scenarios]
        assert names == ["jitter", "gain-drift", "affine-bias", "stuck"]
        gated = {s.name: s.gate_ratio for s in scenarios if s.gate_ratio}
        assert gated == {"jitter": 0.5, "gain-drift": 0.5}

    def _outcome(self, name, ratio, gate):
        return CalibOutcome(
            scenario=name, lag_s=1, scale=1.0, offset_w=0.0, n_knots=0,
            correlation=0.99, n_readings=15, mape_raw=10.0, mape_comp=5.0,
            mape_window_raw=10.0, mape_window_comp=ratio * 10.0,
            ratio=ratio, gate_ratio=gate,
            passed=None if gate is None else ratio <= gate,
        )

    def test_report_gate_failures_and_render(self):
        report = CalibReport(
            platform="arm", settings=CalibSettings.smoke(),
            outcomes=[
                self._outcome("jitter", 0.4, 0.5),
                self._outcome("gain-drift", 0.8, 0.5),
                self._outcome("stuck", 0.9, None),
            ],
        )
        assert report.gate_failures() == ["gain-drift"]
        text = report.render()
        assert "gate FAILED: gain-drift" in text
        assert "jitter" in text
        assert report.outcome("stuck").passed is None
        with pytest.raises(KeyError):
            report.outcome("no-such")

    def test_report_to_json_is_loadable(self):
        import json

        report = CalibReport(
            platform="arm", settings=CalibSettings.smoke(),
            outcomes=[self._outcome("jitter", 0.4, 0.5)],
        )
        payload = json.loads(report.to_json())
        assert payload["scenarios"][0]["scenario"] == "jitter"
        assert payload["gate_failures"] == []
