"""Chunked core restoration: StaticTRRStream and OnlineTRRSession.run_chunk.

Bit-identity is the contract: any chunking of a trace must concatenate to
exactly the whole-run result, because the monitor's streaming pipeline and
the fleet front-end both lean on it.
"""

import numpy as np
import pytest

from repro.core import DynamicTRR, HighRPMConfig, StaticTRR
from repro.errors import ValidationError
from repro.hardware import ARM_PLATFORM


@pytest.fixture()
def static_trr():
    return StaticTRR(
        HighRPMConfig(miss_interval=10),
        p_upper=ARM_PLATFORM.max_node_power_w,
        p_bottom=ARM_PLATFORM.min_node_power_w,
    )


@pytest.fixture(scope="module")
def dyn(arm_sim, catalog):
    names = ["spec_gcc", "spec_mcf", "hpcc_hpl", "hpcc_stream"]
    bundles = [arm_sim.run(catalog.get(n), duration_s=100) for n in names]
    model = DynamicTRR(HighRPMConfig(miss_interval=10, lstm_iters=150, seed=4))
    model.fit(bundles, p_bottom=ARM_PLATFORM.min_node_power_w,
              p_upper=ARM_PLATFORM.max_node_power_w)
    return model


def _stream_restore(stream, pmcs, chunk_size):
    parts = []
    for start in range(0, pmcs.shape[0], chunk_size):
        out_start, part = stream.restore_chunk(pmcs[start:start + chunk_size])
        if part.shape[0]:
            assert out_start == sum(p.shape[0] for p in parts)
            parts.append(part)
    _, tail = stream.finish()
    if tail.shape[0]:
        parts.append(tail)
    return np.concatenate(parts)


class TestStaticStream:
    @pytest.mark.parametrize("chunk_size", [1, 7, 64, 10_000])
    def test_chunked_equals_whole_run(
        self, static_trr, small_bundle, ipmi_readings, chunk_size
    ):
        pmcs = small_bundle.pmcs.matrix
        whole = static_trr.restore(pmcs, ipmi_readings)
        stream = static_trr.fit_stream(pmcs[ipmi_readings.indices], ipmi_readings)
        chunked = _stream_restore(stream, pmcs, chunk_size)
        np.testing.assert_array_equal(chunked, whole)

    def test_outputs_lag_by_half_a_miss_interval(
        self, static_trr, small_bundle, ipmi_readings
    ):
        pmcs = small_bundle.pmcs.matrix
        stream = static_trr.fit_stream(pmcs[ipmi_readings.indices], ipmi_readings)
        start, part = stream.restore_chunk(pmcs[:20])
        assert start == 0
        assert stream.samples_fed == 20
        # With miss_interval=10, at most 20 - 10//2 samples can be final.
        assert stream.samples_emitted <= 20 - 5
        assert part.shape[0] == stream.samples_emitted

    def test_precomputed_residual_hat_matches_internal_path(
        self, static_trr, small_bundle, ipmi_readings
    ):
        pmcs = small_bundle.pmcs.matrix
        a = static_trr.fit_stream(pmcs[ipmi_readings.indices], ipmi_readings)
        b = static_trr.fit_stream(pmcs[ipmi_readings.indices], ipmi_readings)
        chunk = pmcs[:40]
        residual_hat = static_trr.res_model_.predict(chunk)
        _, pa = a.restore_chunk(chunk)
        _, pb = b.restore_chunk(chunk, residual_hat=residual_hat)
        np.testing.assert_array_equal(pa, pb)

    def test_residual_hat_shape_is_validated(
        self, static_trr, small_bundle, ipmi_readings
    ):
        pmcs = small_bundle.pmcs.matrix
        stream = static_trr.fit_stream(pmcs[ipmi_readings.indices], ipmi_readings)
        with pytest.raises(ValidationError, match="residual_hat has shape"):
            stream.restore_chunk(pmcs[:10], residual_hat=np.zeros(3))

    def test_overfeeding_the_trace_is_rejected(
        self, static_trr, small_bundle, ipmi_readings
    ):
        pmcs = small_bundle.pmcs.matrix
        stream = static_trr.fit_stream(pmcs[ipmi_readings.indices], ipmi_readings)
        stream.restore_chunk(pmcs)
        with pytest.raises(ValidationError, match="overruns"):
            stream.restore_chunk(pmcs[:1])

    def test_fit_stream_row_count_mismatch(
        self, static_trr, small_bundle, ipmi_readings
    ):
        with pytest.raises(ValidationError, match="one PMC row per reading"):
            static_trr.fit_stream(
                small_bundle.pmcs.matrix[:3], ipmi_readings
            )


class TestOnlineChunks:
    @pytest.mark.parametrize("chunk_size", [1, 13, 500])
    def test_chunked_equals_whole_run(
        self, dyn, small_bundle, ipmi_readings, chunk_size
    ):
        pmcs = small_bundle.pmcs.matrix
        whole = dyn.session(retain=False).run(pmcs, ipmi_readings)
        session = dyn.session(retain=False)
        parts = [
            session.run_chunk(pmcs[s:s + chunk_size], ipmi_readings)
            for s in range(0, pmcs.shape[0], chunk_size)
        ]
        np.testing.assert_array_equal(np.concatenate(parts), whole)

    def test_model_only_chunked_equals_whole_run(self, dyn, small_bundle):
        pmcs = small_bundle.pmcs.matrix
        whole = dyn.session(retain=False).run(pmcs, None)
        session = dyn.session(retain=False)
        parts = [session.run_chunk(pmcs[s:s + 37], None)
                 for s in range(0, pmcs.shape[0], 37)]
        np.testing.assert_array_equal(np.concatenate(parts), whole)

    def test_unretained_session_state_is_bounded(self, dyn, small_bundle):
        session = dyn.session(retain=False)
        pmcs = small_bundle.pmcs.matrix
        for s in range(0, pmcs.shape[0], 50):
            session.run_chunk(pmcs[s:s + 50], None)
        # Feature deques are capped at one miss-interval window and the
        # per-step estimates are not accumulated.
        assert len(session._pmcs) <= dyn.config.miss_interval
        assert session.estimates.shape == (0,)
        # The sample clock still reflects the whole trace.
        assert session.t == pmcs.shape[0]

    def test_retained_session_keeps_the_full_trace(self, dyn, small_bundle):
        session = dyn.session(retain=True)
        pmcs = small_bundle.pmcs.matrix[:60]
        session.run_chunk(pmcs, None)
        assert session.estimates.shape == (60,)
