"""Tests for the dataflow layer, the project symbol index, and the lint
front-end features built on them (SARIF output, ``--changed``)."""

from __future__ import annotations

import ast
import json
import shutil
import subprocess
import textwrap
from pathlib import Path

import pytest

from repro.analysis import LintConfig, LintEngine
from repro.analysis.cli import main as lint_main
from repro.analysis.dataflow import (
    DICT,
    LIST,
    NDARRAY,
    SCALAR,
    SET,
    UNKNOWN,
    ModuleDataflow,
)
from repro.analysis.engine import parse_suppressions
from repro.analysis.reporters import SARIF_VERSION, render_sarif
from repro.analysis.symbols import ProjectIndex

FIXTURES = Path(__file__).parent / "fixtures" / "lint"


def flow_of(src: str) -> ModuleDataflow:
    return ModuleDataflow(ast.parse(textwrap.dedent(src)))


def func_scope(flow: ModuleDataflow, name: str):
    for node, scope in flow.scopes.items():
        if getattr(node, "name", None) == name:
            return scope
    raise AssertionError(f"no scope {name!r}")


class TestProvenance:
    def test_container_literals_and_builtins(self):
        flow = flow_of(
            """
            def f():
                a = []
                b = {}
                c = {1, 2}
                d = set()
                e = sorted(c)
                n = 3
            """
        )
        scope = func_scope(flow, "f")
        assert scope.provenance("a") == LIST
        assert scope.provenance("b") == DICT
        assert scope.provenance("c") == SET
        assert scope.provenance("d") == SET
        assert scope.provenance("e") == LIST
        assert scope.provenance("n") == SCALAR

    def test_numpy_calls_and_contagion(self):
        flow = flow_of(
            """
            import numpy as np

            def f(x: np.ndarray):
                y = np.zeros(4)
                z = x * 2.0 + y
                mask = x > 0.5
                view = x[1:3]
                row = x[0]
            """
        )
        scope = func_scope(flow, "f")
        assert scope.provenance("x") == NDARRAY
        assert scope.provenance("y") == NDARRAY
        assert scope.provenance("z") == NDARRAY
        assert scope.provenance("mask") == NDARRAY
        assert scope.provenance("view") == NDARRAY
        assert scope.provenance("row") == UNKNOWN  # row or element: unknown

    def test_annotation_tags_for_containers(self):
        flow = flow_of(
            """
            def f(readings: "set[float]", order: "list[int]"):
                pass
            """
        )
        scope = func_scope(flow, "f")
        assert scope.provenance("readings") == SET
        assert scope.provenance("order") == LIST

    def test_conflicting_assignments_join_to_unknown(self):
        flow = flow_of(
            """
            import numpy as np

            def f(flag):
                x = np.zeros(3)
                if flag:
                    x = [1, 2, 3]
            """
        )
        assert func_scope(flow, "f").provenance("x") == UNKNOWN

    def test_length_tracking_through_names(self):
        flow = flow_of(
            """
            import numpy as np

            def f(pmcs: np.ndarray):
                n = pmcs.shape[0]
                m = len(pmcs)
            """
        )
        scope = func_scope(flow, "f")
        assert scope.length_source("n") == "pmcs"
        assert scope.length_source("m") == "pmcs"


class TestLoopClassification:
    def classify(self, src: str) -> "list[bool]":
        flow = flow_of(src)
        loops = [n for n in ast.walk(flow.tree) if isinstance(n, ast.For)]
        return [flow.scope_for(lp).is_sample_loop(lp) for lp in loops]

    def test_range_over_extent_is_per_sample(self):
        assert self.classify(
            """
            import numpy as np

            def f(x: np.ndarray):
                for i in range(x.shape[0]):
                    pass
                for i in range(len(x)):
                    pass
            """
        ) == [True, True]

    def test_stepped_range_is_a_chunk_loop(self):
        assert self.classify(
            """
            import numpy as np

            def f(x: np.ndarray, chunk: int):
                for start in range(0, x.shape[0], chunk):
                    pass
            """
        ) == [False]

    def test_direct_and_wrapped_ndarray_iteration(self):
        assert self.classify(
            """
            import numpy as np

            def f(x: np.ndarray, items):
                for v in x:
                    pass
                for i, v in enumerate(x):
                    pass
                for v in items:
                    pass
            """
        ) == [True, True, False]

    def test_loop_invariance_uses_the_loop_write_set(self):
        flow = flow_of(
            """
            import numpy as np

            def f(w: np.ndarray, reps: int):
                acc = 0.0
                for i in range(reps):
                    acc += float(np.sum(w[0:3]))
                    moving = w[i:i + 2]
            """
        )
        loop = next(n for n in ast.walk(flow.tree) if isinstance(n, ast.For))
        subs = {
            ast.unparse(n): n
            for n in ast.walk(loop) if isinstance(n, ast.Subscript)
        }
        invariant, moving = subs["w[0:3]"], subs["w[i:i + 2]"]
        assert flow.is_loop_invariant(invariant, loop)
        assert not flow.is_loop_invariant(moving, loop)


class TestProjectIndex:
    def test_cross_file_stage_resolution(self):
        base = ast.parse("class Stage:\n    pass\n")
        mid = ast.parse("from repro.stream.stages import Stage\n\nclass Mid(Stage):\n    pass\n")
        leaf = ast.parse("from repro.stream.mid import Mid\n\nclass Leaf(Mid):\n    pass\n")
        index = ProjectIndex.build([
            ("repro.stream.stages", base),
            ("repro.stream.mid", mid),
            ("repro.monitor.custom", leaf),
        ])
        leaf_cls = next(n for n in ast.walk(leaf) if isinstance(n, ast.ClassDef))
        assert index.is_subclass_of(leaf_cls, "Stage", "repro.monitor.custom")
        assert not index.is_subclass_of(leaf_cls, "Sink", "repro.monitor.custom")

    def test_imported_mutable_global_resolves_to_origin(self):
        owner = ast.parse("_CACHE = {}\nLIMIT = 3\n")
        user = ast.parse("from repro.faults.state import _CACHE\n")
        index = ProjectIndex.build([
            ("repro.faults.state", owner),
            ("repro.monitor.user", user),
        ])
        origin = index.mutable_global_origin("repro.monitor.user", "_CACHE")
        assert origin == ("repro.faults.state", "dict")
        # scalars are not mutable state
        assert index.mutable_global_origin("repro.faults.state", "LIMIT") is None


class TestSuppressionDirectives:
    def test_reason_and_unknown_flags(self):
        sup = parse_suppressions(
            "x = 1  # repro-lint: disable=RL004 — frozen copy, never shared\n"
            "y = 2  # repro-lint: disable=RL004\n"
            "z = 3  # repro-lint: disable=RL999 — typo\n"
        )
        assert [d.has_reason for d in sup.directives] == [True, False, True]
        assert [d.known for d in sup.directives] == [True, True, False]
        assert sup.directives[0].reason == "frozen copy, never shared"

    def test_unknown_rule_suppresses_nothing(self):
        sup = parse_suppressions("x = 1  # repro-lint: disable=RL999 — typo\n")
        assert sup.by_line == {}
        assert sup.file_level == set()


class TestBitIdentityConfig:
    def test_module_list_is_overridable(self, tmp_path):
        dest = tmp_path / "repro" / "attribution" / "bad_matmul.py"
        dest.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(FIXTURES / "matmul_violation.py", dest)
        # attribution is outside the default contract surface...
        assert LintEngine(LintConfig()).lint_file(dest) == []
        # ...and inside it once the option pulls the module in.
        cfg = LintConfig(rule_options={
            "bit-identity-matmul": {"modules": ["repro.attribution"]},
        })
        diags = LintEngine(cfg).lint_file(dest)
        assert [d.rule_id for d in diags] == ["RL201"] * 3


class TestSarif:
    def test_schema_shape(self, tmp_path):
        dest = tmp_path / "repro" / "perf" / "bad_matmul.py"
        dest.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(FIXTURES / "matmul_violation.py", dest)
        diags = LintEngine(LintConfig()).lint_file(dest)
        payload = json.loads(render_sarif(diags, files_checked=1))
        assert payload["version"] == SARIF_VERSION
        run = payload["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert "RL201" in rule_ids and "RL001" in rule_ids
        assert len(run["results"]) == len(diags) == 3
        for res in run["results"]:
            assert res["ruleId"] == "RL201"
            loc = res["locations"][0]["physicalLocation"]
            assert loc["artifactLocation"]["uri"].endswith("bad_matmul.py")
            assert loc["region"]["startLine"] > 0

    def test_cli_writes_sarif_to_output_file(self, tmp_path, capsys):
        dest = tmp_path / "repro" / "perf" / "bad_matmul.py"
        dest.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(FIXTURES / "matmul_violation.py", dest)
        out = tmp_path / "lint.sarif"
        rc = lint_main([str(tmp_path), "--format", "sarif", "--output", str(out)])
        assert rc == 1
        payload = json.loads(out.read_text())
        assert payload["version"] == SARIF_VERSION
        assert capsys.readouterr().out == ""


@pytest.mark.skipif(shutil.which("git") is None, reason="git unavailable")
class TestChangedMode:
    def _init_repo(self, root: Path) -> None:
        def git(*argv: str) -> None:
            subprocess.run(
                ["git", *argv], cwd=root, check=True, capture_output=True,
                env={"GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
                     "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t",
                     "HOME": str(root), "PATH": "/usr/bin:/bin:/usr/local/bin"},
            )
        git("init", "-q")
        git("add", "-A")
        git("commit", "-q", "-m", "seed")

    def test_changed_limits_findings_to_touched_files(self, tmp_path, capsys, monkeypatch):
        pkg = tmp_path / "repro" / "perf"
        pkg.mkdir(parents=True)
        shutil.copy(FIXTURES / "matmul_violation.py", pkg / "committed.py")
        self._init_repo(tmp_path)
        shutil.copy(FIXTURES / "set_order_violation.py", pkg / "fresh.py")
        monkeypatch.chdir(tmp_path)

        rc = lint_main([str(tmp_path), "--changed"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "RL202" in out  # the untracked file is linted
        assert "RL201" not in out  # the committed one is skipped

        rc = lint_main([str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "RL201" in out and "RL202" in out  # full run sees both

    def test_changed_outside_git_is_a_usage_error(self, tmp_path, capsys, monkeypatch):
        (tmp_path / "clean.py").write_text("x = 1\n")
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("GIT_DIR", str(tmp_path / "absent-git"))
        rc = lint_main([str(tmp_path), "--changed"])
        assert rc == 2
        assert "--changed" in capsys.readouterr().err
