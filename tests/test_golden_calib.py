"""Golden calibration regression: fixed-seed compensation vs stored traces.

The fixture (``tests/fixtures/golden_calib.npz``, written by
``scripts/make_golden_monitor.py``) pins the full calibration path on one
structurally-faulted feed: the faulted readings, the drift-fitted
transform, the compensated readings (**bitwise** — transform arithmetic is
pure elementwise numpy), and the compensated observation's restored
traces. Any behavioural change in the estimators, drift tracker, transform
or calibrate stage moves these numbers. If a change *intends* to move
them, regenerate the fixture with the script and commit both together.
"""

import pathlib

import numpy as np
import pytest

from repro.calib.golden import golden_calib_traces
from repro.ml.metrics import mape

GOLDEN_PATH = pathlib.Path(__file__).parent / "fixtures" / "golden_calib.npz"

# Restored traces run through the LSTM/MLP stack, so they get the same
# BLAS-tolerant bounds as the golden monitor fixture; the calibration
# arithmetic itself is pinned exactly.
RTOL, ATOL = 1e-3, 1e-2

#: Keys whose regenerated values must match the fixture bit-for-bit.
BITWISE_KEYS = (
    "faulted_indices", "faulted_values",
    "compensated_indices", "compensated_values",
    "transform_lag_s", "transform_scale", "transform_offset_w",
    "transform_knots_s", "transform_scales", "transform_offsets_w",
)


@pytest.fixture(scope="module")
def golden():
    assert GOLDEN_PATH.exists(), (
        f"{GOLDEN_PATH} missing - run scripts/make_golden_monitor.py"
    )
    with np.load(GOLDEN_PATH) as data:
        return {k: data[k] for k in data.files}


@pytest.fixture(scope="module")
def regenerated(chaos_reference):
    return golden_calib_traces(reference=chaos_reference)


def test_fixture_is_complete(golden):
    expected = set(BITWISE_KEYS) | {
        "truth_p_node", "reference_p_node",
        "comp_p_node", "comp_p_cpu", "comp_p_mem", "comp_provenance",
    }
    assert set(golden) == expected


@pytest.mark.parametrize("key", BITWISE_KEYS)
def test_calibration_path_is_bitwise_stable(golden, regenerated, key):
    np.testing.assert_array_equal(
        regenerated[key], golden[key],
        err_msg=f"{key} drifted bitwise from the golden fixture "
                "(regenerate via scripts/make_golden_monitor.py if intended)",
    )


@pytest.mark.parametrize("channel", ["p_node", "p_cpu", "p_mem"])
def test_compensated_restoration_matches(golden, regenerated, channel):
    np.testing.assert_allclose(
        regenerated[f"comp_{channel}"], golden[f"comp_{channel}"],
        rtol=RTOL, atol=ATOL,
    )


def test_provenance_matches_exactly(golden, regenerated):
    np.testing.assert_array_equal(
        regenerated["comp_provenance"], golden["comp_provenance"]
    )


def test_fixture_semantics(golden):
    # The injected error was 6 s skew + 1 s IPMI readout delay; the unit
    # random jitter can bias the NCC peak by one tick either way.
    lag = int(golden["transform_lag_s"])
    assert 6 <= lag <= 8
    # Drift tracking fitted at least one window.
    assert golden["transform_knots_s"].shape[0] >= 1
    # Compensation moved every surviving timestamp ``lag`` ticks earlier.
    n_dropped = golden["faulted_indices"].shape[0] \
        - golden["compensated_indices"].shape[0]
    assert 0 <= n_dropped <= 2
    kept = golden["faulted_indices"][n_dropped:]
    np.testing.assert_array_equal(golden["compensated_indices"], kept - lag)
    # Compensated readings sit closer to the truth than the faulted ones.
    truth = golden["truth_p_node"]
    err_faulted = mape(truth[golden["faulted_indices"]],
                       golden["faulted_values"])
    err_comp = mape(truth[golden["compensated_indices"]],
                    golden["compensated_values"])
    assert err_comp < 0.5 * err_faulted
