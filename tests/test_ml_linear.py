"""Tests for the linear model family."""

import numpy as np
import pytest

from repro.errors import NotFittedError
from repro.ml import (
    LassoRegression,
    LinearRegression,
    RidgeRegression,
    SGDRegressor,
    rmse,
)


@pytest.fixture()
def linear_data(rng):
    X = rng.normal(size=(300, 5))
    w = np.array([2.0, -1.0, 0.5, 0.0, 3.0])
    y = X @ w + 1.5 + 0.01 * rng.normal(size=300)
    return X, y, w


class TestLinearRegression:
    def test_recovers_coefficients(self, linear_data):
        X, y, w = linear_data
        m = LinearRegression().fit(X, y)
        np.testing.assert_allclose(m.coef_, w, atol=0.02)
        assert m.intercept_ == pytest.approx(1.5, abs=0.02)

    def test_no_intercept(self, linear_data):
        X, y, _ = linear_data
        m = LinearRegression(fit_intercept=False).fit(X, y)
        assert m.intercept_ == 0.0

    def test_rank_deficient_is_stable(self, rng):
        x = rng.normal(size=(50, 1))
        X = np.column_stack([x, x, x])  # perfectly collinear
        y = x.ravel() * 3.0
        m = LinearRegression().fit(X, y)
        assert np.isfinite(m.predict(X)).all()
        assert rmse(y, m.predict(X)) < 1e-8

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            LinearRegression().predict(np.ones((2, 2)))


class TestRidge:
    def test_matches_ols_at_zero_alpha(self, linear_data):
        X, y, _ = linear_data
        ols = LinearRegression().fit(X, y)
        ridge = RidgeRegression(alpha=0.0).fit(X, y)
        np.testing.assert_allclose(ridge.coef_, ols.coef_, atol=1e-8)

    def test_shrinks_with_alpha(self, linear_data):
        X, y, _ = linear_data
        small = RidgeRegression(alpha=0.1).fit(X, y)
        large = RidgeRegression(alpha=1e4).fit(X, y)
        assert np.linalg.norm(large.coef_) < np.linalg.norm(small.coef_)

    def test_intercept_not_penalised(self, rng):
        y = rng.normal(100.0, 0.1, size=60)
        X = rng.normal(size=(60, 2))
        m = RidgeRegression(alpha=1e6).fit(X, y)
        assert m.intercept_ == pytest.approx(100.0, abs=0.5)


class TestLasso:
    def test_sparsifies(self, linear_data):
        X, y, w = linear_data
        m = LassoRegression(alpha=0.05).fit(X, y)
        # the truly-zero coefficient should be (near) zero
        assert abs(m.coef_[3]) < 0.05

    def test_zero_alpha_close_to_ols(self, linear_data):
        X, y, w = linear_data
        m = LassoRegression(alpha=1e-8, max_iter=3000).fit(X, y)
        np.testing.assert_allclose(m.coef_, w, atol=0.05)

    def test_huge_alpha_kills_all(self, linear_data):
        X, y, _ = linear_data
        m = LassoRegression(alpha=1e4).fit(X, y)
        np.testing.assert_allclose(m.coef_, 0.0, atol=1e-10)

    def test_converges(self, linear_data):
        X, y, _ = linear_data
        m = LassoRegression(alpha=0.01).fit(X, y)
        assert m.n_iter_ < m.max_iter


class TestSGD:
    def test_fits_scaled_data(self, linear_data):
        X, y, _ = linear_data
        m = SGDRegressor(max_iter=5000, random_state=0).fit(X, y)
        assert rmse(y, m.predict(X)) < 0.4

    def test_deterministic_given_seed(self, linear_data):
        X, y, _ = linear_data
        a = SGDRegressor(max_iter=500, random_state=1).fit(X, y).predict(X)
        b = SGDRegressor(max_iter=500, random_state=1).fit(X, y).predict(X)
        np.testing.assert_allclose(a, b)

    def test_get_set_params_roundtrip(self):
        m = SGDRegressor(eta0=0.5)
        params = m.get_params()
        assert params["eta0"] == 0.5
        m.set_params(eta0=0.1)
        assert m.eta0 == 0.1
