"""Equivalence suite for the compiled flat-array inference layer.

The compiled predictors are only allowed to be *fast* — every output must
match the reference implementation (the seed's per-sample object walk /
unfused MLP forward). Tree-family paths must be bit-identical; the fused
MLP reassociates its affine folds, so it gets a tight float tolerance.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NotFittedError
from repro.ml import (
    DecisionTreeRegressor,
    GradientBoostingRegressor,
    LinearRegression,
    MLPRegressor,
    RandomForestRegressor,
)
from repro.perf import (
    CompiledForest,
    CompiledMLP,
    CompiledTree,
    compile_forest,
    compile_mlp,
    compile_model,
    compile_tree,
    precompile,
)


@st.composite
def tree_problems(draw):
    """A seeded (train, query) regression problem plus tree hyperparameters.

    Queries are drawn wider than the training box so descents exercise
    out-of-range thresholds, and small sizes force degenerate shapes.
    """
    seed = draw(st.integers(0, 2**31 - 1))
    n = draw(st.integers(5, 120))
    d = draw(st.integers(1, 6))
    max_depth = draw(st.sampled_from([1, 2, 5, None]))
    min_leaf = draw(st.integers(1, 4))
    n_query = draw(st.integers(1, 80))
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1.0, 1.0, size=(n, d))
    y = np.sin(2.0 * X[:, 0]) + rng.normal(0.0, 0.3, size=n)
    Xq = rng.uniform(-1.3, 1.3, size=(n_query, d))
    return X, y, Xq, max_depth, min_leaf


class TestTreeEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(tree_problems())
    def test_tree_bit_identical(self, problem):
        X, y, Xq, max_depth, min_leaf = problem
        tree = DecisionTreeRegressor(max_depth=max_depth, min_samples_leaf=min_leaf)
        tree.fit(X, y)
        assert np.array_equal(tree.predict(Xq), tree._predict_walk(Xq))

    @settings(max_examples=15, deadline=None)
    @given(tree_problems())
    def test_forest_bit_identical(self, problem):
        X, y, Xq, max_depth, min_leaf = problem
        forest = RandomForestRegressor(
            n_estimators=4, max_depth=max_depth, min_samples_leaf=min_leaf,
            random_state=0,
        ).fit(X, y)
        assert np.array_equal(forest.predict(Xq), forest._predict_walk(Xq))

    @settings(max_examples=15, deadline=None)
    @given(tree_problems())
    def test_boosting_bit_identical(self, problem):
        X, y, Xq, max_depth, _ = problem
        boost = GradientBoostingRegressor(
            n_estimators=4, max_depth=max_depth or 3, random_state=0,
        ).fit(X, y)
        assert np.array_equal(boost.predict(Xq), boost._predict_walk(Xq))

    def test_root_only_tree(self, rng):
        # Constant target: no split improves SSE, so the tree is one leaf.
        X = rng.uniform(size=(30, 3))
        tree = DecisionTreeRegressor().fit(X, np.full(30, 2.5))
        compiled = compile_tree(tree)
        assert compiled.max_depth == 0
        Xq = rng.uniform(size=(7, 3))
        np.testing.assert_array_equal(tree.predict(Xq), np.full(7, 2.5))
        assert np.array_equal(tree.predict(Xq), tree._predict_walk(Xq))

    def test_single_sample_batch(self, rng):
        X = rng.uniform(size=(60, 2))
        tree = DecisionTreeRegressor().fit(X, X[:, 0])
        q = rng.uniform(size=(1, 2))
        assert np.array_equal(tree.predict(q), tree._predict_walk(q))

    def test_batch_size_change_reuses_estimator(self, rng):
        # The cached workspace is keyed by batch size; switching sizes must
        # rebuild it, not corrupt the frontier.
        X = rng.uniform(size=(100, 3))
        forest = RandomForestRegressor(n_estimators=3, random_state=1).fit(X, X[:, 0])
        for nq in (50, 3, 64, 1, 50):
            Xq = rng.uniform(size=(nq, 3))
            assert np.array_equal(forest.predict(Xq), forest._predict_walk(Xq))

    def test_nan_feature_follows_walk(self, rng):
        # A failed `<=` sends the object walk right; the kernel must agree.
        X = rng.uniform(size=(80, 2))
        tree = DecisionTreeRegressor().fit(X, X[:, 0] + X[:, 1])
        Xq = rng.uniform(size=(10, 2))
        Xq[3, 0] = np.nan
        Xq[7, 1] = np.nan
        assert np.array_equal(tree.predict(Xq), tree._predict_walk(Xq))


class TestEnsembleReductions:
    def test_staged_predict_matches_walk_stages(self, rng):
        X = rng.uniform(size=(150, 4))
        y = X @ np.array([1.0, -1.0, 0.5, 0.0]) + rng.normal(0, 0.1, 150)
        boost = GradientBoostingRegressor(n_estimators=6, random_state=2).fit(X, y)
        Xq = rng.uniform(size=(40, 4))
        # Reference stages: sequential shrinkage accumulation of tree walks.
        expected = np.full(40, boost.init_)
        stages = list(boost.staged_predict(Xq))
        assert len(stages) == 6
        for tree, stage in zip(boost.estimators_, stages):
            expected = expected + boost.learning_rate * tree._predict_walk(Xq)
            assert np.array_equal(stage, expected)

    def test_leaf_values_shape(self, rng):
        X = rng.uniform(size=(80, 3))
        forest = RandomForestRegressor(n_estimators=5, random_state=0).fit(X, X[:, 0])
        values = compile_forest(forest).leaf_values(rng.uniform(size=(11, 3)))
        assert values.shape == (5, 11)

    def test_empty_ensemble_rejected(self):
        with pytest.raises(NotFittedError):
            CompiledForest([])


class TestMLPEquivalence:
    @pytest.mark.parametrize("activation", ["relu", "tanh"])
    def test_fused_forward_close(self, rng, activation):
        X = rng.normal(size=(200, 3)) * np.array([1e6, 1.0, 1e-3])
        y = X[:, 1] + rng.normal(0, 0.1, 200)
        mlp = MLPRegressor(hidden_layer_sizes=(16, 8), activation=activation,
                           max_iter=150, random_state=0).fit(X, y)
        Xq = rng.normal(size=(50, 3)) * np.array([1e6, 1.0, 1e-3])
        ref = mlp._predict_reference(Xq)
        np.testing.assert_allclose(mlp.predict(Xq), ref, rtol=1e-10, atol=1e-9)

    def test_multi_output_shape_and_value(self, rng):
        X = rng.normal(size=(120, 4))
        Y = np.column_stack([X[:, 0], X[:, 1] * 2.0])
        mlp = MLPRegressor(hidden_layer_sizes=8, max_iter=100, random_state=0).fit(X, Y)
        out = mlp.predict(X)
        assert out.shape == (120, 2)
        np.testing.assert_allclose(out, mlp._predict_reference(X), rtol=1e-10, atol=1e-9)

    def test_buffer_reuse_across_batches(self, rng):
        X = rng.normal(size=(100, 2))
        mlp = MLPRegressor(hidden_layer_sizes=8, max_iter=80, random_state=0)
        mlp.fit(X, X[:, 0])
        for nq in (30, 7, 30, 100):
            Xq = rng.normal(size=(nq, 2))
            np.testing.assert_allclose(
                mlp.predict(Xq), mlp._predict_reference(Xq), rtol=1e-10, atol=1e-9
            )


class TestCacheInvalidation:
    def test_refit_clears_compiled_tree(self, rng):
        X = rng.uniform(size=(80, 2))
        tree = DecisionTreeRegressor().fit(X, X[:, 0])
        Xq = rng.uniform(size=(20, 2))
        tree.predict(Xq)  # build + cache
        assert tree._compiled is not None
        tree.fit(X, -X[:, 0])  # retrain on a different target
        assert tree._compiled is None
        assert np.array_equal(tree.predict(Xq), tree._predict_walk(Xq))

    def test_warm_start_clears_compiled_mlp(self, rng):
        X = rng.normal(size=(100, 2))
        mlp = MLPRegressor(hidden_layer_sizes=8, max_iter=60, random_state=0)
        mlp.fit(X, X[:, 0])
        mlp.predict(X)
        assert mlp._compiled is not None
        mlp.partial_fit(X, X[:, 0], n_steps=20)
        np.testing.assert_allclose(
            mlp.predict(X), mlp._predict_reference(X), rtol=1e-10, atol=1e-9
        )


class TestCompileAPI:
    def test_compile_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            compile_tree(DecisionTreeRegressor())
        with pytest.raises(NotFittedError):
            compile_mlp(MLPRegressor())

    def test_compile_model_dispatch(self, rng):
        X = rng.uniform(size=(50, 2))
        y = X[:, 0]
        tree = DecisionTreeRegressor().fit(X, y)
        mlp = MLPRegressor(hidden_layer_sizes=4, max_iter=30, random_state=0).fit(X, y)
        assert isinstance(compile_model(tree), CompiledTree)
        assert isinstance(compile_model(mlp), CompiledMLP)

    def test_compile_model_unsupported_raises(self, rng):
        X = rng.uniform(size=(50, 2))
        lin = LinearRegression().fit(X, X[:, 0])
        with pytest.raises(NotFittedError):
            compile_model(lin)

    def test_precompile_counts_and_skips(self, rng):
        X = rng.uniform(size=(50, 2))
        y = X[:, 0]
        tree = DecisionTreeRegressor().fit(X, y)
        lin = LinearRegression().fit(X, y)
        unfitted = DecisionTreeRegressor()
        assert precompile(tree, lin, unfitted) == 1
        assert tree._compiled is not None
