"""HTTP surface of the fleet daemon: /metrics, /healthz, /stream, drain.

One module-scoped daemon (threads, ephemeral port, one injected dead-feed
node, bounded runs) serves most tests; the SIGTERM drain contract gets its
own subprocess running the real ``python -m repro serve`` entry point.
"""

import http.client
import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.obs import parse_prometheus
from repro.serve import FleetDaemon, ServeConfig
from repro.stream import iter_jsonl

FAULT_NODE = "node3"


@pytest.fixture(scope="module")
def daemon(serve_model, tmp_path_factory):
    """A drained 4-node / 2-shard daemon whose HTTP surface is still up."""
    ndjson = tmp_path_factory.mktemp("serve") / "stream.jsonl"
    config = ServeConfig(
        nodes=4, shards=2, runs=1, run_seconds=40, chunk_size=16,
        keep_results=True, port=0, ndjson=str(ndjson),
        fault_nodes={FAULT_NODE: "dead-feed"},
    )
    d = FleetDaemon(config, model=serve_model)
    d.start()
    assert d.wait(timeout=180), "daemon failed to drain"
    yield d
    d.stop()


def _get(daemon, path: str):
    host, port = daemon.address
    return urllib.request.urlopen(f"http://{host}:{port}{path}", timeout=30)


def test_metrics_parses_and_merges_shard_registries(daemon):
    with _get(daemon, "/metrics") as resp:
        assert resp.status == 200
        assert resp.headers["Content-Type"].startswith("text/plain")
        families = parse_prometheus(resp.read().decode())
    runs = {s["labels"]["node"]: s["value"]
            for s in families["repro_monitor_runs_total"]["samples"]}
    # every node reported one run, across both shard registries
    assert set(runs) == {"node0", "node1", "node2", FAULT_NODE}
    assert all(v == 1.0 for v in runs.values())
    # colliding per-provenance counters summed into fleet totals
    assert "repro_monitor_samples_total" in families
    # the daemon's own registry rides along in the merge
    assert "repro_serve_events_total" in families
    assert "repro_serve_merge_latency_seconds" in families
    kinds = {s["labels"]["kind"]
             for s in families["repro_serve_events_total"]["samples"]}
    assert {"chunk", "end_run", "state", "done"} <= kinds


def test_healthz_reflects_injected_shard_fault(daemon):
    with _get(daemon, "/healthz") as resp:
        assert resp.status == 200
        payload = json.load(resp)
    assert payload["status"] == "degraded"
    assert payload["drained"] is True
    assert payload["outage_nodes"] == 1
    shard = f"s{daemon.config.shard_of(3)}"
    nodes = payload["shards"][shard]["nodes"]
    assert nodes[FAULT_NODE]["status"] == "outage"
    healthy = {
        node_id: state
        for info in payload["shards"].values()
        for node_id, state in info["nodes"].items()
        if node_id != FAULT_NODE
    }
    assert all(state["status"] == "healthy" for state in healthy.values())
    assert all(info["state"] == "drained"
               for info in payload["shards"].values())


def test_stream_ndjson_round_trips_to_monitor_results(daemon):
    """Replayed /stream lines reassemble bitwise to the MonitorResults."""
    host, port = daemon.address
    conn = http.client.HTTPConnection(host, port, timeout=60)
    conn.request("GET", "/stream")
    resp = conn.getresponse()
    assert resp.status == 200
    assert resp.getheader("Content-Type") == "application/x-ndjson"
    records = [json.loads(line) for line in resp.read().splitlines()]
    conn.close()
    assert {r["event"] for r in records} == {"chunk", "end_run"}
    for node_id, (result,) in daemon.results.items():
        chunks = sorted(
            (r for r in records
             if r["event"] == "chunk" and r["node_id"] == node_id),
            key=lambda r: r["seq"],
        )
        assert [r["start"] for r in chunks] == \
            list(range(0, len(result), daemon.config.chunk_size))
        for channel in ("p_node", "p_cpu", "p_mem"):
            streamed = np.concatenate(
                [np.asarray(r[channel], dtype=np.float64) for r in chunks]
            )
            np.testing.assert_array_equal(
                streamed, getattr(result, channel), err_msg=f"{node_id} {channel}"
            )
        provenance = np.concatenate(
            [np.asarray(r["provenance"]) for r in chunks]
        )
        np.testing.assert_array_equal(provenance, result.provenance)
        assert chunks[-1]["mode"] == result.mode


def test_ndjson_file_matches_the_stream_contract(daemon):
    records = list(iter_jsonl(daemon.config.ndjson))
    assert records, "merge sink wrote no ndjson"
    last_by_node = {}
    for record in records:
        last_by_node[record["node_id"]] = record["event"]
    # drained at a round boundary: every node's stream ends on end_run
    assert set(last_by_node.values()) == {"end_run"}
    assert len(last_by_node) == daemon.config.nodes


def test_unknown_endpoint_is_404(daemon):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(daemon, "/nope")
    assert excinfo.value.code == 404


def test_label_shards_mode_splits_fleet_totals(daemon):
    """label_shards turns the merged view per-shard instead of totals."""
    from dataclasses import replace

    relabelled = FleetDaemon.__new__(FleetDaemon)
    relabelled.config = replace(daemon.config, label_shards=True)
    relabelled.collector = daemon.collector
    relabelled.registry = daemon.registry
    families = parse_prometheus(relabelled.metrics_text())
    shards = {s["labels"].get("shard")
              for s in families["repro_monitor_samples_total"]["samples"]}
    assert shards == {"s0", "s1"}


@pytest.fixture(scope="module")
def hetero_daemon(serve_model, serve_gpu_models):
    """A drained mixed CPU+GPU daemon with the sampling governor on."""
    config = ServeConfig(
        nodes=8, gpu_nodes=2, shards=2, governor=True,
        runs=2, run_seconds=30, chunk_size=16, port=0,
    )
    d = FleetDaemon(config, model=serve_model, gpu=serve_gpu_models)
    d.start()
    assert d.wait(timeout=300), "heterogeneous daemon failed to drain"
    yield d
    d.stop()


def test_mixed_fleet_metrics_export_gpu_attribution(hetero_daemon):
    """/metrics carries per-component (CPU/DRAM/GPU) energy for the mixed
    fleet, and the governor's repro_sched_* series for every node."""
    with _get(hetero_daemon, "/metrics") as resp:
        assert resp.status == 200
        families = parse_prometheus(resp.read().decode())
    energy = families["repro_monitor_component_energy_joules_total"]
    by_component = {}
    for sample in energy["samples"]:
        labels = sample["labels"]
        by_component.setdefault(labels["component"], set()).add(labels["node"])
    assert {"cpu", "mem", "gpu"} <= set(by_component)
    # the accelerated tail of the fleet, and only it, logs GPU energy
    assert by_component["gpu"] == {"node6", "node7"}
    assert by_component["cpu"] == {f"node{i}" for i in range(8)}
    # governor surface: one stride/interval gauge per node, decisions count
    strides = {s["labels"]["node"]: s["value"]
               for s in families["repro_sched_stride"]["samples"]}
    assert set(strides) == {f"node{i}" for i in range(8)}
    assert all(v >= 1.0 for v in strides.values())
    assert any(v > 1.0 for v in strides.values()), \
        "governor never thinned a confident node"
    assert "repro_sched_interval_seconds" in families
    assert "repro_sched_decisions_total" in families


# ------------------------------------------------------------- config plan
def test_shard_layout_partitions_the_fleet():
    config = ServeConfig(nodes=11, shards=3)
    layout = config.shard_layout()
    assert [len(block) for block in layout] == [4, 4, 3]
    flat = [i for block in layout for i in block]
    assert flat == list(range(11))
    for index in range(11):
        assert index in layout[config.shard_of(index)]


@pytest.mark.parametrize("kwargs", [
    {"nodes": 0},
    {"nodes": 2, "shards": 3},
    {"runs": -1},
    {"chunk_size": 0},
    {"fault_nodes": {"node99": "dead-feed"}},
    {"fault_nodes": {"node0": "explode"}},
])
def test_config_validation(kwargs):
    with pytest.raises(ValidationError):
        ServeConfig(**kwargs)


def test_serve_cli_parser_wires_the_subcommand():
    from repro.cli import build_parser

    args = build_parser().parse_args([
        "serve", "--nodes", "16", "--shards", "4", "--port", "0",
        "--runs", "1", "--fault", "node2=dropout", "--processes",
    ])
    assert args.func.__name__ == "cmd_serve"
    assert (args.nodes, args.shards, args.processes) == (16, 4, True)
    assert args.fault == ["node2=dropout"]


# ---------------------------------------------------------------- SIGTERM
def test_sigterm_drains_without_truncating_ndjson(tmp_path):
    """SIGTERM on a runs=0 daemon finishes the in-flight round: every
    ndjson line parses and every node's stream ends on a run boundary."""
    ndjson = tmp_path / "drain.jsonl"
    env = dict(os.environ, PYTHONPATH="src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--nodes", "2",
         "--shards", "2", "--runs", "0", "--seconds", "30",
         "--chunk-size", "8", "--port", "0", "--ndjson", str(ndjson)],
        cwd=Path(__file__).resolve().parent.parent,
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if ndjson.exists() and "end_run" in ndjson.read_text():
                break
            time.sleep(0.2)
        else:
            pytest.fail("daemon produced no complete run before timeout")
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=120)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    assert proc.returncode == 0, out
    assert "drained: status=ok" in out
    records = list(iter_jsonl(ndjson))  # json.loads raises on truncation
    last_by_node = {}
    for record in records:
        last_by_node[record["node_id"]] = record["event"]
    assert set(last_by_node.values()) == {"end_run"}
