"""Tests for the command-line interface."""

import pytest

from repro.cli import ABLATIONS, EXPERIMENTS, build_parser, main


class TestParser:
    def test_all_experiments_registered(self):
        expected = {"table5", "table6", "table7", "table8", "table9",
                    "fig1", "fig2", "fig7", "fig8", "fig9", "overhead",
                    "per-suite", "chaos", "calib", "frontier"}
        assert set(EXPERIMENTS) == expected

    def test_all_ablations_registered(self):
        assert set(ABLATIONS) == {"resmodel", "postprocessing", "finetune",
                                  "lstm-depth", "trend-model"}

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table42"])

    def test_platform_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig2", "--platform", "mips"])


class TestCommands:
    def test_list_workloads(self, capsys):
        assert main(["list-workloads"]) == 0
        out = capsys.readouterr().out
        assert "SPEC (43):" in out
        assert "hpcc_fft" in out

    def test_fig2_experiment_runs(self, capsys):
        assert main(["experiment", "fig2"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out and "hpcc_stream" in out

    def test_campaign_roundtrip(self, tmp_path, capsys):
        out_path = str(tmp_path / "camp.npz")
        assert main(["campaign", "--out", out_path, "--seconds", "40"]) == 0
        from repro.io import load_campaign

        bundles = load_campaign(out_path)
        assert len(bundles) == 96

    def test_monitor_writes_csv(self, tmp_path, capsys):
        out_path = str(tmp_path / "restored.csv")
        assert main(["monitor", "--workload", "hpcg", "--out", out_path,
                     "--seconds", "150"]) == 0
        text = (tmp_path / "restored.csv").read_text()
        assert text.startswith("t_s,p_node_w,p_cpu_w,p_mem_w")
        assert len(text.splitlines()) == 151
