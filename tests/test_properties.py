"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.interp import CubicSplineInterpolator, LinearInterpolator
from repro.ml import mae, mape, r2_score, rmse
from repro.ml.preprocessing import MinMaxScaler, StandardScaler
from repro.types import PowerTrace
from repro.utils.timeseries import piecewise_hold, sliding_windows

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
power_floats = st.floats(min_value=0.1, max_value=1e4, allow_nan=False)


@st.composite
def power_series(draw, min_size=1, max_size=60):
    n = draw(st.integers(min_size, max_size))
    return draw(
        arrays(np.float64, n, elements=power_floats)
    )


@st.composite
def paired_series(draw, min_size=1, max_size=60):
    n = draw(st.integers(min_size, max_size))
    a = draw(arrays(np.float64, n, elements=power_floats))
    b = draw(arrays(np.float64, n, elements=power_floats))
    return a, b


class TestMetricsProperties:
    @given(paired_series())
    def test_metrics_nonnegative(self, pair):
        t, p = pair
        assert mape(t, p) >= 0
        assert rmse(t, p) >= 0
        assert mae(t, p) >= 0

    @given(power_series())
    def test_perfect_prediction_zero_error(self, series):
        assert mape(series, series) == 0.0
        assert rmse(series, series) == 0.0
        assert mae(series, series) == 0.0
        assert r2_score(series, series) == 1.0

    @given(paired_series())
    def test_rmse_dominates_mae(self, pair):
        t, p = pair
        assert rmse(t, p) >= mae(t, p) - 1e-9

    @given(paired_series())
    def test_r2_at_most_one(self, pair):
        t, p = pair
        assert r2_score(t, p) <= 1.0 + 1e-12

    @given(paired_series(), st.floats(min_value=0.1, max_value=10))
    def test_mape_scale_invariant(self, pair, scale):
        t, p = pair
        assert mape(t, p) == pytest.approx(mape(t * scale, p * scale), rel=1e-6)


class TestScalerProperties:
    @given(arrays(np.float64, st.tuples(st.integers(2, 40), st.integers(1, 5)),
                  elements=finite_floats))
    @settings(max_examples=50)
    def test_standard_roundtrip(self, X):
        s = StandardScaler().fit(X)
        back = s.inverse_transform(s.transform(X))
        np.testing.assert_allclose(back, X, atol=1e-6 * (1 + np.abs(X).max()))

    @given(arrays(np.float64, st.tuples(st.integers(2, 40), st.integers(1, 5)),
                  elements=finite_floats))
    @settings(max_examples=50)
    def test_minmax_bounds(self, X):
        Z = MinMaxScaler().fit_transform(X)
        assert Z.min() >= -1e-9 and Z.max() <= 1.0 + 1e-9


class TestSplineProperties:
    @given(st.integers(2, 25), st.integers(0, 1000))
    @settings(max_examples=50)
    def test_interpolates_knots(self, n_knots, seed):
        rng = np.random.default_rng(seed)
        x = np.sort(rng.choice(np.arange(1000), size=n_knots, replace=False)).astype(float)
        y = rng.uniform(10, 100, n_knots)
        s = CubicSplineInterpolator().fit(x, y)
        np.testing.assert_allclose(s.predict(x), y, atol=1e-6)

    @given(st.integers(3, 20), st.integers(0, 1000))
    @settings(max_examples=50)
    def test_linear_data_reproduced_exactly(self, n_knots, seed):
        rng = np.random.default_rng(seed)
        x = np.sort(rng.choice(np.arange(500), size=n_knots, replace=False)).astype(float)
        y = 3.0 * x + 7.0
        s = CubicSplineInterpolator().fit(x, y)
        xq = np.linspace(x[0], x[-1], 50)
        np.testing.assert_allclose(s.predict(xq), 3.0 * xq + 7.0, atol=1e-6)

    @given(st.integers(2, 15), st.integers(0, 500))
    @settings(max_examples=50)
    def test_matches_linear_interpolator_at_knots(self, n_knots, seed):
        rng = np.random.default_rng(seed)
        x = np.sort(rng.choice(np.arange(200), size=n_knots, replace=False)).astype(float)
        y = rng.uniform(0, 50, n_knots)
        cs = CubicSplineInterpolator().fit(x, y).predict(x)
        li = LinearInterpolator().fit(x, y).predict(x)
        np.testing.assert_allclose(cs, li, atol=1e-6)


class TestTimeseriesProperties:
    @given(power_series(min_size=5, max_size=50), st.integers(2, 5))
    def test_windows_cover_all_rows(self, series, width):
        if series.shape[0] < width:
            return
        w = sliding_windows(series, width)
        assert w.shape == (series.shape[0] - width + 1, width)
        np.testing.assert_allclose(w[:, 0], series[: w.shape[0]])

    @given(st.integers(1, 10), st.integers(10, 60))
    def test_piecewise_hold_only_emits_reading_values(self, n_readings, n):
        rng = np.random.default_rng(n_readings * 1000 + n)
        idx = np.sort(rng.choice(n, size=min(n_readings, n), replace=False))
        vals = rng.uniform(1, 10, size=idx.shape[0])
        out = piecewise_hold(vals, idx, n)
        assert set(np.unique(out)) <= set(vals)


class TestPowerTraceProperties:
    @given(power_series(min_size=1))
    def test_energy_additive_under_split(self, series):
        t = PowerTrace(series)
        k = len(series) // 2
        left, right = t.slice(0, k), t.slice(k, len(series))
        assert left.energy_joules() + right.energy_joules() == pytest.approx(
            t.energy_joules(), rel=1e-9, abs=1e-9
        )

    @given(power_series(min_size=2), st.integers(2, 5))
    def test_decimation_preserves_first_sample(self, series, factor):
        t = PowerTrace(series)
        assert t.decimate(factor).values[0] == series[0]

    @given(power_series(min_size=1))
    def test_peak_bounds_mean(self, series):
        t = PowerTrace(series)
        # Relative tolerance: np.mean of a constant array can exceed its max
        # by a few ULPs through pairwise-summation rounding.
        tol = 1e-9 * max(1.0, abs(t.mean_power()))
        assert t.peak_power() >= t.mean_power() - tol
