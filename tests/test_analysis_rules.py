"""Tests for the ``repro.analysis`` static-analysis engine.

Fixture files with known violations live in ``tests/fixtures/lint``;
path-sensitive rules (layering, wall-clock, boundary-validation) are
exercised by copying fixtures into a temporary ``repro`` package tree so the
engine resolves their module names exactly as it does for the real package.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.analysis import Diagnostic, LintConfig, LintEngine, all_rules, lint_paths
from repro.analysis.cli import main as lint_main
from repro.analysis.engine import module_name_for, parse_suppressions
from repro.analysis.reporters import JSON_SCHEMA_VERSION, render_json

FIXTURES = Path(__file__).parent / "fixtures" / "lint"

#: Fixture -> (destination inside a fake repro tree, expected rule id, count).
PLACEMENTS = {
    "rng_violation.py": ("repro/workloads/bad_rng.py", "RL001", 3),
    "layering_violation.py": ("repro/ml/bad_layer.py", "RL002", 2),
    "wallclock_violation.py": ("repro/core/bad_clock.py", "RL003", 3),
    "mutation_violation.py": ("repro/monitor/bad_mutation.py", "RL004", 5),
    "boundary_violation.py": ("repro/core/bad_boundary.py", "RL005", 1),
    "swallowed_violation.py": ("repro/eval/bad_except.py", "RL006", 2),
    "undocumented_suppression.py": ("repro/workloads/bad_suppress.py", "RL007", 2),
    "matmul_violation.py": ("repro/perf/bad_matmul.py", "RL201", 3),
    "set_order_violation.py": ("repro/perf/bad_order.py", "RL202", 2),
    "sample_loop_violation.py": ("repro/monitor/bad_loop.py", "RL301", 2),
    "append_loop_violation.py": ("repro/monitor/bad_append.py", "RL302", 1),
    "hoistable_violation.py": ("repro/monitor/bad_hoist.py", "RL303", 1),
    "stage_state_violation.py": ("repro/stream/bad_stage.py", "RL401", 2),
    "global_mutation_violation.py": ("repro/faults/bad_globals.py", "RL402", 2),
    "registry_capture_violation.py": ("repro/monitor/bad_registry.py", "RL403", 3),
}


def place(tmp_path: Path, fixture: str) -> Path:
    dest = tmp_path / PLACEMENTS[fixture][0]
    dest.parent.mkdir(parents=True, exist_ok=True)
    shutil.copy(FIXTURES / fixture, dest)
    return dest


@pytest.fixture()
def engine() -> LintEngine:
    return LintEngine(LintConfig())


class TestRuleDetection:
    @pytest.mark.parametrize("fixture", sorted(PLACEMENTS))
    def test_fixture_triggers_expected_rule(self, tmp_path, engine, fixture):
        _, rule_id, count = PLACEMENTS[fixture]
        diags = engine.lint_file(place(tmp_path, fixture))
        assert [d.rule_id for d in diags] == [rule_id] * count

    def test_each_rule_has_fixture_coverage(self):
        covered = {rule_id for _, rule_id, _ in PLACEMENTS.values()}
        assert covered == {cls.id for cls in all_rules()}

    def test_messages_carry_location_and_names(self, tmp_path, engine):
        diags = engine.lint_file(place(tmp_path, "rng_violation.py"))
        for d in diags:
            assert d.line > 0 and d.col > 0
            assert d.rule_name == "rng-discipline"
            assert "bad_rng.py" in d.path

    def test_rules_silent_outside_their_packages(self, tmp_path, engine):
        # Wall-clock reads are legal in eval/ (the timing harness layer).
        dest = tmp_path / "repro" / "eval" / "timing.py"
        dest.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(FIXTURES / "wallclock_violation.py", dest)
        assert engine.lint_file(dest) == []

    def test_downward_imports_pass_layering(self, tmp_path, engine):
        dest = tmp_path / "repro" / "eval" / "ok_layer.py"
        dest.parent.mkdir(parents=True, exist_ok=True)
        dest.write_text(
            "from ..core.highrpm import HighRPM\n"
            "from ..ml.base import Regressor\n"
            "from repro.types import PowerTrace\n"
        )
        assert engine.lint_file(dest) == []


class TestSuppressions:
    def test_inline_and_next_line_suppressions(self, tmp_path, engine):
        dest = tmp_path / "repro" / "workloads" / "sup.py"
        dest.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(FIXTURES / "suppressed.py", dest)
        assert engine.lint_file(dest) == []

    def test_file_level_suppression(self, tmp_path, engine):
        dest = tmp_path / "repro" / "workloads" / "supfile.py"
        dest.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(FIXTURES / "suppressed_file.py", dest)
        assert engine.lint_file(dest) == []

    def test_suppression_is_rule_specific(self, tmp_path, engine):
        dest = tmp_path / "repro" / "workloads" / "wrong_rule.py"
        dest.parent.mkdir(parents=True, exist_ok=True)
        dest.write_text(
            "import numpy as np\n\n"
            "def f():\n"
            "    np.random.seed(0)  # repro-lint: disable=swallowed-error — wrong rule on purpose\n"
        )
        diags = engine.lint_file(dest)
        assert [d.rule_id for d in diags] == ["RL001"]

    def test_parse_suppressions_directives(self):
        sup = parse_suppressions(
            "# repro-lint: disable-file=RL001\n"
            "x = 1  # repro-lint: disable=RL004,swallowed-error\n"
        )
        assert sup.file_level == {"RL001"}
        assert sup.by_line[2] == {"RL004", "RL006"}


class TestConfig:
    def test_select_restricts_rules(self, tmp_path):
        engine = LintEngine(LintConfig(select=("RL004",)))
        diags = engine.lint_file(place(tmp_path, "mutation_violation.py"))
        assert {d.rule_id for d in diags} == {"RL004"}
        assert engine.lint_file(place(tmp_path, "rng_violation.py")) == []

    def test_disable_drops_rule(self, tmp_path):
        engine = LintEngine(LintConfig(disable=("rng-discipline",)))
        assert engine.lint_file(place(tmp_path, "rng_violation.py")) == []

    def test_layer_override(self, tmp_path):
        # Promote ml to the top of the DAG and both of the fixture's
        # upward imports (monitor, core) become legal.
        cfg = LintConfig()
        cfg.layers["ml"] = 9
        engine = LintEngine(cfg)
        diags = engine.lint_file(place(tmp_path, "layering_violation.py"))
        assert diags == []

    def test_rule_options_override_packages(self, tmp_path):
        cfg = LintConfig(rule_options={"wall-clock": {"packages": ["repro.eval"]}})
        engine = LintEngine(cfg)
        dest = tmp_path / "repro" / "eval" / "timing.py"
        dest.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(FIXTURES / "wallclock_violation.py", dest)
        assert {d.rule_id for d in engine.lint_file(dest)} == {"RL003"}


class TestEngineMechanics:
    def test_module_name_resolution(self):
        assert module_name_for(Path("src/repro/core/srr.py")) == "repro.core.srr"
        assert module_name_for(Path("examples/quickstart.py")) is None

    def test_syntax_error_reported_not_raised(self, tmp_path, engine):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        diags = engine.lint_file(bad)
        assert [d.rule_id for d in diags] == ["RL000"]

    def test_lint_paths_walks_directories(self, tmp_path):
        for fixture in PLACEMENTS:
            place(tmp_path, fixture)
        diags = lint_paths([tmp_path], LintConfig())
        expected = sum(count for _, _, count in PLACEMENTS.values())
        assert len(diags) == expected


class TestReporters:
    def test_json_schema(self, tmp_path, engine):
        diags = engine.lint_file(place(tmp_path, "mutation_violation.py"))
        payload = json.loads(render_json(diags, files_checked=1))
        assert payload["version"] == JSON_SCHEMA_VERSION
        assert payload["summary"]["files_checked"] == 1
        assert payload["summary"]["diagnostics"] == len(diags)
        assert payload["summary"]["by_rule"] == {"RL004": len(diags)}
        for entry in payload["diagnostics"]:
            assert set(entry) == {"path", "line", "col", "rule_id", "rule_name", "message"}

    def test_diagnostic_render_is_clickable(self):
        d = Diagnostic("a/b.py", 3, 7, "RL001", "rng-discipline", "boom")
        assert d.render().startswith("a/b.py:3:7: RL001")


class TestCli:
    def test_exit_one_on_violation_tree(self, tmp_path, capsys):
        # A tree containing one violation of *each* rule must fail the lint.
        for fixture in PLACEMENTS:
            place(tmp_path, fixture)
        rc = lint_main([str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 1
        for cls in all_rules():
            assert cls.id in out

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        (tmp_path / "clean.py").write_text("x = 1\n")
        assert lint_main([str(tmp_path)]) == 0
        assert "lint clean" in capsys.readouterr().out

    def test_exit_two_on_unknown_rule(self, tmp_path, capsys):
        assert lint_main([str(tmp_path), "--select", "NOPE"]) == 2

    def test_exit_two_on_missing_path(self, tmp_path):
        assert lint_main([str(tmp_path / "absent")]) == 2

    def test_json_output_mode(self, tmp_path, capsys):
        place(tmp_path, "swallowed_violation.py")
        rc = lint_main([str(tmp_path), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert payload["summary"]["by_rule"] == {"RL006": 2}

    def test_ignore_flag(self, tmp_path, capsys):
        place(tmp_path, "swallowed_violation.py")
        rc = lint_main([str(tmp_path), "--ignore", "RL006"])
        assert rc == 0

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for cls in all_rules():
            assert cls.id in out
