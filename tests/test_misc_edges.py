"""Edge-case sweep across modules: empty inputs, boundary shapes, errors."""

import numpy as np
import pytest

from repro.eval.tables import format_table
from repro.gpu import gpu_workload
from repro.interp import CubicSplineInterpolator
from repro.ml import KFold, LinearRegression, mape
from repro.sensors import SparseReadings
from repro.types import PowerTrace
from repro.utils.timeseries import sliding_windows


class TestBoundaryShapes:
    def test_format_table_no_rows(self):
        text = format_table("empty", ["A", "B"], [])
        assert "empty" in text and "A" in text

    def test_spline_exact_minimum_knots(self):
        s = CubicSplineInterpolator().fit([0.0, 1.0], [10.0, 20.0])
        assert s.predict([0.5])[0] == pytest.approx(15.0)

    def test_single_sample_window(self):
        w = sliding_windows(np.array([1.0]), 1)
        assert w.shape == (1, 1)

    def test_single_row_regression(self):
        m = LinearRegression().fit(np.array([[1.0, 2.0]]), np.array([3.0]))
        assert np.isfinite(m.predict(np.array([[1.0, 2.0]]))).all()

    def test_kfold_exact_n_splits(self):
        folds = list(KFold(n_splits=5).split(5))
        assert all(len(test) == 1 for _, test in folds)

    def test_power_trace_single_sample(self):
        t = PowerTrace(np.array([42.0]))
        assert t.energy_joules() == 42.0
        assert t.peak_power() == t.mean_power() == 42.0

    def test_sparse_readings_single(self):
        r = SparseReadings(np.array([0]), np.array([50.0]), 10, 5)
        assert len(r) == 1


class TestGPUWorkloadEdges:
    def test_synthesize_deterministic_given_rng(self):
        w = gpu_workload("gemm", seed=4)
        a = w.synthesize_gpu(50, np.random.default_rng(1))
        b = w.synthesize_gpu(50, np.random.default_rng(1))
        np.testing.assert_allclose(a[0], b[0])

    def test_gpu_utilisation_bounds(self):
        w = gpu_workload("graph_analytics", seed=4)
        sm, mem = w.synthesize_gpu(200, np.random.default_rng(2))
        assert (sm >= 0).all() and (sm <= 1).all()
        assert (mem >= 0).all() and (mem <= 1).all()

    def test_seeded_workloads_reproducible(self):
        a = gpu_workload("stencil", seed=7)
        b = gpu_workload("stencil", seed=7)
        assert a.gpu_power_scale == b.gpu_power_scale


class TestMetricEdges:
    def test_mape_huge_values(self):
        assert mape([1e12], [1.1e12]) == pytest.approx(10.0)

    def test_mape_tiny_values(self):
        assert np.isfinite(mape([1e-15], [2e-15]))
