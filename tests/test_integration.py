"""End-to-end integration tests: the whole paper pipeline on small data."""

import numpy as np
import pytest

from repro.core import HighRPM, HighRPMConfig
from repro.hardware import ARM_PLATFORM, X86_PLATFORM, NodeSimulator
from repro.ml import make_baseline, mape
from repro.monitor import CappingPolicy, PowerMonitorService, run_capped
from repro.sensors import IPMISensor, RAPLEmulator


@pytest.fixture(scope="module")
def pipeline(catalog):
    """Train the full framework once for this module."""
    sim = NodeSimulator(ARM_PLATFORM, seed=21)
    names = ["spec_gcc", "spec_mcf", "parsec_ferret", "hpcc_hpl",
             "hpcc_stream", "parsec_radix", "spec_lbm", "parsec_dedup"]
    train = [sim.run(catalog.get(n), duration_s=120) for n in names]
    cfg = HighRPMConfig(miss_interval=10, lstm_iters=400, srr_iters=3000, seed=6)
    hr = HighRPM(cfg, p_bottom=ARM_PLATFORM.min_node_power_w,
                 p_upper=ARM_PLATFORM.max_node_power_w)
    hr.fit_initial(train)
    return sim, hr


class TestEndToEnd:
    def test_headline_claim_10x_restoration(self, pipeline, catalog):
        """0.1 Sa/s IM + PMCs -> 1 Sa/s node power within useful error."""
        sim, hr = pipeline
        test = sim.run(catalog.get("hpcc_fft"), duration_s=250)
        sensor = IPMISensor(ARM_PLATFORM, seed=31)
        readings = sensor.sample(test)
        assert readings.interval_s == 10  # 0.1 Sa/s in
        result = hr.monitor_online(test.pmcs.matrix, readings)
        assert len(result) == len(test)  # 1 Sa/s out
        assert mape(test.node.values, result.p_node) < 12.0

    def test_trr_beats_pmc_only_baseline_unseen(self, pipeline, catalog):
        """Core Table-5 claim on one unseen benchmark."""
        sim, hr = pipeline
        test = sim.run(catalog.get("hpcg"), duration_s=250)
        sensor = IPMISensor(ARM_PLATFORM, seed=32)
        readings = sensor.sample(test)
        trr_err = mape(
            test.node.values,
            hr.monitor_online(test.pmcs.matrix, readings).p_node,
        )
        # PMC-only baseline trained on the same campaign
        from repro.core.dataset import build_flat_dataset

        sim2 = NodeSimulator(ARM_PLATFORM, seed=21)
        names = ["spec_gcc", "spec_mcf", "parsec_ferret", "hpcc_hpl",
                 "hpcc_stream", "parsec_radix", "spec_lbm", "parsec_dedup"]
        flat = build_flat_dataset(
            [sim2.run(catalog.get(n), duration_s=120) for n in names]
        )
        baseline = make_baseline("RF")
        baseline.fit(flat.X, flat.p_node)
        base_err = mape(test.node.values, baseline.predict(test.pmcs.matrix))
        assert trr_err < base_err

    def test_component_breakdown_tracks_workload_character(self, pipeline, catalog):
        """Fig. 2 logic through the full pipeline: the restored breakdown
        must show CPU dominating FFT and MEM elevated on Stream."""
        sim, hr = pipeline
        sensor = IPMISensor(ARM_PLATFORM, seed=33)
        fft = sim.run(catalog.get("hpcc_fft"), duration_s=200)
        stream = sim.run(catalog.get("hpcc_stream"), duration_s=200)
        r_fft = hr.monitor_online(fft.pmcs.matrix, sensor.sample(fft))
        r_stream = hr.monitor_online(stream.pmcs.matrix, sensor.sample(stream))
        assert r_fft.p_cpu.mean() > r_fft.p_mem.mean() * 2
        assert r_stream.p_mem.mean() > r_fft.p_mem.mean()

    def test_x86_rapl_pipeline(self, catalog):
        """Table-9 path: x86 platform with RAPL-derived ground truth."""
        sim = NodeSimulator(X86_PLATFORM, seed=22)
        names = ["spec_gcc", "spec_mcf", "hpcc_hpl", "hpcc_stream"]
        train = [sim.run(catalog.get(n), duration_s=120) for n in names]
        cfg = HighRPMConfig(lstm_iters=250, srr_iters=2000, seed=7)
        hr = HighRPM(cfg, p_bottom=X86_PLATFORM.min_node_power_w,
                     p_upper=X86_PLATFORM.max_node_power_w)
        hr.fit_initial(train)
        test = sim.run(catalog.get("hpcg"), duration_s=200)
        rapl = RAPLEmulator(seed=9)
        p_pkg, p_ram = rapl.measure(test)  # emulated perf counters
        sensor = IPMISensor(X86_PLATFORM, seed=34)
        result = hr.monitor_online(test.pmcs.matrix, sensor.sample(test))
        # The restored components should track the RAPL readings.
        assert mape(p_pkg.values, result.p_cpu) < 30.0
        assert mape(p_ram.values, result.p_mem) < 45.0

    def test_capping_plus_monitoring(self, pipeline, catalog):
        """Fig. 1 scenario driven end-to-end, monitored by the service."""
        sim, hr = pipeline
        service = PowerMonitorService(hr, ARM_PLATFORM)
        service.register_node("node-0", seed=41)
        policy = CappingPolicy(cap_w=80.0, reading_interval_s=1, action_interval_s=1)
        bundle, ctl = run_capped(sim, catalog.get("graph500_bfs"), policy,
                                 duration_s=150)
        result = service.observe_run("node-0", bundle, online=True)
        assert len(result) == len(bundle)
        assert len(ctl.actions) > 0

    def test_deterministic_end_to_end(self, catalog):
        """Same seeds -> identical restored traces."""
        def run_once():
            sim = NodeSimulator(ARM_PLATFORM, seed=55)
            train = [sim.run(catalog.get(n), duration_s=100)
                     for n in ("spec_gcc", "hpcc_stream", "hpcc_hpl")]
            cfg = HighRPMConfig(lstm_iters=120, srr_iters=800, seed=8)
            hr = HighRPM(cfg, p_bottom=ARM_PLATFORM.min_node_power_w,
                         p_upper=ARM_PLATFORM.max_node_power_w)
            hr.fit_initial(train)
            test = sim.run(catalog.get("hpcg"), duration_s=120)
            readings = IPMISensor(ARM_PLATFORM, seed=61).sample(test)
            return hr.monitor_online(test.pmcs.matrix, readings).p_node

        np.testing.assert_allclose(run_once(), run_once())
