"""Statistical tests on the workload catalog: the suite-level distinctions
the Table-3 protocol depends on actually hold in simulated power."""

import numpy as np
import pytest

from repro.hardware import ARM_PLATFORM, NodeSimulator
from repro.workloads.base import mean_intensities


@pytest.fixture(scope="module")
def suite_power(catalog):
    """Mean cpu/mem power per suite over a few representative runs each."""
    sim = NodeSimulator(ARM_PLATFORM, seed=31)
    stats = {}
    for suite in catalog.suites:
        workloads = catalog.suite(suite)[:4]
        cpus, mems, bursts = [], [], []
        for w in workloads:
            b = sim.run(w, duration_s=100)
            cpus.append(b.cpu.mean_power())
            mems.append(b.mem.mean_power())
            bursts.append(np.abs(np.diff(b.node.values)).mean())
        stats[suite] = {
            "cpu": float(np.mean(cpus)),
            "mem": float(np.mean(mems)),
            "volatility": float(np.mean(bursts)),
        }
    return stats


class TestSuiteCharacter:
    def test_spec_is_compute_leaning(self, catalog):
        cpus, mems = zip(*(mean_intensities(w) for w in catalog.suite("SPEC")))
        assert np.mean(cpus) > np.mean(mems)

    def test_hpcg_is_memory_leaning(self, catalog):
        cpu, mem = mean_intensities(catalog.get("hpcg"))
        assert mem > cpu

    def test_graph500_most_volatile(self, suite_power):
        g500 = suite_power["Graph500"]["volatility"]
        others = [v["volatility"] for k, v in suite_power.items()
                  if k != "Graph500"]
        assert g500 > np.median(others)

    def test_suites_have_distinct_power_profiles(self, suite_power):
        # The seen/unseen protocol only discriminates if suites differ.
        cpu_means = [v["cpu"] for v in suite_power.values()]
        assert max(cpu_means) - min(cpu_means) > 3.0

    def test_all_suites_within_platform_budget(self, suite_power):
        for suite, v in suite_power.items():
            assert v["cpu"] < ARM_PLATFORM.cpu_idle_w + ARM_PLATFORM.cpu_dyn_w * 2
            assert v["mem"] < ARM_PLATFORM.mem_idle_w + ARM_PLATFORM.mem_dyn_w * 2


class TestTraitDistributions:
    def test_traits_vary_across_benchmarks(self, catalog):
        scales = [w.traits.cpu_power_scale for w in catalog]
        assert np.std(scales) > 0.03  # the hidden lottery is actually on

    def test_memory_suites_have_low_locality(self, catalog):
        stream = catalog.get("hpcc_stream").traits.locality
        hpl = catalog.get("hpcc_hpl").traits.locality
        assert stream < hpl

    def test_mean_durations_realistic(self, catalog):
        # §5.3: benchmarks run 60 s up; one program pass lands around there.
        durations = [w.nominal_duration_s for w in catalog]
        assert min(durations) >= 60
        assert np.mean(durations) < 600
