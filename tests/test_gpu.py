"""Tests for the GPU extension (paper §6.4.4)."""

import numpy as np
import pytest

from repro.core import DynamicTRR, HighRPMConfig
from repro.errors import NotFittedError, ValidationError, WorkloadError
from repro.gpu import (
    GPU_WORKLOAD_NAMES,
    AcceleratedNodeSimulator,
    GPUPowerModel,
    GPUSpec,
    GPUSRR,
    gpu_workload,
)
from repro.gpu.hardware import GPU_PMC_EVENTS
from repro.ml import mape
from repro.sensors.base import SparseReadings
from repro.types import PMC_EVENTS


@pytest.fixture(scope="module")
def gpu_sim():
    return AcceleratedNodeSimulator(seed=13)


@pytest.fixture(scope="module")
def gemm_bundle(gpu_sim):
    return gpu_sim.run(gpu_workload("gemm", seed=1), duration_s=150)


class TestGPUSpec:
    def test_defaults_valid(self):
        spec = GPUSpec()
        assert spec.max_power_w > spec.idle_w

    def test_validation(self):
        with pytest.raises(ValidationError):
            GPUSpec(n_sms=0)
        with pytest.raises(ValidationError):
            GPUSpec(dyn_w=-1.0)


class TestGPUPowerModel:
    def test_monotone_in_utilisation(self):
        m = GPUPowerModel(GPUSpec(), noise_w=0.0, intensity_sigma=0.0)
        lo = m.power(np.full(20, 0.1), np.full(20, 0.1), rng=0).mean()
        hi = m.power(np.full(20, 0.9), np.full(20, 0.9), rng=0).mean()
        assert hi > lo

    def test_bounds_checked(self):
        m = GPUPowerModel(GPUSpec())
        with pytest.raises(ValidationError):
            m.power(np.array([1.2]), np.array([0.5]))


class TestAcceleratedNode:
    def test_four_way_additivity(self, gemm_bundle):
        assert gemm_bundle.check_additivity(atol=1e-9)

    def test_combined_pmc_events(self, gemm_bundle):
        assert gemm_bundle.pmcs.events == PMC_EVENTS + GPU_PMC_EVENTS

    def test_gemm_is_gpu_dominated(self, gemm_bundle):
        assert gemm_bundle.gpu.mean_power() > gemm_bundle.cpu.mean_power()

    def test_all_catalog_workloads_run(self, gpu_sim):
        for name in GPU_WORKLOAD_NAMES:
            b = gpu_sim.run(gpu_workload(name, seed=2), duration_s=40)
            assert len(b) == 40 and b.check_additivity(atol=1e-9)

    def test_unknown_workload(self):
        with pytest.raises(WorkloadError):
            gpu_workload("crysis")

    def test_deterministic(self):
        a = AcceleratedNodeSimulator(seed=5).run(gpu_workload("stencil", 3), 60)
        b = AcceleratedNodeSimulator(seed=5).run(gpu_workload("stencil", 3), 60)
        np.testing.assert_allclose(a.node.values, b.node.values)


class TestGPUSRR:
    @pytest.fixture(scope="class")
    def fitted(self, gpu_sim):
        train = [gpu_sim.run(gpu_workload(n, seed=4), duration_s=120)
                 for n in ("gemm", "stencil", "training_loop", "inference_serving")]
        pmcs = np.vstack([b.pmcs.matrix for b in train])
        srr = GPUSRR(HighRPMConfig(srr_iters=2500, seed=3))
        srr.fit(
            pmcs,
            np.concatenate([b.node.values for b in train]),
            np.concatenate([b.cpu.values for b in train]),
            np.concatenate([b.mem.values for b in train]),
            np.concatenate([b.gpu.values for b in train]),
        )
        return srr

    def test_budget_constraint(self, fitted, gemm_bundle):
        cpu, mem, gpu = fitted.predict(gemm_bundle.pmcs.matrix,
                                       gemm_bundle.node.values)
        total = cpu + mem + gpu + fitted.other_w_
        np.testing.assert_allclose(total, gemm_bundle.node.values, rtol=1e-9)

    def test_reasonable_accuracy(self, fitted, gpu_sim):
        test = gpu_sim.run(gpu_workload("fft_gpu", seed=9), duration_s=150)
        cpu, mem, gpu = fitted.predict(test.pmcs.matrix, test.node.values)
        assert mape(test.gpu.values, gpu) < 30.0
        assert mape(test.cpu.values, cpu) < 35.0

    def test_predict_before_fit(self, gemm_bundle):
        with pytest.raises(NotFittedError):
            GPUSRR().predict(gemm_bundle.pmcs.matrix, gemm_bundle.node.values)


class TestGPUTemporalRestoration:
    def test_trr_works_unchanged_on_accelerated_nodes(self, gpu_sim):
        """The paper's generality claim: TRR is component-agnostic."""
        train = [gpu_sim.run(gpu_workload(n, seed=6), duration_s=120)
                 for n in ("gemm", "stencil", "training_loop")]
        cfg = HighRPMConfig(miss_interval=10, lstm_iters=250, seed=4)
        dyn = DynamicTRR(cfg)
        dyn.fit(train, p_bottom=gpu_sim.min_node_power_w,
                p_upper=gpu_sim.max_node_power_w)
        test = gpu_sim.run(gpu_workload("graph_analytics", seed=8), duration_s=150)
        # Build IPMI-style readings over the accelerated node's power.
        idx = np.arange(10, len(test), 10)
        readings = SparseReadings(idx, test.node.values[idx], 10, len(test))
        restored = dyn.restore(test.pmcs.matrix, readings)
        assert mape(test.node.values, restored) < 15.0
