"""Smoke tests for the experiment entry points with micro settings.

The benches run these at realistic sizes; here we only guard that every
entry point executes end-to-end and produces structurally sound results,
so a refactor cannot silently break an experiment that only the (slow)
bench suite exercises.
"""

import pytest

from repro.eval import ablations as ab
from repro.eval import experiments as ex
from repro.eval import figures as fg
from repro.eval import limitations as lim
from repro.eval.harness import EvalSettings
from repro.ml.registry import baseline_names


@pytest.fixture(scope="module")
def micro():
    return EvalSettings(
        seconds_per_benchmark=60,
        samples_per_set=120,
        test_suites=("HPCG",),
        rnn_iters=40,
        lstm_iters=60,
        srr_iters=300,
    )


class TestTableSmoke:
    def test_table5(self, micro):
        result = ex.table5(micro)
        assert len(result.rows) == len(baseline_names()) + 1
        assert all(isinstance(r[1], float) for r in result.rows)

    def test_table6(self, micro):
        result = ex.table6(micro)
        assert [r[0] for r in result.rows] == ["Spline", "StaticTRR", "DynamicTRR"]

    def test_table8(self, micro):
        result = ex.table8(micro)
        assert len(result.rows) == 4  # seen/unseen x cpu/mem

    def test_render_has_title_and_notes(self, micro):
        result = ex.table6(micro)
        text = result.render()
        assert "Table 6" in text and "Paper" in text


class TestFigureSmoke:
    def test_fig1(self, micro):
        result = fg.fig1(micro, duration_s=120)
        assert len(result.rows) == 5

    def test_fig2(self, micro):
        result = fg.fig2(micro, duration_s=80)
        assert {r[0] for r in result.rows} == {"hpcc_fft", "hpcc_stream"}

    def test_fig7(self, micro):
        result = fg.fig7(micro, intervals=(10, 20), duration_s=150)
        assert len(result.rows) == 2

    def test_fig8(self, micro):
        result = fg.fig8(micro, intervals=(10,), duration_s=120)
        assert len(result.rows) == 1

    def test_overhead(self, micro):
        result = fg.overhead(micro)
        assert len(result.rows) == 4

    def test_limitations(self, micro):
        result = lim.jitter_robustness(micro, drop_probs=(0.0, 0.3),
                                       duration_s=150)
        assert len(result.rows) == 2


class TestAblationSmoke:
    def test_postprocessing(self, micro):
        result = ab.ablation_postprocessing(micro)
        assert len(result.rows) == 4  # one per fixture benchmark

    def test_trend_model(self, micro):
        result = ab.ablation_trend_model(micro)
        assert {r[0] for r in result.rows} == {"spline", "linear"}
