"""Tests for scalers."""

import numpy as np
import pytest

from repro.errors import NotFittedError
from repro.ml import MinMaxScaler, StandardScaler
from repro.errors import ValidationError
from repro.ml.preprocessing import PolynomialFeatures, TargetScaler


class TestStandardScaler:
    def test_zero_mean_unit_var(self, rng):
        X = rng.normal(5, 3, size=(200, 4))
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(Z.std(axis=0), 1.0, atol=1e-10)

    def test_roundtrip(self, rng):
        X = rng.normal(size=(50, 3))
        s = StandardScaler().fit(X)
        np.testing.assert_allclose(s.inverse_transform(s.transform(X)), X, atol=1e-12)

    def test_constant_column_no_nan(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Z = StandardScaler().fit_transform(X)
        assert np.isfinite(Z).all()
        np.testing.assert_allclose(Z[:, 0], 0.0)

    def test_transform_before_fit(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.ones((2, 2)))


class TestMinMaxScaler:
    def test_range(self, rng):
        X = rng.normal(size=(100, 3))
        Z = MinMaxScaler().fit_transform(X)
        assert Z.min() >= 0.0 and Z.max() <= 1.0
        np.testing.assert_allclose(Z.min(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(Z.max(axis=0), 1.0, atol=1e-12)

    def test_custom_range(self, rng):
        X = rng.normal(size=(50, 2))
        Z = MinMaxScaler(feature_range=(-1, 1)).fit_transform(X)
        np.testing.assert_allclose(Z.min(axis=0), -1.0, atol=1e-12)

    def test_roundtrip(self, rng):
        X = rng.normal(size=(30, 2))
        s = MinMaxScaler().fit(X)
        np.testing.assert_allclose(s.inverse_transform(s.transform(X)), X, atol=1e-12)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            MinMaxScaler(feature_range=(1, 1))

    def test_constant_column_maps_to_lo(self):
        X = np.full((5, 1), 7.0)
        Z = MinMaxScaler(feature_range=(0.2, 0.8)).fit_transform(X)
        np.testing.assert_allclose(Z, 0.2)


class TestTargetScaler:
    def test_roundtrip_1d(self, rng):
        y = rng.uniform(20, 90, 40)
        s = TargetScaler().fit(y)
        np.testing.assert_allclose(s.inverse_transform(s.transform(y)), y, atol=1e-12)


class TestPolynomialFeatures:
    def test_squares_appended(self):
        X = np.array([[2.0, 3.0]])
        Z = PolynomialFeatures().fit_transform(X)
        np.testing.assert_allclose(Z, [[2.0, 3.0, 4.0, 9.0]])

    def test_interactions(self):
        X = np.array([[2.0, 3.0, 4.0]])
        pf = PolynomialFeatures(interaction=True)
        Z = pf.fit_transform(X)
        assert Z.shape == (1, pf.n_output_features())
        np.testing.assert_allclose(Z[0, -3:], [6.0, 8.0, 12.0])

    def test_column_count(self):
        pf = PolynomialFeatures(interaction=True).fit(np.ones((2, 4)))
        assert pf.n_output_features() == 8 + 6

    def test_feature_count_checked(self):
        pf = PolynomialFeatures().fit(np.ones((2, 3)))
        with pytest.raises(ValidationError):
            pf.transform(np.ones((2, 4)))

    def test_transform_before_fit(self):
        from repro.errors import NotFittedError
        with pytest.raises(NotFittedError):
            PolynomialFeatures().transform(np.ones((1, 2)))

    def test_helps_linear_model_on_quadratic_data(self, rng):
        from repro.ml import LinearRegression, rmse
        X = rng.uniform(-2, 2, size=(300, 1))
        y = 3.0 * X[:, 0] ** 2 + 1.0
        plain = LinearRegression().fit(X, y)
        Z = PolynomialFeatures().fit_transform(X)
        poly = LinearRegression().fit(Z, y)
        assert rmse(y, poly.predict(Z)) < rmse(y, plain.predict(X)) * 0.2
