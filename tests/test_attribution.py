"""Tests for co-location simulation and per-job power attribution."""

import numpy as np
import pytest

from repro.attribution import ColocationSimulator, PerJobAttributor
from repro.errors import NotFittedError, ValidationError
from repro.hardware import ARM_PLATFORM
from repro.ml import mape


@pytest.fixture(scope="module")
def colo_sim():
    return ColocationSimulator(ARM_PLATFORM, seed=19)


@pytest.fixture(scope="module")
def mix(colo_sim, catalog):
    pair = [catalog.get("hpcc_hpl"), catalog.get("hpcc_stream")]
    return colo_sim.run(pair, duration_s=150)


@pytest.fixture(scope="module")
def attributor(arm_sim, catalog):
    solo = [arm_sim.run(catalog.get(n), duration_s=120)
            for n in ("spec_gcc", "spec_mcf", "hpcc_hpl",
                      "hpcc_stream", "parsec_ferret", "parsec_radix")]
    return PerJobAttributor(ARM_PLATFORM).fit(solo)


class TestColocationSimulator:
    def test_attribution_sums_to_cpu_power(self, mix):
        assert mix.check_attribution_sums(atol=1e-9)

    def test_node_additivity(self, mix):
        total = mix.cpu.values + mix.mem.values + mix.other.values
        np.testing.assert_allclose(mix.node.values, total, atol=1e-9)

    def test_node_pmcs_are_job_sums(self, mix):
        summed = np.sum([p.matrix for p in mix.job_pmcs], axis=0)
        np.testing.assert_allclose(mix.pmcs.matrix, summed, atol=1e-6)

    def test_contention_saturates_activity(self, mix):
        effective = mix.metadata["effective_activity"]
        assert (effective.sum(axis=0) <= 1.0 + 1e-9).all()

    def test_cpu_heavy_job_gets_more_power(self, mix):
        # hpl (compute) should be attributed more CPU power than stream.
        hpl, stream = mix.job_cpu_power
        assert hpl.values.mean() > stream.values.mean()

    def test_needs_two_workloads(self, colo_sim, catalog):
        with pytest.raises(ValidationError):
            colo_sim.run([catalog.get("hpcg")], duration_s=30)

    def test_duplicate_names_rejected(self, colo_sim, catalog):
        w = catalog.get("hpcg")
        with pytest.raises(ValidationError):
            colo_sim.run([w, w], duration_s=30)

    def test_three_way_mix(self, colo_sim, catalog):
        mix3 = colo_sim.run(
            [catalog.get("spec_gcc"), catalog.get("hpcc_stream"),
             catalog.get("hpcg")], duration_s=80,
        )
        assert mix3.n_jobs == 3
        assert mix3.check_attribution_sums(atol=1e-9)


class TestPerJobAttributor:
    def test_attribution_conserves_total(self, attributor, mix):
        parts = attributor.attribute_bundle(mix)
        total = np.sum(parts, axis=0)
        np.testing.assert_allclose(total, mix.cpu.values, atol=1e-9)

    def test_accuracy_against_ground_truth(self, attributor, mix):
        parts = attributor.attribute_bundle(mix)
        for est, truth in zip(parts, mix.job_cpu_power):
            assert mape(truth.values, est) < 30.0

    def test_better_than_equal_split(self, attributor, mix):
        parts = attributor.attribute_bundle(mix)
        equal = mix.cpu.values / mix.n_jobs
        model_err = sum(
            mape(t.values, e) for t, e in zip(mix.job_cpu_power, parts)
        )
        equal_err = sum(
            mape(t.values, equal) for t in mix.job_cpu_power
        )
        assert model_err < equal_err

    def test_demand_nonnegative(self, attributor, mix):
        d = attributor.demand(mix.job_pmcs[0].matrix)
        assert (d >= 0).all()

    def test_with_restored_cpu_power(self, attributor, mix, rng):
        # Restored totals carry error; attribution must still conserve them.
        restored = mix.cpu.values * (1 + rng.normal(0, 0.03, len(mix)))
        restored = np.maximum(restored, 0.0)
        parts = attributor.attribute_bundle(mix, p_cpu=restored)
        np.testing.assert_allclose(np.sum(parts, axis=0), restored, atol=1e-9)

    def test_unfitted_rejected(self, mix):
        fresh = PerJobAttributor(ARM_PLATFORM)
        with pytest.raises(NotFittedError):
            fresh.attribute_bundle(mix)

    def test_fit_needs_bundles(self):
        with pytest.raises(ValidationError):
            PerJobAttributor(ARM_PLATFORM).fit([])

    def test_length_mismatch_rejected(self, attributor, mix):
        with pytest.raises(ValidationError):
            attributor.attribute(
                [mix.job_pmcs[0].matrix], mix.cpu.values[:-5]
            )
