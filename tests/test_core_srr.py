"""Tests for the SRR spatial-resolution model."""

import numpy as np
import pytest

from repro.core import SRR, HighRPMConfig
from repro.core.dataset import build_flat_dataset
from repro.errors import NotFittedError, ValidationError
from repro.ml import mape


@pytest.fixture(scope="module")
def train_bundles(arm_sim, catalog):
    names = ["spec_gcc", "spec_mcf", "parsec_ferret", "hpcc_hpl",
             "hpcc_stream", "parsec_radix"]
    return [arm_sim.run(catalog.get(n), duration_s=120) for n in names]


@pytest.fixture(scope="module")
def fitted_srr(train_bundles):
    flat = build_flat_dataset(train_bundles)
    cfg = HighRPMConfig(srr_iters=2500, seed=1)
    return SRR(cfg).fit(flat.X, flat.p_node, flat.p_cpu, flat.p_mem)


class TestSRR:
    def test_predict_shapes(self, fitted_srr, small_bundle):
        p_cpu, p_mem = fitted_srr.predict(
            small_bundle.pmcs.matrix, small_bundle.node.values
        )
        assert p_cpu.shape == (len(small_bundle),)
        assert p_mem.shape == (len(small_bundle),)

    def test_budget_constraint(self, fitted_srr, small_bundle):
        """Components always sum to node power minus the learned P_other."""
        p_cpu, p_mem = fitted_srr.predict(
            small_bundle.pmcs.matrix, small_bundle.node.values
        )
        total = p_cpu + p_mem + fitted_srr.other_w_
        np.testing.assert_allclose(total, small_bundle.node.values, rtol=1e-9)

    def test_other_w_learned_near_25(self, fitted_srr):
        assert fitted_srr.other_w_ == pytest.approx(25.0, abs=1.5)

    def test_accuracy_with_true_pnode(self, fitted_srr, small_bundle):
        p_cpu, p_mem = fitted_srr.predict(
            small_bundle.pmcs.matrix, small_bundle.node.values
        )
        assert mape(small_bundle.cpu.values, p_cpu) < 20.0
        assert mape(small_bundle.mem.values, p_mem) < 35.0

    def test_pnode_required_when_enabled(self, fitted_srr, small_bundle):
        with pytest.raises(ValidationError):
            fitted_srr.predict(small_bundle.pmcs.matrix)

    def test_ablation_mode_runs_without_pnode(self, train_bundles, small_bundle):
        flat = build_flat_dataset(train_bundles)
        srr = SRR(HighRPMConfig(srr_iters=1500, seed=1), use_pnode=False)
        srr.fit(flat.X, flat.p_node, flat.p_cpu, flat.p_mem)
        p_cpu, p_mem = srr.predict(small_bundle.pmcs.matrix)
        assert np.isfinite(p_cpu).all() and np.isfinite(p_mem).all()

    def test_pnode_beats_ablation(self, fitted_srr, train_bundles, small_bundle):
        """Table 8's direction: the budget constraint must help."""
        flat = build_flat_dataset(train_bundles)
        ablated = SRR(HighRPMConfig(srr_iters=2500, seed=1), use_pnode=False)
        ablated.fit(flat.X, flat.p_node, flat.p_cpu, flat.p_mem)
        with_cpu, with_mem = fitted_srr.predict(
            small_bundle.pmcs.matrix, small_bundle.node.values
        )
        wo_cpu, wo_mem = ablated.predict(small_bundle.pmcs.matrix)
        with_err = mape(small_bundle.cpu.values, with_cpu) + mape(
            small_bundle.mem.values, with_mem)
        wo_err = mape(small_bundle.cpu.values, wo_cpu) + mape(
            small_bundle.mem.values, wo_mem)
        assert with_err < wo_err

    def test_partial_fit_runs(self, fitted_srr, small_bundle):
        import copy

        srr = copy.deepcopy(fitted_srr)
        srr.partial_fit(
            small_bundle.pmcs.matrix,
            small_bundle.node.values,
            small_bundle.cpu.values,
            small_bundle.mem.values,
            n_steps=50,
        )
        p_cpu, _ = srr.predict(small_bundle.pmcs.matrix, small_bundle.node.values)
        assert np.isfinite(p_cpu).all()

    def test_predict_before_fit(self, small_bundle):
        with pytest.raises(NotFittedError):
            SRR().predict(small_bundle.pmcs.matrix, small_bundle.node.values)

    def test_nonnegative_outputs(self, fitted_srr, small_bundle):
        # Even with a tiny node reading the split cannot go negative.
        pmcs = small_bundle.pmcs.matrix[:5]
        p_node = np.full(5, 1.0)  # below other_w_
        p_cpu, p_mem = fitted_srr.predict(pmcs, p_node)
        assert (p_cpu >= 0).all() and (p_mem >= 0).all()
