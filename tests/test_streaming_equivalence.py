"""Chunked pipeline output is bit-identical to whole-run ``observe_run``.

Exercised on the golden reference service (the anchor of
``tests/fixtures/golden_monitor.npz``) for all three restoration modes:
online (dynamic), offline (static) and model-only (dead IM feed). The
sensors draw per-sample noise from their RNG, so every compared path gets
its own same-seed service — identical inputs, so any output difference is
the streaming decomposition's fault.
"""

import pathlib

import numpy as np
import pytest

from repro.calib import IDENTITY, CompensationTransform
from repro.core import HighRPM
from repro.faults import FaultySensor, GainDrift, OutageWindow
from repro.monitor import FleetMonitor, PowerMonitorService
from repro.sensors import IPMISensor
from repro.stream import JsonlSink, iter_jsonl

GOLDEN_PATH = pathlib.Path(__file__).parent / "fixtures" / "golden_monitor.npz"
CHUNK_SIZES = [7, 64]

#: A non-trivial compensation for the calibrated equivalence runs: lag
#: shift plus a two-knot schedule, so every transform code path streams.
EQ_TRANSFORM = CompensationTransform(
    lag_s=2, knots_s=(0, 140), scales=(1.0 / 1.15, 1.0 / 1.25),
    offsets_w=(-3.0, -6.0),
)


def _twin_services(chaos_reference, n=2, dead=False, calibrate=None):
    """n fresh same-seed services over the shared trained model.

    ``calibrate`` registers the same transform (a faulted feed underneath,
    so the compensation has something to undo) on every twin; pass
    ``IDENTITY`` to exercise the disabled-stage path explicitly.
    """
    reference, _ = chaos_reference
    services = []
    for _ in range(n):
        svc = PowerMonitorService(reference.model, reference.spec)
        if dead:
            svc.register_node("eq-node", sensor=FaultySensor(
                IPMISensor(reference.spec, seed=41),
                faults=[OutageWindow(0, 10_000_000)], seed=42,
            ))
        elif calibrate is not None:
            svc.register_node("eq-node", sensor=FaultySensor(
                IPMISensor(reference.spec, seed=43),
                faults=[GainDrift(gain_start=1.15, gain_end=1.25,
                                  bias_start_w=3.0, bias_end_w=6.0)],
                seed=44,
            ))
            svc.set_calibration("eq-node", calibrate)
        else:
            svc.register_node("eq-node", seed=33)
        services.append(svc)
    return services


def _assert_identical(a, b):
    np.testing.assert_array_equal(a.p_node, b.p_node)
    np.testing.assert_array_equal(a.p_cpu, b.p_cpu)
    np.testing.assert_array_equal(a.p_mem, b.p_mem)
    np.testing.assert_array_equal(a.provenance, b.provenance)
    assert (a.p_gpu is None) == (b.p_gpu is None)
    if a.p_gpu is not None:
        np.testing.assert_array_equal(a.p_gpu, b.p_gpu)
    assert a.mode == b.mode


@pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
@pytest.mark.parametrize(
    "online,dead", [(True, False), (False, False), (True, True)],
    ids=["online", "offline", "model_only"],
)
def test_chunked_equals_whole_run(chaos_reference, online, dead, chunk_size):
    _, bundle = chaos_reference
    whole_svc, chunk_svc = _twin_services(chaos_reference, dead=dead)
    whole = whole_svc.observe_run("eq-node", bundle, online=online)
    chunked = chunk_svc.observe_run(
        "eq-node", bundle, online=online, chunk_size=chunk_size
    )
    if dead:
        assert whole.mode == "model_only"
    _assert_identical(whole, chunked)
    np.testing.assert_array_equal(
        whole_svc.log("eq-node").p_node, chunk_svc.log("eq-node").p_node
    )
    assert whole_svc.log("eq-node").modes == chunk_svc.log("eq-node").modes
    assert (whole_svc.health("eq-node").status
            == chunk_svc.health("eq-node").status)


@pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
@pytest.mark.parametrize(
    "transform", [EQ_TRANSFORM, IDENTITY], ids=["compensated", "identity"]
)
@pytest.mark.parametrize("online", [True, False], ids=["online", "offline"])
def test_calibrated_chunked_and_fleet_equal_whole_run(
    chaos_reference, online, transform, chunk_size
):
    """With the calibrate stage enabled (real transform or identity), the
    whole-run, chunked, and fleet-batched paths stay bit-identical."""
    _, bundle = chaos_reference
    whole_svc, chunk_svc, fleet_svc = _twin_services(
        chaos_reference, n=3, calibrate=transform
    )
    whole = whole_svc.observe_run("eq-node", bundle, online=online)
    chunked = chunk_svc.observe_run(
        "eq-node", bundle, online=online, chunk_size=chunk_size
    )
    fleet = FleetMonitor(fleet_svc, chunk_size=chunk_size).observe_all(
        {"eq-node": bundle}, online=online
    )["eq-node"]
    _assert_identical(whole, chunked)
    _assert_identical(whole, fleet)


def test_identity_calibration_equals_uncalibrated_bitwise(chaos_reference):
    """A registered identity transform must be a guaranteed no-op — same
    bits as a node with no calibration at all."""
    from repro.obs import MetricsRegistry

    reference, bundle = chaos_reference
    plain_svc, = _twin_services(chaos_reference, n=1)
    ident_svc = PowerMonitorService(
        reference.model, reference.spec, registry=MetricsRegistry()
    )
    ident_svc.register_node("eq-node", seed=33)
    ident_svc.set_calibration("eq-node", IDENTITY)
    plain = plain_svc.observe_run("eq-node", bundle)
    ident = ident_svc.observe_run("eq-node", bundle)
    _assert_identical(plain, ident)
    snap = ident_svc.registry.snapshot()
    assert "repro_calib_runs_total" not in snap  # the stage never fired


def test_chunked_healthy_run_matches_golden_fixture(chaos_reference):
    """The streamed path reproduces the pinned golden traces, not just the
    current whole-run behaviour."""
    assert GOLDEN_PATH.exists(), (
        f"{GOLDEN_PATH} missing - run scripts/make_golden_monitor.py"
    )
    with np.load(GOLDEN_PATH) as data:
        golden = {k: data[k] for k in data.files}
    reference, bundle = chaos_reference
    svc = PowerMonitorService(reference.model, reference.spec)
    # Same sensor seed as the fixture's healthy run (repro.faults.golden).
    from repro.faults.golden import _HEALTHY_SENSOR_SEED

    svc.register_node(
        "golden-chunked",
        sensor=IPMISensor(reference.spec,
                          seed=7 + _HEALTHY_SENSOR_SEED),
    )
    result = svc.observe_run("golden-chunked", bundle, chunk_size=32)
    for channel in ("p_node", "p_cpu", "p_mem"):
        np.testing.assert_allclose(
            getattr(result, channel), golden[f"healthy_{channel}"],
            rtol=1e-3, atol=1e-2,
        )
    np.testing.assert_array_equal(result.provenance,
                                  golden["healthy_provenance"])


@pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
def test_monitor_stream_pieces_tile_and_match(chaos_reference, chunk_size):
    """Core-level generator: pieces tile [0, n) and concatenate exactly."""
    reference, bundle = chaos_reference
    model: HighRPM = reference.model
    readings = IPMISensor(reference.spec, seed=17).sample(bundle)
    pmcs = bundle.pmcs.matrix
    for online in (True, False):
        whole = (model.monitor_online if online else model.monitor_offline)(
            pmcs, readings
        )
        expected_start = 0
        parts = []
        for start, piece in model.monitor_stream(
            pmcs, readings, online=online, chunk_size=chunk_size
        ):
            assert start == expected_start
            expected_start += len(piece)
            parts.append(piece)
        assert expected_start == pmcs.shape[0]
        np.testing.assert_array_equal(
            np.concatenate([p.p_node for p in parts]), whole.p_node
        )
        np.testing.assert_array_equal(
            np.concatenate([p.p_cpu for p in parts]), whole.p_cpu
        )
        np.testing.assert_array_equal(
            np.concatenate([p.provenance for p in parts]), whole.provenance
        )


@pytest.mark.parametrize("shards,processes", [(1, False), (3, False), (2, True)],
                         ids=["one-shard", "three-shards", "two-procs"])
def test_sharded_daemon_equals_single_process_fleet(
    serve_model, shards, processes
):
    """The daemon's sharded outputs are bitwise-equal to one FleetMonitor.

    Sharding is a layout, not a semantic: node seeds derive from global
    indices and observation never mutates the shared model, so any shard
    count — threads or worker processes — yields the same bits as a
    single-process fleet over the same nodes.
    """
    from repro.hardware import NodeSimulator, get_platform
    from repro.obs import MetricsRegistry
    from repro.serve import FleetDaemon, ServeConfig
    from repro.workloads import default_catalog

    config = ServeConfig(nodes=5, shards=shards, processes=processes,
                         runs=1, run_seconds=40, chunk_size=16,
                         keep_results=True, port=0)
    daemon = FleetDaemon(config, model=serve_model)
    daemon.start()
    assert daemon.wait(timeout=180)
    daemon.stop()

    spec = get_platform(config.platform)
    workload = default_catalog(config.seed).get(config.workload)
    reference = PowerMonitorService(serve_model, spec,
                                    registry=MetricsRegistry())
    bundles = {}
    for i in range(config.nodes):
        node_id = f"node{i}"
        reference.register_node(node_id, sensor=IPMISensor(
            spec, interval_s=config.interval_s, seed=config.seed + i
        ))
        bundles[node_id] = NodeSimulator(spec, seed=config.seed + i).run(
            workload, duration_s=config.run_seconds
        )
    expected = FleetMonitor(
        reference, chunk_size=config.chunk_size
    ).observe_all(bundles)

    assert sorted(daemon.results) == sorted(expected)
    for node_id, want in expected.items():
        (got,) = daemon.results[node_id]
        _assert_identical(want, got)


@pytest.mark.parametrize("shards,processes", [(3, False), (2, True)],
                         ids=["three-shards", "two-procs"])
def test_mixed_fleet_sharded_equals_single_process(
    serve_model, serve_gpu_models, shards, processes
):
    """Heterogeneous bit-identity: a governed mixed CPU+GPU fleet yields
    the same bits sharded as in one process, across two governed rounds.

    Round 0 runs dense and feeds the governor; round 1 runs under the
    resulting per-node strides — so the comparison covers the full loop:
    device-class dispatch (two-way and three-way heads), per-head fleet
    batching, governor thinning, and the shard/merge transport.
    """
    from repro.gpu import AcceleratedNodeSimulator, gpu_workload
    from repro.hardware import NodeSimulator, get_platform
    from repro.monitor import GPUSRRHead, NodeProfile, SamplingGovernor
    from repro.obs import MetricsRegistry
    from repro.serve import FleetDaemon, ServeConfig
    from repro.workloads import default_catalog

    config = ServeConfig(nodes=8, gpu_nodes=2, shards=shards,
                         processes=processes, governor=True,
                         runs=2, run_seconds=40, chunk_size=16,
                         keep_results=True, port=0)
    daemon = FleetDaemon(config, model=serve_model, gpu=serve_gpu_models)
    daemon.start()
    assert daemon.wait(timeout=300)
    daemon.stop()

    spec = get_platform(config.platform)
    catalog = default_catalog(config.seed)
    workload = catalog.get(config.workload)
    accel_workload = gpu_workload(config.gpu_workload, seed=config.seed)
    gpu_model, gpu_srr = serve_gpu_models
    reference = PowerMonitorService(serve_model, spec,
                                    registry=MetricsRegistry())
    reference.register_device_class("gpu", gpu_model,
                                    head=GPUSRRHead(gpu_srr))
    reference.set_governor(SamplingGovernor(config.governor_policy()))
    bundles = {}
    for node_id, index in config.node_plan():
        device_class = config.device_class_of_index(index)
        reference.register_node(node_id, sensor=IPMISensor(
            spec, interval_s=config.interval_s, seed=config.seed + index
        ), profile=NodeProfile(device_class=device_class,
                               seed=config.seed + index,
                               interval_s=config.interval_s))
        if device_class == "gpu":
            bundles[node_id] = AcceleratedNodeSimulator(
                host_spec=spec, seed=config.seed + index
            ).run(accel_workload, duration_s=config.run_seconds)
        else:
            bundles[node_id] = NodeSimulator(
                spec, seed=config.seed + index
            ).run(workload, duration_s=config.run_seconds)
    fleet = FleetMonitor(reference, chunk_size=config.chunk_size)
    expected = [fleet.observe_all(bundles, online=config.online)
                for _ in range(config.runs)]

    # The governor actually thinned someone in round 1, and the GPU nodes
    # carry a real accelerator channel — otherwise this test proves less
    # than it claims.
    assert any(reference.sampling_stride(n) > 1 for n in bundles)
    assert sorted(daemon.results) == sorted(bundles)
    for node_id in bundles:
        got_rounds = daemon.results[node_id]
        assert len(got_rounds) == config.runs
        for round_i, got in enumerate(got_rounds):
            want = expected[round_i][node_id]
            _assert_identical(want, got)
        if config.device_class_of_index(int(node_id.removeprefix("node"))) \
                == "gpu":
            assert got_rounds[0].p_gpu is not None
            assert float(got_rounds[0].p_gpu.sum()) > 0.0


def test_jsonl_sink_mirrors_the_memory_log(chaos_reference, tmp_path):
    reference, bundle = chaos_reference
    path = tmp_path / "chunks.jsonl"
    svc = PowerMonitorService(reference.model, reference.spec,
                              sinks=[JsonlSink(path)])
    svc.register_node("eq-node", seed=33)
    svc.observe_run("eq-node", bundle, chunk_size=50)
    records = list(iter_jsonl(path))
    chunks = [r for r in records if r["event"] == "chunk"]
    assert records[-1]["event"] == "end_run"
    assert [r["start"] for r in chunks] == sorted(r["start"] for r in chunks)
    streamed = np.concatenate([r["p_node"] for r in chunks])
    np.testing.assert_array_equal(streamed, svc.log("eq-node").p_node)
