"""Repository-quality gates: docstrings and public API hygiene."""

import importlib
import inspect
import pkgutil


import repro

PACKAGES = [
    "repro", "repro.attribution", "repro.core", "repro.eval", "repro.gpu",
    "repro.hardware", "repro.interp", "repro.ml", "repro.monitor",
    "repro.sensors", "repro.utils", "repro.workloads",
]


def _all_modules():
    seen = []
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        seen.append(pkg)
        if hasattr(pkg, "__path__"):
            for info in pkgutil.iter_modules(pkg.__path__):
                seen.append(importlib.import_module(f"{pkg_name}.{info.name}"))
    return {m.__name__: m for m in seen}.values()


class TestDocstrings:
    def test_every_module_documented(self):
        undocumented = [
            m.__name__ for m in _all_modules() if not (m.__doc__ or "").strip()
        ]
        assert undocumented == []

    def test_every_public_class_documented(self):
        missing = []
        for module in _all_modules():
            for name, obj in vars(module).items():
                if name.startswith("_") or not inspect.isclass(obj):
                    continue
                if obj.__module__ != module.__name__:
                    continue  # re-export
                if not (obj.__doc__ or "").strip():
                    missing.append(f"{module.__name__}.{name}")
        assert missing == []

    def test_every_public_function_documented(self):
        missing = []
        for module in _all_modules():
            for name, obj in vars(module).items():
                if name.startswith("_") or not inspect.isfunction(obj):
                    continue
                if obj.__module__ != module.__name__:
                    continue
                if not (obj.__doc__ or "").strip():
                    missing.append(f"{module.__name__}.{name}")
        assert missing == []


class TestPublicAPI:
    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_all_resolves(self):
        for pkg_name in PACKAGES[1:]:
            pkg = importlib.import_module(pkg_name)
            for name in getattr(pkg, "__all__", []):
                assert hasattr(pkg, name), f"{pkg_name}.{name}"

    def test_version_present(self):
        assert repro.__version__.count(".") == 2

    def test_exceptions_share_base(self):
        from repro import errors

        for name, obj in vars(errors).items():
            if inspect.isclass(obj) and issubclass(obj, Exception) \
                    and obj is not errors.ReproError:
                assert issubclass(obj, errors.ReproError), name
