"""Property-based tests for the fault-injection layer (hypothesis).

Three invariants, each tied to a project rule:

* determinism — the same (faults, seed) pair produces bit-identical
  injected streams, call for call (RL001: all randomness flows through
  seeded generators);
* validity — whatever survives injection is still a well-formed sparse
  stream: strictly increasing indices inside ``[0, n_dense)``,
  non-negative power, metadata preserved;
* immutability — injection never mutates its inputs, and a wrapped
  sensor never mutates the trace bundle (RL004: frozen trace arrays).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SensorOutageError
from repro.faults import (
    ClockJitter,
    DelayedArrival,
    FaultInjector,
    FaultySensor,
    OutageWindow,
    RandomDropout,
    SpikeOutlier,
    StuckAt,
)
from repro.hardware import ARM_PLATFORM
from repro.sensors import IPMISensor, SparseReadings

N_DENSE = 400

fault_st = st.one_of(
    st.builds(
        OutageWindow,
        start_s=st.integers(0, N_DENSE - 20),
        duration_s=st.integers(1, N_DENSE),
    ),
    st.builds(RandomDropout, prob=st.floats(0.0, 0.9)),
    st.builds(
        StuckAt,
        start_s=st.integers(0, N_DENSE - 20),
        duration_s=st.integers(1, N_DENSE),
    ),
    st.builds(
        SpikeOutlier,
        prob=st.floats(0.0, 1.0),
        magnitude_w=st.floats(1.0, 500.0),
    ),
    st.builds(ClockJitter, max_shift_s=st.integers(1, 5)),
    st.builds(
        DelayedArrival,
        delay_s=st.integers(1, 30),
        prob=st.floats(0.1, 1.0),
    ),
)

chain_st = st.lists(fault_st, min_size=1, max_size=3)


def make_stream(interval=10):
    idx = np.arange(5, N_DENSE, interval, dtype=np.int64)
    vals = 90.0 + 15.0 * np.sin(idx / 23.0)
    return SparseReadings(idx, vals, interval, N_DENSE)


@settings(max_examples=40, deadline=None)
@given(faults=chain_st, seed=st.integers(0, 2**31 - 1))
def test_same_seed_bit_identical_streams(faults, seed):
    stream = make_stream()
    outs = []
    for _ in range(2):
        try:
            out = FaultInjector(faults, seed=seed).inject(stream)
        except SensorOutageError:
            outs.append(None)
        else:
            outs.append((out.indices, out.values))
    if outs[0] is None:
        assert outs[1] is None
    else:
        np.testing.assert_array_equal(outs[0][0], outs[1][0])
        np.testing.assert_array_equal(outs[0][1], outs[1][1])


@settings(max_examples=40, deadline=None)
@given(faults=chain_st, seed=st.integers(0, 2**31 - 1))
def test_injected_stream_stays_valid(faults, seed):
    stream = make_stream()
    try:
        out = FaultInjector(faults, seed=seed).inject(stream)
    except SensorOutageError:
        return  # emptied stream is a declared outage, not a bad stream
    assert out.indices.shape == out.values.shape
    assert out.indices.shape[0] >= 1
    assert (np.diff(out.indices) > 0).all(), "indices must stay strictly increasing"
    assert out.indices[0] >= 0 and out.indices[-1] < N_DENSE
    assert (out.values >= 0.0).all(), "power cannot go negative"
    assert out.interval_s == stream.interval_s
    assert out.n_dense == stream.n_dense


@settings(max_examples=40, deadline=None)
@given(faults=chain_st, seed=st.integers(0, 2**31 - 1))
def test_injection_never_mutates_source_stream(faults, seed):
    stream = make_stream()
    idx_copy = stream.indices.copy()
    val_copy = stream.values.copy()
    try:
        FaultInjector(faults, seed=seed).inject(stream)
    except SensorOutageError:
        pass
    np.testing.assert_array_equal(stream.indices, idx_copy)
    np.testing.assert_array_equal(stream.values, val_copy)


@pytest.mark.parametrize("seed", [0, 1, 99])
def test_wrapped_sensor_never_mutates_bundle(small_bundle, seed):
    # Deterministic spot-check plus the hypothesis chain below: the bundle's
    # arrays are frozen (RL004) and must come out untouched.
    node_copy = small_bundle.node.values.copy()
    pmc_copy = small_bundle.pmcs.matrix.copy()
    sensor = FaultySensor(
        IPMISensor(ARM_PLATFORM, seed=seed),
        faults=[RandomDropout(0.4), SpikeOutlier(0.5, 300.0), ClockJitter(2)],
        seed=seed,
    )
    for _ in range(3):
        try:
            sensor.sample(small_bundle)
        except SensorOutageError:
            pass
    np.testing.assert_array_equal(small_bundle.node.values, node_copy)
    np.testing.assert_array_equal(small_bundle.pmcs.matrix, pmc_copy)
    assert not small_bundle.node.values.flags.writeable
    assert not small_bundle.pmcs.matrix.flags.writeable


@settings(max_examples=15, deadline=None)
@given(faults=chain_st, seed=st.integers(0, 1000))
def test_wrapped_sensor_property_no_bundle_mutation(small_bundle, faults, seed):
    node_copy = small_bundle.node.values.copy()
    pmc_copy = small_bundle.pmcs.matrix.copy()
    sensor = FaultySensor(IPMISensor(ARM_PLATFORM, seed=7), faults=faults, seed=seed)
    try:
        sensor.sample(small_bundle)
    except SensorOutageError:
        pass
    np.testing.assert_array_equal(small_bundle.node.values, node_copy)
    np.testing.assert_array_equal(small_bundle.pmcs.matrix, pmc_copy)
