"""Tests for the workload substrate and Table-3 protocol."""

import numpy as np
import pytest

from repro.errors import ValidationError, WorkloadError
from repro.workloads import (
    SUITE_SIZES,
    BenchmarkCatalog,
    Phase,
    Workload,
    burst_train,
    constant,
    periodic,
    table3_splits,
)
from repro.workloads.base import mean_intensities


class TestPhase:
    def test_activity_in_bounds(self, rng):
        p = periodic(120, 0.7, 0.4, cpu_amp=0.3, burst_rate=20.0, burst_mag=0.5)
        cpu, mem = p.synthesize(rng)
        assert cpu.shape == (120,)
        assert (cpu >= 0).all() and (cpu <= 1).all()
        assert (mem >= 0).all() and (mem <= 1).all()

    def test_constant_phase_is_flat(self, rng):
        p = constant(100, 0.5, 0.3, burst_rate=0.0, wander=0.0)
        cpu, _ = p.synthesize(rng)
        np.testing.assert_allclose(cpu, 0.5, atol=1e-9)

    def test_periodic_phase_oscillates(self, rng):
        p = periodic(200, 0.5, 0.3, cpu_amp=0.2, period_s=40, burst_rate=0.0, wander=0.0)
        cpu, _ = p.synthesize(rng)
        assert cpu.std() > 0.1

    def test_bursts_add_spikes(self):
        quiet = burst_train(400, 0.5, 0.5, burst_rate=0.0, wander=0.0)
        spiky = burst_train(400, 0.5, 0.5, burst_rate=40.0, burst_mag=0.4, wander=0.0)
        g1, g2 = np.random.default_rng(0), np.random.default_rng(0)
        cq, _ = quiet.synthesize(g1)
        cs, _ = spiky.synthesize(g2)
        assert np.abs(np.diff(cs)).max() > np.abs(np.diff(cq)).max()

    def test_validation(self):
        with pytest.raises(ValidationError):
            Phase(duration_s=0, cpu=0.5, mem=0.5)
        with pytest.raises(ValidationError):
            Phase(duration_s=10, cpu=1.5, mem=0.5)
        with pytest.raises(ValidationError):
            Phase(duration_s=10, cpu=0.5, mem=0.5, period_s=0)


class TestWorkload:
    def test_duration_honoured(self, catalog, rng):
        w = catalog.get("spec_gcc")
        cpu, mem = w.synthesize(333, rng)
        assert cpu.shape == (333,) and mem.shape == (333,)

    def test_default_duration_is_program_length(self, catalog, rng):
        w = catalog.get("hpcg")
        cpu, _ = w.synthesize(rng=rng)
        assert cpu.shape[0] == w.nominal_duration_s

    def test_repeats_for_long_requests(self, catalog, rng):
        w = catalog.get("hpcc_fft")
        cpu, _ = w.synthesize(w.nominal_duration_s * 3, rng)
        assert cpu.shape[0] == w.nominal_duration_s * 3

    def test_empty_phases_rejected(self):
        with pytest.raises(ValidationError):
            Workload("w", "S", ())

    def test_mean_intensities(self):
        w = Workload("w", "S", (constant(10, 0.2, 0.4), constant(30, 0.6, 0.8)))
        cpu, mem = mean_intensities(w)
        assert cpu == pytest.approx(0.5)
        assert mem == pytest.approx(0.7)


class TestCatalog:
    def test_total_is_96(self, catalog):
        assert len(catalog) == 96

    def test_suite_sizes_match_paper(self, catalog):
        for suite, size in SUITE_SIZES.items():
            assert len(catalog.suite(suite)) == size

    def test_paper_suite_counts(self):
        assert SUITE_SIZES == {
            "SPEC": 43, "PARSEC": 36, "HPCC": 12, "Graph500": 2,
            "HPL-AI": 1, "SMG2000": 1, "HPCG": 1,
        }

    def test_names_unique(self, catalog):
        names = catalog.names()
        assert len(names) == len(set(names))

    def test_lookup(self, catalog):
        w = catalog.get("hpcc_stream")
        assert w.suite == "HPCC"

    def test_unknown_lookup(self, catalog):
        with pytest.raises(WorkloadError):
            catalog.get("doom_eternal")
        with pytest.raises(WorkloadError):
            catalog.suite("NPB")

    def test_deterministic_given_seed(self):
        a = BenchmarkCatalog(3).get("spec_gcc")
        b = BenchmarkCatalog(3).get("spec_gcc")
        assert a.traits == b.traits

    def test_different_seeds_differ(self):
        a = BenchmarkCatalog(3).get("spec_gcc")
        b = BenchmarkCatalog(4).get("spec_gcc")
        assert a.traits != b.traits

    def test_split_partitions(self, catalog):
        train, test = catalog.split("HPCC")
        assert len(test) == 12
        assert len(train) == 96 - 12
        assert not {w.name for w in train} & {w.name for w in test}

    def test_fft_is_compute_stream_is_memory(self, catalog):
        fft = catalog.get("hpcc_fft")
        stream = catalog.get("hpcc_stream")
        fft_cpu, fft_mem = mean_intensities(fft)
        st_cpu, st_mem = mean_intensities(stream)
        assert fft_cpu > fft_mem
        assert st_mem > st_cpu

    def test_table3_has_seven_rotations(self):
        splits = table3_splits()
        assert len(splits) == 7
        assert {s.test_suite for s in splits} == set(SUITE_SIZES)
        for s in splits:
            assert s.test_suite not in s.train_suites
            assert len(s.train_suites) == 6
