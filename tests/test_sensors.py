"""Tests for the measurement substrate."""

import numpy as np
import pytest

from repro.errors import SensorUnavailableError, ValidationError
from repro.hardware import ARM_PLATFORM
from repro.sensors import (
    DirectPowerSensor,
    IPMISensor,
    PMCCollector,
    RAPLEmulator,
    SparseReadings,
)
from repro.sensors.hosts import RAPLHostReader, rapl_available
from repro.sensors.rapl import RAPL_WRAP, RAPLSample


class TestSparseReadings:
    def test_basic(self):
        r = SparseReadings(np.array([0, 10, 20]), np.array([50.0, 60.0, 55.0]), 10, 25)
        assert len(r) == 3
        assert r.coverage_mask().sum() == 3

    def test_rejects_decreasing_indices(self):
        with pytest.raises(ValidationError):
            SparseReadings(np.array([10, 5]), np.array([1.0, 2.0]), 10, 20)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            SparseReadings(np.array([0, 30]), np.array([1.0, 2.0]), 10, 20)

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            SparseReadings(np.array([], dtype=int), np.array([]), 10, 20)


class TestIPMISensor:
    def test_rate_matches_platform(self, small_bundle):
        sensor = IPMISensor(ARM_PLATFORM, seed=1)
        assert sensor.sample_rate_sa_s == pytest.approx(0.1)
        readings = sensor.sample(small_bundle)
        assert readings.interval_s == 10
        np.testing.assert_array_equal(np.diff(readings.indices), 10)

    def test_values_near_truth(self, small_bundle):
        sensor = IPMISensor(ARM_PLATFORM, seed=1)
        readings = sensor.sample(small_bundle)
        truth = small_bundle.node.values[readings.indices - sensor.delay_s]
        assert np.abs(readings.values - truth).max() < 3.0

    def test_quantisation(self, small_bundle):
        sensor = IPMISensor(ARM_PLATFORM, quantum_w=1.0, seed=1)
        readings = sensor.sample(small_bundle)
        np.testing.assert_allclose(readings.values, np.round(readings.values))

    def test_custom_interval(self, small_bundle):
        sensor = IPMISensor(ARM_PLATFORM, interval_s=30, seed=1)
        readings = sensor.sample(small_bundle)
        assert readings.interval_s == 30
        np.testing.assert_array_equal(np.diff(readings.indices), 30)

    def test_jitter_drops_readings(self, small_bundle):
        dense = IPMISensor(ARM_PLATFORM, seed=1).sample(small_bundle)
        ragged = IPMISensor(ARM_PLATFORM, jitter_prob=0.5, seed=1).sample(small_bundle)
        assert len(ragged) < len(dense)

    def test_trace_shorter_than_delay_rejected(self, small_bundle):
        sensor = IPMISensor(ARM_PLATFORM, delay_s=5, seed=1)
        with pytest.raises(ValidationError):
            sensor.sample(small_bundle.slice(0, 4))

    def test_invalid_jitter(self):
        with pytest.raises(ValidationError):
            IPMISensor(ARM_PLATFORM, jitter_prob=1.0)


class TestDirectSensor:
    def test_error_within_spec(self, small_bundle):
        sensor = DirectPowerSensor(ARM_PLATFORM, seed=2)
        p_cpu, p_mem = sensor.measure(small_bundle)
        # 0.1 W gaussian error -> mean abs error ~0.08 W
        assert np.abs(p_cpu.values - small_bundle.cpu.values).mean() < 0.15
        assert np.abs(p_mem.values - small_bundle.mem.values).mean() < 0.15

    def test_full_rate(self, small_bundle):
        sensor = DirectPowerSensor(ARM_PLATFORM, seed=2)
        p_cpu = sensor.measure_cpu(small_bundle)
        assert len(p_cpu) == len(small_bundle)
        assert p_cpu.sample_rate_hz == small_bundle.sample_rate_hz


class TestPMCCollector:
    def test_no_dropout_is_identity(self, small_bundle):
        out = PMCCollector(miss_prob=0.0, seed=1).collect(small_bundle)
        np.testing.assert_allclose(out.matrix, small_bundle.pmcs.matrix)

    def test_dropout_holds_last(self, small_bundle):
        out = PMCCollector(miss_prob=0.3, seed=1).collect(small_bundle)
        held = (out.matrix[1:] == out.matrix[:-1]).all(axis=1)
        assert held.any()

    def test_invalid_prob(self):
        with pytest.raises(ValidationError):
            PMCCollector(miss_prob=1.0)


class TestRAPLEmulator:
    def test_roundtrip_accuracy(self, small_bundle):
        rapl = RAPLEmulator(seed=3)
        p_pkg, p_ram = rapl.measure(small_bundle)
        assert len(p_pkg) == len(small_bundle)
        assert np.abs(p_pkg.values - small_bundle.cpu.values).mean() < 0.01
        assert np.abs(p_ram.values - small_bundle.mem.values).mean() < 0.01

    def test_wraparound_handled(self):
        rapl = RAPLEmulator(noise_units=0.0, seed=0)
        samples = [
            RAPLSample(0, RAPL_WRAP - 100, RAPL_WRAP - 50),
            RAPLSample(1, 100, 150),
        ]
        p_pkg, p_ram = rapl.power_from_counters(samples)
        assert p_pkg.values[0] == pytest.approx(200 * rapl.energy_unit_j)
        assert p_ram.values[0] == pytest.approx(200 * rapl.energy_unit_j)

    def test_counters_monotone_modulo_wrap(self, small_bundle):
        rapl = RAPLEmulator(noise_units=0.0, seed=3)
        samples = rapl.read_series(small_bundle, start_pkg=0, start_ram=0)
        pkg = np.array([s.pkg_counter for s in samples])
        assert (np.diff(pkg) >= 0).all()  # no wrap when starting at 0

    def test_needs_two_reads(self):
        with pytest.raises(ValidationError):
            RAPLEmulator().power_from_counters([RAPLSample(0, 1, 1)])

    def test_non_increasing_timestamps_rejected(self):
        with pytest.raises(ValidationError):
            RAPLEmulator().power_from_counters(
                [RAPLSample(1, 1, 1), RAPLSample(1, 2, 2)]
            )


class TestHostReader:
    def test_unavailable_in_container(self, tmp_path):
        # An empty directory has no intel-rapl domains.
        assert not rapl_available(str(tmp_path))
        with pytest.raises(SensorUnavailableError):
            RAPLHostReader(str(tmp_path))

    def test_reads_fake_sysfs_tree(self, tmp_path):
        dom = tmp_path / "intel-rapl:0"
        dom.mkdir()
        (dom / "name").write_text("package-0\n")
        (dom / "energy_uj").write_text("123456\n")
        reader = RAPLHostReader(str(tmp_path))
        assert reader.domains == ("package-0",)
        assert reader.read_energy_uj("package-0") == 123456

    def test_unknown_domain(self, tmp_path):
        dom = tmp_path / "intel-rapl:0"
        dom.mkdir()
        (dom / "name").write_text("package-0\n")
        reader = RAPLHostReader(str(tmp_path))
        with pytest.raises(SensorUnavailableError):
            reader.read_energy_uj("dram")
