"""Tier-1 gate: the codebase must satisfy its own static-analysis suite.

Every future PR runs through here — a new global-RNG call, upward import,
wall-clock read in numerics, frozen-trace mutation, unvalidated boundary,
swallowed exception, BLAS-order matmul in a bit-identity module, per-sample
Python loop on the hot path, stateful Stage, module-global mutation from
worker-eligible code, frozen ambient registry, or undocumented suppression
fails this test with the offending file:line in the assertion message.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import LintEngine, load_config

REPO_ROOT = Path(__file__).resolve().parents[1]
LINTED = ("src/repro", "examples", "benchmarks", "scripts")


def test_codebase_lints_clean():
    engine = LintEngine(load_config(REPO_ROOT))
    paths = [REPO_ROOT / p for p in LINTED if (REPO_ROOT / p).exists()]
    diagnostics = engine.lint_paths(paths)
    report = "\n".join(d.render() for d in diagnostics)
    assert not diagnostics, f"repro-lint found violations:\n{report}"
