"""Tests for the HighRPM facade, config, and active learning."""

import numpy as np
import pytest

from repro.core import HighRPM, HighRPMConfig
from repro.core.active_learning import ReinforcementSampler, SamplePool
from repro.errors import NotFittedError, ValidationError
from repro.hardware import ARM_PLATFORM
from repro.ml import mape
from repro.sensors import IPMISensor


@pytest.fixture(scope="module")
def train_bundles(arm_sim, catalog):
    names = ["spec_gcc", "spec_mcf", "parsec_ferret", "hpcc_hpl",
             "hpcc_stream", "parsec_radix"]
    return [arm_sim.run(catalog.get(n), duration_s=120) for n in names]


@pytest.fixture(scope="module")
def fitted(train_bundles):
    cfg = HighRPMConfig(miss_interval=10, lstm_iters=300, srr_iters=2500, seed=2)
    hr = HighRPM(cfg, p_bottom=ARM_PLATFORM.min_node_power_w,
                 p_upper=ARM_PLATFORM.max_node_power_w)
    return hr.fit_initial(train_bundles)


class TestConfig:
    def test_defaults_valid(self):
        HighRPMConfig()

    def test_miss_interval_bound(self):
        with pytest.raises(ValidationError):
            HighRPMConfig(miss_interval=1)

    def test_alpha_beta_order(self):
        with pytest.raises(ValidationError):
            HighRPMConfig(alpha=0.3, beta=0.2)

    def test_limit_order(self):
        with pytest.raises(ValidationError):
            HighRPMConfig(p_upper=10.0, p_bottom=20.0)

    def test_fraction_bound(self):
        with pytest.raises(ValidationError):
            HighRPMConfig(reinforcement_fraction=0.0)


class TestHighRPM:
    def test_monitor_offline(self, fitted, small_bundle, ipmi_readings):
        result = fitted.monitor_offline(small_bundle.pmcs.matrix, ipmi_readings)
        assert result.mode == "static"
        assert len(result) == len(small_bundle)
        assert mape(small_bundle.node.values, result.p_node) < 12.0

    def test_monitor_online(self, fitted, small_bundle, ipmi_readings):
        result = fitted.monitor_online(small_bundle.pmcs.matrix, ipmi_readings)
        assert result.mode == "dynamic"
        assert mape(small_bundle.node.values, result.p_node) < 15.0
        assert mape(small_bundle.cpu.values, result.p_cpu) < 25.0

    def test_p_other_residual(self, fitted, small_bundle, ipmi_readings):
        result = fitted.monitor_offline(small_bundle.pmcs.matrix, ipmi_readings)
        # implied peripheral power should hover near the 25 W budget
        assert np.median(result.p_other) == pytest.approx(25.0, abs=3.0)

    def test_requires_fit(self, small_bundle, ipmi_readings):
        hr = HighRPM()
        with pytest.raises(NotFittedError):
            hr.monitor_offline(small_bundle.pmcs.matrix, ipmi_readings)

    def test_fit_needs_bundles(self):
        with pytest.raises(ValidationError):
            HighRPM().fit_initial([])

    def test_active_learning_runs_and_keeps_accuracy(
        self, fitted, arm_sim, catalog, small_bundle, ipmi_readings
    ):
        import copy

        hr = copy.deepcopy(fitted)
        extra = arm_sim.run(catalog.get("parsec_canneal"), duration_s=120)
        sensor = IPMISensor(ARM_PLATFORM, seed=77)
        readings = sensor.sample(extra)
        before = mape(
            small_bundle.cpu.values,
            hr.monitor_offline(small_bundle.pmcs.matrix, ipmi_readings).p_cpu,
        )
        hr.active_learning([(extra.pmcs.matrix, readings)])
        after = mape(
            small_bundle.cpu.values,
            hr.monitor_offline(small_bundle.pmcs.matrix, ipmi_readings).p_cpu,
        )
        assert after < before * 1.5  # adaptation must not wreck the model

    def test_active_learning_noop_without_data(self, fitted):
        assert fitted.active_learning([]) is fitted


class TestReinforcementSampler:
    def make_pool(self, n=100, restored_frac=0.5):
        k = int(n * restored_frac)
        return SamplePool(
            pmcs=np.random.default_rng(0).random((n, 3)),
            p_node=np.full(n, 80.0),
            p_cpu=np.full(n, 40.0),
            p_mem=np.full(n, 15.0),
            restored=np.array([False] * (n - k) + [True] * k),
        )

    def test_draw_size(self):
        pool = self.make_pool()
        batch = ReinforcementSampler(fraction=0.3, rng=1).draw(pool)
        assert len(batch) == 30

    def test_draw_without_replacement(self):
        pool = self.make_pool(10)
        batch = ReinforcementSampler(fraction=1.0, rng=1).draw(pool)
        assert len(batch) == 10

    def test_restored_weighting_biases_draw(self):
        pool = self.make_pool(1000, restored_frac=0.5)
        heavy = ReinforcementSampler(fraction=0.2, restored_weight=10.0, rng=1)
        batch = heavy.draw(pool)
        assert batch.restored.mean() > 0.7

    def test_zero_fraction_rejected(self):
        with pytest.raises(ValidationError):
            ReinforcementSampler(fraction=0.0)

    def test_merge(self):
        a, b = self.make_pool(10), self.make_pool(20)
        merged = SamplePool.merge(a, b)
        assert len(merged) == 30

    def test_pool_validates_lengths(self):
        with pytest.raises(ValidationError):
            SamplePool(
                pmcs=np.ones((5, 2)), p_node=np.ones(4), p_cpu=np.ones(5),
                p_mem=np.ones(5), restored=np.zeros(5, dtype=bool),
            )
