"""Tests for external trace replay."""

import numpy as np
import pytest

from repro.errors import ValidationError, WorkloadError
from repro.hardware import ARM_PLATFORM, NodeSimulator
from repro.workloads.traces import TraceWorkload, load_trace_csv


@pytest.fixture()
def trace():
    t = np.linspace(0, 4 * np.pi, 120)
    return TraceWorkload(
        name="recorded",
        cpu_activity=0.5 + 0.3 * np.sin(t),
        mem_intensity=np.full(120, 0.4),
    )


class TestTraceWorkload:
    def test_replay_verbatim(self, trace):
        cpu, mem = trace.synthesize()
        np.testing.assert_allclose(cpu, trace.cpu_activity)
        assert cpu.shape == (120,)

    def test_truncation(self, trace):
        cpu, _ = trace.synthesize(50)
        np.testing.assert_allclose(cpu, trace.cpu_activity[:50])

    def test_looping(self, trace):
        cpu, _ = trace.synthesize(300)
        assert cpu.shape == (300,)
        np.testing.assert_allclose(cpu[120:240], trace.cpu_activity)

    def test_bounds_validated(self):
        with pytest.raises(ValidationError):
            TraceWorkload("x", np.array([1.5]), np.array([0.5]))

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            TraceWorkload("x", np.ones(3), np.ones(4))

    def test_runs_through_simulator(self, trace):
        sim = NodeSimulator(ARM_PLATFORM, seed=3)
        bundle = sim.run(trace, duration_s=100)
        assert len(bundle) == 100
        assert bundle.check_additivity(atol=1e-9)
        assert bundle.workload == "recorded"

    def test_deterministic_replay_in_simulator(self, trace):
        # Same seed + same trace -> identical power (replay ignores rng).
        a = NodeSimulator(ARM_PLATFORM, seed=4).run(trace, duration_s=60)
        b = NodeSimulator(ARM_PLATFORM, seed=4).run(trace, duration_s=60)
        np.testing.assert_allclose(a.node.values, b.node.values)


class TestCSVImport:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "mytrace.csv"
        path.write_text("cpu,mem\n0.5,0.2\n0.7,0.3\n0.6,0.25\n")
        w = load_trace_csv(str(path))
        assert w.name == "mytrace"
        assert w.nominal_duration_s == 3
        np.testing.assert_allclose(w.cpu_activity, [0.5, 0.7, 0.6])

    def test_missing_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(WorkloadError):
            load_trace_csv(str(path))

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("cpu,mem\n")
        with pytest.raises(WorkloadError):
            load_trace_csv(str(path))

    def test_out_of_range_rejected(self, tmp_path):
        path = tmp_path / "oor.csv"
        path.write_text("cpu,mem\n1.4,0.2\n")
        with pytest.raises(ValidationError):
            load_trace_csv(str(path))

    def test_traits_seed(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("cpu,mem\n0.5,0.5\n0.6,0.4\n")
        a = load_trace_csv(str(path), traits_seed=1)
        b = load_trace_csv(str(path), traits_seed=1)
        c = load_trace_csv(str(path), traits_seed=2)
        assert a.traits == b.traits
        assert a.traits != c.traits
