"""Tests for the evaluation harness and table rendering."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.eval import (
    EvalSettings,
    build_campaign,
    build_split,
    evaluate_flat_model,
    evaluate_rnn_model,
    format_table,
)
from repro.eval.tables import mean_report, metric_columns, score_row
from repro.ml.metrics import ScoreReport
from repro.workloads import default_catalog


@pytest.fixture(scope="module")
def tiny_settings():
    return EvalSettings(
        seconds_per_benchmark=60,
        samples_per_set=120,
        test_suites=("HPCG",),
        rnn_iters=60,
        lstm_iters=60,
        srr_iters=300,
    )


@pytest.fixture(scope="module")
def tiny_campaign(tiny_settings):
    catalog = default_catalog(tiny_settings.seed)
    return catalog, build_campaign(tiny_settings, catalog)


class TestSettings:
    def test_quick_smaller_than_full(self):
        q, f = EvalSettings.quick(), EvalSettings.full()
        assert q.samples_per_set < f.samples_per_set
        assert len(q.test_suites) < len(f.test_suites)

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert EvalSettings.from_env().samples_per_set == EvalSettings.quick().samples_per_set
        monkeypatch.setenv("REPRO_FULL", "1")
        assert EvalSettings.from_env().samples_per_set == 1000

    def test_on_platform(self):
        assert EvalSettings.quick().on_platform("x86").platform == "x86"


class TestCampaignAndSplit:
    def test_campaign_covers_catalog(self, tiny_campaign):
        catalog, campaign = tiny_campaign
        assert set(campaign) == set(catalog.names())

    def test_split_protocols(self, tiny_settings, tiny_campaign):
        catalog, campaign = tiny_campaign
        split = build_split(tiny_settings, campaign, catalog, "HPCG")
        # unseen test bundles all come from the held-out suite
        assert all(b.workload == "hpcg" for b in split.test_unseen)
        assert all(b.workload != "hpcg" or True for b in split.train_unseen)
        train_names = {b.workload for b in split.train_unseen}
        assert "hpcg" not in train_names
        # seen protocol has matching train/test tails
        assert len(split.test_seen) == len(split.seen_pairs)

    def test_sample_budget_respected(self, tiny_settings, tiny_campaign):
        catalog, campaign = tiny_campaign
        split = build_split(tiny_settings, campaign, catalog, "HPCG")
        spec_total = sum(
            len(b) for b in split.train_unseen
            if b.workload.startswith("spec_")
        )
        assert spec_total <= tiny_settings.samples_per_set

    def test_unknown_suite_rejected(self, tiny_settings, tiny_campaign):
        catalog, campaign = tiny_campaign
        with pytest.raises(ExperimentError):
            build_split(tiny_settings, campaign, catalog, "NPB")

    def test_flat_alignment(self, tiny_settings, tiny_campaign):
        catalog, campaign = tiny_campaign
        split = build_split(tiny_settings, campaign, catalog, "HPCG")
        train, test = split.flat(False)
        assert len(train) == sum(len(b) for b in split.train_unseen)
        assert len(test) == sum(len(b) for b in split.test_unseen)


class TestModelEvaluation:
    def test_flat_model(self, tiny_settings, tiny_campaign):
        catalog, campaign = tiny_campaign
        split = build_split(tiny_settings, campaign, catalog, "HPCG")
        train, test = split.flat(False)
        report = evaluate_flat_model("LR", train, test, "p_node")
        assert 0 < report.mape < 100

    def test_rnn_model(self, tiny_settings, tiny_campaign):
        catalog, campaign = tiny_campaign
        split = build_split(tiny_settings, campaign, catalog, "HPCG")
        report = evaluate_rnn_model(
            "GRU", split.train_unseen[:3], split.test_unseen, tiny_settings
        )
        assert np.isfinite(report.mape)


class TestTables:
    def test_format_table_renders(self):
        text = format_table("T", ["A", "B"], [[1.234567, "x"], [2.0, "y"]])
        assert "T" in text and "1.23" in text and "y" in text

    def test_score_row_handles_none(self):
        row = score_row("m", None, ScoreReport(1, 2, 3, 0.9))
        assert row[:4] == ["m", "-", "-", "-"]

    def test_metric_columns(self):
        cols = metric_columns(["seen", "unseen"])
        assert cols[0] == "Model" and len(cols) == 7

    def test_mean_report(self):
        r = mean_report([ScoreReport(2, 4, 6, 1.0), ScoreReport(4, 8, 10, 0.0)])
        assert (r.mape, r.rmse, r.mae, r.r2) == (3, 6, 8, 0.5)

    def test_mean_report_empty(self):
        with pytest.raises(ValueError):
            mean_report([])
