"""Tests for the MLP (NN baseline + SRR model)."""

import numpy as np
import pytest

from repro.errors import NotFittedError, ValidationError
from repro.ml import MLPRegressor, rmse


class TestMLP:
    def test_fits_linear_function(self, rng):
        X = rng.normal(size=(400, 3))
        y = X @ np.array([1.0, -2.0, 0.5]) + 3.0
        m = MLPRegressor(hidden_layer_sizes=16, max_iter=3000, random_state=0)
        m.fit(X, y)
        assert rmse(y, m.predict(X)) < 0.35

    def test_fits_nonlinear_function(self, rng):
        X = rng.uniform(-2, 2, size=(600, 1))
        y = np.sin(2 * X[:, 0])
        m = MLPRegressor(hidden_layer_sizes=(32, 16), max_iter=5000, random_state=0)
        m.fit(X, y)
        assert rmse(y, m.predict(X)) < 0.25

    def test_multi_output(self, rng):
        X = rng.normal(size=(300, 4))
        Y = np.column_stack([X[:, 0] * 2.0 + 1.0, X[:, 1] - X[:, 2]])
        m = MLPRegressor(hidden_layer_sizes=24, max_iter=4000, random_state=0)
        m.fit(X, Y)
        pred = m.predict(X)
        assert pred.shape == (300, 2)
        assert rmse(Y[:, 0], pred[:, 0]) < 0.4
        assert rmse(Y[:, 1], pred[:, 1]) < 0.4

    def test_output_shape_1d(self, rng):
        X = rng.normal(size=(50, 2))
        m = MLPRegressor(max_iter=100, random_state=0).fit(X, X[:, 0])
        assert m.predict(X).shape == (50,)

    def test_deterministic_given_seed(self, rng):
        X = rng.normal(size=(80, 2))
        y = X[:, 0]
        a = MLPRegressor(max_iter=300, random_state=4).fit(X, y).predict(X)
        b = MLPRegressor(max_iter=300, random_state=4).fit(X, y).predict(X)
        np.testing.assert_allclose(a, b)

    def test_warm_start_continues(self, rng):
        X = rng.normal(size=(300, 2))
        y = X[:, 0] * 3.0
        m = MLPRegressor(max_iter=200, random_state=0).fit(X, y)
        err_before = rmse(y, m.predict(X))
        m.partial_fit(X, y, n_steps=2000)
        assert rmse(y, m.predict(X)) <= err_before

    def test_partial_fit_resumes_adam_state(self, rng):
        # Regression: warm starts used to re-zero the Adam moments while the
        # bias-correction step kept counting, so the correction factors were
        # ~1 against empty moments and fine-tuning steps were crippled. The
        # moments and step counter must persist across warm starts.
        X = rng.uniform(-2, 2, size=(400, 1))
        y = np.sin(2 * X[:, 0])
        m = MLPRegressor(hidden_layer_sizes=16, max_iter=150, random_state=0)
        m.fit(X, y)
        assert m._adam_state is not None
        assert m._adam_state[4] == len(m.loss_curve_)  # one update per recorded loss
        loss_before = float(np.mean(m.loss_curve_[-20:]))
        m.partial_fit(X, y, n_steps=1500)
        assert m._adam_state[4] == len(m.loss_curve_)  # counter advanced, not reset
        loss_after = float(np.mean(m.loss_curve_[-20:]))
        # 150 iterations leave plenty of headroom: fine-tuning must actually
        # move the loss, which the broken optimiser state did not.
        assert loss_after < 0.5 * loss_before

    def test_cold_fit_resets_adam_state(self, rng):
        X = rng.normal(size=(100, 2))
        m = MLPRegressor(max_iter=50, random_state=0).fit(X, X[:, 0])
        t_first = m._adam_state[4]
        m.fit(X, X[:, 1])  # fresh fit, not a warm start
        assert m._adam_state[4] == t_first == 50

    def test_raw_pmcs_scale_handled(self, rng):
        # Features spanning 1e0..1e9, like real counters.
        X = np.column_stack([
            rng.uniform(0, 1, 200) * 1e9,
            rng.uniform(0, 1, 200) * 1e3,
        ])
        y = X[:, 0] / 1e9 + X[:, 1] / 1e3
        m = MLPRegressor(hidden_layer_sizes=16, max_iter=3000, random_state=0)
        m.fit(X, y)
        assert rmse(y, m.predict(X)) < 0.3

    def test_invalid_activation(self):
        with pytest.raises(ValidationError):
            MLPRegressor(activation="softplus")

    def test_invalid_hidden_sizes(self):
        with pytest.raises(ValidationError):
            MLPRegressor(hidden_layer_sizes=(0,))

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            MLPRegressor().predict(np.ones((2, 2)))

    def test_loss_curve_recorded(self, rng):
        X = rng.normal(size=(60, 2))
        m = MLPRegressor(max_iter=50, random_state=0).fit(X, X[:, 0])
        assert len(m.loss_curve_) > 0
