"""Tests for the interpolation substrate."""

import numpy as np
import pytest
from scipy.interpolate import CubicSpline

from repro.errors import NotFittedError, ValidationError
from repro.interp import ARForecaster, CubicSplineInterpolator, LinearInterpolator


class TestCubicSpline:
    def test_matches_scipy_natural_spline(self, rng):
        x = np.sort(rng.uniform(0, 20, 15))
        y = np.sin(x) + 0.2 * x
        ours = CubicSplineInterpolator().fit(x, y)
        ref = CubicSpline(x, y, bc_type="natural")
        xq = np.linspace(x[0], x[-1], 300)
        np.testing.assert_allclose(ours.predict(xq), ref(xq), atol=1e-10)

    def test_interpolates_knots_exactly(self, rng):
        x = np.arange(8.0)
        y = rng.normal(size=8)
        s = CubicSplineInterpolator().fit(x, y)
        np.testing.assert_allclose(s.predict(x), y, atol=1e-12)

    def test_two_knots_is_linear(self):
        s = CubicSplineInterpolator().fit([0.0, 10.0], [0.0, 20.0])
        np.testing.assert_allclose(s.predict([5.0]), [10.0])

    def test_unsorted_input_handled(self):
        s = CubicSplineInterpolator().fit([3.0, 1.0, 2.0], [9.0, 1.0, 4.0])
        np.testing.assert_allclose(s.predict([1.0, 2.0, 3.0]), [1, 4, 9], atol=1e-12)

    def test_linear_extrapolation_is_finite_and_continuous(self):
        x = np.arange(5.0)
        y = x**2
        s = CubicSplineInterpolator().fit(x, y)
        left = s.predict([-1.0, -0.001, 0.0])
        assert np.isfinite(left).all()
        assert abs(left[1] - left[2]) < 0.01

    def test_clamp_extrapolation(self):
        s = CubicSplineInterpolator(extrapolate="clamp").fit([0.0, 1.0, 2.0], [5.0, 7.0, 6.0])
        np.testing.assert_allclose(s.predict([-3.0, 9.0]), [5.0, 6.0])

    def test_duplicate_knots_rejected(self):
        with pytest.raises(ValidationError):
            CubicSplineInterpolator().fit([1.0, 1.0, 2.0], [0.0, 1.0, 2.0])

    def test_single_knot_rejected(self):
        with pytest.raises(ValidationError):
            CubicSplineInterpolator().fit([1.0], [2.0])

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            CubicSplineInterpolator().predict([0.0])

    def test_invalid_extrapolate_mode(self):
        with pytest.raises(ValidationError):
            CubicSplineInterpolator(extrapolate="wild")

    def test_smoother_than_linear_on_smooth_signal(self, rng):
        t = np.linspace(0, 6 * np.pi, 400)
        y = 50 + 10 * np.sin(t)
        knots = np.arange(0, 400, 10)
        xq = np.arange(400, dtype=float)
        spline_err = np.abs(
            CubicSplineInterpolator().fit(knots.astype(float), y[knots]).predict(xq) - y
        ).mean()
        linear_err = np.abs(
            LinearInterpolator().fit(knots.astype(float), y[knots]).predict(xq) - y
        ).mean()
        assert spline_err < linear_err


class TestLinearInterpolator:
    def test_midpoint(self):
        li = LinearInterpolator().fit([0.0, 2.0], [0.0, 4.0])
        np.testing.assert_allclose(li.predict([1.0]), [2.0])

    def test_clamps_outside_range(self):
        li = LinearInterpolator().fit([0.0, 1.0], [3.0, 5.0])
        np.testing.assert_allclose(li.predict([-1.0, 2.0]), [3.0, 5.0])

    def test_duplicate_x_rejected(self):
        with pytest.raises(ValidationError):
            LinearInterpolator().fit([1.0, 1.0], [0.0, 1.0])

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            LinearInterpolator().predict([0.0])


class TestARForecaster:
    def test_recovers_ar1_coefficient(self, rng):
        n = 2000
        y = np.zeros(n)
        for i in range(1, n):
            y[i] = 0.8 * y[i - 1] + rng.normal(0, 0.1)
        model = ARForecaster(order=1).fit(y)
        assert model.coef_[0] == pytest.approx(0.8, abs=0.05)

    def test_forecast_constant_series(self):
        model = ARForecaster(order=2).fit(np.full(50, 7.0))
        np.testing.assert_allclose(model.forecast(5), np.full(5, 7.0), atol=1e-6)

    def test_forecast_length(self, rng):
        model = ARForecaster(order=3).fit(rng.normal(size=100))
        assert model.forecast(12).shape == (12,)

    def test_in_sample_prediction_tracks(self, rng):
        t = np.linspace(0, 8 * np.pi, 500)
        y = np.sin(t)
        model = ARForecaster(order=5).fit(y)
        pred = model.predict_in_sample(y)
        assert np.abs(pred[5:] - y[5:]).mean() < 0.05

    def test_too_short_series(self):
        with pytest.raises(ValidationError):
            ARForecaster(order=10).fit(np.arange(5.0))

    def test_forecast_before_fit(self):
        with pytest.raises(NotFittedError):
            ARForecaster().forecast(3)

    def test_forecast_needs_history(self, rng):
        model = ARForecaster(order=4).fit(rng.normal(size=50))
        with pytest.raises(ValidationError):
            model.forecast(2, history=np.ones(2))
