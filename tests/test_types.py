"""Tests for the shared trace containers."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.types import PMC_EVENTS, PMCTrace, PowerTrace, TraceBundle, concat_bundles


def make_trace(n=20, rate=1.0, label="node"):
    return PowerTrace(np.linspace(10, 30, n), rate, label)


def make_pmcs(n=20):
    return PMCTrace(np.abs(np.arange(n * len(PMC_EVENTS)).reshape(n, -1)) + 1.0)


class TestPowerTrace:
    def test_basic_properties(self):
        t = make_trace(10, rate=2.0)
        assert len(t) == 10
        assert t.duration_s == 5.0
        assert t.times[1] == 0.5

    def test_values_are_readonly(self):
        t = make_trace()
        with pytest.raises(ValueError):
            t.values[0] = 99.0

    def test_energy_is_sum_over_rate(self):
        t = PowerTrace(np.full(10, 100.0), sample_rate_hz=2.0)
        assert t.energy_joules() == pytest.approx(500.0)

    def test_mean_and_peak(self):
        t = PowerTrace(np.array([1.0, 5.0, 3.0]))
        assert t.mean_power() == pytest.approx(3.0)
        assert t.peak_power() == 5.0

    def test_rejects_negative_power(self):
        with pytest.raises(ValidationError):
            PowerTrace(np.array([1.0, -2.0]))

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            PowerTrace(np.array([1.0, np.nan]))

    def test_rejects_bad_rate(self):
        with pytest.raises(ValidationError):
            PowerTrace(np.ones(3), sample_rate_hz=0.0)

    def test_slice(self):
        t = make_trace(10)
        s = t.slice(2, 5)
        assert len(s) == 3
        np.testing.assert_allclose(s.values, t.values[2:5])

    def test_decimate_halves_rate(self):
        t = make_trace(10, rate=1.0)
        d = t.decimate(2)
        assert len(d) == 5
        assert d.sample_rate_hz == 0.5

    def test_decimate_rejects_zero(self):
        with pytest.raises(ValidationError):
            make_trace().decimate(0)

    def test_empty_trace_mean_raises(self):
        t = PowerTrace(np.empty(0))
        with pytest.raises(ValidationError):
            t.mean_power()


class TestPMCTrace:
    def test_shape_and_events(self):
        p = make_pmcs(5)
        assert len(p) == 5
        assert p.n_events == len(PMC_EVENTS)

    def test_column_lookup(self):
        p = make_pmcs(5)
        np.testing.assert_allclose(p.column("CPU_CYCLES"), p.matrix[:, 0])

    def test_column_unknown_event(self):
        with pytest.raises(ValidationError):
            make_pmcs().column("NOT_AN_EVENT")

    def test_select_projects_and_orders(self):
        p = make_pmcs(4)
        sub = p.select(["MEM_ACCESS", "CPU_CYCLES"])
        assert sub.events == ("MEM_ACCESS", "CPU_CYCLES")
        np.testing.assert_allclose(sub.matrix[:, 1], p.column("CPU_CYCLES"))

    def test_select_unknown(self):
        with pytest.raises(ValidationError):
            make_pmcs().select(["NOPE"])

    def test_rejects_mismatched_names(self):
        with pytest.raises(ValidationError):
            PMCTrace(np.ones((3, 2)), events=("A",))

    def test_rejects_negative_counts(self):
        m = np.ones((3, len(PMC_EVENTS)))
        m[0, 0] = -1
        with pytest.raises(ValidationError):
            PMCTrace(m)


class TestTraceBundle:
    def make(self, n=20):
        return TraceBundle(
            node=PowerTrace(np.full(n, 60.0), label="node"),
            cpu=PowerTrace(np.full(n, 25.0), label="cpu"),
            mem=PowerTrace(np.full(n, 10.0), label="mem"),
            other=PowerTrace(np.full(n, 25.0), label="other"),
            pmcs=make_pmcs(n),
            workload="w",
        )

    def test_additivity_check(self):
        assert self.make().check_additivity()

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValidationError):
            TraceBundle(
                node=make_trace(5),
                cpu=make_trace(6),
                mem=make_trace(5),
                other=make_trace(5),
                pmcs=make_pmcs(5),
            )

    def test_slice_preserves_invariants(self):
        b = self.make(20).slice(5, 15)
        assert len(b) == 10
        assert b.check_additivity()

    def test_concat(self):
        b = self.make(10)
        cat = concat_bundles([b, b])
        assert len(cat) == 20
        assert cat.check_additivity()

    def test_concat_empty_rejected(self):
        with pytest.raises(ValidationError):
            concat_bundles([])

    def test_simulated_bundle_is_additive(self, small_bundle):
        assert small_bundle.check_additivity(atol=1e-9)
