"""Tests for the Table-4 model zoo and the base estimator contract."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.ml import BASELINE_MODELS, baseline_names, clone, make_baseline
from repro.ml.registry import MODEL_GROUPS, SEQUENCE_MODELS, is_sequence_model


class TestRegistry:
    def test_twelve_models(self):
        assert len(baseline_names()) == 12

    def test_paper_abbreviations_present(self):
        expected = {"LR", "LaR", "RR", "SGD", "DT", "RF", "GB", "KNN", "SVM",
                    "NN", "GRU", "LSTM"}
        assert set(baseline_names()) == expected

    def test_groups_cover_all(self):
        grouped = [n for names in MODEL_GROUPS.values() for n in names]
        assert sorted(grouped) == sorted(baseline_names())

    def test_sequence_models(self):
        assert SEQUENCE_MODELS == {"GRU", "LSTM"}
        assert is_sequence_model("LSTM") and not is_sequence_model("LR")

    def test_factories_return_fresh_instances(self):
        a = make_baseline("DT")
        b = make_baseline("DT")
        assert a is not b

    def test_unknown_name(self):
        with pytest.raises(ValidationError):
            make_baseline("XGB")

    @pytest.mark.parametrize("name", [n for n in BASELINE_MODELS if n not in SEQUENCE_MODELS])
    def test_flat_models_fit_predict(self, name, rng):
        X = rng.uniform(0, 1, size=(120, 4)) * np.array([1e9, 1e6, 1e3, 1.0])
        y = 40.0 + 30.0 * X[:, 0] / 1e9 + rng.normal(0, 0.5, 120)
        m = make_baseline(name)
        m.fit(X[:90], y[:90])
        pred = m.predict(X[90:])
        assert pred.shape == (30,)
        assert np.isfinite(pred).all()

    @pytest.mark.parametrize("name", sorted(SEQUENCE_MODELS))
    def test_sequence_models_fit_predict(self, name, rng):
        X = rng.normal(size=(60, 5, 3))
        y = X[:, -1, 0] * 2.0
        m = make_baseline(name)
        m.set_params(max_iter=60)
        m.fit(X[:45], y[:45])
        pred = m.predict(X[45:])
        assert pred.shape == (15,)
        assert np.isfinite(pred).all()


class TestEstimatorContract:
    def test_clone_resets_fit_state(self, rng):
        from repro.ml import DecisionTreeRegressor

        X = rng.normal(size=(30, 2))
        m = DecisionTreeRegressor(max_depth=2).fit(X, X[:, 0])
        c = clone(m)
        assert c.max_depth == 2
        assert c.nodes_ is None

    def test_set_params_rejects_unknown(self):
        from repro.ml import RidgeRegression

        with pytest.raises(ValueError):
            RidgeRegression().set_params(bogus=1)

    def test_repr_contains_params(self):
        from repro.ml import KNeighborsRegressor

        assert "n_neighbors=3" in repr(KNeighborsRegressor())

    def test_score_is_r2(self, rng):
        from repro.ml import LinearRegression

        X = rng.normal(size=(50, 2))
        y = X @ np.array([1.0, 2.0])
        m = LinearRegression().fit(X, y)
        assert m.score(X, y) == pytest.approx(1.0, abs=1e-9)

    def test_scaled_wrapper_clone_is_fresh(self):
        m = make_baseline("SVM")
        c = clone(m)
        assert c is not m
        assert c.inner is not m.inner
