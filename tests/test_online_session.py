"""Fine-grained tests for the DynamicTRR online session mechanics."""

import numpy as np
import pytest

from repro.core import DynamicTRR, HighRPMConfig
from repro.core.dynamic_trr import OnlineTRRSession
from repro.hardware import ARM_PLATFORM
from repro.sensors import IPMISensor


@pytest.fixture(scope="module")
def train_bundles(arm_sim, catalog):
    names = ["spec_gcc", "spec_mcf", "hpcc_hpl", "hpcc_stream"]
    return [arm_sim.run(catalog.get(n), duration_s=100) for n in names]


@pytest.fixture(scope="module")
def dyn(train_bundles):
    model = DynamicTRR(HighRPMConfig(miss_interval=10, lstm_iters=150, seed=4))
    model.fit(train_bundles, p_bottom=ARM_PLATFORM.min_node_power_w,
              p_upper=ARM_PLATFORM.max_node_power_w)
    return model


class TestSessionMechanics:
    def test_measured_mask_tracks_readings(self, dyn, small_bundle, ipmi_readings):
        session = dyn.session()
        session.run(small_bundle.pmcs.matrix, ipmi_readings)
        mask = session.measured_mask
        assert mask.sum() == len(ipmi_readings)
        assert mask[ipmi_readings.indices].all()

    def test_estimates_accumulate_one_per_step(self, dyn, small_bundle):
        session = dyn.session()
        for t in range(5):
            session.step(small_bundle.pmcs.matrix[t])
        assert session.estimates.shape == (5,)

    def test_hold_channel_updates_on_reading(self, dyn, small_bundle):
        session = dyn.session()
        session.step(small_bundle.pmcs.matrix[0], im_reading=90.0)
        assert session._hold[0] == 90.0
        session.step(small_bundle.pmcs.matrix[1])
        # Next step's window holds the last reading in the feature channel.
        assert session._window(1)[0, -1, -1] == 90.0

    def test_replay_buffer_capped(self, dyn, small_bundle):
        session = dyn.session()
        cap = OnlineTRRSession.BUFFER_CAP
        pmcs = small_bundle.pmcs.matrix
        for t in range(cap + 10):
            session.step(pmcs[t % len(small_bundle)], im_reading=85.0)
        assert len(session._buffer_X) == cap

    def test_two_sessions_independent(self, dyn, small_bundle, ipmi_readings):
        a = dyn.session()
        b = dyn.session()
        pa = a.run(small_bundle.pmcs.matrix, ipmi_readings)
        pb = b.run(small_bundle.pmcs.matrix, ipmi_readings)
        np.testing.assert_allclose(pa, pb)  # same model copy, same inputs

    def test_first_step_without_reading_uses_train_mean(self, dyn, small_bundle):
        session = dyn.session()
        est = session.step(small_bundle.pmcs.matrix[0])
        # Cold start anchors at the training-campaign mean power; the first
        # estimate cannot stray far from it.
        assert abs(est - dyn.train_power_mean_) < 0.5 * dyn.train_power_mean_

    def test_window_width_is_miss_interval(self, dyn, small_bundle):
        session = dyn.session()
        for t in range(15):
            session.step(small_bundle.pmcs.matrix[t])
        X = session._window(14)
        assert X.shape == (1, dyn.config.miss_interval, dyn.n_pmcs_ + 1)

    def test_interval_mismatch_still_runs(self, dyn, small_bundle):
        """Readings at 20 s spacing into a model trained for 10 s windows:
        degraded but functional (the §6.4.6 scenario)."""
        sensor = IPMISensor(ARM_PLATFORM, interval_s=20, seed=3)
        readings = sensor.sample(small_bundle)
        p = dyn.restore(small_bundle.pmcs.matrix, readings)
        assert np.isfinite(p).all()
