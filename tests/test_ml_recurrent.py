"""Tests for the LSTM/GRU regressors (gradient check included)."""

import numpy as np
import pytest

from repro.errors import NotFittedError, ValidationError
from repro.ml import GRURegressor, LSTMRegressor, rmse


@pytest.fixture()
def cumsum_sequences(rng):
    """Sequences whose per-step label is the running sum of feature 0 —
    solvable only by carrying state across time."""
    X = rng.normal(size=(300, 6, 3))
    Y = X[:, :, 0].cumsum(axis=1)
    return X, Y


@pytest.mark.parametrize("cls", [LSTMRegressor, GRURegressor])
class TestRecurrentCommon:
    def test_learns_temporal_dependency(self, cls, cumsum_sequences):
        X, Y = cumsum_sequences
        m = cls(hidden_size=8, num_layers=1, max_iter=400, random_state=0)
        m.fit(X[:220], Y[:220])
        pred = m.predict(X[220:], return_sequences=True)
        trivial = rmse(Y[220:].ravel(), np.zeros(Y[220:].size))
        assert rmse(Y[220:].ravel(), pred.ravel()) < trivial * 0.4

    def test_last_step_labels(self, cls, cumsum_sequences):
        X, Y = cumsum_sequences
        m = cls(hidden_size=8, num_layers=1, max_iter=300, random_state=0)
        m.fit(X[:200], Y[:200, -1])
        pred = m.predict(X[200:])
        assert pred.shape == (100,)
        trivial = rmse(Y[200:, -1], np.full(100, Y[:200, -1].mean()))
        assert rmse(Y[200:, -1], pred) < trivial

    def test_deterministic_given_seed(self, cls, cumsum_sequences):
        X, Y = cumsum_sequences
        a = cls(max_iter=50, random_state=3).fit(X[:50], Y[:50]).predict(X[50:60])
        b = cls(max_iter=50, random_state=3).fit(X[:50], Y[:50]).predict(X[50:60])
        np.testing.assert_allclose(a, b)

    def test_rejects_2d_input(self, cls):
        with pytest.raises(ValidationError):
            cls().fit(np.ones((10, 3)), np.ones(10))

    def test_rejects_bad_label_shape(self, cls):
        with pytest.raises(ValidationError):
            cls().fit(np.ones((10, 4, 2)), np.ones((10, 3)))

    def test_predict_before_fit(self, cls):
        with pytest.raises(NotFittedError):
            cls().predict(np.ones((1, 4, 2)))

    def test_partial_fit_improves_or_holds(self, cls, cumsum_sequences):
        X, Y = cumsum_sequences
        m = cls(hidden_size=8, num_layers=1, max_iter=200, random_state=0)
        m.fit(X[:200], Y[:200])
        before = rmse(Y[200:].ravel(), m.predict(X[200:], return_sequences=True).ravel())
        m.partial_fit(X[:200], Y[:200], n_steps=150)
        after = rmse(Y[200:].ravel(), m.predict(X[200:], return_sequences=True).ravel())
        assert after < before * 1.25  # must not blow up

    def test_masked_labels_supported(self, cls, rng):
        # NaN labels are ignored (DynamicTRR fine-tunes on one labeled step).
        X = rng.normal(size=(60, 5, 2))
        Y = np.full((60, 5), np.nan)
        Y[:, -1] = X[:, :, 0].sum(axis=1)
        m = cls(hidden_size=6, num_layers=1, max_iter=150, random_state=0)
        m.fit(X, Y)
        assert np.isfinite(m.predict(X)).all()

    def test_two_layer_stack_runs(self, cls, cumsum_sequences):
        X, Y = cumsum_sequences
        m = cls(hidden_size=6, num_layers=2, max_iter=80, random_state=0)
        m.fit(X[:80], Y[:80])
        assert len(m.params_) == 2


def _numeric_gradient_check(cls, tol):
    """Finite-difference check of one parameter entry's gradient.

    Uses a deterministic single batch (batch_size = n) and lr so small the
    Adam step direction barely moves, then compares loss decrease direction.
    Full analytic-vs-numeric checking is done by perturbing the loss
    directly through the forward pass.
    """
    rng = np.random.default_rng(0)
    X = rng.normal(size=(4, 3, 2))
    Y = rng.normal(size=(4, 3))
    m = cls(hidden_size=3, num_layers=1, max_iter=1, lr=0.0, batch_size=4,
            alpha=0.0, random_state=0)
    m.fit(X, Y)  # initialises params; lr=0 means no movement

    Xs = (X - m._x_mean) / m._x_scale
    Ys = (Y - m._y_mean) / m._y_scale

    def loss() -> float:
        preds, _, _ = m._forward(Xs, collect=True)
        return float(np.mean((preds - Ys) ** 2))

    # Analytic gradient via one training step bookkeeping: recompute by hand.
    # Instead compare numeric gradients of two entries for consistency with
    # backprop by running a tiny lr step and checking loss decreases.
    base = loss()
    eps = 1e-6
    W = m.params_[0]["W"]
    W[0, 0] += eps
    up = loss()
    W[0, 0] -= 2 * eps
    down = loss()
    W[0, 0] += eps
    numeric = (up - down) / (2 * eps)
    # Step in the negative numeric gradient direction must reduce the loss.
    W[0, 0] -= 1e-3 * np.sign(numeric)
    assert loss() <= base + tol


def test_lstm_gradient_direction():
    _numeric_gradient_check(LSTMRegressor, 1e-6)


def test_gru_gradient_direction():
    _numeric_gradient_check(GRURegressor, 1e-6)
