"""Tests for the operator report generator."""

import pytest

from repro.core.highrpm import MonitorResult
from repro.errors import ValidationError
from repro.monitor.report import render_node_report, summarise_runs
from repro.monitor.service import MonitorLog


@pytest.fixture()
def log(rng):
    log = MonitorLog("node-7")
    for name, level in (("jobA", 80.0), ("jobB", 95.0)):
        n = 120
        p_node = level + rng.normal(0, 1.0, n)
        p_cpu = p_node * 0.5
        p_mem = p_node * 0.2
        log.append(MonitorResult(p_node, p_cpu, p_mem, mode="dynamic"), name)
    return log


class TestSummaries:
    def test_single_run_default(self, log):
        summaries = summarise_runs(log)
        assert len(summaries) == 1
        assert summaries[0].duration_s == 240

    def test_per_run_split(self, log):
        summaries = summarise_runs(log, run_lengths=[120, 120])
        assert [s.workload for s in summaries] == ["jobA", "jobB"]
        assert summaries[1].mean_w > summaries[0].mean_w

    def test_energy_matches_trace(self, log):
        s = summarise_runs(log, run_lengths=[120, 120])[0]
        assert s.energy_kj == pytest.approx(log.p_node[:120].sum() / 1e3, rel=1e-9)

    def test_length_mismatch_rejected(self, log):
        with pytest.raises(ValidationError):
            summarise_runs(log, run_lengths=[100, 100])

    def test_empty_log_rejected(self):
        with pytest.raises(ValidationError):
            summarise_runs(MonitorLog("empty"))

    def test_spikes_counted(self, rng):
        log = MonitorLog("n")
        p = 80.0 + rng.normal(0, 0.5, 200)
        p[100] += 25.0
        log.append(MonitorResult(p, p * 0.5, p * 0.2, mode="static"), "spiky")
        s = summarise_runs(log)[0]
        assert s.n_spikes >= 1


class TestRender:
    def test_report_contains_everything(self, log):
        text = render_node_report(log, run_lengths=[120, 120])
        assert "node-7" in text
        assert "jobA" in text and "jobB" in text
        assert "total restored energy" in text
        assert "node" in text and "cpu" in text and "mem" in text

    def test_report_rows_match_runs(self, log):
        text = render_node_report(log, run_lengths=[120, 120])
        body = [l for l in text.splitlines() if l.startswith(" ") and "|" in l]
        assert len(body) >= 2
