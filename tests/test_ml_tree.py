"""Tests for the CART regression tree."""

import numpy as np
import pytest

from repro.errors import NotFittedError
from repro.ml import DecisionTreeRegressor, rmse


class TestDecisionTree:
    def test_memorises_training_data_unbounded(self, rng):
        X = rng.normal(size=(60, 3))
        y = rng.normal(size=60)
        m = DecisionTreeRegressor().fit(X, y)
        np.testing.assert_allclose(m.predict(X), y, atol=1e-12)

    def test_learns_step_function(self, rng):
        X = rng.uniform(0, 1, size=(400, 1))
        y = (X[:, 0] > 0.5).astype(float) * 10.0
        m = DecisionTreeRegressor(max_depth=2).fit(X, y)
        Xq = np.array([[0.1], [0.9]])
        np.testing.assert_allclose(m.predict(Xq), [0.0, 10.0], atol=0.5)

    def test_max_depth_limits_depth(self, rng):
        X = rng.normal(size=(300, 4))
        y = rng.normal(size=300)
        m = DecisionTreeRegressor(max_depth=3).fit(X, y)
        assert m.depth_ <= 3

    def test_min_samples_leaf(self, rng):
        X = rng.normal(size=(100, 2))
        y = rng.normal(size=100)
        m = DecisionTreeRegressor(min_samples_leaf=20).fit(X, y)
        # With >= 20 samples per leaf, at most 5 leaves from 100 samples.
        assert m.n_leaves_ <= 5

    def test_constant_target_single_leaf(self, rng):
        X = rng.normal(size=(50, 2))
        m = DecisionTreeRegressor().fit(X, np.full(50, 3.0))
        assert m.n_leaves_ == 1
        np.testing.assert_allclose(m.predict(X), 3.0)

    def test_constant_feature_ignored(self, rng):
        X = np.column_stack([np.ones(80), rng.uniform(0, 1, 80)])
        y = (X[:, 1] > 0.5).astype(float)
        m = DecisionTreeRegressor(max_depth=1).fit(X, y)
        assert rmse(y, m.predict(X)) < 0.3

    def test_better_than_mean_on_nonlinear(self, rng):
        X = rng.uniform(-2, 2, size=(500, 1))
        y = np.sin(3 * X[:, 0])
        m = DecisionTreeRegressor(max_depth=6).fit(X, y)
        assert rmse(y, m.predict(X)) < rmse(y, np.full(500, y.mean()))

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            DecisionTreeRegressor().predict(np.ones((2, 2)))

    def test_feature_subset_reproducible(self, rng):
        X = rng.normal(size=(100, 6))
        y = X[:, 0] * 2.0
        a = DecisionTreeRegressor(max_features=3, random_state=5).fit(X, y).predict(X)
        b = DecisionTreeRegressor(max_features=3, random_state=5).fit(X, y).predict(X)
        np.testing.assert_allclose(a, b)
