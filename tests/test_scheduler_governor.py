"""SamplingGovernor determinism and heterogeneous node-profile plumbing.

The governor's decision functions must be *pure* in (seed, node id,
confidence, budget) — sharded == single-process bit identity rests on it —
so the properties here drive them with hypothesis rather than a handful of
fixed points. The profile/device-class tests pin the registration surface
the heterogeneous fleet rides on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.monitor import (
    GovernorPolicy,
    NodeProfile,
    SamplingGovernor,
    decide_offset,
    decide_stride,
    node_phase,
    thin_readings,
)
from repro.sensors.base import SparseReadings

# ---------------------------------------------------------------- strategies

policies = st.builds(
    GovernorPolicy,
    aggressiveness=st.floats(0.0, 1.0, allow_nan=False),
    max_stride=st.integers(1, 8),
    confidence_floor=st.floats(0.0, 0.95, allow_nan=False),
    target_budget_fraction=st.floats(0.001, 0.5, allow_nan=False),
    pinned_budget_fraction=st.one_of(
        st.none(), st.floats(0.0, 1.0, allow_nan=False)
    ),
    seed=st.integers(0, 2**31),
)
node_ids = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=12
)
confidences = st.floats(0.0, 1.0, allow_nan=False)
budgets = st.floats(0.0, 2.0, allow_nan=False)


def _readings(n: int, interval_s: int = 10) -> SparseReadings:
    return SparseReadings(
        indices=np.arange(1, 1 + n * interval_s, interval_s, dtype=np.int64),
        values=np.linspace(50.0, 80.0, n),
        interval_s=interval_s,
        n_dense=n * interval_s + 1,
    )


# ------------------------------------------------------- decision functions

class TestDecisionFunctions:
    @settings(max_examples=200, deadline=None)
    @given(policies, node_ids, confidences, budgets)
    def test_stride_deterministic_and_bounded(self, policy, node_id, conf,
                                              budget):
        a = decide_stride(policy, node_id, conf, budget)
        b = decide_stride(policy, node_id, conf, budget)
        assert a == b
        assert 1 <= a <= policy.max_stride

    @settings(max_examples=100, deadline=None)
    @given(policies, node_ids, st.integers(1, 8))
    def test_offset_deterministic_and_in_residue_range(self, policy, node_id,
                                                       stride):
        a = decide_offset(policy, node_id, stride)
        assert a == decide_offset(policy, node_id, stride)
        assert 0 <= a < max(stride, 1)
        if stride <= 1:
            assert a == 0

    @settings(max_examples=100, deadline=None)
    @given(node_ids, confidences, budgets)
    def test_zero_aggressiveness_is_always_dense(self, node_id, conf, budget):
        policy = GovernorPolicy(aggressiveness=0.0)
        assert decide_stride(policy, node_id, conf, budget) == 1

    @settings(max_examples=100, deadline=None)
    @given(policies, node_ids, budgets)
    def test_confidence_at_or_below_floor_is_dense(self, policy, node_id,
                                                   budget):
        assert decide_stride(
            policy, node_id, policy.confidence_floor, budget
        ) == 1

    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, 2**31), node_ids)
    def test_phase_range(self, seed, node_id):
        phase = node_phase(seed, node_id)
        assert 0.0 <= phase < 0.5
        assert phase == node_phase(seed, node_id)

    def test_phase_varies_with_seed_and_node(self):
        assert node_phase(1, "node0") != node_phase(2, "node0")
        assert node_phase(1, "node0") != node_phase(1, "node1")


# ------------------------------------------------------------ thin_readings

class TestThinReadings:
    @settings(max_examples=200, deadline=None)
    @given(
        st.integers(1, 60),   # n readings
        st.integers(1, 8),    # stride
        st.integers(1, 6),    # floor
        st.integers(0, 10),   # offset
    )
    def test_invariants(self, n, stride, floor, offset):
        readings = _readings(n)
        thinned, dropped = thin_readings(readings, stride, floor, offset)
        kept = len(thinned)
        assert kept + dropped == n
        assert kept >= min(max(floor, 1), n)
        # Surviving anchors are a subset, in order, starting at the first
        # reading (the spline's start boundary anchor is never dropped).
        assert thinned.indices[0] == readings.indices[0]
        assert np.all(np.isin(thinned.indices, readings.indices))
        assert np.all(np.diff(thinned.indices) > 0)
        # Same positions survive on the value channel.
        pos = np.searchsorted(readings.indices, thinned.indices)
        np.testing.assert_array_equal(thinned.values, readings.values[pos])
        # The nominal interval scales with the effective stride.
        if dropped:
            assert thinned.interval_s > readings.interval_s
            assert thinned.interval_s % readings.interval_s == 0

    @settings(max_examples=100, deadline=None)
    @given(st.integers(1, 60), st.integers(1, 8), st.integers(1, 6),
           st.integers(0, 10))
    def test_deterministic(self, n, stride, floor, offset):
        readings = _readings(n)
        a, da = thin_readings(readings, stride, floor, offset)
        b, db = thin_readings(readings, stride, floor, offset)
        assert da == db
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_array_equal(a.values, b.values)

    def test_stride_one_is_identity(self):
        readings = _readings(12)
        thinned, dropped = thin_readings(readings, 1)
        assert dropped == 0
        assert thinned is readings

    def test_floor_clamps_the_effective_stride(self):
        # 8 readings, floor 4: stride 8 clamps to eff 2, keeping >= 4.
        thinned, dropped = thin_readings(_readings(8), 8, floor=4)
        assert len(thinned) >= 4
        assert dropped == 8 - len(thinned)

    def test_offset_phases_the_comb(self):
        readings = _readings(10)
        t0, _ = thin_readings(readings, 2, offset=0)
        t1, _ = thin_readings(readings, 2, offset=1)
        assert t0.indices[0] == t1.indices[0] == readings.indices[0]
        assert not np.array_equal(t0.indices, t1.indices)


# ---------------------------------------------------------------- governor

class TestSamplingGovernor:
    @settings(max_examples=50, deadline=None)
    @given(
        policies,
        st.lists(
            st.tuples(st.sampled_from(["node0", "node1", "node2"]),
                      confidences, budgets),
            min_size=1, max_size=20,
        ),
    )
    def test_same_feedback_sequence_same_schedule(self, policy, feedback):
        """Two governors fed identical (node, confidence, budget) sequences
        land on identical schedules and decisions — the sharded-equals-
        single-process property at the controller level."""
        a, b = SamplingGovernor(policy), SamplingGovernor(policy)
        for node_id, conf, budget in feedback:
            da = a.update(node_id, conf, budget)
            db = b.update(node_id, conf, budget)
            assert (da.stride, da.offset, da.direction) \
                == (db.stride, db.offset, db.direction)
        assert a.schedule() == b.schedule()

    @settings(max_examples=50, deadline=None)
    @given(policies, st.data())
    def test_state_is_per_node_only(self, policy, data):
        """Interleaving other nodes' feedback never changes a node's
        decision — required for shard-layout independence."""
        conf = data.draw(confidences)
        budget = data.draw(budgets)
        alone = SamplingGovernor(policy)
        alone.update("target", conf, budget)
        crowded = SamplingGovernor(policy)
        for other in ("peer0", "peer1", "peer2"):
            crowded.update(other, data.draw(confidences), data.draw(budgets))
        crowded.update("target", conf, budget)
        assert crowded.stride_for("target") == alone.stride_for("target")
        assert crowded.offset_for("target") == alone.offset_for("target")

    def test_unknown_node_defaults_dense(self):
        governor = SamplingGovernor()
        assert governor.stride_for("never-seen") == 1
        assert governor.offset_for("never-seen") == 0
        assert governor.last_decision("never-seen") is None

    def test_direction_tracks_previous_stride(self):
        governor = SamplingGovernor(GovernorPolicy(
            aggressiveness=1.0, max_stride=4, confidence_floor=0.5,
            pinned_budget_fraction=0.05,
        ))
        sparse = governor.update("n", 1.0, 0.05)
        assert sparse.stride > 1 and sparse.direction == "sparser"
        dense = governor.update("n", 0.0, 0.05)
        assert dense.stride == 1 and dense.direction == "denser"
        assert governor.update("n", 0.0, 0.05).direction == "hold"

    def test_policy_validation(self):
        with pytest.raises(ValidationError):
            GovernorPolicy(aggressiveness=1.5)
        with pytest.raises(ValidationError):
            GovernorPolicy(max_stride=0)
        with pytest.raises(ValidationError):
            GovernorPolicy(confidence_floor=1.0)
        with pytest.raises(ValidationError):
            GovernorPolicy(pinned_budget_fraction=-0.1)


# ------------------------------------------------- profiles, device classes

class TestHeterogeneousService:
    def test_node_profile_defaults(self):
        profile = NodeProfile()
        assert profile.device_class == "cpu"
        assert profile.interval_s is None

    def test_unknown_device_class_rejected(self, chaos_reference):
        reference, _ = chaos_reference
        from repro.monitor import PowerMonitorService
        from repro.obs import MetricsRegistry

        svc = PowerMonitorService(reference.model, reference.spec,
                                  registry=MetricsRegistry())
        with pytest.raises(ValidationError, match="unregistered device class"):
            svc.register_node("gpu-node",
                              profile=NodeProfile(device_class="gpu"))

    def test_duplicate_device_class_rejected(self, chaos_reference):
        reference, _ = chaos_reference
        from repro.monitor import PowerMonitorService
        from repro.obs import MetricsRegistry

        svc = PowerMonitorService(reference.model, reference.spec,
                                  registry=MetricsRegistry())
        with pytest.raises(ValidationError, match="already registered"):
            svc.register_device_class("cpu", reference.model)

    def test_cluster_allocations_use_class_clamps(self, chaos_reference):
        """Mixed-class water-fill: each node competes with its own class's
        floor and ceiling, and the cap is fully distributed."""
        reference, _ = chaos_reference
        from repro.monitor import GPUSRRHead, PowerMonitorService
        from repro.obs import MetricsRegistry
        from repro.serve import ServeConfig
        from repro.serve.daemon import train_gpu_models

        gpu_model, gpu_srr = train_gpu_models(ServeConfig(
            train_seconds=40, lstm_iters=5, srr_iters=20,
        ))
        svc = PowerMonitorService(reference.model, reference.spec,
                                  registry=MetricsRegistry())
        svc.register_device_class("gpu", gpu_model, head=GPUSRRHead(gpu_srr))
        svc.register_node("cpu0", profile=NodeProfile(seed=1))
        svc.register_node("gpu0", profile=NodeProfile(device_class="gpu",
                                                      seed=2))
        cpu_lo, cpu_hi = svc.device_class("cpu").clamps
        gpu_lo, gpu_hi = svc.device_class("gpu").clamps
        assert gpu_hi > cpu_hi  # the accelerated class has real headroom
        cap = cpu_hi + gpu_hi
        allocations = svc.cluster_allocations(
            cap, demands={"cpu0": cpu_hi, "gpu0": gpu_hi}
        )
        assert set(allocations) == {"cpu0", "gpu0"}
        assert allocations["cpu0"] <= cpu_hi
        assert allocations["gpu0"] <= gpu_hi
        assert sum(allocations.values()) <= cap + 1e-9
        # Under contention the spill is honest: nobody below their floor.
        squeezed = svc.cluster_allocations(
            cpu_lo + gpu_lo + 5.0, demands={"cpu0": cpu_hi, "gpu0": gpu_hi}
        )
        assert squeezed["cpu0"] >= cpu_lo - 1e-9
        assert squeezed["gpu0"] >= gpu_lo - 1e-9
