"""Tests for the cluster power-budget allocator."""

import pytest

from repro.errors import CappingError, ValidationError
from repro.monitor.budget import ClusterPowerBudget, NodeDemand


def node(i, demand, floor=40.0, ceiling=120.0):
    return NodeDemand(f"n{i}", demand, floor, ceiling)


class TestNodeDemand:
    def test_validation(self):
        with pytest.raises(ValidationError):
            NodeDemand("x", -1.0, 10.0, 50.0)
        with pytest.raises(ValidationError):
            NodeDemand("x", 50.0, 60.0, 50.0)  # ceiling below floor


class TestAllocate:
    def test_full_grant_when_budget_ample(self):
        alloc = ClusterPowerBudget(1000.0).allocate([node(0, 80), node(1, 90)])
        assert alloc == {"n0": 80.0, "n1": 90.0}

    def test_total_never_exceeded(self):
        budget = ClusterPowerBudget(200.0)
        alloc = budget.allocate([node(i, 100) for i in range(3)])
        assert sum(alloc.values()) <= 200.0 + 1e-9

    def test_floors_always_met(self):
        budget = ClusterPowerBudget(130.0)
        alloc = budget.allocate([node(0, 100, floor=40), node(1, 100, floor=40)])
        assert all(v >= 40.0 for v in alloc.values())

    def test_proportional_to_demand(self):
        budget = ClusterPowerBudget(180.0)
        alloc = budget.allocate([
            node(0, 120, floor=40), node(1, 60, floor=40),
        ])
        # surplus = 100; wants are 80 and 20 -> granted 80%, 20%
        assert alloc["n0"] > alloc["n1"]
        assert alloc["n0"] - 40 == pytest.approx(4 * (alloc["n1"] - 40), rel=0.01)

    def test_ceiling_respected_and_redistributed(self):
        budget = ClusterPowerBudget(250.0)
        alloc = budget.allocate([
            node(0, 200, floor=40, ceiling=90),  # capped at 90
            node(1, 200, floor=40, ceiling=300),
        ])
        assert alloc["n0"] <= 90.0 + 1e-9
        assert alloc["n1"] == pytest.approx(250.0 - alloc["n0"], abs=1e-6)

    def test_infeasible_floors_raise(self):
        with pytest.raises(CappingError):
            ClusterPowerBudget(50.0).allocate([node(0, 80), node(1, 80)])

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValidationError):
            ClusterPowerBudget(500.0).allocate([node(0, 80), node(0, 80)])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            ClusterPowerBudget(500.0).allocate([])

    def test_demand_below_floor_lifted(self):
        alloc = ClusterPowerBudget(500.0).allocate([node(0, 10.0, floor=40)])
        assert alloc["n0"] == 40.0


class TestThrottleFactors:
    def test_unthrottled_when_ample(self):
        f = ClusterPowerBudget(1000.0).throttle_factors([node(0, 80)])
        assert f["n0"] == 1.0

    def test_throttled_under_pressure(self):
        f = ClusterPowerBudget(150.0).throttle_factors(
            [node(0, 100), node(1, 100)]
        )
        assert all(0 < v < 1.0 for v in f.values())

    def test_factors_at_most_one(self):
        f = ClusterPowerBudget(400.0).throttle_factors(
            [node(0, 100), node(1, 50)]
        )
        assert all(v <= 1.0 for v in f.values())
