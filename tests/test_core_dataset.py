"""Tests for the TRR/SRR dataset builders (Fig. 4)."""

import numpy as np
import pytest

from repro.core.dataset import (
    FlatDataset,
    build_anchor_windows,
    build_flat_dataset,
    build_windows,
    windows_from_bundles,
)
from repro.errors import ValidationError


class TestFlatDataset:
    def test_from_bundles(self, train_bundles):
        flat = build_flat_dataset(train_bundles)
        assert len(flat) == sum(len(b) for b in train_bundles)
        assert flat.X.shape[1] == train_bundles[0].pmcs.n_events
        assert len(flat.workloads) == len(flat)

    def test_workload_provenance(self, train_bundles):
        flat = build_flat_dataset(train_bundles[:2])
        names = set(flat.workloads)
        assert names == {train_bundles[0].workload, train_bundles[1].workload}

    def test_subset(self, train_bundles):
        flat = build_flat_dataset(train_bundles[:1])
        mask = np.zeros(len(flat), dtype=bool)
        mask[:10] = True
        sub = flat.subset(mask)
        assert len(sub) == 10

    def test_limit(self, train_bundles):
        flat = build_flat_dataset(train_bundles[:1])
        assert len(flat.limit(7)) == 7

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            build_flat_dataset([])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            FlatDataset(
                X=np.ones((5, 2)), p_node=np.ones(4), p_cpu=np.ones(5),
                p_mem=np.ones(5), workloads=("w",) * 5,
            )


class TestBuildWindows:
    def test_shapes(self):
        pmcs = np.arange(40).reshape(20, 2).astype(float)
        p = np.arange(20).astype(float)
        X, Y = build_windows(pmcs, p, miss_interval=5)
        assert X.shape == (16, 5, 3)
        assert Y.shape == (16, 5)

    def test_prev_power_feature(self):
        pmcs = np.zeros((10, 1))
        p = np.arange(10).astype(float)
        X, _ = build_windows(pmcs, p, miss_interval=3)
        # the power feature at step t is p[t-1]
        np.testing.assert_allclose(X[1, :, -1], [0.0, 1.0, 2.0])

    def test_first_window_seeds_with_first_power(self):
        pmcs = np.zeros((6, 1))
        p = np.array([5.0, 6.0, 7.0, 8.0, 9.0, 10.0])
        X, _ = build_windows(pmcs, p, miss_interval=3)
        assert X[0, 0, -1] == 5.0  # cold start uses p[0]

    def test_labels_are_power(self):
        pmcs = np.zeros((8, 1))
        p = np.arange(8).astype(float)
        _, Y = build_windows(pmcs, p, miss_interval=4)
        np.testing.assert_allclose(Y[0], [0, 1, 2, 3])

    def test_too_short_rejected(self):
        with pytest.raises(ValidationError):
            build_windows(np.zeros((3, 1)), np.zeros(3), miss_interval=5)

    def test_stride(self):
        pmcs = np.zeros((20, 1))
        p = np.zeros(20)
        X, _ = build_windows(pmcs, p, miss_interval=5, stride=5)
        assert X.shape[0] == 4

    def test_bundles_do_not_straddle(self, train_bundles):
        X, Y = windows_from_bundles(train_bundles[:2], 10)
        per_bundle = sum(len(b) - 10 + 1 for b in train_bundles[:2])
        assert X.shape[0] == per_bundle


class TestAnchorWindows:
    def test_shapes(self):
        pmcs = np.random.default_rng(0).random((50, 3))
        p = np.linspace(50, 60, 50)
        X, Y = build_anchor_windows(pmcs, p, miss_interval=10, offsets=[0])
        assert X.shape[1:] == (10, 4)
        assert Y.shape[1] == 10

    def test_hold_channel_is_last_reading(self):
        pmcs = np.zeros((20, 1))
        p = np.arange(20).astype(float)
        X, _ = build_anchor_windows(pmcs, p, miss_interval=5, offsets=[0])
        # window starting at 0: readings at 0; hold = p[0] for steps 0..4
        np.testing.assert_allclose(X[0, :, -1], [0, 0, 0, 0, 0])
        # window starting at 3 spans steps 3..7; reading at 5 switches hold
        np.testing.assert_allclose(X[3, :, -1], [0, 0, 5, 5, 5])

    def test_labels_are_deviation_from_hold(self):
        pmcs = np.zeros((20, 1))
        p = np.arange(20).astype(float)
        X, Y = build_anchor_windows(pmcs, p, miss_interval=5, offsets=[0])
        np.testing.assert_allclose(Y[0], [0, 1, 2, 3, 4])

    def test_deviation_zero_at_reading_instants(self):
        pmcs = np.zeros((30, 1))
        p = np.random.default_rng(1).uniform(50, 90, 30)
        X, Y = build_anchor_windows(pmcs, p, miss_interval=6, offsets=[0])
        # At every reading instant (step multiple of 6), deviation is 0.
        for k in range(X.shape[0]):
            for j in range(6):
                t = k + j  # windows start at 0 with stride 1
                if t % 6 == 0:
                    assert Y[k, j] == pytest.approx(0.0)

    def test_multiple_offsets_multiply_windows(self):
        pmcs = np.zeros((40, 2))
        p = np.zeros(40)
        X1, _ = build_anchor_windows(pmcs, p, 10, offsets=[0])
        X2, _ = build_anchor_windows(pmcs, p, 10, offsets=[0, 5])
        assert X2.shape[0] > X1.shape[0]

    def test_too_short_rejected(self):
        with pytest.raises(ValidationError):
            build_anchor_windows(np.zeros((12, 1)), np.zeros(12), 10)
