"""Golden end-to-end regression: fixed-seed service run vs stored traces.

The fixture (``tests/fixtures/golden_monitor.npz``, written by
``scripts/make_golden_monitor.py``) pins the restored power traces of one
healthy and one mid-run-outage observation through the reference service.
Any behavioural change anywhere in the stack — simulator, sensor noise,
fault chain, gating, LSTM/MLP restoration, provenance — moves these
numbers. If a change *intends* to move them, regenerate the fixture with
the script and commit both together.
"""

import pathlib

import numpy as np
import pytest

from repro.core import PROV_MEASURED, PROV_MODEL_ONLY
from repro.faults.golden import golden_outage_window, golden_traces

GOLDEN_PATH = pathlib.Path(__file__).parent / "fixtures" / "golden_monitor.npz"

# Loose enough to survive BLAS/numpy build differences, tight enough that
# any real behavioural change (reseeding, reordering draws, altered
# gating) trips it.
RTOL, ATOL = 1e-3, 1e-2


@pytest.fixture(scope="module")
def golden():
    assert GOLDEN_PATH.exists(), (
        f"{GOLDEN_PATH} missing - run scripts/make_golden_monitor.py"
    )
    with np.load(GOLDEN_PATH) as data:
        return {k: data[k] for k in data.files}


@pytest.fixture(scope="module")
def regenerated(chaos_reference):
    return golden_traces(reference=chaos_reference)


def test_fixture_is_complete(golden):
    expected = {"truth_p_node"} | {
        f"{run}_{ch}"
        for run in ("healthy", "outage")
        for ch in ("p_node", "p_cpu", "p_mem", "provenance")
    }
    assert set(golden) == expected


def test_truth_trace_matches(golden, regenerated):
    np.testing.assert_allclose(
        regenerated["truth_p_node"], golden["truth_p_node"], rtol=RTOL, atol=ATOL
    )


@pytest.mark.parametrize("run", ["healthy", "outage"])
@pytest.mark.parametrize("channel", ["p_node", "p_cpu", "p_mem"])
def test_restored_traces_match(golden, regenerated, run, channel):
    key = f"{run}_{channel}"
    np.testing.assert_allclose(
        regenerated[key], golden[key], rtol=RTOL, atol=ATOL,
        err_msg=f"{key} drifted from the golden fixture "
                "(regenerate via scripts/make_golden_monitor.py if intended)",
    )


@pytest.mark.parametrize("run", ["healthy", "outage"])
def test_provenance_matches_exactly(golden, regenerated, run):
    np.testing.assert_array_equal(
        regenerated[f"{run}_provenance"], golden[f"{run}_provenance"]
    )


def test_golden_outage_shape(golden):
    start, stop = golden_outage_window(golden["truth_p_node"].shape[0])
    prov_out = golden["outage_provenance"]
    prov_ok = golden["healthy_provenance"]
    # The outage run lost its anchors mid-run; the healthy run never did.
    assert (prov_out[(start + stop) // 2] == PROV_MODEL_ONLY)
    assert not (prov_ok == PROV_MODEL_ONLY).any()
    # Both runs keep measured anchors outside the outage window.
    assert (prov_out == PROV_MEASURED).sum() > 0
    assert (prov_ok == PROV_MEASURED).sum() > (prov_out == PROV_MEASURED).sum()
