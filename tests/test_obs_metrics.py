"""Metrics registry semantics and the exposition round-trip contract."""

from __future__ import annotations

import math

import pytest

from repro.errors import ValidationError
from repro.obs import (
    DEFAULT_BUCKETS,
    ManualClock,
    MetricsRegistry,
    get_registry,
    parse_prometheus,
    render_prometheus,
    use_registry,
)


class TestCounter:
    def test_increments(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total", "help")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValidationError):
            reg.counter("c_total").inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("g")
        g.set(10.0)
        g.inc(2.0)
        g.dec(5.0)
        assert g.value == 7.0


class TestHistogram:
    def test_bucketing_and_cumulative(self):
        h = MetricsRegistry().histogram("h", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0, 0.1):
            h.observe(v)
        child = h.labels()
        assert child.count == 4
        assert child.sum == pytest.approx(55.6)
        # non-cumulative slots: <=1, <=10, overflow
        assert child.bucket_counts == [2, 1, 1]
        assert child.cumulative() == [(1.0, 2), (10.0, 3), (math.inf, 4)]

    def test_default_buckets(self):
        h = MetricsRegistry().histogram("h")
        assert h.buckets == DEFAULT_BUCKETS

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValidationError):
            MetricsRegistry().histogram("h", buckets=(5.0, 1.0))


class TestLabels:
    def test_children_are_independent(self):
        fam = MetricsRegistry().counter("c", "h", labels=("path",))
        fam.labels(path="a").inc()
        fam.labels(path="a").inc()
        fam.labels(path="b").inc(5)
        values = {s[0]["path"]: s[1].value for s in fam.samples()}
        assert values == {"a": 2.0, "b": 5.0}

    def test_wrong_label_names_raise(self):
        fam = MetricsRegistry().counter("c", "h", labels=("path",))
        with pytest.raises(ValidationError):
            fam.labels(wrong="a")
        with pytest.raises(ValidationError):
            fam.labels()

    def test_labeled_family_has_no_default_child(self):
        fam = MetricsRegistry().counter("c", "h", labels=("path",))
        with pytest.raises(ValidationError):
            fam.inc()


class TestRegistry:
    def test_declaration_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("c_total", "help", ("k",))
        b = reg.counter("c_total", "help", ("k",))
        assert a is b

    def test_conflicting_redeclaration_raises(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(ValidationError):
            reg.gauge("m")
        reg.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValidationError):
            reg.histogram("h", buckets=(1.0, 3.0))

    def test_invalid_names_raise(self):
        reg = MetricsRegistry()
        for bad in ("", "1abc", "has space", "dash-ed"):
            with pytest.raises(ValidationError):
                reg.counter(bad)

    def test_reset_keeps_declarations(self):
        reg = MetricsRegistry()
        fam = reg.counter("c", "h", ("k",))
        fam.labels(k="x").inc()
        reg.reset()
        assert reg.get("c") is fam
        assert fam.samples() == []

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c", "ch", ("k",)).labels(k="v").inc(3)
        reg.histogram("h", "hh", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["c"]["type"] == "counter"
        assert snap["c"]["samples"] == [{"labels": {"k": "v"}, "value": 3.0}]
        hist = snap["h"]["samples"][0]
        assert hist["buckets"] == [[1.0, 1], [math.inf, 1]]
        assert hist["sum"] == 0.5 and hist["count"] == 1


class TestAmbientRegistry:
    def test_use_registry_scopes_and_restores(self):
        outer = get_registry()
        inner = MetricsRegistry()
        with use_registry(inner):
            assert get_registry() is inner
            with use_registry(MetricsRegistry()) as innermost:
                assert get_registry() is innermost
            assert get_registry() is inner
        assert get_registry() is outer


class TestManualClock:
    def test_advances(self):
        clock = ManualClock()
        t0 = clock()
        clock.advance(2.5)
        assert clock() - t0 == 2.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ManualClock().advance(-1.0)


class TestExpositionRoundTrip:
    def _populated_registry(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("rt_runs_total", "Runs.", ("node", "mode")).labels(
            node="n-0", mode="dynamic"
        ).inc(3)
        reg.counter("rt_plain_total", "Unlabeled.").inc(1.5)
        reg.gauge("rt_fraction", "A float gauge.").set(0.1234567890123)
        h = reg.histogram("rt_latency_seconds", "Latency.", ("span",),
                          buckets=(0.001, 0.1, 2.0))
        for v in (0.0005, 0.05, 0.05, 1.0, 100.0):
            h.labels(span="restore").observe(v)
        return reg

    def test_round_trip_is_exact(self):
        reg = self._populated_registry()
        assert parse_prometheus(render_prometheus(reg)) == reg.snapshot()

    def test_exposition_format_lines(self):
        text = render_prometheus(self._populated_registry())
        assert "# TYPE rt_runs_total counter" in text
        assert 'rt_runs_total{node="n-0",mode="dynamic"} 3' in text
        assert 'rt_latency_seconds_bucket{span="restore",le="+Inf"} 5' in text
        assert 'rt_latency_seconds_count{span="restore"} 5' in text

    def test_label_escaping_round_trips(self):
        reg = MetricsRegistry()
        tricky = 'quote " backslash \\ newline \n end'
        reg.counter("rt_esc_total", "Esc.", ("v",)).labels(v=tricky).inc()
        parsed = parse_prometheus(render_prometheus(reg))
        assert parsed["rt_esc_total"]["samples"][0]["labels"]["v"] == tricky

    def test_malformed_lines_raise(self):
        with pytest.raises(ValidationError):
            parse_prometheus("not a metric line at all!")
        with pytest.raises(ValidationError):
            parse_prometheus('m{k="unclosed} 1')
