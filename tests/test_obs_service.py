"""Service-level observability: observe_run emits the metrics it promises.

Uses the shared ``chaos_reference`` fixture (one trained service); each
test registers its own uniquely-named nodes and asserts on counter
*deltas*, so ordering against the other suites sharing the fixture does
not matter.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PROV_MEASURED, PROV_MODEL_ONLY, PROV_RESTORED
from repro.faults.inject import FaultySensor
from repro.obs import parse_prometheus, render_prometheus
from repro.sensors.ipmi import IPMISensor


def _counter_value(registry, name, **labels) -> float:
    fam = registry.get(name)
    if fam is None:
        return 0.0
    for sample_labels, child in fam.samples():
        if sample_labels == labels:
            return child.value
    return 0.0


@pytest.fixture()
def service_and_bundle(chaos_reference):
    return chaos_reference


class TestObserveRunMetrics:
    def test_provenance_mix_matches_result(self, service_and_bundle):
        service, bundle = service_and_bundle
        reg = service.registry
        before = {
            label: _counter_value(reg, "repro_monitor_samples_total",
                                  provenance=label)
            for label in ("measured", "restored", "model_only")
        }
        service.register_node("obs-healthy")
        result = service.observe_run("obs-healthy", bundle)
        prov = result.provenance
        assert prov is not None
        expected = {
            "measured": int((prov == PROV_MEASURED).sum()),
            "restored": int((prov == PROV_RESTORED).sum()),
            "model_only": int((prov == PROV_MODEL_ONLY).sum()),
        }
        for label, count in expected.items():
            delta = _counter_value(
                reg, "repro_monitor_samples_total", provenance=label
            ) - before[label]
            assert delta == count, label
        assert _counter_value(reg, "repro_monitor_runs_total",
                              node="obs-healthy", mode=result.mode) == 1.0

    def test_retry_counter_counts_transient_failures(self, service_and_bundle):
        service, bundle = service_and_bundle
        reg = service.registry
        sensor = FaultySensor(
            IPMISensor(service.spec, seed=41), seed=42, fail_first=2
        )
        service.register_node("obs-flaky", sensor=sensor)
        result = service.observe_run("obs-flaky", bundle)
        assert result.mode != "model_only"  # retries rescued the run
        assert _counter_value(reg, "repro_monitor_retries_total",
                              node="obs-flaky") == 2.0
        assert _counter_value(reg, "repro_monitor_degraded_runs_total",
                              node="obs-flaky") == 1.0
        assert service.health("obs-flaky").retries == 2

    def test_log_summary_matches_provenance(self, service_and_bundle):
        service, bundle = service_and_bundle
        service.register_node("obs-summary")
        result = service.observe_run("obs-summary", bundle)
        summary = service.log("obs-summary").summary()
        assert summary["runs"] == 1
        assert summary["samples"] == len(result)
        assert summary["measured"] + summary["restored"] \
            + summary["model_only"] == len(result)
        assert summary["measured"] == int(
            (result.provenance == PROV_MEASURED).sum()
        )

    def test_profiler_prices_the_run(self, service_and_bundle):
        service, bundle = service_and_bundle
        runs_before = service.profiler.runs
        samples_before = service.profiler.samples
        service.register_node("obs-profiled")
        result = service.observe_run("obs-profiled", bundle)
        assert service.profiler.runs == runs_before + 1
        assert service.profiler.samples == samples_before + len(result)
        # the service injects a real clock, so the run cost CPU time
        assert service.profiler.clocked
        assert service.profiler.seconds > 0.0
        report = service.profiler.report()
        assert report["budget_fraction"] == pytest.approx(
            report["seconds_per_sample"] / report["sample_period_s"]
        )

    def test_pipeline_spans_recorded(self, service_and_bundle):
        service, bundle = service_and_bundle
        service.register_node("obs-spans")
        service.observe_run("obs-spans", bundle)
        stats = service.tracer.stats()
        for span in ("monitor.observe_run", "monitor.im_sample",
                     "monitor.gate", "monitor.restore",
                     "monitor.log_append", "trr.dynamic", "srr.split"):
            assert span in stats, span
            assert stats[span].timed

    def test_registry_exposition_round_trips(self, service_and_bundle):
        service, bundle = service_and_bundle
        service.register_node("obs-roundtrip")
        service.observe_run("obs-roundtrip", bundle)
        snap = service.registry.snapshot()
        assert parse_prometheus(render_prometheus(service.registry)) == snap

    def test_instrumentation_does_not_change_numerics(self, service_and_bundle):
        service, bundle = service_and_bundle
        service.register_node("obs-numerics-a")
        service.register_node("obs-numerics-b")
        a = service.observe_run("obs-numerics-a", bundle)
        b = service.observe_run("obs-numerics-b", bundle)
        # same trained model, same bundle, fresh sensors with distinct seeds
        # produce *deterministic* per-node streams; the instrumented paths
        # must not perturb them between calls.
        assert a.p_node.shape == b.p_node.shape
        assert np.isfinite(a.p_node).all()
