"""Tests for the hardware simulation substrate."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.hardware import (
    ARM_PLATFORM,
    X86_PLATFORM,
    CPUPowerModel,
    MemoryPowerModel,
    NodeSimulator,
    PMUModel,
    get_platform,
)
from repro.hardware.pmu import WorkloadTraits
from repro.types import PMC_EVENTS


class TestPlatformSpec:
    def test_builtin_lookup(self):
        assert get_platform("arm") is ARM_PLATFORM
        assert get_platform("x86") is X86_PLATFORM

    def test_unknown_platform(self):
        with pytest.raises(ValidationError):
            get_platform("riscv")

    def test_arm_matches_paper_config(self):
        # §5.1/§6.4.2: 0.1 Sa/s IPMI, DVFS levels 1.4/1.8/2.2 GHz.
        assert ARM_PLATFORM.ipmi_interval_s == 10
        assert ARM_PLATFORM.freq_levels_ghz == (1.4, 1.8, 2.2)
        assert ARM_PLATFORM.other_w == 25.0

    def test_x86_has_rapl(self):
        assert X86_PLATFORM.rapl_available
        assert not ARM_PLATFORM.rapl_available

    def test_power_bounds_ordered(self):
        for spec in (ARM_PLATFORM, X86_PLATFORM):
            assert spec.min_node_power_w < spec.max_node_power_w

    def test_validate_frequency(self):
        assert ARM_PLATFORM.validate_frequency(1.8) == 1.8
        with pytest.raises(ValidationError):
            ARM_PLATFORM.validate_frequency(3.0)

    def test_invalid_default_freq_rejected(self):
        from repro.hardware.platform import PlatformSpec

        with pytest.raises(ValidationError):
            PlatformSpec(
                name="bad", arch="arm", n_cores=4,
                freq_levels_ghz=(1.0,), default_freq_ghz=2.0,
                cpu_idle_w=1, cpu_dyn_w=1, mem_idle_w=1, mem_dyn_w=1,
            )


class TestCPUPowerModel:
    def test_monotone_in_activity(self):
        m = CPUPowerModel(ARM_PLATFORM, noise_w=0.0, intensity_sigma=0.0)
        low = m.power(np.full(30, 0.1), 2.2, rng=0).mean()
        high = m.power(np.full(30, 0.9), 2.2, rng=0).mean()
        assert high > low

    def test_superlinear_in_frequency(self):
        m = CPUPowerModel(ARM_PLATFORM, noise_w=0.0, intensity_sigma=0.0)
        a = np.full(20, 0.8)
        p14 = m.power(a, 1.4, rng=0).mean()
        p22 = m.power(a, 2.2, rng=0).mean()
        # dynamic part should scale faster than linearly with f
        assert p22 / p14 > 2.2 / 1.4 * 0.9

    def test_activity_bounds_checked(self):
        m = CPUPowerModel(ARM_PLATFORM)
        with pytest.raises(ValidationError):
            m.power(np.array([1.5]), 2.2)

    def test_stepper_matches_vector_path(self):
        m = CPUPowerModel(ARM_PLATFORM)
        a = np.linspace(0.2, 0.9, 40)
        vec = m.power(a, 2.2, rng=7)
        stepper = m.make_stepper(rng=7)
        step = np.array([stepper.step(float(x), 2.2) for x in a])
        np.testing.assert_allclose(vec, step)

    def test_power_scale_raises_dynamic_power(self):
        m = CPUPowerModel(ARM_PLATFORM, noise_w=0.0, intensity_sigma=0.0)
        a = np.full(20, 0.8)
        base = m.power(a, 2.2, rng=0).mean()
        scaled = m.power(a, 2.2, rng=0, power_scale=1.3).mean()
        assert scaled > base

    def test_always_positive(self):
        m = CPUPowerModel(ARM_PLATFORM, noise_w=50.0)
        p = m.power(np.zeros(200), 1.4, rng=3)
        assert (p > 0).all()


class TestMemoryPowerModel:
    def test_monotone_in_intensity(self):
        m = MemoryPowerModel(ARM_PLATFORM, noise_w=0.0, intensity_sigma=0.0)
        low = m.power(np.full(30, 0.1), rng=0).mean()
        high = m.power(np.full(30, 0.9), rng=0).mean()
        assert high > low

    def test_narrow_range(self):
        # DRAM range is narrow relative to CPU (the paper leans on this).
        m = MemoryPowerModel(ARM_PLATFORM, noise_w=0.0, intensity_sigma=0.0)
        span = m.power(np.array([1.0]), rng=0)[0] - m.power(np.array([0.0]), rng=0)[0]
        assert span < ARM_PLATFORM.cpu_dyn_w

    def test_bounds_checked(self):
        with pytest.raises(ValidationError):
            MemoryPowerModel(ARM_PLATFORM).power(np.array([-0.1]))


class TestPMUModel:
    def make(self, n=50, traits=None, **kw):
        pmu = PMUModel(ARM_PLATFORM, **kw)
        a = np.linspace(0.2, 0.9, n)
        m = np.linspace(0.1, 0.8, n)
        return pmu.counters(a, m, 2.2, traits or WorkloadTraits(), rng=0)

    def test_shape(self):
        assert self.make(30).shape == (30, len(PMC_EVENTS))

    def test_nonnegative(self):
        assert (self.make(100) >= 0).all()

    def test_cycles_track_activity(self):
        counters = self.make(50, sample_noise=0.0, multiplex_drop=0.0)
        cycles = counters[:, 0]
        assert cycles[-1] > cycles[0]  # activity ramps up

    def test_mem_access_tracks_memory(self):
        counters = self.make(50, sample_noise=0.0, multiplex_drop=0.0)
        mem = counters[:, -1]
        assert mem[-1] > mem[0]

    def test_traits_shift_instruction_mix(self):
        heavy = WorkloadTraits(branch_ratio=0.4)
        light = WorkloadTraits(branch_ratio=0.05)
        ch = self.make(20, traits=heavy, sample_noise=0.0, multiplex_drop=0.0)
        cl = self.make(20, traits=light, sample_noise=0.0, multiplex_drop=0.0)
        assert ch[:, 2].mean() > cl[:, 2].mean()

    def test_traits_validation(self):
        with pytest.raises(ValidationError):
            WorkloadTraits(ipc_scale=0.0)
        with pytest.raises(ValidationError):
            WorkloadTraits(locality=1.5)

    def test_random_traits_deterministic(self):
        a = WorkloadTraits.random(np.random.default_rng(1))
        b = WorkloadTraits.random(np.random.default_rng(1))
        assert a == b


class TestNodeSimulator:
    def test_additivity_invariant(self, small_bundle):
        assert small_bundle.check_additivity(atol=1e-9)

    def test_other_power_band(self, small_bundle):
        other = small_bundle.other.values
        assert np.all(np.abs(other - 25.0) < 1.0)  # "just under 1 W"

    def test_deterministic_runs(self, catalog):
        w = catalog.get("spec_gcc")
        a = NodeSimulator(ARM_PLATFORM, seed=5).run(w, duration_s=60)
        b = NodeSimulator(ARM_PLATFORM, seed=5).run(w, duration_s=60)
        np.testing.assert_allclose(a.node.values, b.node.values)

    def test_run_ids_differ(self, catalog, arm_sim):
        w = catalog.get("spec_gcc")
        a = arm_sim.run(w, duration_s=60, run_id=0)
        b = arm_sim.run(w, duration_s=60, run_id=1)
        assert not np.allclose(a.node.values, b.node.values)

    def test_lower_frequency_lowers_power(self, catalog):
        sim = NodeSimulator(ARM_PLATFORM, seed=5)
        w = catalog.get("hpcc_hpl")
        hi = sim.run(w, duration_s=80, freq_ghz=2.2)
        lo = sim.run(w, duration_s=80, freq_ghz=1.4)
        assert lo.cpu.mean_power() < hi.cpu.mean_power()

    def test_invalid_frequency_rejected(self, catalog, arm_sim):
        with pytest.raises(ValidationError):
            arm_sim.run(catalog.get("spec_gcc"), duration_s=30, freq_ghz=9.9)

    def test_controlled_run_obeys_controller(self, catalog):
        sim = NodeSimulator(ARM_PLATFORM, seed=5)
        w = catalog.get("hpcc_hpl")
        freqs = []

        def controller(t, history):
            f = 1.4 if t > 40 else 2.2
            freqs.append(f)
            return f

        b = sim.run_controlled(w, controller, duration_s=80)
        meta = b.metadata["freq_ghz"]
        assert (meta[:40] == 2.2).all()
        assert (meta[41:] == 1.4).all()
        # power drops after the downshift
        assert b.cpu.values[50:].mean() < b.cpu.values[10:40].mean()

    def test_controlled_rejects_bad_frequency(self, catalog, arm_sim):
        with pytest.raises(ValidationError):
            arm_sim.run_controlled(
                catalog.get("spec_gcc"), lambda t, h: 7.7, duration_s=20
            )
