"""Tests for the cluster simulator and the energy-aware scheduler."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.hardware import ARM_PLATFORM
from repro.hardware.cluster import ClusterSimulator
from repro.monitor.scheduler import EnergyAwareScheduler, Job, ScheduleOutcome


class TestClusterSimulator:
    def test_node_count_and_ids(self):
        cluster = ClusterSimulator(ARM_PLATFORM, n_nodes=3, seed=1)
        assert cluster.node_ids == ("node-0", "node-1", "node-2")

    def test_manufacturing_variation(self):
        cluster = ClusterSimulator(ARM_PLATFORM, n_nodes=6, variation=0.05, seed=1)
        idles = {cluster.node_spec(n).cpu_idle_w for n in cluster.node_ids}
        assert len(idles) == 6  # all distinct
        assert cluster.idle_power_spread_w() > 0

    def test_zero_variation_identical_specs(self):
        cluster = ClusterSimulator(ARM_PLATFORM, n_nodes=3, variation=0.0, seed=1)
        assert cluster.idle_power_spread_w() == pytest.approx(0.0)

    def test_runs_workloads_per_node(self, catalog):
        cluster = ClusterSimulator(ARM_PLATFORM, n_nodes=2, seed=2)
        a = cluster.run("node-0", catalog.get("spec_gcc"), duration_s=60)
        b = cluster.run("node-1", catalog.get("spec_gcc"), duration_s=60)
        assert not np.allclose(a.node.values, b.node.values)  # different nodes

    def test_unknown_node(self, catalog):
        cluster = ClusterSimulator(ARM_PLATFORM, n_nodes=2, seed=2)
        with pytest.raises(ValidationError):
            cluster.run("node-9", catalog.get("spec_gcc"), duration_s=10)

    def test_deterministic(self, catalog):
        a = ClusterSimulator(ARM_PLATFORM, n_nodes=2, seed=5)
        b = ClusterSimulator(ARM_PLATFORM, n_nodes=2, seed=5)
        ba = a.run("node-1", catalog.get("hpcg"), duration_s=40)
        bb = b.run("node-1", catalog.get("hpcg"), duration_s=40)
        np.testing.assert_allclose(ba.node.values, bb.node.values)


@pytest.fixture(scope="module")
def job_set(catalog):
    cluster = ClusterSimulator(ARM_PLATFORM, n_nodes=2, seed=7)
    names = ["spec_gcc", "hpcc_stream", "hpcg", "spec_xz"]
    return [
        Job(f"job-{i}", cluster.run(f"node-{i % 2}", catalog.get(n), duration_s=80))
        for i, n in enumerate(names)
    ]


def make_scheduler(cap, staleness=1, error=0.0, seed=0):
    floors = {"node-0": 45.0, "node-1": 45.0}
    ceilings = {"node-0": 130.0, "node-1": 130.0}
    return EnergyAwareScheduler(floors, ceilings, cap,
                                demand_staleness_s=staleness,
                                demand_error_w=error, seed=seed)


class TestScheduler:
    def test_completes_all_jobs(self, job_set):
        outcome = make_scheduler(cap=400.0).run(job_set)
        assert sorted(outcome.completions) == sorted(j.job_id for j in job_set)

    def test_unconstrained_runs_at_full_speed(self, job_set):
        outcome = make_scheduler(cap=1000.0).run(job_set)
        # two nodes, four 80 s jobs -> makespan about 160 s
        assert outcome.makespan_s <= 165
        assert outcome.mean_throttle == pytest.approx(1.0, abs=1e-6)

    def test_tight_cap_stretches_makespan(self, job_set):
        free = make_scheduler(cap=1000.0).run(job_set)
        tight = make_scheduler(cap=170.0).run(job_set)
        assert tight.makespan_s > free.makespan_s
        assert tight.mean_throttle < 1.0

    def test_stale_demand_hurts(self, job_set):
        """The monitoring claim: per-second demand (HighRPM-style) finishes
        sooner than IPMI-rate demand at the same cap — stale readings
        over/under-throttle."""
        fresh = make_scheduler(cap=175.0, staleness=1).run(job_set)
        stale = make_scheduler(cap=175.0, staleness=10).run(job_set)
        assert fresh.makespan_s <= stale.makespan_s
        assert fresh.mean_throttle >= stale.mean_throttle

    def test_outcome_fields(self, job_set):
        outcome = make_scheduler(cap=300.0).run(job_set)
        assert isinstance(outcome, ScheduleOutcome)
        assert outcome.energy_kj > 0
        assert outcome.makespan_s > 0

    def test_empty_queue_rejected(self):
        with pytest.raises(ValidationError):
            make_scheduler(cap=300.0).run([])

    def test_time_limit_enforced(self, job_set):
        with pytest.raises(ValidationError):
            make_scheduler(cap=400.0).run(job_set, max_seconds=10)

    def test_mismatched_nodes_rejected(self):
        with pytest.raises(ValidationError):
            EnergyAwareScheduler({"a": 40.0}, {"b": 100.0}, 200.0)
