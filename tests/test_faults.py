"""Tests for the fault-injection layer (models, injector, sensor wrappers)."""

import numpy as np
import pytest

from repro.errors import SensorOutageError, TransientSensorError, ValidationError
from repro.faults import (
    ClockJitter,
    DelayedArrival,
    FaultInjector,
    FaultyPMCCollector,
    FaultyRAPLEmulator,
    FaultySensor,
    GainDrift,
    OutageWindow,
    RandomDropout,
    SpikeOutlier,
    StuckAt,
)
from repro.hardware import ARM_PLATFORM
from repro.sensors import IPMISensor, PMCCollector, RAPLEmulator, SparseReadings


def stream(n_dense=200, interval=10):
    idx = np.arange(10, n_dense, interval, dtype=np.int64)
    vals = 80.0 + 10.0 * np.sin(idx / 17.0)
    return SparseReadings(idx, vals, interval, n_dense)


def rng():
    return np.random.default_rng(42)


class TestFaultModels:
    def test_outage_drops_window_only(self):
        r = stream()
        idx, vals = OutageWindow(50, 60).apply(r.indices, r.values, rng(), r.n_dense)
        assert not ((idx >= 50) & (idx < 110)).any()
        np.testing.assert_array_equal(idx, r.indices[(r.indices < 50) | (r.indices >= 110)])
        assert idx.shape == vals.shape

    def test_outage_validation(self):
        with pytest.raises(ValidationError):
            OutageWindow(-1, 10)
        with pytest.raises(ValidationError):
            OutageWindow(5, 0)

    def test_dropout_removes_about_prob(self):
        r = stream(n_dense=5000, interval=5)
        idx, _ = RandomDropout(0.5).apply(r.indices, r.values, rng(), r.n_dense)
        frac = idx.shape[0] / r.indices.shape[0]
        assert 0.35 < frac < 0.65

    def test_dropout_prob_validated(self):
        with pytest.raises(ValidationError):
            RandomDropout(1.5)

    def test_stuck_freezes_at_pre_window_value(self):
        r = stream()
        idx, vals = StuckAt(50, 60).apply(r.indices, r.values, rng(), r.n_dense)
        np.testing.assert_array_equal(idx, r.indices)
        in_win = (idx >= 50) & (idx < 110)
        anchor = r.values[r.indices < 50][-1]
        np.testing.assert_array_equal(vals[in_win], anchor)
        np.testing.assert_array_equal(vals[~in_win], r.values[~in_win])

    def test_stuck_at_stream_start_uses_first_window_value(self):
        r = stream()
        idx, vals = StuckAt(0, 40).apply(r.indices, r.values, rng(), r.n_dense)
        in_win = idx < 40
        np.testing.assert_array_equal(vals[in_win], r.values[in_win][0])

    def test_spike_bounded_below_by_zero(self):
        r = stream()
        _, vals = SpikeOutlier(0.9, magnitude_w=500.0).apply(
            r.indices, r.values, rng(), r.n_dense
        )
        assert (vals >= 0.0).all()
        # Some spikes landed and they are either huge or clipped to zero.
        changed = vals != r.values
        assert changed.any()
        assert ((vals[changed] == 0.0) | (vals[changed] > 400.0)).all()

    def test_jitter_keeps_stream_valid(self):
        r = stream()
        idx, vals = ClockJitter(3).apply(r.indices, r.values, rng(), r.n_dense)
        assert (np.diff(idx) > 0).all()
        assert idx[0] >= 0 and idx[-1] < r.n_dense
        assert idx.shape == vals.shape
        assert np.abs(idx - r.indices[: idx.shape[0]]).max() <= 2 * 3 + 1

    def test_delay_shifts_later_and_drops_overflow(self):
        r = stream()
        idx, _ = DelayedArrival(15, prob=1.0).apply(r.indices, r.values, rng(), r.n_dense)
        np.testing.assert_array_equal(idx, r.indices[r.indices + 15 < r.n_dense] + 15)

    def test_models_never_mutate_inputs(self):
        r = stream()
        idx_copy, val_copy = r.indices.copy(), r.values.copy()
        for model in (
            OutageWindow(50, 60), RandomDropout(0.5), StuckAt(50, 60),
            SpikeOutlier(0.9, 100.0), ClockJitter(3), DelayedArrival(7),
        ):
            model.apply(r.indices, r.values, rng(), r.n_dense)
            np.testing.assert_array_equal(r.indices, idx_copy)
            np.testing.assert_array_equal(r.values, val_copy)


class TestFaultInjector:
    def test_same_seed_bit_identical(self):
        r = stream()
        faults = lambda: [RandomDropout(0.3), SpikeOutlier(0.3, 120.0), ClockJitter(2)]  # noqa: E731
        a = FaultInjector(faults(), seed=9).inject(r)
        b = FaultInjector(faults(), seed=9).inject(r)
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_array_equal(a.values, b.values)

    def test_different_seed_differs(self):
        r = stream(n_dense=2000, interval=5)
        a = FaultInjector([RandomDropout(0.4)], seed=1).inject(r)
        b = FaultInjector([RandomDropout(0.4)], seed=2).inject(r)
        assert a.indices.shape != b.indices.shape or (a.indices != b.indices).any()

    def test_repeated_calls_draw_fresh_streams(self):
        r = stream(n_dense=2000, interval=5)
        inj = FaultInjector([RandomDropout(0.4)], seed=3)
        a, b = inj.inject(r), inj.inject(r)
        assert a.indices.shape != b.indices.shape or (a.indices != b.indices).any()

    def test_total_outage_raises(self):
        r = stream()
        inj = FaultInjector([OutageWindow(0, 10_000)], seed=0)
        with pytest.raises(SensorOutageError):
            inj.inject(r)

    def test_rejects_non_fault(self):
        with pytest.raises(ValidationError):
            FaultInjector([object()], seed=0)

    def test_metadata_preserved(self):
        r = stream()
        out = FaultInjector([OutageWindow(50, 20)], seed=0).inject(r)
        assert out.interval_s == r.interval_s
        assert out.n_dense == r.n_dense


class TestFaultySensor:
    def test_delegates_to_wrapped_sensor(self, small_bundle):
        s = FaultySensor(IPMISensor(ARM_PLATFORM, seed=1))
        assert s.interval_s == 10
        assert s.sample_rate_sa_s == pytest.approx(0.1)

    def test_no_faults_passthrough(self, small_bundle):
        clean = IPMISensor(ARM_PLATFORM, seed=1).sample(small_bundle)
        wrapped = FaultySensor(IPMISensor(ARM_PLATFORM, seed=1)).sample(small_bundle)
        np.testing.assert_array_equal(clean.indices, wrapped.indices)
        np.testing.assert_array_equal(clean.values, wrapped.values)

    def test_fail_first_is_transient_then_recovers(self, small_bundle):
        s = FaultySensor(IPMISensor(ARM_PLATFORM, seed=1), fail_first=2)
        with pytest.raises(TransientSensorError):
            s.sample(small_bundle)
        with pytest.raises(TransientSensorError):
            s.sample(small_bundle)
        assert len(s.sample(small_bundle)) > 0

    def test_outage_chain_raises_sensor_outage(self, small_bundle):
        s = FaultySensor(
            IPMISensor(ARM_PLATFORM, seed=1), [OutageWindow(0, 10_000)]
        )
        with pytest.raises(SensorOutageError):
            s.sample(small_bundle)

    def test_fail_prob_validated(self):
        with pytest.raises(ValidationError):
            FaultySensor(IPMISensor(ARM_PLATFORM, seed=1), fail_prob=1.0)


class TestDenseWrappers:
    def test_pmc_stuck_window_freezes_rows(self, small_bundle):
        wrapped = FaultyPMCCollector(
            PMCCollector(miss_prob=0.0, seed=1), stuck_windows=[(40, 20)], seed=2
        )
        trace = wrapped.collect(small_bundle)
        base = small_bundle.pmcs.matrix
        np.testing.assert_array_equal(trace.matrix[40:60], np.tile(base[39], (20, 1)))
        np.testing.assert_array_equal(trace.matrix[:40], base[:40])

    def test_pmc_bundle_not_mutated(self, small_bundle):
        before = small_bundle.pmcs.matrix.copy()
        FaultyPMCCollector(
            PMCCollector(miss_prob=0.0, seed=1), spike_prob=0.5, seed=2
        ).collect(small_bundle)
        np.testing.assert_array_equal(small_bundle.pmcs.matrix, before)
        assert not small_bundle.pmcs.matrix.flags.writeable

    def test_rapl_traces_glitch_but_stay_valid(self, small_bundle):
        base = RAPLEmulator(seed=3).measure(small_bundle)
        wrapped = FaultyRAPLEmulator(
            RAPLEmulator(seed=3), stuck_windows=[(30, 10)], spike_prob=0.1, seed=4
        )
        pkg, ram = wrapped.measure(small_bundle)
        assert len(pkg) == len(base[0]) and len(ram) == len(base[1])
        assert (pkg.values >= 0).all() and (ram.values >= 0).all()


class TestGainDrift:
    def test_constant_affine_bias(self):
        r = stream()
        idx, vals = GainDrift(gain_start=1.2, bias_start_w=5.0).apply(
            r.indices, r.values, rng(), r.n_dense
        )
        np.testing.assert_array_equal(idx, r.indices)
        np.testing.assert_allclose(vals, 1.2 * r.values + 5.0)

    def test_drifting_coefficients_interpolate_linearly(self):
        r = stream()
        model = GainDrift(gain_start=1.0, gain_end=1.5,
                          bias_start_w=0.0, bias_end_w=10.0)
        idx, vals = model.apply(r.indices, r.values, rng(), r.n_dense)
        frac = r.indices / (r.n_dense - 1)
        gain = 1.0 + 0.5 * frac
        bias = 10.0 * frac
        np.testing.assert_allclose(vals, gain * r.values + bias)

    def test_values_floored_at_zero(self):
        r = stream()
        _, vals = GainDrift(gain_start=1.0, bias_start_w=-1e6).apply(
            r.indices, r.values, rng(), r.n_dense
        )
        assert (vals == 0.0).all()

    def test_deterministic_without_rng(self):
        r = stream()
        model = GainDrift(gain_start=1.1, gain_end=1.4, bias_start_w=2.0)
        a = model.apply(r.indices, r.values, np.random.default_rng(1), r.n_dense)
        b = model.apply(r.indices, r.values, np.random.default_rng(999), r.n_dense)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_never_mutates_inputs(self):
        r = stream()
        idx_copy, val_copy = r.indices.copy(), r.values.copy()
        GainDrift(gain_start=0.8, gain_end=1.6, bias_start_w=-3.0).apply(
            r.indices, r.values, rng(), r.n_dense
        )
        np.testing.assert_array_equal(r.indices, idx_copy)
        np.testing.assert_array_equal(r.values, val_copy)

    def test_validation(self):
        with pytest.raises(ValidationError):
            GainDrift(gain_start=0.0)
        with pytest.raises(ValidationError):
            GainDrift(gain_start=1.0, gain_end=-0.5)


class TestClockJitterDrift:
    def test_systematic_skew_shifts_every_reading(self):
        r = stream(n_dense=500)
        # max_shift 1 with drift 6: every index lands 5..7 ticks late.
        idx, _ = ClockJitter(1, drift_s=6).apply(r.indices, r.values, rng(), r.n_dense)
        shifts = idx - r.indices[: idx.shape[0]]
        assert (shifts >= 5).all() and (shifts <= 7).all()

    def test_negative_drift_shifts_early(self):
        r = stream(n_dense=500)
        idx, _ = ClockJitter(1, drift_s=-6).apply(r.indices, r.values, rng(), r.n_dense)
        shifts = idx - r.indices[: idx.shape[0]]
        assert (shifts <= -5).all() and (shifts >= -7).all()

    def test_default_drift_is_zero(self):
        assert ClockJitter(3).drift_s == 0

    def test_large_drift_clips_and_dedupes(self):
        r = stream()
        idx, vals = ClockJitter(1, drift_s=150).apply(
            r.indices, r.values, rng(), r.n_dense
        )
        assert (np.diff(idx) > 0).all()
        assert idx[-1] == r.n_dense - 1
        assert idx.shape == vals.shape
