"""Tests for StaticTRR (spline + ResModel + Algorithm 1)."""

import numpy as np
import pytest

from repro.core import HighRPMConfig, StaticTRR
from repro.errors import ValidationError
from repro.hardware import ARM_PLATFORM
from repro.ml import mape
from repro.sensors import SparseReadings


@pytest.fixture()
def static_trr():
    cfg = HighRPMConfig(miss_interval=10)
    return StaticTRR(
        cfg,
        p_upper=ARM_PLATFORM.max_node_power_w,
        p_bottom=ARM_PLATFORM.min_node_power_w,
    )


class TestStaticTRR:
    def test_restores_dense_trace(self, static_trr, small_bundle, ipmi_readings):
        result = static_trr.fit_restore(small_bundle.pmcs.matrix, ipmi_readings)
        assert len(result) == len(small_bundle)
        assert np.isfinite(result.p_trr).all()

    def test_accuracy_in_paper_band(self, static_trr, small_bundle, ipmi_readings):
        result = static_trr.fit_restore(small_bundle.pmcs.matrix, ipmi_readings)
        err = mape(small_bundle.node.values, result.p_trr)
        assert err < 12.0  # paper: ~4 % on average; generous per-trace bound

    def test_beats_hold_baseline(self, static_trr, small_bundle, ipmi_readings):
        result = static_trr.fit_restore(small_bundle.pmcs.matrix, ipmi_readings)
        truth = small_bundle.node.values
        hold = np.empty_like(truth)
        last = ipmi_readings.values[0]
        lookup = dict(zip(ipmi_readings.indices.tolist(), ipmi_readings.values.tolist()))
        for t in range(len(truth)):
            last = lookup.get(t, last)
            hold[t] = last
        assert mape(truth, result.p_trr) < mape(truth, hold) * 1.2

    def test_observed_points_pinned(self, static_trr, small_bundle, ipmi_readings):
        result = static_trr.fit_restore(small_bundle.pmcs.matrix, ipmi_readings)
        np.testing.assert_allclose(
            result.p_trr[ipmi_readings.indices], ipmi_readings.values
        )

    def test_output_within_physical_limits(self, static_trr, small_bundle, ipmi_readings):
        result = static_trr.fit_restore(small_bundle.pmcs.matrix, ipmi_readings)
        interior = np.ones(len(result), dtype=bool)
        interior[ipmi_readings.indices] = False  # pinned readings are raw
        assert (result.p_trr[interior] <= ARM_PLATFORM.max_node_power_w + 1e-9).all()
        assert (result.p_trr[interior] >= ARM_PLATFORM.min_node_power_w - 1e-9).all()

    def test_needs_four_readings(self, static_trr, small_bundle):
        readings = SparseReadings(
            np.array([0, 50, 100]), np.array([80.0, 85.0, 82.0]), 50, len(small_bundle)
        )
        with pytest.raises(ValidationError):
            static_trr.fit_restore(small_bundle.pmcs.matrix, readings)

    def test_length_mismatch_rejected(self, static_trr, small_bundle, ipmi_readings):
        with pytest.raises(ValidationError):
            static_trr.fit_restore(small_bundle.pmcs.matrix[:-5], ipmi_readings)

    def test_restore_convenience(self, static_trr, small_bundle, ipmi_readings):
        p = static_trr.restore(small_bundle.pmcs.matrix, ipmi_readings)
        assert p.shape == (len(small_bundle),)

    def test_unsigned_residual_mode(self, small_bundle, ipmi_readings):
        cfg = HighRPMConfig(miss_interval=10, residual_signed=False)
        trr = StaticTRR(cfg, p_upper=ARM_PLATFORM.max_node_power_w,
                        p_bottom=ARM_PLATFORM.min_node_power_w)
        result = trr.fit_restore(small_bundle.pmcs.matrix, ipmi_readings)
        assert np.isfinite(result.p_trr).all()

    def test_data_driven_limits(self, small_bundle, ipmi_readings):
        trr = StaticTRR(HighRPMConfig(miss_interval=10))  # no explicit limits
        result = trr.fit_restore(small_bundle.pmcs.matrix, ipmi_readings)
        assert np.isfinite(result.p_trr).all()

    def test_result_contains_intermediates(self, static_trr, small_bundle, ipmi_readings):
        result = static_trr.fit_restore(small_bundle.pmcs.matrix, ipmi_readings)
        assert result.p_splined.shape == result.p_trr.shape
        assert result.p_residual.shape == result.p_trr.shape
        # ResModel must actually differ from the spline somewhere.
        assert not np.allclose(result.p_splined, result.p_residual)


class TestAlgorithmOne:
    """Direct tests of the fusion rules."""

    def make(self, alpha=0.05, beta=0.25):
        cfg = HighRPMConfig(miss_interval=10, alpha=alpha, beta=beta)
        trr = StaticTRR(cfg, p_upper=120.0, p_bottom=40.0)
        trr._lo, trr._hi = 40.0, 120.0
        return trr

    def test_agreement_keeps_spline(self):
        trr = self.make()
        splined = np.full(5, 100.0)
        residual = np.full(5, 101.0)  # within alpha band
        fused = trr._post_process(splined.copy(), residual.copy())
        np.testing.assert_allclose(fused, 100.0)

    def test_mid_band_averages(self):
        trr = self.make(alpha=0.01, beta=0.5)
        splined = np.full(5, 100.0)
        residual = np.full(5, 110.0)  # 10 % apart: inside (alpha, beta]
        fused = trr._post_process(splined.copy(), residual.copy())
        np.testing.assert_allclose(fused, 105.0)

    def test_large_disagreement_keeps_spline(self):
        trr = self.make(alpha=0.01, beta=0.05)
        splined = np.full(5, 100.0)
        residual = np.full(5, 119.0)  # way beyond beta
        fused = trr._post_process(splined.copy(), residual.copy())
        np.testing.assert_allclose(fused, 100.0)

    def test_out_of_range_residual_distrusted(self):
        trr = self.make(alpha=0.01, beta=0.5)
        splined = np.full(5, 100.0)
        residual = np.full(5, 200.0)  # above p_upper -> replaced by spline
        fused = trr._post_process(splined.copy(), residual.copy())
        np.testing.assert_allclose(fused, 100.0)

    def test_output_clipped_to_limits(self):
        trr = self.make()
        splined = np.full(5, 130.0)  # spline overshoot
        residual = np.full(5, 130.0)
        fused = trr._post_process(splined.copy(), residual.copy())
        assert (fused <= 120.0).all()
