"""FleetMonitor and the cross-node batched inference primitives.

The fleet contract is strict: interleaving N nodes' runs and batching
their ResModel/SRR predictions must be bit-identical, node for node, to N
sequential ``observe_run`` calls — the batched compiled predictors are
batch-size independent, so fusing work across nodes changes cost, never
values.
"""

import numpy as np
import pytest

from repro.errors import NotFittedError, ValidationError
from repro.faults import FaultySensor, OutageWindow
from repro.ml.tree import DecisionTreeRegressor
from repro.monitor import FleetMonitor, PowerMonitorService
from repro.perf import CompiledTree, TreeStack, single_tree_of
from repro.sensors import IPMISensor


@pytest.fixture(scope="module")
def fitted_trees(rng_module):
    trees, parts = [], []
    for i, (n, depth, leaf) in enumerate([(200, 4, 4), (150, 8, 1), (60, 1, 60)]):
        X = rng_module.normal(size=(n, 5))
        y = rng_module.normal(size=n)
        trees.append(
            DecisionTreeRegressor(max_depth=depth, min_samples_leaf=leaf).fit(X, y)
        )
        parts.append(rng_module.normal(size=(17 + 13 * i, 5)))
    return trees, parts


@pytest.fixture(scope="module")
def rng_module():
    return np.random.default_rng(99)


class TestTreeStack:
    def test_matches_per_tree_predict_bitwise(self, fitted_trees):
        trees, parts = fitted_trees
        compiled = [single_tree_of(t) for t in trees]
        assert all(isinstance(c, CompiledTree) for c in compiled)
        outs = TreeStack(compiled).predict(parts)
        for tree, X, out in zip(trees, parts, outs):
            np.testing.assert_array_equal(out, tree.predict(X))

    def test_handles_empty_parts(self, fitted_trees):
        trees, _ = fitted_trees
        stack = TreeStack([single_tree_of(t) for t in trees])
        outs = stack.predict([np.empty((0, 5)) for _ in trees])
        assert all(out.shape == (0,) for out in outs)

    def test_part_count_must_match_tree_count(self, fitted_trees):
        trees, parts = fitted_trees
        stack = TreeStack([single_tree_of(t) for t in trees])
        with pytest.raises(NotFittedError):
            stack.predict(parts[:1])

    def test_single_tree_of_rejects_non_trees(self):
        assert single_tree_of(object()) is None


class TestPredictBatched:
    def test_matches_per_part_predict_bitwise(self, chaos_reference):
        reference, bundle = chaos_reference
        srr = reference.model.srr
        pmcs, p_node = bundle.pmcs.matrix, bundle.node.values
        parts = [(pmcs[:11], p_node[:11]), (pmcs[11:30], p_node[11:30]),
                 (pmcs[30:], p_node[30:])]
        for (pm, pn), (b_cpu, b_mem) in zip(parts, srr.predict_batched(parts)):
            s_cpu, s_mem = srr.predict(pm, pn)
            np.testing.assert_array_equal(b_cpu, s_cpu)
            np.testing.assert_array_equal(b_mem, s_mem)

    def test_empty_input(self, chaos_reference):
        assert chaos_reference[0].model.srr.predict_batched([]) == []

    def test_unfitted_raises(self):
        from repro.core.srr import SRR

        with pytest.raises(NotFittedError):
            SRR().predict_batched([])


def _twin_services(chaos_reference, node_ids, dead=()):
    reference, _ = chaos_reference
    services = []
    for _ in range(2):
        svc = PowerMonitorService(reference.model, reference.spec)
        for i, nid in enumerate(node_ids):
            if nid in dead:
                svc.register_node(nid, sensor=FaultySensor(
                    IPMISensor(reference.spec, seed=41),
                    faults=[OutageWindow(0, 10_000_000)], seed=42,
                ))
            else:
                svc.register_node(nid, seed=400 + i)
        services.append(svc)
    return services


class TestFleetMonitor:
    NODE_IDS = ("fl-a", "fl-b", "fl-c")

    @pytest.mark.parametrize("online", [True, False],
                             ids=["online", "offline"])
    def test_fleet_equals_sequential_observe_run(self, chaos_reference, online):
        _, bundle = chaos_reference
        seq_svc, fleet_svc = _twin_services(chaos_reference, self.NODE_IDS)
        seq = {
            nid: seq_svc.observe_run(nid, bundle, online=online, chunk_size=16)
            for nid in self.NODE_IDS
        }
        fleet = FleetMonitor(fleet_svc, chunk_size=16)
        results = fleet.observe_all(
            {nid: bundle for nid in self.NODE_IDS}, online=online
        )
        assert set(results) == set(self.NODE_IDS)
        for nid in self.NODE_IDS:
            np.testing.assert_array_equal(seq[nid].p_node, results[nid].p_node)
            np.testing.assert_array_equal(seq[nid].p_cpu, results[nid].p_cpu)
            np.testing.assert_array_equal(seq[nid].p_mem, results[nid].p_mem)
            np.testing.assert_array_equal(seq[nid].provenance,
                                          results[nid].provenance)
            assert seq[nid].mode == results[nid].mode
            np.testing.assert_array_equal(seq_svc.log(nid).p_node,
                                          fleet_svc.log(nid).p_node)
            assert seq_svc.health(nid).status == fleet_svc.health(nid).status

    def test_dead_feed_node_degrades_without_poisoning_the_fleet(
        self, chaos_reference
    ):
        _, bundle = chaos_reference
        seq_svc, fleet_svc = _twin_services(
            chaos_reference, self.NODE_IDS, dead={"fl-b"}
        )
        seq = {
            nid: seq_svc.observe_run(nid, bundle, chunk_size=16)
            for nid in self.NODE_IDS
        }
        results = FleetMonitor(fleet_svc, chunk_size=16).observe_all(
            {nid: bundle for nid in self.NODE_IDS}
        )
        assert results["fl-b"].mode == "model_only"
        assert fleet_svc.health("fl-b").outages == 1
        for nid in self.NODE_IDS:
            np.testing.assert_array_equal(seq[nid].p_node, results[nid].p_node)
            assert seq[nid].mode == results[nid].mode

    def test_tick_interleaves_and_finishes_in_order(self, chaos_reference):
        _, bundle = chaos_reference
        _, svc = _twin_services(chaos_reference, self.NODE_IDS)
        fleet = FleetMonitor(svc, chunk_size=len(bundle) // 2 + 1)
        fleet.submit("fl-a", bundle)
        fleet.submit("fl-b", bundle)
        assert set(fleet.active_nodes) == {"fl-a", "fl-b"}
        assert fleet.tick() == {}  # first chunk of two is not final
        finished = fleet.tick()
        assert set(finished) == {"fl-a", "fl-b"}
        assert fleet.active_nodes == ()
        assert fleet.tick() == {}

    def test_submit_validates_node_and_duplicates(self, chaos_reference):
        _, bundle = chaos_reference
        _, svc = _twin_services(chaos_reference, self.NODE_IDS)
        fleet = FleetMonitor(svc, chunk_size=32)
        with pytest.raises(ValidationError, match="unknown node"):
            fleet.submit("nope", bundle)
        fleet.submit("fl-a", bundle)
        with pytest.raises(ValidationError, match="already has an active run"):
            fleet.submit("fl-a", bundle)
        fleet.observe_all([])  # drains the pending run
        assert fleet.active_nodes == ()

    def test_chunk_size_validated(self, chaos_reference):
        _, svc = _twin_services(chaos_reference, self.NODE_IDS)
        with pytest.raises(ValidationError, match="chunk_size must be >= 1"):
            FleetMonitor(svc, chunk_size=0)

    def test_fleet_spans_and_metrics_recorded(self, chaos_reference):
        from repro.obs import MetricsRegistry

        reference, bundle = chaos_reference
        # Private registry: the services default to the ambient one, which
        # the other tests in this module already incremented.
        svc = PowerMonitorService(reference.model, reference.spec,
                                  registry=MetricsRegistry())
        for i, nid in enumerate(self.NODE_IDS):
            svc.register_node(nid, seed=400 + i)
        FleetMonitor(svc, chunk_size=64).observe_all(
            {nid: bundle for nid in self.NODE_IDS}
        )
        stats = svc.tracer.stats()
        for span in ("fleet.submit", "fleet.tick", "monitor.restore",
                     "monitor.attribute", "monitor.log_append"):
            assert span in stats, span
            assert stats[span].timed
        runs = svc.registry.counter(
            "repro_monitor_runs_total", "", ("node", "mode")
        )
        for nid in self.NODE_IDS:
            assert runs.labels(node=nid, mode="dynamic").value == 1.0
        chunks = svc.registry.counter(
            "repro_stream_chunks_total", "", ("stage",)
        )
        assert chunks.labels(stage="ingest").value >= len(self.NODE_IDS)
