"""Tests for the ARIMA forecaster."""

import numpy as np
import pytest

from repro.errors import NotFittedError, ValidationError
from repro.interp import ARIMAForecaster
from repro.interp.arima import difference, undifference


class TestDifferencing:
    def test_difference_roundtrip(self, rng):
        y = rng.normal(size=30).cumsum() + 50
        z = difference(y, 1)
        back = undifference(z, y[:1], 1)
        np.testing.assert_allclose(back, y[1:], atol=1e-10)

    def test_second_difference(self):
        y = np.array([1.0, 4.0, 9.0, 16.0, 25.0])  # squares
        z = difference(y, 2)
        np.testing.assert_allclose(z, 2.0)  # constant second difference


class TestARIMA:
    def test_recovers_ar1_on_stationary_series(self, rng):
        n = 800
        y = np.zeros(n)
        for i in range(1, n):
            y[i] = 5.0 + 0.7 * y[i - 1] + rng.normal(0, 0.3)
        model = ARIMAForecaster(order=(1, 0, 0)).fit(y)
        assert model.phi_[0] == pytest.approx(0.7, abs=0.07)

    def test_forecast_constant_series_with_d1(self):
        model = ARIMAForecaster(order=(1, 1, 0)).fit(np.full(60, 42.0))
        np.testing.assert_allclose(model.forecast(5), 42.0, atol=1e-6)

    def test_forecast_linear_trend_with_d1(self):
        y = 10.0 + 2.0 * np.arange(80.0)
        model = ARIMAForecaster(order=(1, 1, 0)).fit(y)
        fc = model.forecast(4)
        expect = 10.0 + 2.0 * np.arange(80, 84)
        np.testing.assert_allclose(fc, expect, rtol=0.05)

    def test_forecast_length_and_finiteness(self, rng):
        y = 50 + rng.normal(size=120).cumsum()
        model = ARIMAForecaster(order=(2, 1, 1)).fit(y)
        fc = model.forecast(12)
        assert fc.shape == (12,)
        assert np.isfinite(fc).all()

    def test_in_sample_tracks_smooth_signal(self):
        t = np.linspace(0, 6 * np.pi, 300)
        y = 80 + 10 * np.sin(t)
        model = ARIMAForecaster(order=(2, 1, 0)).fit(y)
        fitted = model.predict_in_sample()
        assert np.abs(fitted - y[1:]).mean() < 1.0

    def test_ma_component_fits_noise_structure(self, rng):
        # MA(1): y_t = eps_t + 0.6 eps_{t-1}
        eps = rng.normal(0, 1.0, 600)
        y = eps[1:] + 0.6 * eps[:-1]
        model = ARIMAForecaster(order=(0, 0, 1)).fit(y)
        assert model.theta_[0] == pytest.approx(0.6, abs=0.12)

    def test_validation(self):
        with pytest.raises(ValidationError):
            ARIMAForecaster(order=(0, 0, 0))
        with pytest.raises(ValidationError):
            ARIMAForecaster(order=(-1, 0, 1))
        with pytest.raises(ValidationError):
            ARIMAForecaster(order=(2, 1, 1)).fit(np.arange(4.0))

    def test_forecast_before_fit(self):
        with pytest.raises(NotFittedError):
            ARIMAForecaster().forecast(3)

    def test_d2_in_sample_unsupported(self, rng):
        y = rng.normal(size=60).cumsum().cumsum()
        model = ARIMAForecaster(order=(1, 2, 0)).fit(y)
        with pytest.raises(ValidationError):
            model.predict_in_sample()
