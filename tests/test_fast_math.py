"""The opt-in fast-math tier: tolerance contract and plumbing.

Two halves:

* property suites (hypothesis) pinning the contract itself — for random
  compiled MLPs and LSTM segment kernels, the BLAS tier agrees with the
  default einsum tier within ``FAST_MATH_RTOL`` / ``FAST_MATH_ATOL``, for
  every batch size and every chunking of the same inputs;
* regression pins for the *default* tier — with ``fast_math=False`` the
  kernels stay bitwise chunking-invariant (the streaming contract), so
  turning the tier off restores exact reproducibility.

The kernels are built directly from random parameters (no training): the
contract is about the forward-pass float ordering, not about fits.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HighRPM, HighRPMConfig
from repro.perf import (
    FAST_MATH_ATOL,
    FAST_MATH_RTOL,
    CompiledLSTM,
    CompiledMLP,
    precompile,
)


def _close(a, b):
    return np.allclose(a, b, rtol=FAST_MATH_RTOL, atol=FAST_MATH_ATOL)


def _make_mlp(rng, d, hidden, n_out, fast_math):
    """A compiled MLP with random folded parameters."""
    dims = [d, *hidden, n_out]
    weights = [rng.normal(0.0, 0.7, size=(a, b))
               for a, b in zip(dims[:-1], dims[1:])]
    biases = [rng.normal(0.0, 0.3, size=b) for b in dims[1:]]
    return CompiledMLP(
        weights=weights, biases=biases,
        x_mean=rng.normal(0.0, 1.0, size=d),
        x_scale=rng.uniform(0.5, 2.0, size=d),
        y_mean=rng.normal(0.0, 5.0, size=n_out),
        y_scale=rng.uniform(0.5, 3.0, size=n_out),
        activation="relu", single_output=(n_out == 1),
        fast_math=fast_math,
    )


def _make_lstm(rng, d, hidden, layers, window, fast_math):
    """A compiled LSTM segment kernel with random folded parameters."""
    params = []
    for layer in range(layers):
        d_in = d if layer == 0 else hidden
        params.append({
            "W": rng.normal(0.0, 0.5, size=(d_in, 4 * hidden)),
            "U": rng.normal(0.0, 0.5, size=(hidden, 4 * hidden)),
            "b": rng.normal(0.0, 0.1, size=4 * hidden),
        })
    return CompiledLSTM(
        params=params,
        head_w=rng.normal(0.0, 0.5, size=hidden),
        head_b=float(rng.normal(0.0, 1.0)),
        x_mean=rng.normal(0.0, 1.0, size=d),
        x_scale=rng.uniform(0.5, 2.0, size=d),
        y_mean=float(rng.normal(50.0, 5.0)),
        y_scale=float(rng.uniform(0.5, 3.0)),
        window=window,
        fast_math=fast_math,
    )


@st.composite
def mlp_cases(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    d = draw(st.integers(1, 8))
    hidden = draw(st.lists(st.integers(1, 12), min_size=1, max_size=3))
    n_out = draw(st.integers(1, 3))
    n = draw(st.integers(1, 64))
    cut = draw(st.integers(0, n))
    return seed, d, hidden, n_out, n, cut


@st.composite
def lstm_cases(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    d = draw(st.integers(1, 6))
    hidden = draw(st.integers(1, 10))
    layers = draw(st.integers(1, 2))
    window = draw(st.integers(2, 8))
    m = draw(st.integers(1, 24))
    cut = draw(st.integers(1, m))
    return seed, d, hidden, layers, window, m, cut


class TestFastMathMLP:
    @settings(max_examples=60, deadline=None)
    @given(mlp_cases())
    def test_fast_tier_within_tolerance(self, case):
        """BLAS forward agrees with the einsum forward per the contract."""
        seed, d, hidden, n_out, n, _ = case
        rng = np.random.default_rng(seed)
        exact = _make_mlp(rng, d, hidden, n_out, fast_math=False)
        fast = _make_mlp(np.random.default_rng(seed), d, hidden, n_out,
                         fast_math=True)
        X = rng.normal(0.0, 1.5, size=(n, d))
        assert _close(exact.predict(X), fast.predict(X))

    @settings(max_examples=60, deadline=None)
    @given(mlp_cases())
    def test_fast_tier_chunking_within_tolerance(self, case):
        """Any chunking of a batch stays inside the tolerance contract."""
        seed, d, hidden, n_out, n, cut = case
        rng = np.random.default_rng(seed)
        fast = _make_mlp(rng, d, hidden, n_out, fast_math=True)
        X = rng.normal(0.0, 1.5, size=(n, d))
        whole = fast.predict(X)
        parts = [p for p in (X[:cut], X[cut:]) if p.shape[0]]
        chunked = np.concatenate([fast.predict(p) for p in parts])
        assert _close(whole, chunked)

    @settings(max_examples=40, deadline=None)
    @given(mlp_cases())
    def test_default_tier_chunking_bitwise(self, case):
        """Regression pin: fast_math=False keeps chunking bit-identical."""
        seed, d, hidden, n_out, n, cut = case
        rng = np.random.default_rng(seed)
        exact = _make_mlp(rng, d, hidden, n_out, fast_math=False)
        X = rng.normal(0.0, 1.5, size=(n, d))
        whole = exact.predict(X)
        parts = [p for p in (X[:cut], X[cut:]) if p.shape[0]]
        chunked = np.concatenate([exact.predict(p) for p in parts])
        assert np.array_equal(whole, chunked)


class TestFastMathLSTM:
    @settings(max_examples=40, deadline=None)
    @given(lstm_cases())
    def test_fast_tier_within_tolerance(self, case):
        seed, d, hidden, layers, window, m, _ = case
        rng = np.random.default_rng(seed)
        exact = _make_lstm(rng, d, hidden, layers, window, fast_math=False)
        fast = _make_lstm(np.random.default_rng(seed), d, hidden, layers,
                          window, fast_math=True)
        rows = rng.normal(0.0, 1.0, size=(m + window - 1, d))
        assert _close(exact.forecast(rows, m), fast.forecast(rows, m))

    @settings(max_examples=40, deadline=None)
    @given(lstm_cases())
    def test_fast_tier_segment_split_within_tolerance(self, case):
        """Splitting a segment at any point stays inside the contract.

        Windows ``[0, cut)`` and ``[cut, m)`` share ``window − 1`` rows at
        the boundary, exactly how ``run_chunk`` re-segments a trace.
        """
        seed, d, hidden, layers, window, m, cut = case
        rng = np.random.default_rng(seed)
        fast = _make_lstm(rng, d, hidden, layers, window, fast_math=True)
        rows = rng.normal(0.0, 1.0, size=(m + window - 1, d))
        whole = fast.forecast(rows, m)
        first = fast.forecast(rows[:cut + window - 1], cut)
        parts = [first]
        if cut < m:
            parts.append(fast.forecast(rows[cut:], m - cut))
        assert _close(whole, np.concatenate(parts))

    @settings(max_examples=40, deadline=None)
    @given(lstm_cases())
    def test_default_tier_segment_split_bitwise(self, case):
        """Regression pin: the einsum tier is bitwise segment-invariant —
        the property ``run_chunk`` vs ``step`` bit-identity rests on."""
        seed, d, hidden, layers, window, m, cut = case
        rng = np.random.default_rng(seed)
        exact = _make_lstm(rng, d, hidden, layers, window, fast_math=False)
        rows = rng.normal(0.0, 1.0, size=(m + window - 1, d))
        whole = exact.forecast(rows, m)
        first = exact.forecast(rows[:cut + window - 1], cut)
        parts = [first]
        if cut < m:
            parts.append(exact.forecast(rows[cut:], m - cut))
        assert np.array_equal(whole, np.concatenate(parts))


class TestFastMathPlumbing:
    def test_config_default_off(self):
        assert HighRPMConfig().fast_math is False

    def test_set_fast_math_replaces_config_everywhere(self):
        hr = HighRPM()
        hr.set_fast_math(True)
        assert hr.config.fast_math is True
        assert hr.dynamic_trr.config is hr.config
        assert hr.srr.config is hr.config
        hr.set_fast_math(False)
        assert hr.config.fast_math is False
        assert hr.dynamic_trr.config is hr.config

    def test_precompile_sets_tier_flag(self):
        from repro.ml import MLPRegressor

        rng = np.random.default_rng(0)
        mlp = MLPRegressor(hidden_layer_sizes=(4,), max_iter=5).fit(
            rng.normal(size=(20, 3)), rng.normal(size=20)
        )
        precompile(mlp, fast_math=True)
        assert mlp._compiled.fast_math is True
        precompile(mlp, fast_math=False)
        assert mlp._compiled.fast_math is False
        # None keeps the predictor default (exact tier).
        precompile(mlp)
        assert mlp._compiled.fast_math is False

    def test_service_fast_math_flag(self, chaos_reference):
        """The service knob switches the shared model's tier end to end."""
        from repro.monitor.service import PowerMonitorService

        service, bundle = chaos_reference
        try:
            fast_svc = PowerMonitorService(service.model, service.spec,
                                           fast_math=True)
            assert fast_svc.fast_math is True
            assert service.model.config.fast_math is True
            assert service.model.srr.model_._compiled.fast_math is True
            fast_svc.register_node("fm-on", seed=9)
            fast = fast_svc.observe_run("fm-on", bundle, online=False)
        finally:
            exact_svc = PowerMonitorService(service.model, service.spec,
                                            fast_math=False)
        assert exact_svc.fast_math is False
        assert service.model.config.fast_math is False
        assert service.model.srr.model_._compiled.fast_math is False
        exact_svc.register_node("fm-off", seed=9)
        exact = exact_svc.observe_run("fm-off", bundle, online=False)
        # Same sensor seed, same trace: the two tiers agree within the
        # documented tolerances (node power is tier-independent here —
        # the static restorer has no matmul — and the SRR split is the
        # tier-sensitive half).
        assert np.array_equal(fast.p_node, exact.p_node)
        assert _close(fast.p_cpu, exact.p_cpu)
        assert _close(fast.p_mem, exact.p_mem)

    def test_service_inherits_model_tier(self, chaos_reference):
        from repro.monitor.service import PowerMonitorService

        service, _ = chaos_reference
        svc = PowerMonitorService(service.model, service.spec)
        assert svc.fast_math is service.model.config.fast_math


class TestFastMathDynamicSession:
    """The dynamic-session kernel honours the config tier."""

    @pytest.fixture(scope="class")
    def fitted(self, train_bundles):
        cfg = HighRPMConfig(lstm_iters=60, srr_iters=300, seed=3)
        return HighRPM(cfg).fit_initial(train_bundles[:2])

    def test_tiers_agree_within_tolerance(self, fitted, ipmi_readings,
                                          small_bundle):
        pmcs = small_bundle.pmcs.matrix
        exact = fitted.set_fast_math(False).online_session()
        out_exact = exact.run_chunk(pmcs, ipmi_readings)
        try:
            fast = fitted.set_fast_math(True).online_session()
            out_fast = fast.run_chunk(pmcs, ipmi_readings)
        finally:
            fitted.set_fast_math(False)
        # Fine-tunes at reading instants compound tier differences through
        # the model parameters, so the end-to-end gap is looser than one
        # kernel call's — but the forecasts must stay numerically close.
        np.testing.assert_allclose(out_fast, out_exact, rtol=1e-5, atol=1e-5)
