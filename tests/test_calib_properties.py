"""Property-based tests for the calibration layer.

Three contracts, checked over generated error models rather than a few
hand-picked cases:

* **recovery** — on a noise-free feed the estimators recover the injected
  (lag, gain, bias) within tight tolerance, schedule included;
* **determinism** — the estimators and the drift tracker are RNG-free, so
  identical inputs produce bit-identical estimates;
* **neutrality** — compensating an unfaulted feed is (near-)identity, the
  identity transform returns the *same* object, and ``apply`` never
  mutates its input, even when the arrays are frozen.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calib import (
    IDENTITY,
    CompensationTransform,
    DriftConfig,
    estimate_calibration,
    estimate_drift_calibration,
)
from repro.sensors import SparseReadings

N_DENSE = 400
INTERVAL = 10


def make_truth(seed: int) -> np.ndarray:
    """A wiggly but reproducible ground-truth power trace."""
    rng = np.random.default_rng(seed)
    t = np.arange(N_DENSE, dtype=np.float64)
    return (
        90.0
        + 25.0 * np.sin(t / (8.0 + (seed % 7)))
        + 8.0 * np.sin(t / 31.0)
        + rng.normal(0.0, 1.5, size=N_DENSE)
    )


def make_feed(truth, lag=0, gain=1.0, bias=0.0):
    """The forward error model: report ``gain*truth+bias``, ``lag`` late."""
    stamped = np.arange(0, N_DENSE, INTERVAL, dtype=np.int64)
    source = stamped - lag
    keep = (source >= 0) & (source < N_DENSE)
    vals = gain * truth[source[keep]] + bias
    return SparseReadings(stamped[keep], vals, INTERVAL, N_DENSE)


error_models = st.tuples(
    st.integers(min_value=-8, max_value=8),              # lag_s
    st.floats(min_value=0.5, max_value=2.0),             # gain
    st.floats(min_value=-15.0, max_value=15.0),          # bias_w
    st.integers(min_value=0, max_value=50),              # truth seed
)


@settings(max_examples=40, deadline=None)
@given(error_models)
def test_estimators_recover_injected_error(model):
    lag, gain, bias, seed = model
    truth = make_truth(seed)
    feed = make_feed(truth, lag=lag, gain=gain, bias=bias)
    est = estimate_calibration(feed, truth, max_lag_s=10)
    assert est.lag_s == lag
    assert est.sensor_gain == pytest.approx(gain, rel=1e-6)
    assert est.sensor_bias_w == pytest.approx(bias, abs=1e-6 * max(1.0, abs(bias)))
    # Compensation inverts the error model on the surviving readings.
    out = est.transform().apply(feed)
    np.testing.assert_allclose(out.values, truth[out.indices], atol=1e-8)


@settings(max_examples=25, deadline=None)
@given(error_models)
def test_same_inputs_bit_identical_estimates(model):
    lag, gain, bias, seed = model
    truth = make_truth(seed)
    feed = make_feed(truth, lag=lag, gain=gain, bias=bias)
    a = estimate_calibration(feed, truth, max_lag_s=10)
    b = estimate_calibration(feed, truth, max_lag_s=10)
    assert a == b  # frozen dataclass equality == field-wise bit identity
    da, _ = estimate_drift_calibration(feed, truth, DriftConfig(window_s=80))
    db, _ = estimate_drift_calibration(feed, truth, DriftConfig(window_s=80))
    assert da == db
    out_a = a.transform().apply(feed)
    out_b = b.transform().apply(feed)
    np.testing.assert_array_equal(out_a.values, out_b.values)
    np.testing.assert_array_equal(out_a.indices, out_b.indices)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=50))
def test_unfaulted_feed_compensates_to_near_identity(seed):
    truth = make_truth(seed)
    feed = make_feed(truth)  # lag 0, gain 1, bias 0
    est = estimate_calibration(feed, truth, max_lag_s=10)
    assert est.lag_s == 0
    assert est.scale == pytest.approx(1.0, rel=1e-9)
    assert est.offset_w == pytest.approx(0.0, abs=1e-7)
    out = est.transform().apply(feed)
    np.testing.assert_allclose(out.values, feed.values, rtol=1e-9, atol=1e-9)
    np.testing.assert_array_equal(out.indices, feed.indices)


@settings(max_examples=25, deadline=None)
@given(error_models)
def test_identity_is_same_object_and_apply_never_mutates(model):
    lag, gain, bias, seed = model
    truth = make_truth(seed)
    feed = make_feed(truth, lag=lag, gain=gain, bias=bias)
    # Freeze the arrays: any in-place write inside apply would raise.
    feed.indices.setflags(write=False)
    feed.values.setflags(write=False)
    assert IDENTITY.apply(feed) is feed
    idx_before = feed.indices.copy()
    val_before = feed.values.copy()
    t = CompensationTransform(lag_s=lag, scale=1.0 / gain, offset_w=-bias / gain)
    out = t.apply(feed)
    assert out is not feed
    np.testing.assert_array_equal(feed.indices, idx_before)
    np.testing.assert_array_equal(feed.values, val_before)
