"""Tests for campaign persistence and CSV export."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.io import (
    export_monitor_csv,
    import_monitor_csv,
    load_bundle,
    load_campaign,
    load_readings,
    save_bundle,
    save_campaign,
    save_readings,
)
from repro.sensors import IPMISensor
from repro.hardware import ARM_PLATFORM


class TestBundleRoundtrip:
    def test_single_bundle(self, small_bundle, tmp_path):
        path = str(tmp_path / "bundle.npz")
        save_bundle(path, small_bundle)
        loaded = load_bundle(path)
        np.testing.assert_allclose(loaded.node.values, small_bundle.node.values)
        np.testing.assert_allclose(loaded.pmcs.matrix, small_bundle.pmcs.matrix)
        assert loaded.workload == small_bundle.workload
        assert loaded.platform == small_bundle.platform
        assert loaded.pmcs.events == small_bundle.pmcs.events
        assert loaded.check_additivity(atol=1e-9)

    def test_extension_appended(self, small_bundle, tmp_path):
        path = str(tmp_path / "noext")
        save_bundle(path, small_bundle)
        loaded = load_bundle(path)  # finds noext.npz
        assert len(loaded) == len(small_bundle)

    def test_campaign_roundtrip(self, train_bundles, tmp_path):
        path = str(tmp_path / "campaign.npz")
        save_campaign(path, train_bundles)
        loaded = load_campaign(path)
        assert len(loaded) == len(train_bundles)
        for a, b in zip(loaded, train_bundles):
            assert a.workload == b.workload
            np.testing.assert_allclose(a.node.values, b.node.values)

    def test_empty_campaign_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            save_campaign(str(tmp_path / "x.npz"), [])

    def test_future_version_rejected(self, small_bundle, tmp_path):
        path = str(tmp_path / "bundle.npz")
        save_bundle(path, small_bundle)
        import numpy as np2

        with np2.load(path) as arrays:
            data = {k: arrays[k] for k in arrays.files}
        data["format_version"] = np2.array([99])
        np2.savez(path, **data)
        with pytest.raises(ValidationError):
            load_bundle(path)


class TestReadingsRoundtrip:
    def test_roundtrip(self, small_bundle, tmp_path):
        readings = IPMISensor(ARM_PLATFORM, seed=1).sample(small_bundle)
        path = str(tmp_path / "readings.npz")
        save_readings(path, readings)
        loaded = load_readings(path)
        np.testing.assert_array_equal(loaded.indices, readings.indices)
        np.testing.assert_allclose(loaded.values, readings.values)
        assert loaded.interval_s == readings.interval_s
        assert loaded.n_dense == readings.n_dense


class TestCSV:
    def test_roundtrip(self, tmp_path, rng):
        node = rng.uniform(60, 110, 50)
        cpu = rng.uniform(20, 60, 50)
        mem = rng.uniform(5, 35, 50)
        path = str(tmp_path / "log.csv")
        export_monitor_csv(path, node, cpu, mem)
        n2, c2, m2 = import_monitor_csv(path)
        np.testing.assert_allclose(n2, node, atol=1e-4)
        np.testing.assert_allclose(c2, cpu, atol=1e-4)
        np.testing.assert_allclose(m2, mem, atol=1e-4)

    def test_shape_mismatch_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            export_monitor_csv(str(tmp_path / "x.csv"),
                               np.ones(3), np.ones(4), np.ones(3))

    def test_bad_csv_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValidationError):
            import_monitor_csv(str(path))
