"""Tests for K-fold, train/test split, and grid search."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.ml import GridSearchCV, KFold, RidgeRegression, train_test_split
from repro.ml.model_selection import cross_val_score


class TestKFold:
    def test_partitions_everything_once(self):
        kf = KFold(n_splits=4)
        seen = []
        for train, test in kf.split(20):
            seen.extend(test.tolist())
            assert set(train) & set(test) == set()
        assert sorted(seen) == list(range(20))

    def test_split_count(self):
        assert len(list(KFold(5).split(50))) == 5

    def test_shuffle_is_deterministic(self):
        a = [t.tolist() for _, t in KFold(3, shuffle=True, random_state=1).split(12)]
        b = [t.tolist() for _, t in KFold(3, shuffle=True, random_state=1).split(12)]
        assert a == b

    def test_too_few_samples(self):
        with pytest.raises(ValidationError):
            list(KFold(5).split(3))

    def test_min_splits(self):
        with pytest.raises(ValidationError):
            KFold(1)


class TestTrainTestSplit:
    def test_sizes(self, rng):
        X = rng.normal(size=(40, 2))
        y = rng.normal(size=40)
        Xtr, Xte, ytr, yte = train_test_split(X, y, test_size=0.25, random_state=0)
        assert Xtr.shape == (30, 2) and Xte.shape == (10, 2)
        assert ytr.shape == (30,) and yte.shape == (10,)

    def test_rows_stay_aligned(self, rng):
        X = np.arange(20).reshape(20, 1).astype(float)
        y = np.arange(20).astype(float)
        Xtr, Xte, ytr, yte = train_test_split(X, y, random_state=3)
        np.testing.assert_allclose(Xtr.ravel(), ytr)
        np.testing.assert_allclose(Xte.ravel(), yte)

    def test_mismatched_lengths(self):
        with pytest.raises(ValidationError):
            train_test_split(np.ones(5), np.ones(6))

    def test_degenerate_split(self):
        with pytest.raises(ValidationError):
            train_test_split(np.ones(3), test_size=0.0)


class TestCrossValScore:
    def test_returns_per_fold(self, rng):
        X = rng.normal(size=(50, 3))
        y = X @ np.ones(3) + 100.0  # keep targets away from zero (MAPE scorer)
        scores = cross_val_score(RidgeRegression(), X, y, cv=5)
        assert scores.shape == (5,)
        assert (scores < 1.0).all()  # near-perfect linear fit


class TestGridSearch:
    def test_finds_better_alpha(self, rng):
        X = rng.normal(size=(100, 8))
        y = X[:, 0] + 0.01 * rng.normal(size=100)
        gs = GridSearchCV(
            RidgeRegression(), {"alpha": [1e-4, 1e4]}, cv=KFold(4)
        ).fit(X, y)
        assert gs.best_params_["alpha"] == 1e-4
        assert len(gs.results_) == 2

    def test_best_estimator_refit_on_all_data(self, rng):
        X = rng.normal(size=(60, 2))
        y = X[:, 0]
        gs = GridSearchCV(RidgeRegression(), {"alpha": [0.1]}, cv=3).fit(X, y)
        assert gs.best_estimator_.coef_ is not None
        assert np.isfinite(gs.predict(X)).all()

    def test_empty_grid_rejected(self):
        with pytest.raises(ValidationError):
            GridSearchCV(RidgeRegression(), {})

    def test_predict_before_fit(self):
        gs = GridSearchCV(RidgeRegression(), {"alpha": [1.0]})
        with pytest.raises(ValidationError):
            gs.predict(np.ones((2, 2)))
