"""Unit tests for the generic stream layer: chunks, stages, sinks.

The monitor pipeline and the fleet front-end are built on these pieces;
here they are exercised in isolation with toy stages.
"""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.monitor import MemoryLogSink, MonitorLog
from repro.obs import MetricsRegistry, use_registry
from repro.stream import (
    JsonlSink,
    PowerChunk,
    RunContext,
    Stage,
    StreamPipeline,
    chunk_spans,
    iter_jsonl,
)


class TestChunkSpans:
    def test_tiles_the_range_exactly(self):
        spans = chunk_spans(10, 3)
        assert spans == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_none_chunk_size_is_one_whole_chunk(self):
        assert chunk_spans(42, None) == [(0, 42)]

    def test_empty_run_has_no_spans(self):
        assert chunk_spans(0, 4) == []

    def test_rejects_non_positive_chunk_size(self):
        with pytest.raises(ValidationError, match="chunk_size must be >= 1"):
            chunk_spans(10, 0)

    def test_chunk_len_matches_span(self):
        chunk = PowerChunk(node_id="n", workload="w", start=5, stop=9)
        assert chunk.n_samples == 4
        assert len(chunk) == 4


class _Double(Stage):
    """Toy stage: doubles p_node in place."""

    name = "double"

    def process(self, ctx, chunk):
        chunk.p_node = chunk.p_node * 2.0
        return chunk


class _HoldOne(Stage):
    """Toy stage with a one-chunk lag, flushed at end of run."""

    name = "hold"

    def open_run(self, ctx):
        ctx.held = None

    def process(self, ctx, chunk):
        held, ctx.held = ctx.held, chunk
        return held

    def flush(self, ctx):
        return [ctx.held] if ctx.held is not None else []


class _Collect(Stage):
    name = "collect"

    def open_run(self, ctx):
        ctx.collected = []

    def process(self, ctx, chunk):
        ctx.collected.append(chunk)
        return chunk


def _chunks(k, size=4):
    return [
        PowerChunk(node_id="n", workload="w", start=i * size,
                   stop=(i + 1) * size, seq=i,
                   p_node=np.full(size, float(i + 1)))
        for i in range(k)
    ]


class TestStreamPipeline:
    def test_chunks_traverse_stages_in_order(self):
        pipe = StreamPipeline([_Double(), _Collect()])
        ctx = RunContext("n", "w", 12)
        out = pipe.run(ctx, _chunks(3))
        assert [c.seq for c in out] == [0, 1, 2]
        assert all(np.all(c.p_node == 2.0 * (c.seq + 1)) for c in out)
        assert ctx.collected == out

    def test_flushed_chunks_traverse_downstream_stages(self):
        # The held-back final chunk must still pass through _Double, which
        # sits *after* the holding stage.
        pipe = StreamPipeline([_HoldOne(), _Double()])
        out = pipe.run(RunContext("n", "w", 12), _chunks(3))
        assert [c.seq for c in out] == [0, 1, 2]
        assert all(np.all(c.p_node == 2.0 * (c.seq + 1)) for c in out)

    def test_absorbed_chunk_stops_descending(self):
        class Absorb(Stage):
            name = "absorb"

            def process(self, ctx, chunk):
                return None

        pipe = StreamPipeline([Absorb(), _Collect()])
        ctx = RunContext("n", "w", 8)
        assert pipe.run(ctx, _chunks(2)) == []
        assert ctx.collected == []

    def test_stage_metrics_count_chunks_and_samples(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            StreamPipeline([_Double()]).run(RunContext("n", "w", 12), _chunks(3))
        chunks = registry.counter(
            "repro_stream_chunks_total", "", ("stage",)
        ).labels(stage="double")
        samples = registry.counter(
            "repro_stream_samples_total", "", ("stage",)
        ).labels(stage="double")
        assert chunks.value == 3.0
        assert samples.value == 12.0

    def test_apply_runs_exactly_one_stage(self):
        pipe = StreamPipeline([_Double(), _Double()])
        ctx = RunContext("n", "w", 4)
        [chunk] = _chunks(1)
        emitted = pipe.apply(ctx, chunk, 0)
        assert len(emitted) == 1 and np.all(emitted[0].p_node == 2.0)

    def test_run_equals_stepwise_apply(self):
        whole = StreamPipeline([_HoldOne(), _Double()])
        out_a = whole.run(RunContext("n", "w", 12), _chunks(3))
        step = StreamPipeline([_HoldOne(), _Double()])
        ctx = RunContext("n", "w", 12)
        step.open_run(ctx)
        out_b = []
        for chunk in _chunks(3):
            for c in step.apply(ctx, chunk, 0):
                out_b.extend(step.apply(ctx, c, 1))
        for j, stage in enumerate(step.stages):
            for c in stage.flush(ctx):
                out_b.extend(step._push(ctx, c, j + 1))
        step.close_run(ctx)
        assert [c.seq for c in out_a] == [c.seq for c in out_b]


class TestJsonlSink:
    def _chunk(self, start, stop, seq):
        n = stop - start
        return PowerChunk(
            node_id="n0", workload="fft", start=start, stop=stop, seq=seq,
            mode="dynamic", p_node=np.arange(n, dtype=float) + start,
            p_cpu=np.ones(n), p_mem=np.zeros(n),
            provenance=np.full(n, 2, dtype=np.uint8),
        )

    def test_round_trip(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with JsonlSink(path) as sink:
            sink.write(self._chunk(0, 4, 0))
            sink.write(self._chunk(4, 6, 1))
            sink.end_run("n0", "fft", "dynamic")
        records = list(iter_jsonl(path))
        assert [r["event"] for r in records] == ["chunk", "chunk", "end_run"]
        assert records[0]["p_node"] == [0.0, 1.0, 2.0, 3.0]
        assert records[1]["start"] == 4 and records[1]["stop"] == 6
        assert records[0]["provenance"] == [2, 2, 2, 2]
        assert records[2] == {
            "event": "end_run", "node_id": "n0", "workload": "fft",
            "mode": "dynamic",
        }

    def test_appends_across_reopens(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with JsonlSink(path) as sink:
            sink.write(self._chunk(0, 2, 0))
        with JsonlSink(path) as sink:
            sink.write(self._chunk(2, 4, 1))
        assert len(list(iter_jsonl(path))) == 2


class TestMemoryLogSink:
    def test_feeds_monitor_log(self):
        log = MonitorLog("n0")
        sink = MemoryLogSink(log)
        sink.write(PowerChunk(
            node_id="n0", workload="fft", start=0, stop=3, seq=0,
            mode="dynamic", p_node=np.array([1.0, 2.0, 3.0]),
            p_cpu=np.zeros(3), p_mem=np.zeros(3),
            provenance=np.full(3, 2, dtype=np.uint8),
        ))
        sink.end_run("n0", "fft", "dynamic")
        assert log.runs == ["fft"] and log.modes == ["dynamic"]
        assert len(log) == 3
        np.testing.assert_array_equal(log.p_node, [1.0, 2.0, 3.0])


class TestMonitorLogChunked:
    def test_many_appends_consolidate_lazily(self):
        log = MonitorLog("n0")
        for i in range(50):
            log._append_arrays(
                np.full(2, float(i)), np.zeros(2), np.zeros(2),
                np.full(2, 2, dtype=np.uint8),
            )
        assert len(log._parts["p_node"]) == 50
        assert len(log) == 100
        assert log.p_node.shape == (100,)
        # Property access consolidated the chunk list down to one block.
        assert len(log._parts["p_node"]) == 1
        np.testing.assert_array_equal(log.p_node[:2], [0.0, 0.0])
        np.testing.assert_array_equal(log.p_node[-2:], [49.0, 49.0])

    def test_empty_log_channels(self):
        log = MonitorLog("n0")
        assert log.p_node.shape == (0,)
        assert log.provenance.dtype == np.uint8
        assert log.model_only_fraction() == 0.0
