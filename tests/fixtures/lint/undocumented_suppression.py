"""Fixture: RL007 suppression-hygiene violations (2 expected)."""

x = 1  # repro-lint: disable=frozen-mutation
y = 2  # repro-lint: disable=RL999 — no such rule, suppresses nothing

z = 3  # repro-lint: disable=frozen-mutation — documented, allowed
