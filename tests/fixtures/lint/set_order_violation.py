"""Fixture: RL202 unordered-accumulation violations (2 expected in perf/)."""


def total_power(readings: "set[float]") -> float:
    total = 0.0
    for r in readings:  # RL202: hash-order iteration feeds +=
        total += r
    return total


def total_builtin(readings: "set[float]") -> float:
    watts = {1.0, 2.0, 3.0}
    return sum(watts)  # RL202: sum() reduces a set in hash order


def total_sorted(readings: "set[float]") -> float:
    total = 0.0
    for r in sorted(readings):  # allowed: explicit deterministic order
        total += r
    return total
