"""Fixture: RL302 append-accumulation violations (1 expected in monitor/)."""

import numpy as np


def collect(power: np.ndarray) -> "list[float]":
    out = []
    for value in power:  # direct ndarray iteration: per-sample
        out.append(value * 2.0)  # RL302: list grows one sample at a time
    return out


def collect_vec(power: np.ndarray) -> np.ndarray:
    return power * 2.0  # allowed: one vectorised expression
