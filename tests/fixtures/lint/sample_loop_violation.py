"""Fixture: RL301 per-sample-loop violations (2 expected in monitor/)."""

import numpy as np


def scale(power: np.ndarray) -> np.ndarray:
    out = np.empty_like(power)
    for i in range(power.shape[0]):  # RL301: per-sample indexed loop
        out[i] = power[i] * 2.0
    return out


def scale_len(power: np.ndarray) -> np.ndarray:
    n = len(power)
    out = np.empty(n)
    for i in range(n):  # RL301: extent recorded through n = len(power)
        out[i] = power[i] + 1.0
    return out


def scale_vec(power: np.ndarray) -> np.ndarray:
    return power * 2.0  # allowed: whole-chunk vectorised


def chunked(power: np.ndarray, chunk: int) -> float:
    total = 0.0
    for start in range(0, power.shape[0], chunk):  # allowed: chunk loop
        total += float(np.sum(power[start:start + chunk]))
    return total
