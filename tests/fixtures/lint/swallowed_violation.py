"""Fixture: RL006 swallowed-error violations (2 expected)."""


def risky():
    try:
        return 1 // 0
    except:  # RL006: bare except
        pass


def quiet(path):
    try:
        return open(path)
    except Exception:  # RL006: blanket except that swallows
        pass


def fine(path):
    try:
        return open(path)
    except OSError:
        return None
