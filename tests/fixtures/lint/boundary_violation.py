"""Fixture: RL005 boundary violation (1 expected when placed in core/)."""

import numpy as np


def restore(pmcs: np.ndarray) -> np.ndarray:  # RL005: no validation call
    return pmcs * 2.0


def _helper(pmcs: np.ndarray) -> np.ndarray:  # allowed: private
    return pmcs + 1.0


def scale(factor: float) -> float:  # allowed: no array parameters
    return factor * 2.0
