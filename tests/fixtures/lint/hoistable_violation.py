"""Fixture: RL303 hoistable-indexing violation (1 expected in monitor/)."""

import numpy as np


def repeat_gather(weights: np.ndarray, repeats: int) -> float:
    total = 0.0
    for _ in range(repeats):
        total += float(np.sum(weights[0:3]))  # RL303: loop-invariant gather
    return total


def hoisted(weights: np.ndarray, repeats: int) -> float:
    head = weights[0:3]  # allowed: gathered once, outside the loop
    total = 0.0
    for _ in range(repeats):
        total += float(np.sum(head))
    return total
