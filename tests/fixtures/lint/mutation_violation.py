"""Fixture: RL004 frozen-mutation violations (5 expected)."""


def clobber(trace, bundle):
    trace.values[0] = 0.0  # RL004: subscript write through frozen field
    trace.values += 1.0  # RL004: augmented assignment
    bundle.pmcs.matrix[1, 2] = 3.0  # RL004: nested attribute chain
    trace.values.sort()  # RL004: in-place ndarray method
    arr = trace.values.copy()
    arr.setflags(write=True)  # RL004: re-enables writes
    return arr


def fine(trace):
    fresh = trace.values + 1.0  # allowed: builds a new array
    return trace.with_values(fresh)
