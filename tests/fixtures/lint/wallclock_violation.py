"""Fixture: RL003 wall-clock violations (3 expected when placed in core/)."""

import time
from datetime import datetime

from time import perf_counter


def stamp():
    t = time.time()  # RL003
    return t, datetime.now()  # RL003


def measure():
    return perf_counter()  # RL003 (imported-name spelling)
