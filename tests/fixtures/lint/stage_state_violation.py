"""Fixture: RL401 stage-state violations (2 expected in stream/)."""


class Stage:
    """Stand-in for repro.stream.Stage (resolved by name)."""


class CountingStage(Stage):
    def __init__(self) -> None:
        self.count = 0  # allowed: construction-time configuration
        self.seen = []

    def run(self, ctx):
        self.count = self.count + 1  # RL401: per-run state on the stage
        self.seen.append(ctx)  # RL401: in-place accumulation on the stage
        return ctx


class StatelessStage(Stage):
    def run(self, ctx):
        ctx.count = ctx.count + 1  # allowed: state travels on the context
        return ctx
