"""Fixture: RL201 bit-identity matmul violations (3 expected in perf/)."""

import numpy as np


def forward(a: np.ndarray, w: np.ndarray) -> np.ndarray:
    return a @ w  # RL201: GEMM reduction order varies with call shape


def forward_dot(a: np.ndarray, w: np.ndarray) -> np.ndarray:
    return np.dot(a, w)  # RL201: np.dot spelling


def forward_optimized(a: np.ndarray, w: np.ndarray) -> np.ndarray:
    return np.einsum("nk,ko->no", a, w, optimize=True)  # RL201: optimized


def forward_fixed(a: np.ndarray, w: np.ndarray) -> np.ndarray:
    return np.einsum("nk,ko->no", a, w)  # allowed: fixed contraction order
