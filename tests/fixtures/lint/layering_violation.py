"""Fixture: RL002 layering violations (2 expected when placed in ml/)."""

from repro.monitor.budget import PowerBudget  # RL002: ml -> monitor (upward)

from ..core.config import HighRPMConfig  # RL002: ml -> core (upward)

from ..utils.rng import as_generator  # allowed: ml -> utils (downward)

__all__ = ["PowerBudget", "HighRPMConfig", "as_generator"]
