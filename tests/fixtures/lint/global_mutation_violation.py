"""Fixture: RL402 global-mutation violations (2 expected in faults/)."""

_RESULTS = {}
_HISTORY = []

_LIMITS = {"power_w": 250.0}  # read-only below: allowed


def record(run_id: str, value: float) -> None:
    _RESULTS[run_id] = value  # RL402: per-process divergence under workers
    _HISTORY.append(run_id)  # RL402: in-place mutation of a module global


def lookup(run_id: str) -> float:
    return _RESULTS.get(run_id, _LIMITS["power_w"])  # allowed: read only


def local_ok(run_id: str) -> "dict[str, float]":
    results = {}
    results[run_id] = 1.0  # allowed: function-local container
    return results
