"""Fixture: RL403 registry-capture violations (3 expected in monitor/)."""

from ..obs import GLOBAL_REGISTRY, get_registry

_METRICS = get_registry()  # RL403: module-global capture


class Probe:
    def __init__(self) -> None:
        self.registry = get_registry()  # RL403: frozen at construction

    def tick(self) -> None:
        get_registry().counter("ticks").inc()  # allowed: call-time read
        GLOBAL_REGISTRY.counter("raw").inc()  # RL403: bypasses use_registry
