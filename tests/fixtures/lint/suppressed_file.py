"""Fixture: file-level suppression (0 expected)."""

# repro-lint: disable-file=swallowed-error — fixture exercises file-level suppression


def a():
    try:
        return 1
    except:
        pass


def b():
    try:
        return 2
    except Exception:
        pass
