"""Fixture: violations silenced by suppression comments (0 expected)."""

import numpy as np


def sampler():
    np.random.seed(0)  # repro-lint: disable=RL001 — fixture exercises inline suppression
    # repro-lint: disable=rng-discipline — fixture exercises own-line suppression
    return np.random.rand(2)


def swallow():
    try:
        return 1
    except Exception:  # repro-lint: disable=swallowed-error — fixture exercises name-based suppression
        pass
