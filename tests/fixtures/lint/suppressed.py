"""Fixture: violations silenced by suppression comments (0 expected)."""

import numpy as np


def sampler():
    np.random.seed(0)  # repro-lint: disable=RL001
    # repro-lint: disable=rng-discipline
    return np.random.rand(2)


def swallow():
    try:
        return 1
    except Exception:  # repro-lint: disable=swallowed-error
        pass
