"""Fixture: RL001 rng-discipline violations (3 expected)."""

import random  # noqa  -- RL001: stdlib random import

import numpy as np


def draw():
    random.seed(0)
    np.random.seed(0)  # RL001: global-state seed
    return np.random.rand(3)  # RL001: legacy global sampler


def fine(seed: int):
    rng = np.random.default_rng(seed)  # allowed: explicit generator
    return rng.normal(size=3)
