"""Tests for model diagnostics (permutation importance, learning curves)."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.ml import LinearRegression, RandomForestRegressor
from repro.ml.diagnostics import learning_curve, permutation_importance


@pytest.fixture()
def informative_data(rng):
    # y depends strongly on feature 0, weakly on 1, not at all on 2.
    X = rng.normal(size=(400, 3))
    y = 100.0 + 10.0 * X[:, 0] + 1.0 * X[:, 1] + 0.05 * rng.normal(size=400)
    return X, y


class TestPermutationImportance:
    def test_ranks_informative_feature_first(self, informative_data):
        X, y = informative_data
        model = LinearRegression().fit(X, y)
        imp = permutation_importance(model, X, y, n_repeats=3, rng=0)
        ranked = imp.ranked()
        assert ranked[0][0] == "f0"
        assert ranked[-1][0] == "f2"

    def test_uninformative_feature_near_zero(self, informative_data):
        X, y = informative_data
        model = LinearRegression().fit(X, y)
        imp = permutation_importance(model, X, y, rng=0)
        assert abs(imp.increases[2]) < 0.2

    def test_custom_names(self, informative_data):
        X, y = informative_data
        model = LinearRegression().fit(X, y)
        imp = permutation_importance(
            model, X, y, feature_names=["cycles", "inst", "noise"], rng=0
        )
        assert imp.ranked()[0][0] == "cycles"

    def test_name_length_checked(self, informative_data):
        X, y = informative_data
        model = LinearRegression().fit(X, y)
        with pytest.raises(ValidationError):
            permutation_importance(model, X, y, feature_names=["a"], rng=0)

    def test_works_on_pmc_features(self, train_bundles):
        """Importance over real Table-2 counters for node power."""
        from repro.core.dataset import build_flat_dataset

        flat = build_flat_dataset(train_bundles)
        model = RandomForestRegressor(n_estimators=5, random_state=0)
        model.fit(flat.X, flat.p_node)
        imp = permutation_importance(
            model, flat.X[:500], flat.p_node[:500],
            feature_names=train_bundles[0].pmcs.events, n_repeats=2, rng=0,
        )
        # cycles/instructions should matter for node power
        top = {name for name, _ in imp.ranked()[:4]}
        assert top & {"CPU_CYCLES", "INST_RETIRED", "UOP_RETIRED", "MEM_ACCESS",
                      "BUS_ACCESS", "LXD_CACHE_LD"}


class TestLearningCurve:
    def test_error_decreases_with_data(self, rng):
        X = rng.normal(size=(600, 4))
        y = 50.0 + X @ np.array([3.0, -2.0, 1.0, 0.5]) + 0.5 * rng.normal(size=600)
        curve = learning_curve(
            LinearRegression(), X[:500], y[:500], X[500:], y[500:],
            fractions=(0.05, 1.0), rng=0,
        )
        assert curve.scores[-1] <= curve.scores[0]

    def test_sizes_monotone(self, rng):
        X = rng.normal(size=(100, 2))
        y = X[:, 0] + 10.0
        curve = learning_curve(
            LinearRegression(), X[:80], y[:80], X[80:], y[80:],
            fractions=(0.2, 0.6, 1.0), rng=0,
        )
        assert (np.diff(curve.sizes) > 0).all()

    def test_invalid_fraction(self, rng):
        X = rng.normal(size=(50, 2))
        y = X[:, 0]
        with pytest.raises(ValidationError):
            learning_curve(LinearRegression(), X, y, X, y, fractions=(0.0,))
