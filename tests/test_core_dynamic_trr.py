"""Tests for DynamicTRR and the online session."""

import numpy as np
import pytest

from repro.core import DynamicTRR, HighRPMConfig
from repro.errors import NotFittedError, ValidationError
from repro.hardware import ARM_PLATFORM
from repro.ml import mape


@pytest.fixture(scope="module")
def fitted_dyn(train_bundles):
    cfg = HighRPMConfig(miss_interval=10, lstm_iters=300, seed=3)
    dyn = DynamicTRR(cfg)
    dyn.fit(
        train_bundles,
        p_bottom=ARM_PLATFORM.min_node_power_w,
        p_upper=ARM_PLATFORM.max_node_power_w,
    )
    return dyn


# module-scoped copy of the session fixture chain
@pytest.fixture(scope="module")
def train_bundles(arm_sim, catalog):
    names = ["spec_gcc", "spec_mcf", "parsec_ferret", "hpcc_hpl",
             "hpcc_stream", "parsec_radix"]
    return [arm_sim.run(catalog.get(n), duration_s=120) for n in names]


class TestDynamicTRR:
    def test_restores_full_trace(self, fitted_dyn, small_bundle, ipmi_readings):
        p = fitted_dyn.restore(small_bundle.pmcs.matrix, ipmi_readings)
        assert p.shape == (len(small_bundle),)
        assert np.isfinite(p).all()

    def test_accuracy_on_unseen_benchmark(self, fitted_dyn, small_bundle, ipmi_readings):
        # small_bundle is hpcc_fft, absent from the training set.
        err = mape(small_bundle.node.values, fitted_dyn.restore(
            small_bundle.pmcs.matrix, ipmi_readings))
        assert err < 15.0

    def test_estimates_clamped_to_platform(self, fitted_dyn, small_bundle, ipmi_readings):
        session = fitted_dyn.session()
        p = session.run(small_bundle.pmcs.matrix, ipmi_readings)
        unmeasured = ~session.measured_mask
        assert (p[unmeasured] <= fitted_dyn.p_upper_ + 1e-9).all()
        assert (p[unmeasured] >= fitted_dyn.p_bottom_ - 1e-9).all()

    def test_measured_instants_return_reading(self, fitted_dyn, small_bundle, ipmi_readings):
        p = fitted_dyn.restore(small_bundle.pmcs.matrix, ipmi_readings)
        np.testing.assert_allclose(p[ipmi_readings.indices], ipmi_readings.values)

    def test_sessions_do_not_mutate_shared_model(self, fitted_dyn, small_bundle, ipmi_readings):
        before = [w.copy() for w in fitted_dyn.model_._flat_params()]
        fitted_dyn.restore(small_bundle.pmcs.matrix, ipmi_readings)
        after = fitted_dyn.model_._flat_params()
        for b, a in zip(before, after):
            np.testing.assert_allclose(b, a)

    def test_session_before_fit(self):
        with pytest.raises(NotFittedError):
            DynamicTRR().session()

    def test_step_rejects_wrong_width(self, fitted_dyn):
        session = fitted_dyn.session()
        with pytest.raises(ValidationError):
            session.step(np.ones(3))

    def test_cold_start_without_reading(self, fitted_dyn, small_bundle):
        session = fitted_dyn.session()
        est = session.step(small_bundle.pmcs.matrix[0])
        assert np.isfinite(est)

    def test_fit_requires_long_bundles(self, small_bundle):
        dyn = DynamicTRR(HighRPMConfig(miss_interval=10))
        with pytest.raises(ValidationError):
            dyn.fit([small_bundle.slice(0, 12)])

    def test_restoration_10x_resolution(self, fitted_dyn, small_bundle, ipmi_readings):
        """The headline claim: 0.1 Sa/s readings -> 1 Sa/s estimates."""
        p = fitted_dyn.restore(small_bundle.pmcs.matrix, ipmi_readings)
        assert p.shape[0] == len(small_bundle)
        assert p.shape[0] >= 10 * len(ipmi_readings)
