"""Tracer nesting/aggregation and the self-overhead profiler arithmetic."""

from __future__ import annotations

import pytest

from repro.obs import (
    NULL_TRACER,
    ManualClock,
    MetricsRegistry,
    OverheadProfiler,
    Tracer,
    current_tracer,
    render_overhead,
    use_tracer,
)


class TestTracer:
    def test_nesting_parent_and_depth(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner"):
                pass
        by_name = {r.name: r for r in t.records}
        assert by_name["outer"].parent is None
        assert by_name["outer"].depth == 0
        assert by_name["inner"].parent == "outer"
        assert by_name["inner"].depth == 1

    def test_unclocked_spans_have_no_duration(self):
        t = Tracer()
        with t.span("s"):
            pass
        assert t.records[0].duration_s is None
        assert t.stats()["s"].timed is False

    def test_clocked_durations_are_exact(self):
        clock = ManualClock()
        t = Tracer(clock=clock)
        with t.span("outer"):
            clock.advance(1.0)
            with t.span("inner"):
                clock.advance(0.25)
        stats = t.stats()
        assert stats["inner"].total_s == 0.25
        assert stats["outer"].total_s == 1.25
        assert stats["outer"].mean_s == 1.25

    def test_stats_aggregate_and_survive_record_cap(self):
        t = Tracer(max_records=2)
        for _ in range(5):
            with t.span("s"):
                pass
        assert len(t.records) == 2
        assert t.stats()["s"].count == 5

    def test_span_closes_on_exception(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.span("s"):
                raise RuntimeError("boom")
        assert t.stats()["s"].count == 1
        # the stack unwound: a following span is top-level again
        with t.span("after"):
            pass
        assert t.records[-1].parent is None

    def test_registry_emission(self):
        reg = MetricsRegistry()
        clock = ManualClock()
        t = Tracer(clock=clock, registry=reg)
        with t.span("s"):
            clock.advance(0.5)
        total = reg.get("repro_span_total")
        assert total.labels(span="s").value == 1.0
        hist = reg.get("repro_span_seconds").labels(span="s")
        assert hist.count == 1 and hist.sum == 0.5

    def test_unclocked_tracer_emits_counts_only(self):
        reg = MetricsRegistry()
        t = Tracer(registry=reg)
        with t.span("s"):
            pass
        assert reg.get("repro_span_total").labels(span="s").value == 1.0
        assert reg.get("repro_span_seconds") is None

    def test_render_lists_spans(self):
        t = Tracer()
        with t.span("alpha"):
            pass
        assert "alpha" in t.render()


class TestAmbientTracer:
    def test_default_is_null(self):
        assert current_tracer() is NULL_TRACER
        with NULL_TRACER.span("ignored"):
            pass
        assert NULL_TRACER.stats() == {}

    def test_use_tracer_scopes_and_restores(self):
        t = Tracer()
        with use_tracer(t):
            assert current_tracer() is t
            with current_tracer().span("s"):
                pass
        assert current_tracer() is NULL_TRACER
        assert t.stats()["s"].count == 1


class TestOverheadProfiler:
    def test_measure_accumulates(self):
        clock = ManualClock()
        p = OverheadProfiler(clock=clock, sample_period_s=1.0)
        with p.measure() as cost:
            clock.advance(0.3)
            cost.samples = 150
        assert p.runs == 1
        assert p.samples == 150
        assert p.seconds == 0.3
        assert p.seconds_per_sample == pytest.approx(0.002)
        assert p.budget_fraction == pytest.approx(0.002)

    def test_budget_fraction_scales_with_period(self):
        p = OverheadProfiler(clock=ManualClock(), sample_period_s=10.0)
        p.record(samples=100, seconds=1.0)
        assert p.seconds_per_sample == pytest.approx(0.01)
        assert p.budget_fraction == pytest.approx(0.001)

    def test_unclocked_counts_but_reports_zero_seconds(self):
        p = OverheadProfiler()
        with p.measure() as cost:
            cost.samples = 10
        report = p.report()
        assert report["clocked"] is False
        assert report["samples"] == 10
        assert report["seconds_total"] == 0.0
        assert "unclocked" in p.render()

    def test_registry_emission(self):
        reg = MetricsRegistry()
        p = OverheadProfiler(clock=ManualClock(), registry=reg)
        p.record(samples=200, seconds=1.0)
        assert reg.get("repro_monitor_overhead_samples_total").value == 200
        assert reg.get("repro_monitor_overhead_budget_fraction").value == \
            pytest.approx(0.005)

    def test_render_matches_report(self):
        p = OverheadProfiler(clock=ManualClock())
        p.record(samples=100, seconds=0.1)
        assert p.render() == render_overhead(p.report())
        assert "1.000 ms/sample" in p.render()

    def test_reset(self):
        p = OverheadProfiler(clock=ManualClock())
        p.record(samples=5, seconds=0.5)
        p.reset()
        assert p.runs == 0 and p.samples == 0 and p.seconds == 0.0
