"""Tests for repro.utils: rng plumbing, time-series ops, validation."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.utils import (
    SeedSequenceFactory,
    as_generator,
    check_1d,
    check_2d,
    check_consistent_length,
    check_fraction,
    check_positive,
    decimate_indices,
    masked_from_decimation,
    moving_average,
    piecewise_hold,
    sliding_windows,
)


class TestRng:
    def test_as_generator_accepts_seed(self):
        g = as_generator(42)
        assert isinstance(g, np.random.Generator)

    def test_as_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_factory_same_name_same_stream(self):
        f = SeedSequenceFactory(1)
        a = f.generator("x").random(5)
        b = f.generator("x").random(5)
        np.testing.assert_allclose(a, b)

    def test_factory_distinct_names_distinct_streams(self):
        f = SeedSequenceFactory(1)
        a = f.generator("x").random(5)
        b = f.generator("y").random(5)
        assert not np.allclose(a, b)

    def test_factory_child_is_deterministic(self):
        a = SeedSequenceFactory(1).child("sub").generator("z").random(3)
        b = SeedSequenceFactory(1).child("sub").generator("z").random(3)
        np.testing.assert_allclose(a, b)

    def test_different_root_seeds_differ(self):
        a = SeedSequenceFactory(1).generator("x").random(4)
        b = SeedSequenceFactory(2).generator("x").random(4)
        assert not np.allclose(a, b)


class TestSlidingWindows:
    def test_shape(self):
        w = sliding_windows(np.arange(10), 3)
        assert w.shape == (8, 3)

    def test_contents(self):
        w = sliding_windows(np.arange(5), 2)
        np.testing.assert_array_equal(w[0], [0, 1])
        np.testing.assert_array_equal(w[-1], [3, 4])

    def test_2d_input(self):
        a = np.arange(12).reshape(6, 2)
        w = sliding_windows(a, 3)
        assert w.shape == (4, 3, 2)
        np.testing.assert_array_equal(w[1], a[1:4])

    def test_step(self):
        w = sliding_windows(np.arange(10), 3, step=2)
        assert w.shape == (4, 3)
        np.testing.assert_array_equal(w[1], [2, 3, 4])

    def test_too_short_raises(self):
        with pytest.raises(ValidationError):
            sliding_windows(np.arange(2), 5)


class TestDecimation:
    def test_indices(self):
        np.testing.assert_array_equal(decimate_indices(25, 10), [0, 10, 20])

    def test_offset(self):
        np.testing.assert_array_equal(decimate_indices(25, 10, 3), [3, 13, 23])

    def test_bad_offset(self):
        with pytest.raises(ValidationError):
            decimate_indices(25, 10, 10)

    def test_mask_matches_indices(self):
        mask = masked_from_decimation(25, 10)
        assert mask.sum() == 3
        assert mask[0] and mask[10] and mask[20]


class TestMovingAverage:
    def test_constant_series_unchanged(self):
        x = np.full(10, 3.0)
        np.testing.assert_allclose(moving_average(x, 3), x)

    def test_width_one_is_identity(self):
        x = np.arange(5.0)
        np.testing.assert_allclose(moving_average(x, 1), x)

    def test_smooths_spike(self):
        x = np.zeros(11)
        x[5] = 9.0
        sm = moving_average(x, 3)
        assert sm[5] == pytest.approx(3.0)
        assert sm[4] == pytest.approx(3.0)


class TestPiecewiseHold:
    def test_holds_forward(self):
        out = piecewise_hold(np.array([1.0, 2.0]), np.array([0, 3]), 6)
        np.testing.assert_allclose(out, [1, 1, 1, 2, 2, 2])

    def test_before_first_reading_uses_first(self):
        out = piecewise_hold(np.array([5.0]), np.array([2]), 4)
        np.testing.assert_allclose(out, [5, 5, 5, 5])

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            piecewise_hold(np.array([1.0]), np.array([0, 1]), 5)


class TestValidation:
    def test_check_1d_accepts_list(self):
        assert check_1d([1, 2, 3]).dtype == np.float64

    def test_check_1d_rejects_2d(self):
        with pytest.raises(ValidationError):
            check_1d(np.ones((2, 2)))

    def test_check_2d_promotes_1d(self):
        assert check_2d([1.0, 2.0]).shape == (2, 1)

    def test_check_consistent_length(self):
        with pytest.raises(ValidationError):
            check_consistent_length(np.ones(3), np.ones(4))

    def test_check_positive(self):
        assert check_positive(2) == 2
        with pytest.raises(ValidationError):
            check_positive(0)
        assert check_positive(0, strict=False) == 0

    def test_check_fraction(self):
        assert check_fraction(0.5) == 0.5
        with pytest.raises(ValidationError):
            check_fraction(1.5)
