"""Tests for ensembles, KNN, and SVR."""

import numpy as np
import pytest

from repro.ml import (
    DecisionTreeRegressor,
    GradientBoostingRegressor,
    KNeighborsRegressor,
    RandomForestRegressor,
    SVR,
    rmse,
)


@pytest.fixture()
def noisy_nonlinear(rng):
    X = rng.uniform(-2, 2, size=(400, 2))
    y = np.sin(2 * X[:, 0]) + 0.5 * X[:, 1] ** 2 + 0.05 * rng.normal(size=400)
    return X[:300], y[:300], X[300:], y[300:]


class TestRandomForest:
    def test_beats_single_noisy_tree_out_of_sample(self, noisy_nonlinear, rng):
        Xtr, ytr, Xte, yte = noisy_nonlinear
        tree = DecisionTreeRegressor().fit(Xtr, ytr)
        forest = RandomForestRegressor(n_estimators=10, random_state=0).fit(Xtr, ytr)
        assert rmse(yte, forest.predict(Xte)) <= rmse(yte, tree.predict(Xte)) * 1.1

    def test_deterministic_given_seed(self, noisy_nonlinear):
        Xtr, ytr, Xte, _ = noisy_nonlinear
        a = RandomForestRegressor(random_state=3).fit(Xtr, ytr).predict(Xte)
        b = RandomForestRegressor(random_state=3).fit(Xtr, ytr).predict(Xte)
        np.testing.assert_allclose(a, b)

    def test_n_estimators_respected(self, noisy_nonlinear):
        Xtr, ytr, _, _ = noisy_nonlinear
        m = RandomForestRegressor(n_estimators=4).fit(Xtr, ytr)
        assert len(m.estimators_) == 4


class TestGradientBoosting:
    def test_training_error_decreases_with_stages(self, noisy_nonlinear):
        Xtr, ytr, _, _ = noisy_nonlinear
        m = GradientBoostingRegressor(n_estimators=10, learning_rate=0.3).fit(Xtr, ytr)
        errors = [rmse(ytr, p) for p in m.staged_predict(Xtr)]
        assert errors[-1] < errors[0]

    def test_fits_constant_immediately(self, rng):
        X = rng.normal(size=(50, 2))
        y = np.full(50, 4.0)
        m = GradientBoostingRegressor(n_estimators=2).fit(X, y)
        np.testing.assert_allclose(m.predict(X), 4.0, atol=1e-9)

    def test_subsample_valid_range(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor(subsample=0.0)

    def test_beats_mean_baseline(self, noisy_nonlinear):
        Xtr, ytr, Xte, yte = noisy_nonlinear
        m = GradientBoostingRegressor(n_estimators=10).fit(Xtr, ytr)
        assert rmse(yte, m.predict(Xte)) < rmse(yte, np.full_like(yte, ytr.mean()))


class TestKNN:
    def test_exact_on_training_points_k1(self, rng):
        X = rng.normal(size=(40, 3))
        y = rng.normal(size=40)
        m = KNeighborsRegressor(n_neighbors=1).fit(X, y)
        np.testing.assert_allclose(m.predict(X), y, atol=1e-9)

    def test_k3_averages(self):
        X = np.array([[0.0], [1.0], [2.0], [10.0]])
        y = np.array([0.0, 1.0, 2.0, 50.0])
        m = KNeighborsRegressor(n_neighbors=3).fit(X, y)
        assert m.predict(np.array([[1.0]]))[0] == pytest.approx(1.0)

    def test_distance_weighting_prefers_closer(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0.0, 10.0])
        m = KNeighborsRegressor(n_neighbors=2, weights="distance").fit(X, y)
        assert m.predict(np.array([[0.1]]))[0] < 5.0

    def test_chunked_matches_unchunked(self, rng):
        X = rng.normal(size=(300, 4))
        y = rng.normal(size=300)
        Xq = rng.normal(size=(100, 4))
        big = KNeighborsRegressor(chunk_size=10000).fit(X, y).predict(Xq)
        small = KNeighborsRegressor(chunk_size=7).fit(X, y).predict(Xq)
        np.testing.assert_allclose(big, small, atol=1e-10)

    def test_too_few_training_rows(self):
        with pytest.raises(ValueError):
            KNeighborsRegressor(n_neighbors=5).fit(np.ones((3, 1)), np.ones(3))


class TestSVR:
    def test_fits_linear_trend(self, rng):
        X = rng.uniform(-1, 1, size=(200, 2))
        y = 3.0 * X[:, 0] - X[:, 1] + 5.0
        m = SVR(C=10.0, epsilon=0.01, max_iter=800, random_state=0).fit(X, y)
        assert rmse(y, m.predict(X)) < 0.6

    def test_predictions_finite(self, rng):
        X = rng.normal(size=(150, 3))
        y = np.sin(X[:, 0])
        m = SVR(random_state=0).fit(X, y)
        assert np.isfinite(m.predict(X)).all()

    def test_anchor_budget_respected(self, rng):
        X = rng.normal(size=(100, 2))
        y = rng.normal(size=100)
        m = SVR(max_anchors=20, random_state=0).fit(X, y)
        assert m.anchors_.shape[0] == 20

    def test_n_support_reported(self, rng):
        X = rng.normal(size=(80, 2))
        y = X[:, 0]
        m = SVR(random_state=0).fit(X, y)
        assert 0 < m.n_support_ <= 80

    def test_deterministic(self, rng):
        X = rng.normal(size=(60, 2))
        y = X[:, 0]
        a = SVR(random_state=2).fit(X, y).predict(X)
        b = SVR(random_state=2).fit(X, y).predict(X)
        np.testing.assert_allclose(a, b)
