"""Shared fixtures: a small deterministic campaign every suite can reuse.

Session-scoped so the simulator runs once; tests must not mutate the
returned bundles (their arrays are read-only by construction).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware import ARM_PLATFORM, X86_PLATFORM, NodeSimulator
from repro.sensors import IPMISensor
from repro.workloads import default_catalog


@pytest.fixture(scope="session")
def catalog():
    return default_catalog(seed=77)


@pytest.fixture(scope="session")
def arm_sim():
    return NodeSimulator(ARM_PLATFORM, seed=11)


@pytest.fixture(scope="session")
def x86_sim():
    return NodeSimulator(X86_PLATFORM, seed=12)


@pytest.fixture(scope="session")
def small_bundle(arm_sim, catalog):
    """One 150 s FFT run on the ARM platform."""
    return arm_sim.run(catalog.get("hpcc_fft"), duration_s=150)


@pytest.fixture(scope="session")
def train_bundles(arm_sim, catalog):
    """Six 120 s runs spanning compute- and memory-bound behaviour."""
    names = ["spec_gcc", "spec_mcf", "parsec_ferret", "hpcc_hpl",
             "hpcc_stream", "parsec_radix"]
    return [arm_sim.run(catalog.get(n), duration_s=120) for n in names]


@pytest.fixture(scope="session")
def ipmi_readings(small_bundle):
    sensor = IPMISensor(ARM_PLATFORM, seed=5)
    return sensor.sample(small_bundle)


@pytest.fixture(scope="session")
def chaos_reference():
    """The chaos harness's trained service + test bundle (smoke sizes).

    Shared by the resilience and golden-regression suites so the LSTM/MLP
    training cost is paid once. Tests must only *observe* runs on it —
    never ``adapt`` (which mutates the shared SRR) — and must register
    their own uniquely-named nodes.
    """
    from repro.faults.chaos import ChaosSettings, reference_run

    return reference_run(ChaosSettings.smoke())


@pytest.fixture(scope="session")
def serve_model():
    """A daemon-sized trained HighRPM shared by the serve suites.

    Uses :func:`repro.serve.daemon.train_model` with the default
    :class:`~repro.serve.ServeConfig` sizing (seconds of training), so the
    daemon tests exercise exactly the model the CLI would train. Tests
    must only observe with it — never ``adapt``/``fit``.
    """
    from repro.serve import ServeConfig, train_model

    return train_model(ServeConfig())


@pytest.fixture(scope="session")
def serve_gpu_models():
    """The GPU device class's daemon-trained (HighRPM, GPUSRR) pair.

    Trained with :func:`repro.serve.daemon.train_gpu_models` under the
    default :class:`~repro.serve.ServeConfig` sizing, so heterogeneous
    daemon tests ship exactly the pair the CLI would train. Observe only.
    """
    from repro.serve import ServeConfig
    from repro.serve.daemon import train_gpu_models

    return train_gpu_models(ServeConfig())


@pytest.fixture()
def rng():
    return np.random.default_rng(123)
