"""Tests for the model-assisted capping controller."""

import pytest

from repro.core import DynamicTRR, HighRPMConfig
from repro.errors import CappingError, ValidationError
from repro.hardware import ARM_PLATFORM, NodeSimulator
from repro.monitor import AssistedCapController, CappingPolicy, run_assisted_capped


@pytest.fixture(scope="module")
def trained_trr(arm_sim, catalog):
    train = [arm_sim.run(catalog.get(n), duration_s=120)
             for n in ("spec_gcc", "spec_mcf", "hpcc_hpl", "hpcc_stream")]
    trr = DynamicTRR(HighRPMConfig(miss_interval=10, lstm_iters=200, seed=5))
    trr.fit(train, p_bottom=ARM_PLATFORM.min_node_power_w,
            p_upper=ARM_PLATFORM.max_node_power_w)
    return trr


class TestAssistedController:
    def test_requires_fitted_model(self):
        with pytest.raises(ValidationError):
            AssistedCapController(ARM_PLATFORM, CappingPolicy(75.0), DynamicTRR())

    def test_unreachable_cap_rejected(self, trained_trr):
        with pytest.raises(CappingError):
            AssistedCapController(
                ARM_PLATFORM,
                CappingPolicy(ARM_PLATFORM.min_node_power_w - 1), trained_trr,
            )

    def test_downshifts_on_high_estimate(self, trained_trr, small_bundle):
        ctl = AssistedCapController(ARM_PLATFORM, CappingPolicy(40.0), trained_trr)
        # Feed a few seconds with a reading far above the (low) cap.
        f = ctl.current_freq_ghz
        for t in range(3):
            f = ctl.step(t, small_bundle.pmcs.matrix[t], 95.0 if t == 0 else None)
        assert f < ARM_PLATFORM.default_freq_ghz
        assert len(ctl.actions) >= 1

    def test_run_assisted_produces_valid_bundle(self, trained_trr, catalog):
        sim = NodeSimulator(ARM_PLATFORM, seed=33)
        ctl = AssistedCapController(ARM_PLATFORM, CappingPolicy(75.0), trained_trr)
        bundle = run_assisted_capped(
            sim, catalog.get("graph500_bfs"), ctl,
            reading_interval_s=10, duration_s=120,
        )
        assert len(bundle) == 120
        assert bundle.check_additivity(atol=1e-9)
        assert bundle.metadata["assisted"] is True
        assert len(ctl.estimates) == 120

    def test_capping_actually_engages(self, trained_trr, catalog):
        sim = NodeSimulator(ARM_PLATFORM, seed=33)
        ctl = AssistedCapController(ARM_PLATFORM, CappingPolicy(70.0), trained_trr)
        bundle = run_assisted_capped(
            sim, catalog.get("graph500_bfs"), ctl,
            reading_interval_s=10, duration_s=150,
        )
        freqs = bundle.metadata["freq_ghz"]
        assert (freqs < ARM_PLATFORM.default_freq_ghz).any()
