"""Legacy shim: lets ``pip install -e .`` work on hosts without the
``wheel`` package (offline clusters), falling back to setup.py develop."""

from setuptools import setup

setup()
