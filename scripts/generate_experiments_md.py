"""Regenerate EXPERIMENTS.md by running every experiment.

Usage:  python scripts/generate_experiments_md.py [--full] [--output PATH]

Runs the entire per-table/per-figure experiment suite (quick protocol by
default) and writes the rendered outputs, alongside the paper's reported
numbers, into EXPERIMENTS.md (or ``--output``, which is how the docs
drift gate — ``scripts/check_docs.py --experiments`` — regenerates into a
scratch file for comparison).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.eval import ablations as ab
from repro.eval import experiments as ex
from repro.eval import figures as fg
from repro.eval import frontier as fr
from repro.eval import limitations as lim
from repro.eval.harness import EvalSettings

PAPER_NOTES = {
    "fig1": "Peak power rises and ~1.1 kJ of energy is added when AI grows 1s->30s (37.3->38.4 kJ).",
    "fig2": "Both near the 90 W node line; CPU dominates FFT, RAM dominates Stream; peripherals ~25 W.",
    "table5": "DynamicTRR 4.46/3.19/2.78 (seen MAPE/RMSE/MAE), 4.38/3.18/2.05 unseen; baselines 9.63-28.22 % MAPE.",
    "table6": "Seen MAPE: Spline 2.21 < StaticTRR 4.02 < DynamicTRR 4.46 (differences called statistically insignificant).",
    "table7": "SRR 7.65 % CPU / 5.31 % MEM seen; 7.00 % / 16.49 % unseen; baselines 8.39-34.99 %.",
    "table8": "Without P_node: CPU 7.65->30.46 %, MEM 5.31->21.56 % (seen); 7.00->29.00, 16.49->34.00 (unseen).",
    "table9": "x86 unseen: DynamicTRR 3.48 % node; SRR 9.94 % CPU / 10.64 % MEM; baselines 7.24-15.06 node, 9.53-18.88 CPU, 19.44-39.82 MEM.",
    "fig7": "Spline most precise at 10 s; ability to capture short-term changes diminishes as the interval grows.",
    "fig8": "MAPE remains relatively consistent within 10-100 s.",
    "fig9": "Higher frequency, lower accuracy; worst case 10 % CPU / 14 % MEM, still below other methods.",
    "overhead": "Offline training < 10 min; fine-tune < 2 s; prediction < 1 ms.",
    "limitations": "Ragged miss_intervals degrade DynamicTRR (windows may lack a measured P_node).",
    "frontier": "Extension of the §6.3 overhead story: HighRPM prices monitoring at a fixed sampling rate; the governor makes it adaptive (§6.4.4 generalisation, heterogeneous CPU+GPU fleet).",
}

HEADER = """# EXPERIMENTS — paper vs. measured

Every table and figure from the paper's evaluation (§6), regenerated on
the simulated substrate. **Absolute watts and errors are not expected to
match** — the measurement host is a simulator (see DESIGN.md §2) — the
reproduction target is the *shape*: who wins, directionality, and rough
factors. Each benchmark under `benchmarks/` asserts that shape on every
run; this file records one full sweep.

Protocol: `{protocol}` (regenerate with
`python scripts/generate_experiments_md.py{flag}`).

## Reproduction summary

| experiment | paper's claim | reproduced? |
|---|---|---|
| Fig. 1 | slower capping -> higher peak power and energy | yes — energy and mean power rise monotonically with AI |
| Fig. 2 | FFT CPU-bound, Stream DRAM-bound at similar node power | yes |
| Table 5 | DynamicTRR beats all 12 baselines, seen and unseen | yes — on every MAPE column |
| Table 6 | Spline <= StaticTRR <= DynamicTRR (seen), gaps small | yes (seen); unseen ordering has DynamicTRR slightly ahead, within the paper's own "not significant" framing |
| Table 7 | SRR beats all baselines on P_CPU and P_MEM | yes — every column |
| Table 8 | dropping P_node inflates error severely | yes — every row worsens; aggregate gap > 1.3x (paper ~3-4x) |
| Table 9 | x86: DynamicTRR best on node; SRR best on components | node and P_CPU: yes, every baseline beaten; P_MEM: SRR beats the baseline *average* but the margin over the best linear baseline narrows to ~parity on the simulator (restored-budget error propagates into the small DRAM term) |
| Fig. 7 | spline degrades with interval; StaticTRR holds up | yes |
| Fig. 8 | HighRPM roughly flat in miss_interval | yes |
| Fig. 9 | error grows with CPU frequency, stays bounded | yes |
| §6.4.5 | train < 10 min, fine-tune < 2 s, predict ~1 ms | yes (prediction ~1-2 ms in pure NumPy) |
| §6.4.6 | ragged intervals degrade DynamicTRR | yes — graceful, no cliff |

---

"""


def build_markdown(full: bool = False) -> str:
    """Run every experiment and return the EXPERIMENTS.md content."""
    settings = EvalSettings.full() if full else EvalSettings.quick()
    sections: list[tuple[str, str, object]] = [
        ("fig1", "Fig. 1 — power capping (motivation)", fg.fig1),
        ("fig2", "Fig. 2 — FFT vs Stream breakdown (motivation)", fg.fig2),
        ("table5", "Table 5 — TRR vs baselines (node power)", ex.table5),
        ("table6", "Table 6 — TRR variants", ex.table6),
        ("table7", "Table 7 — SRR vs baselines (component power)", ex.table7),
        ("table8", "Table 8 — P_node ablation", ex.table8),
        ("table9", "Table 9 — x86 platform", ex.table9),
        ("fig7", "Fig. 7 — miss_interval: spline vs StaticTRR", fg.fig7),
        ("fig8", "Fig. 8 — miss_interval sensitivity of HighRPM", fg.fig8),
        ("fig9", "Fig. 9 — CPU frequency levels", fg.fig9),
        ("overhead", "§6.4.5 — overhead", fg.overhead),
        ("limitations", "§6.4.6 — ragged intervals (failure injection)",
         lim.jitter_robustness),
        ("frontier", "Accuracy-vs-overhead frontier (adaptive sampling)",
         fr.frontier_experiment),
    ]
    ablation_sections = [
        ("ResModel learner choice", ab.ablation_resmodel),
        ("Algorithm-1 post-processing", ab.ablation_postprocessing),
        ("DynamicTRR online fine-tuning", ab.ablation_finetune),
        ("LSTM depth (§6.4.3)", ab.ablation_lstm_depth),
        ("StaticTRR trend model", ab.ablation_trend_model),
    ]

    parts = [HEADER.format(
        protocol="full (paper-sized)" if full else "quick",
        flag=" --full" if full else "",
    )]
    for key, title, fn in sections:
        t0 = time.time()
        print(f"running {key} ...", flush=True)
        result = fn(settings)
        parts.append(f"## {title}\n\n"
                     f"**Paper:** {PAPER_NOTES[key]}\n\n"
                     f"```\n{result.render()}\n```\n"
                     f"_(ran in {time.time() - t0:.0f}s)_\n")
    parts.append("## Design-choice ablations (DESIGN.md §6)\n")
    for title, fn in ablation_sections:
        t0 = time.time()
        print(f"running ablation: {title} ...", flush=True)
        result = fn(settings)
        parts.append(f"### {title}\n\n```\n{result.render()}\n```\n"
                     f"_(ran in {time.time() - t0:.0f}s)_\n")
    return "\n".join(parts)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--full", action="store_true",
                        help="paper-sized protocol (slow)")
    parser.add_argument("--output", default="EXPERIMENTS.md", metavar="PATH")
    args = parser.parse_args()
    content = build_markdown(full=args.full)
    with open(args.output, "w") as fh:
        fh.write(content)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
