"""Regenerate the golden monitor-service regression fixtures.

Usage:  PYTHONPATH=src python scripts/make_golden_monitor.py

Runs the chaos harness's fixed-seed reference service (smoke sizes) and
stores two fixtures:

* ``tests/fixtures/golden_monitor.npz`` — restored
  ``p_node``/``p_cpu``/``p_mem`` traces plus provenance for one healthy
  and one mid-run-outage observation (``tests/test_golden_monitor.py``);
* ``tests/fixtures/golden_calib.npz`` — the calibration path's
  fingerprint: a structurally-faulted feed, the drift-fitted
  :class:`~repro.calib.CompensationTransform`, its bitwise compensated
  readings, and the compensated observation's restored traces
  (``tests/test_golden_calib.py``).

Both tests replay the identical construction and compare against these
files, so any behavioural drift in the sensor, fault, calibration,
restoration, or service layers shows up as a diff in the golden traces.
The trained reference service is shared between the two fixtures, exactly
as the test suite shares its session-scoped ``chaos_reference``.

Only rerun this script when a change *intends* to alter restoration or
calibration output; commit the refreshed fixtures together with that
change.
"""

from __future__ import annotations

import pathlib
import sys

import numpy as np

REPO = pathlib.Path(__file__).resolve().parents[1]
FIXTURES = REPO / "tests" / "fixtures"
GOLDEN_PATH = FIXTURES / "golden_monitor.npz"
GOLDEN_CALIB_PATH = FIXTURES / "golden_calib.npz"

sys.path.insert(0, str(REPO / "src"))

from repro.calib.golden import golden_calib_traces  # noqa: E402
from repro.faults.chaos import ChaosSettings, reference_run  # noqa: E402
from repro.faults.golden import golden_traces  # noqa: E402


def _write(path: pathlib.Path, traces: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **traces)
    size = path.stat().st_size
    print(f"wrote {path} ({size} bytes):")
    for key, arr in traces.items():
        print(f"  {key}: shape={arr.shape} dtype={arr.dtype}")


def main() -> int:
    reference = reference_run(ChaosSettings.smoke())
    _write(GOLDEN_PATH, golden_traces(reference=reference))
    _write(GOLDEN_CALIB_PATH, golden_calib_traces(reference=reference))
    return 0


if __name__ == "__main__":
    sys.exit(main())
