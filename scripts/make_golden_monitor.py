"""Regenerate the golden monitor-service regression fixture.

Usage:  PYTHONPATH=src python scripts/make_golden_monitor.py

Runs the chaos harness's fixed-seed reference service (smoke sizes) over
two observations of the same test run — one through a healthy IM feed,
one through a feed with a mid-run outage — and stores the restored
``p_node``/``p_cpu``/``p_mem`` traces plus provenance under
``tests/fixtures/golden_monitor.npz``. ``tests/test_golden_monitor.py``
replays the identical construction and compares against this file, so any
behavioural drift in the sensor, fault, restoration, or service layers
shows up as a diff in the golden traces.

Only rerun this script when a change *intends* to alter restoration
output; commit the refreshed fixture together with that change.
"""

from __future__ import annotations

import pathlib
import sys

import numpy as np

REPO = pathlib.Path(__file__).resolve().parents[1]
GOLDEN_PATH = REPO / "tests" / "fixtures" / "golden_monitor.npz"

sys.path.insert(0, str(REPO / "src"))

from repro.faults.golden import golden_traces  # noqa: E402


def main() -> int:
    traces = golden_traces()
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(GOLDEN_PATH, **traces)
    size = GOLDEN_PATH.stat().st_size
    print(f"wrote {GOLDEN_PATH} ({size} bytes):")
    for key, arr in traces.items():
        print(f"  {key}: shape={arr.shape} dtype={arr.dtype}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
