"""Docs drift gate: broken links and a stale EXPERIMENTS.md fail CI.

Usage:  PYTHONPATH=src python scripts/check_docs.py [--experiments]

Two checks:

* **Links** (always): every relative link in ``README.md`` and
  ``docs/*.md`` must resolve to a file in the repository. Anchors
  (``page.md#section``) are checked for the file part only; absolute
  URLs are skipped.
* **EXPERIMENTS.md staleness** (``--experiments``; several minutes):
  re-runs ``scripts/generate_experiments_md.py`` into a scratch file and
  diffs it against the committed EXPERIMENTS.md after masking the
  run-to-run noise — ``_(ran in Ns)_`` footers and measured wall-clock
  cells like ``12.34 s`` / ``1.2 ms`` in the §6.4.5 overhead table. Any
  other difference means a code change altered experiment output without
  the file being regenerated.
"""

from __future__ import annotations

import argparse
import difflib
import re
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Markdown links: [text](target). Images share the syntax (![alt](src)).
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Run-to-run noise masked before the staleness diff.
_NOISE_RES = (
    re.compile(r"_\(ran in \d+s\)_"),
    re.compile(r"\b\d+(?:\.\d+)? (?:s|ms)\b"),
    re.compile(r"self-overhead: [^\n]*"),
)


def iter_doc_files() -> "list[Path]":
    return [REPO / "README.md"] + sorted((REPO / "docs").glob("*.md"))


def check_links() -> "list[str]":
    """Every relative markdown link must resolve; returns error strings."""
    errors: "list[str]" = []
    for doc in iter_doc_files():
        text = doc.read_text(encoding="utf-8")
        for match in _LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:  # pure in-page anchor
                continue
            resolved = (doc.parent / path_part).resolve()
            if not resolved.exists():
                rel = doc.relative_to(REPO)
                errors.append(f"{rel}: broken link -> {target}")
    return errors


def _mask_noise(text: str) -> str:
    for pattern in _NOISE_RES:
        text = pattern.sub("<masked>", text)
    return text


def check_experiments() -> "list[str]":
    """Regenerate EXPERIMENTS.md and diff against the committed copy."""
    committed = REPO / "EXPERIMENTS.md"
    if not committed.exists():
        return ["EXPERIMENTS.md is missing"]
    with tempfile.NamedTemporaryFile(suffix=".md", delete=False) as tmp:
        scratch = Path(tmp.name)
    try:
        subprocess.run(
            [sys.executable, str(REPO / "scripts/generate_experiments_md.py"),
             "--output", str(scratch)],
            cwd=REPO, check=True,
        )
        want = _mask_noise(scratch.read_text(encoding="utf-8"))
        have = _mask_noise(committed.read_text(encoding="utf-8"))
    finally:
        scratch.unlink(missing_ok=True)
    if want == have:
        return []
    diff = "\n".join(difflib.unified_diff(
        have.splitlines(), want.splitlines(),
        fromfile="EXPERIMENTS.md (committed)",
        tofile="EXPERIMENTS.md (regenerated)", lineterm="", n=2,
    ))
    return ["EXPERIMENTS.md is stale — regenerate with "
            "`PYTHONPATH=src python scripts/generate_experiments_md.py`:\n"
            + diff]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--experiments", action="store_true",
                        help="also regenerate and diff EXPERIMENTS.md (slow)")
    args = parser.parse_args()

    errors = check_links()
    n_docs = len(iter_doc_files())
    if not errors:
        print(f"links OK across {n_docs} markdown files")
    if args.experiments:
        exp_errors = check_experiments()
        if not exp_errors:
            print("EXPERIMENTS.md is fresh")
        errors += exp_errors
    for err in errors:
        print(f"ERROR: {err}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
