#!/usr/bin/env python
"""Gate a `repro-bench` trajectory against a committed baseline.

Compares two `BENCH_*.json` payloads (schema `repro-bench/1`) and fails
if any stage recorded in *both* regressed by more than the threshold:

* per-op `results` entries compare `ns_per_sample` (lower is better) —
  only when both payloads ran the same protocol mode (smoke op sizes are
  not comparable to full-protocol sizes);
* the end-to-end `fleet` / `fleet_fast_math` stages compare
  `samples_per_s` (higher is better). Protocol fields (nodes, chunk size,
  trace seconds) are printed with each comparison; a trace-length change
  is reported but still gated — the steady-state protocol only amortises
  run-open costs, so throughput must not *drop* across it;
* `serve_scaling` rungs (the daemon curve from `python -m
  repro.serve.bench`, committed as `BENCH_PR9.json`) compare
  `samples_per_s` per matching rung — matched on the full rung protocol
  (nodes, shards, run seconds, chunk size, hosts, mode), unmatched rungs
  pass through. A payload may carry both the thread- and process-hosted
  ladder (`--hosts both`); rungs differ in their `processes` flag and
  are matched independently. Rungs annotated with `merge_latency_before`
  (recorded via `--before OLD.json`) print their merge-latency
  before/after alongside the throughput gate.

`--require-scaling 8,64,512,4096` additionally fails unless the *current*
payload carries a `serve_scaling` rung (with positive throughput) for
every listed node count — the CI shape-check for the committed curve.
When a node count has both a thread- and a process-hosted rung, the
process one (the deployment shape) is the one checked and reported.

Usage:
    python scripts/check_bench.py CURRENT.json [--baseline BENCH_PR2.json]
                                  [--max-regression 0.20]
                                  [--require-scaling 8,64,512,4096]

Exit status 1 on any regression beyond the threshold, 0 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

FLEET_STAGES = ("fleet", "fleet_fast_math")


def _fleet_protocol(stage: dict) -> tuple:
    """(nodes, chunk_size, test_seconds); older payloads lack the trace
    length and recorded 60 s traces — derive it from the sample count."""
    nodes = stage.get("nodes")
    seconds = stage.get("test_seconds")
    if seconds is None and nodes:
        seconds = stage.get("samples", 0) // nodes
    return (nodes, stage.get("chunk_size"), seconds)


def _rung_key(entry: dict) -> tuple:
    """Full protocol identity of one serve_scaling rung."""
    return (
        entry.get("nodes"), entry.get("shards"), entry.get("run_seconds"),
        entry.get("chunk_size"), entry.get("processes"), entry.get("online"),
    )


def compare_scaling(current: dict, baseline: dict,
                    max_regression: float) -> list[str]:
    """Gate matching serve_scaling rungs on samples/s (higher is better)."""
    failures: list[str] = []
    base_rungs = {
        _rung_key(e): e for e in baseline.get("serve_scaling", [])
    }
    for entry in current.get("serve_scaling", []):
        base = base_rungs.get(_rung_key(entry))
        host = "processes" if entry.get("processes") else "threads"
        label = f"serve {entry.get('nodes')}x{entry.get('shards')} [{host}]"
        before = entry.get("merge_latency_before")
        after = entry.get("merge_latency")
        if before and after:
            print(f"{label:<28} merge latency "
                  f"{before.get('mean_ms', 0):.2f} -> "
                  f"{after.get('mean_ms', 0):.2f} ms mean")
        cur_tp = entry.get("samples_per_s")
        if not base or not cur_tp or not base.get("samples_per_s"):
            continue
        base_tp = base["samples_per_s"]
        ratio = cur_tp / base_tp
        verdict = "REGRESSED" if ratio < 1.0 - max_regression else "ok"
        print(f"{label:<28} {base_tp:>10.0f} -> {cur_tp:>10.0f} samples/s "
              f"({ratio:.2f}x baseline) {verdict}")
        if verdict == "REGRESSED":
            failures.append(
                f"{label}: {base_tp:.0f} -> {cur_tp:.0f} samples/s "
                f"({(1.0 - ratio):.0%} drop > {max_regression:.0%} allowed)"
            )
    return failures


def check_required_rungs(current: dict, required: "list[int]") -> list[str]:
    """Every required node count must have a rung with real throughput."""
    failures: list[str] = []
    by_nodes: dict[int, dict] = {}
    for entry in current.get("serve_scaling", []):
        nodes = entry.get("nodes")
        # Prefer the process-hosted rung — the deployment shape — when a
        # node count was recorded under both hosting modes.
        if nodes not in by_nodes or entry.get("processes"):
            by_nodes[nodes] = entry
    for nodes in required:
        entry = by_nodes.get(nodes)
        if entry is None:
            failures.append(f"serve_scaling misses the {nodes}-node rung")
        elif not entry.get("samples_per_s", 0) > 0:
            failures.append(
                f"serve_scaling {nodes}-node rung has no throughput: {entry}"
            )
        else:
            print(f"serve {nodes:>5} nodes: "
                  f"{entry['samples_per_s']:.0f} samples/s "
                  f"({entry.get('per_node_ms', '?')} ms/node) present")
    return failures


def compare(current: dict, baseline: dict, max_regression: float) -> list[str]:
    """Human-readable regression messages (empty = gate passes)."""
    failures: list[str] = []
    cur_mode = current.get("protocol", {}).get("mode")
    base_mode = baseline.get("protocol", {}).get("mode")
    if cur_mode == base_mode:
        cur_ops = current.get("results", {})
        base_ops = baseline.get("results", {})
        for op in sorted(set(cur_ops) & set(base_ops)):
            cur_ns = cur_ops[op].get("ns_per_sample")
            base_ns = base_ops[op].get("ns_per_sample")
            if not cur_ns or not base_ns:
                continue
            ratio = cur_ns / base_ns
            verdict = "REGRESSED" if ratio > 1.0 + max_regression else "ok"
            print(f"{op:<20} {base_ns:>10.1f} -> {cur_ns:>10.1f} ns/sample "
                  f"({ratio:+.0%} of baseline) {verdict}")
            if verdict == "REGRESSED":
                failures.append(
                    f"{op}: {base_ns:.1f} -> {cur_ns:.1f} ns/sample "
                    f"(+{(ratio - 1.0):.0%} > {max_regression:.0%} allowed)"
                )
    else:
        print(f"per-op comparison skipped: protocol modes differ "
              f"({base_mode!r} baseline vs {cur_mode!r} current)")
    for name in FLEET_STAGES:
        cur = current.get(name)
        base = baseline.get(name)
        if not cur or not base:
            continue
        cur_tp = cur.get("samples_per_s")
        base_tp = base.get("samples_per_s")
        if not cur_tp or not base_tp:
            continue
        cur_proto = _fleet_protocol(cur)
        base_proto = _fleet_protocol(base)
        note = ""
        if cur_proto != base_proto:
            note = (f"  [protocol changed: {base_proto} -> {cur_proto} "
                    f"(nodes, chunk, seconds)]")
        ratio = cur_tp / base_tp
        verdict = "REGRESSED" if ratio < 1.0 - max_regression else "ok"
        print(f"{name:<20} {base_tp:>10.0f} -> {cur_tp:>10.0f} samples/s "
              f"({ratio:.2f}x baseline) {verdict}{note}")
        if verdict == "REGRESSED":
            failures.append(
                f"{name}: {base_tp:.0f} -> {cur_tp:.0f} samples/s "
                f"({(1.0 - ratio):.0%} drop > {max_regression:.0%} allowed)"
            )
    return failures


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when a BENCH_*.json regressed vs the baseline.")
    parser.add_argument("current", type=Path,
                        help="freshly generated or committed BENCH_*.json")
    parser.add_argument("--baseline", type=Path,
                        default=Path("BENCH_PR2.json"),
                        help="baseline trajectory (default: BENCH_PR2.json)")
    parser.add_argument("--max-regression", type=float, default=0.20,
                        help="allowed fractional regression (default: 0.20)")
    parser.add_argument("--require-scaling", default=None, metavar="N,N,...",
                        help="fail unless the current payload has a "
                             "serve_scaling rung per listed node count")
    args = parser.parse_args(argv)

    current = json.loads(args.current.read_text())
    baseline = json.loads(args.baseline.read_text())
    for payload, path in ((current, args.current), (baseline, args.baseline)):
        if payload.get("schema") != "repro-bench/1":
            print(f"error: {path} is not a repro-bench/1 payload",
                  file=sys.stderr)
            return 2

    failures = compare(current, baseline, args.max_regression)
    failures += compare_scaling(current, baseline, args.max_regression)
    if args.require_scaling:
        required = [int(n) for n in args.require_scaling.split(",")]
        failures += check_required_rungs(current, required)
    if failures:
        print(f"\n{len(failures)} benchmark regression(s) vs "
              f"{args.baseline}:", file=sys.stderr)
        for line in failures:
            print(f"  - {line}", file=sys.stderr)
        return 1
    print(f"\nbench gate passed ({args.current} vs {args.baseline})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
