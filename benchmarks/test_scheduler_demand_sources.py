"""Extension bench — cluster scheduling under a cap, by demand source.

Quantifies the paper's introduction end-to-end at cluster scale: a power
budget is enforced by throttling, and the scheduler's demand signal comes
from (a) oracle per-second power, (b) HighRPM-restored estimates at the
same rate, or (c) IPMI-rate stale readings. Restored estimates should
land near the oracle and beat stale sensing on makespan.
"""

from conftest import run_once

from repro.core import HighRPM, HighRPMConfig
from repro.hardware import ARM_PLATFORM
from repro.hardware.cluster import ClusterSimulator
from repro.monitor.scheduler import EnergyAwareScheduler, Job
from repro.sensors import IPMISensor
from repro.workloads import default_catalog


def _experiment(settings):
    catalog = default_catalog(settings.seed)
    cluster = ClusterSimulator(ARM_PLATFORM, n_nodes=2, seed=7)

    # Train HighRPM on node-0's campaign (shared service, §4.1).
    train = [cluster.run("node-0", catalog.get(n), duration_s=120)
             for n in ("spec_gcc", "spec_mcf", "hpcc_hpl",
                       "hpcc_stream", "parsec_ferret", "parsec_radix")]
    hr = HighRPM(HighRPMConfig(miss_interval=10, lstm_iters=settings.lstm_iters,
                               srr_iters=settings.srr_iters),
                 p_bottom=ARM_PLATFORM.min_node_power_w,
                 p_upper=ARM_PLATFORM.max_node_power_w)
    hr.fit_initial(train)

    names = ["hpcg", "hpcc_fft", "spec_xz", "graph500_bfs"]
    bundles = [cluster.run(f"node-{i % 2}", catalog.get(n), duration_s=100)
               for i, n in enumerate(names)]
    sensor = IPMISensor(ARM_PLATFORM, seed=41)
    restored = [
        hr.monitor_online(b.pmcs.matrix, sensor.sample(b)).p_node
        for b in bundles
    ]

    floors = {"node-0": 45.0, "node-1": 45.0}
    ceilings = {"node-0": 130.0, "node-1": 130.0}
    cap = 175.0

    def schedule(jobs, staleness):
        sched = EnergyAwareScheduler(floors, ceilings, cap,
                                     demand_staleness_s=staleness, seed=3)
        return sched.run(jobs)

    oracle = schedule([Job(f"j{i}", b) for i, b in enumerate(bundles)], 1)
    highrpm = schedule(
        [Job(f"j{i}", b, demand_estimates=r)
         for i, (b, r) in enumerate(zip(bundles, restored))], 1,
    )
    stale = schedule([Job(f"j{i}", b) for i, b in enumerate(bundles)], 10)
    return {"oracle": oracle, "highrpm": highrpm, "stale": stale}


def test_scheduler_demand_sources(benchmark, settings):
    outcomes = run_once(benchmark, lambda: _experiment(settings))
    for label, o in outcomes.items():
        print(f"\n{label:>8}: makespan={o.makespan_s}s throttle={o.mean_throttle:.3f} "
              f"energy={o.energy_kj:.1f}kJ violations={o.cap_violations_s}s")

    oracle, highrpm, stale = (outcomes[k] for k in ("oracle", "highrpm", "stale"))
    # Everything completes.
    assert len(oracle.completions) == len(highrpm.completions) == 4
    # Restored demand lands close to the oracle on makespan...
    assert highrpm.makespan_s <= oracle.makespan_s * 1.10
    # ...and does not lose to IPMI-rate sensing.
    assert highrpm.makespan_s <= stale.makespan_s * 1.02
    # Cap violations from restored-estimate errors stay bounded.
    assert highrpm.cap_violations_s <= stale.cap_violations_s + 10
