"""Table 3 — the seen/unseen split protocol itself, plus the per-suite
breakdown behind the paper's averaged rows.

Table 3 is experimental setup rather than a result, but reproducing the
protocol exactly (seven rotations, ~1000 samples per set compiled in
order, 90/10 seen splits) is what makes Tables 5-9 comparable; this bench
pins it and prints the per-suite difficulty spread.
"""

from conftest import by_model, run_once

from repro.eval.experiments import per_suite_breakdown
from repro.eval.harness import build_campaign, build_split
from repro.workloads import SUITE_SIZES, default_catalog, table3_splits


def test_table3_protocol(benchmark, settings):
    result = run_once(benchmark, lambda: per_suite_breakdown(settings))
    print("\n" + result.render())
    rows = by_model(result)
    assert set(rows) == set(settings.test_suites)
    # every held-out suite restorable within a usable band
    assert all(cells[0] < 15.0 for cells in rows.values())

    # Protocol invariants from §5.3 / Table 3.
    splits = table3_splits()
    assert len(splits) == 7
    assert {s.test_suite for s in splits} == set(SUITE_SIZES)

    catalog = default_catalog(settings.seed)
    campaign = build_campaign(settings, catalog)
    split = build_split(settings, campaign, catalog, settings.test_suites[0])
    held_out = settings.test_suites[0]
    # unseen training pool excludes every benchmark of the held-out suite
    held_names = {w.name for w in catalog.suite(held_out)}
    assert not held_names & {b.workload for b in split.train_unseen}
    # per-set budgets respected
    for suite in catalog.suites:
        total = sum(
            len(b) for b in split.train_unseen + split.test_unseen
            if b.workload in {w.name for w in catalog.suite(suite)}
        )
        assert total <= settings.samples_per_set
