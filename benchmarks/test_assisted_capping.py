"""Extension bench — HighRPM in the capping loop.

Not a paper table; quantifies the paper's §1 motivation end-to-end: with
IPMI-rate sensing (PI = 10 s), a governor driven by DynamicTRR's live
estimates should approach (or beat) the fast-sensing ideal, and clearly
beat the stale-reading governor on cap violations.
"""

from conftest import run_once

from repro.core import DynamicTRR, HighRPMConfig
from repro.eval.harness import EvalSettings
from repro.hardware import NodeSimulator, get_platform
from repro.monitor import (
    AssistedCapController,
    CappingPolicy,
    EnergyAccount,
    run_assisted_capped,
    run_capped,
)
from repro.workloads import default_catalog


def _experiment(settings: EvalSettings):
    spec = get_platform(settings.platform)
    sim = NodeSimulator(spec, seed=17)
    catalog = default_catalog(settings.seed)
    workload = catalog.get("graph500_bfs")
    train = [sim.run(catalog.get(n), duration_s=150)
             for n in ("spec_gcc", "spec_mcf", "hpcc_hpl", "hpcc_stream",
                       "parsec_ferret", "parsec_radix")]
    trr = DynamicTRR(HighRPMConfig(miss_interval=10, lstm_iters=settings.lstm_iters))
    trr.fit(train, p_bottom=spec.min_node_power_w, p_upper=spec.max_node_power_w)

    cap, dur = 75.0, 300
    fast, _ = run_capped(sim, workload, CappingPolicy(cap, 1, 1), duration_s=dur)
    slow, _ = run_capped(sim, workload, CappingPolicy(cap, 10, 1), duration_s=dur)
    ctl = AssistedCapController(spec, CappingPolicy(cap, 10, 1), trr)
    assisted = run_assisted_capped(sim, workload, ctl, reading_interval_s=10,
                                   duration_s=dur)
    return {
        label: EnergyAccount.from_trace(bundle.node, cap_w=cap)
        for label, bundle in (("fast", fast), ("slow", slow),
                              ("assisted", assisted))
    }


def test_assisted_capping(benchmark, settings):
    accounts = run_once(benchmark, lambda: _experiment(settings))
    for label, acc in accounts.items():
        print(f"\n{label:>9}: peak={acc.peak_w:.1f}W mean={acc.mean_w:.1f}W "
              f"energy={acc.energy_kj:.2f}kJ over_cap={acc.time_above_cap_s:.0f}s")

    # The assisted governor must beat the stale-reading governor on cap
    # violations, and come within 15 % of the fast-sensing ideal's energy.
    assert accounts["assisted"].time_above_cap_s < accounts["slow"].time_above_cap_s
    assert accounts["assisted"].energy_kj < accounts["fast"].energy_kj * 1.15
    assert accounts["assisted"].peak_w <= accounts["slow"].peak_w * 1.05
