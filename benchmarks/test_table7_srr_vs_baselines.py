"""Table 7 — component power: SRR vs the 12 baseline models.

Paper: SRR 7.65 % CPU / 5.31 % MEM seen and 7.00 % / 16.49 % unseen, a
7–24 % MAPE reduction over the baselines; P_MEM is the harder target
(narrow dynamic range) and degrades more on unseen programs.
"""

from conftest import by_model, run_once

from repro.eval.experiments import table7


def test_table7_srr_vs_baselines(benchmark, settings):
    result = run_once(benchmark, lambda: table7(settings))
    print("\n" + result.render())
    rows = by_model(result)
    srr = rows["SRR"]  # seen cpu (0-2), seen mem (3-5), unseen cpu, unseen mem

    baselines = {k: v for k, v in rows.items() if k != "SRR"}
    # Claim 3 (DESIGN §5): SRR beats every baseline on every MAPE column.
    for name, cells in baselines.items():
        for col, label in ((0, "seen cpu"), (3, "seen mem"),
                           (6, "unseen cpu"), (9, "unseen mem")):
            assert srr[col] < cells[col], f"{name} beat SRR on {label}"

    # Claim 5: P_MEM is worse unseen than seen.
    assert srr[9] > srr[3]
    # CPU stays accurate in both protocols (paper ~7 %).
    assert srr[0] < 12.0 and srr[6] < 18.0
