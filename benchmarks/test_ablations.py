"""Ablation benches for the design choices DESIGN.md §6 calls out."""

from conftest import by_model, run_once

from repro.eval.ablations import (
    ablation_finetune,
    ablation_lstm_depth,
    ablation_postprocessing,
    ablation_resmodel,
    ablation_trend_model,
)


def test_ablation_resmodel(benchmark, settings):
    """Paper §4.2.1: DT chosen as the ResModel after trying all of Table 4."""
    result = run_once(benchmark, lambda: ablation_resmodel(settings))
    print("\n" + result.render())
    rows = by_model(result)
    # The paper found DT best on its hardware; on the simulator the learners
    # are statistically close, so we require DT to be competitive: within
    # 25 % of the best learner tried.
    best = min(v[0] for v in rows.values())
    assert rows["DT"][0] <= best * 1.25


def test_ablation_postprocessing(benchmark, settings):
    """Algorithm 1's fusion never loses badly to its best input."""
    result = run_once(benchmark, lambda: ablation_postprocessing(settings))
    print("\n" + result.render())
    for row in result.rows:
        fused, res_only, spline_only = row[1], row[2], row[3]
        assert fused <= min(res_only, spline_only) * 1.3


def test_ablation_finetune(benchmark, settings):
    """Online fine-tuning must not hurt, and helps in aggregate."""
    result = run_once(benchmark, lambda: ablation_finetune(settings))
    print("\n" + result.render())
    total_with = sum(r[1] for r in result.rows)
    total_without = sum(r[2] for r in result.rows)
    assert total_with <= total_without * 1.1


def test_ablation_trend_model(benchmark, settings):
    """The spline trend must match or beat linear interpolation."""
    result = run_once(benchmark, lambda: ablation_trend_model(settings))
    print("\n" + result.render())
    rows = by_model(result)
    assert rows["spline"][0] <= rows["linear"][0] * 1.05


def test_ablation_lstm_depth(benchmark, settings):
    """Paper §6.4.3: two layers are the sweet spot (1 and 4 are not better
    by a wide margin)."""
    result = run_once(benchmark, lambda: ablation_lstm_depth(settings))
    print("\n" + result.render())
    rows = by_model(result)
    best = min(v[0] for v in rows.values())
    assert rows[2][0] <= best * 1.25
