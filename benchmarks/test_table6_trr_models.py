"""Table 6 — the three TRR variants against each other.

Paper (seen MAPE): Spline 2.21 < StaticTRR 4.02 < DynamicTRR 4.46; the
differences are small ("not statistically significant"), and the fitting
methods edge out the forecaster because they see both sides of each gap.
"""

from conftest import by_model, run_once

from repro.eval.experiments import table6


def test_table6_trr_models(benchmark, settings):
    result = run_once(benchmark, lambda: table6(settings))
    print("\n" + result.render())
    rows = by_model(result)
    spline_seen = rows["Spline"][0]
    static_seen = rows["StaticTRR"][0]
    dynamic_seen = rows["DynamicTRR"][0]

    # Claim 2 (DESIGN §5): spline <= StaticTRR <= DynamicTRR in seen MAPE,
    # with slack because the paper itself calls the gaps insignificant.
    assert spline_seen <= static_seen * 1.15
    assert static_seen <= dynamic_seen * 1.15

    # All three stay in the paper's few-percent band.
    for name in ("Spline", "StaticTRR", "DynamicTRR"):
        assert rows[name][0] < 8.0, f"{name} seen MAPE out of band"
        assert rows[name][3] < 10.0, f"{name} unseen MAPE out of band"
