"""Microbenchmarks for the interpolation substrate.

StaticTRR fits one spline per trace per restoration and the evaluation
harness calls it thousands of times per table — fit/eval throughput
matters. The Thomas-algorithm spline should stay O(n) in the knot count.
"""

import numpy as np

from repro.interp import ARForecaster, ARIMAForecaster, CubicSplineInterpolator

RNG = np.random.default_rng(3)
KNOTS_X = np.sort(RNG.choice(100_000, size=2_000, replace=False)).astype(float)
KNOTS_Y = 80.0 + 10.0 * np.sin(KNOTS_X / 500.0) + RNG.normal(0, 1.0, 2_000)
QUERY = np.linspace(KNOTS_X[0], KNOTS_X[-1], 20_000)
SERIES = 80.0 + np.cumsum(RNG.normal(0, 0.5, 5_000))


def test_spline_fit(benchmark):
    result = benchmark(lambda: CubicSplineInterpolator().fit(KNOTS_X, KNOTS_Y))
    assert result.is_fitted


def test_spline_predict(benchmark):
    spline = CubicSplineInterpolator().fit(KNOTS_X, KNOTS_Y)
    out = benchmark(lambda: spline.predict(QUERY))
    assert np.isfinite(out).all()


def test_ar_fit(benchmark):
    model = benchmark.pedantic(
        lambda: ARForecaster(order=8).fit(SERIES),
        rounds=3, iterations=1, warmup_rounds=0,
    )
    assert model.is_fitted


def test_arima_fit(benchmark):
    model = benchmark.pedantic(
        lambda: ARIMAForecaster(order=(2, 1, 1)).fit(SERIES[:1500]),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert model.is_fitted
