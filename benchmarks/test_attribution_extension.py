"""Extension bench — per-job power attribution on shared nodes.

Not a paper table; pins the disaggregation extension's shape: attribution
conserves the node total exactly, tracks each job's true share, and beats
the naive equal split decisively.
"""

import numpy as np
from conftest import run_once

from repro.attribution import ColocationSimulator, PerJobAttributor
from repro.hardware import ARM_PLATFORM, NodeSimulator
from repro.ml import mape
from repro.workloads import default_catalog


def _experiment(settings):
    catalog = default_catalog(settings.seed)
    solo_sim = NodeSimulator(ARM_PLATFORM, seed=23)
    solo = [solo_sim.run(catalog.get(n), duration_s=120)
            for n in ("spec_gcc", "spec_mcf", "hpcc_hpl",
                      "hpcc_stream", "parsec_ferret", "parsec_radix")]
    attributor = PerJobAttributor(ARM_PLATFORM).fit(solo)

    colo = ColocationSimulator(ARM_PLATFORM, seed=19)
    results = []
    for names in (["hpcc_hpl", "hpcc_stream"],
                  ["spec_gcc", "hpcc_stream", "hpcg"]):
        bundle = colo.run([catalog.get(n) for n in names], duration_s=200)
        parts = attributor.attribute_bundle(bundle)
        equal = bundle.cpu.values / bundle.n_jobs
        model_err = np.mean([
            mape(t.values, e) for t, e in zip(bundle.job_cpu_power, parts)
        ])
        equal_err = np.mean([
            mape(t.values, equal) for t in bundle.job_cpu_power
        ])
        conserved = bool(np.allclose(np.sum(parts, axis=0), bundle.cpu.values))
        results.append({
            "mix": "+".join(names), "model_mape": float(model_err),
            "equal_mape": float(equal_err), "conserved": conserved,
        })
    return results


def test_attribution_extension(benchmark, settings):
    results = run_once(benchmark, lambda: _experiment(settings))
    for r in results:
        print(f"\n{r['mix']}: model {r['model_mape']:.2f}% vs equal-split "
              f"{r['equal_mape']:.2f}% (conserved={r['conserved']})")
    for r in results:
        assert r["conserved"]
        assert r["model_mape"] < r["equal_mape"] * 0.8
        assert r["model_mape"] < 25.0
