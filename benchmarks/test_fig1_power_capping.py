"""Fig. 1 — power capping under different PI / AI.

Paper: raising AI from 1 s to 30 s lets the peak run higher/longer and adds
~1.1 kJ of energy (37.3 -> 38.4 kJ); PI 1 s -> 10 s hides spikes.
"""

from conftest import by_model, run_once

from repro.eval.figures import fig1


def test_fig1_power_capping(benchmark, settings):
    result = run_once(benchmark, lambda: fig1(settings))
    print("\n" + result.render())
    rows = by_model(result)
    uncapped = rows["uncapped"]
    fast = rows["PI=1  AI=1"]
    slow = rows["PI=1  AI=30"]

    # Capping works at all: energy and time-over-cap drop vs uncapped.
    assert fast[2] < uncapped[2]  # energy kJ
    assert fast[3] <= uncapped[3]  # time above cap

    # The paper's direction: slower actions cost energy and mean power.
    assert slow[2] > fast[2]
    assert slow[1] >= fast[1]
