"""Fig. 7 — impact of miss_interval on the spline vs StaticTRR.

Paper: the spline is most precise at 10 s and loses its grip on short-term
variation as the interval grows ("failing in extreme cases"), while
StaticTRR's PMC residual model keeps it usable.
"""

from conftest import by_model, run_once

from repro.eval.figures import fig7


def test_fig7_miss_interval(benchmark, settings):
    result = run_once(benchmark, lambda: fig7(settings))
    print("\n" + result.render())
    rows = by_model(result)  # interval -> (spline MAPE, static MAPE)

    spline_10, static_10 = rows["10s"]
    spline_100, static_100 = rows["100s"]

    # Spline degrades as readings grow sparser.
    assert spline_100 > spline_10
    # At the widest interval StaticTRR holds up at least as well as spline.
    assert static_100 <= spline_100 * 1.05
    # Both remain best at the paper's default 10 s interval.
    assert static_10 <= static_100
