"""Table 8 — SRR with vs without the P_node feature.

Paper: dropping P_node explodes the error (CPU 7.65 -> 30.46 % seen,
MEM 5.31 -> 21.56 % seen; similar unseen). The node reading and its budget
constraint are the heart of the bi-directional workflow.
"""

from conftest import by_model, run_once

from repro.eval.experiments import table8


def test_table8_pnode_ablation(benchmark, settings):
    result = run_once(benchmark, lambda: table8(settings))
    print("\n" + result.render())
    rows = by_model(result)

    # Every row: with-P_node MAPE below without-P_node MAPE.
    for target, cells in rows.items():
        with_mape, wo_mape = cells[0], cells[3]
        assert with_mape < wo_mape, f"{target}: P_node did not help"

    # Aggregate gap is substantial (paper ~3-4x; require >= 1.3x overall).
    total_with = sum(c[0] for c in rows.values())
    total_without = sum(c[3] for c in rows.values())
    assert total_without > 1.3 * total_with
