"""Fig. 2 — FFT vs Stream component breakdown.

Paper: both benchmarks sit near the 90 W node line, peripherals a constant
~25 W; CPU dominates FFT while RAM dominates Stream.
"""

from conftest import by_model, run_once

from repro.eval.figures import fig2


def test_fig2_component_divergence(benchmark, settings):
    result = run_once(benchmark, lambda: fig2(settings))
    print("\n" + result.render())
    rows = by_model(result)
    fft = rows["hpcc_fft"]  # (node, cpu, mem, other)
    stream = rows["hpcc_stream"]

    # Node power in the same broad band for both (the paper's ~90 W line).
    assert 70 <= fft[0] <= 120
    assert 70 <= stream[0] <= 120

    # CPU dominates FFT by a wide margin.
    assert fft[1] > 2.0 * fft[2]
    # Memory rivals/dominates CPU on Stream, and far exceeds FFT's memory.
    assert stream[2] >= stream[1] * 0.9
    assert stream[2] > 1.3 * fft[2]

    # Peripherals constant ~25 W on both runs.
    assert abs(fft[3] - 25.0) < 1.0
    assert abs(stream[3] - 25.0) < 1.0
