"""§6.4.5 — training / fine-tuning / prediction overhead.

Paper bounds: offline training < 10 min, online fine-tune < 2 s,
prediction latency < 1 ms per sample at node and component level.
"""

from conftest import run_once

from repro.eval.figures import overhead


def test_overhead(benchmark, settings):
    result = run_once(benchmark, lambda: overhead(settings))
    print("\n" + result.render())
    rows = {r[0]: r[1] for r in result.rows}

    def seconds(cell: str) -> float:
        value, unit = cell.split()
        return float(value) / (1e3 if unit == "ms" else 1.0)

    assert seconds(rows["offline training"]) < 600.0
    assert seconds(rows["online fine-tune (1 reading)"]) < 2.0
    # Our prediction path is pure NumPy: give it 10 ms of slack vs the
    # paper's compiled deployment while still catching regressions.
    assert seconds(rows["node prediction (1 sample)"]) < 0.010
    assert seconds(rows["component prediction (1 sample)"]) < 0.010
