"""Microbenchmarks for the ML substrate (§6.4.5 adjacent).

Fit/predict throughput for every Table-4 baseline on a campaign-sized
dataset. These are the costs a deployment pays per cross-validation round;
they also guard against performance regressions in the from-scratch
implementations (e.g. the CART split search going quadratic).
"""

import numpy as np
import pytest

from repro.ml import make_baseline
from repro.ml.registry import SEQUENCE_MODELS, baseline_names

RNG = np.random.default_rng(7)
N_TRAIN, N_PRED, N_FEATURES = 2000, 1000, 10
X_FLAT = RNG.uniform(0.0, 1.0, size=(N_TRAIN, N_FEATURES)) * np.logspace(
    3, 11, N_FEATURES
)
Y_FLAT = 60.0 + 30.0 * X_FLAT[:, 0] / 1e11 + RNG.normal(0, 2.0, N_TRAIN)
X_SEQ = RNG.normal(size=(400, 10, N_FEATURES))
Y_SEQ = X_SEQ[:, :, 0].cumsum(axis=1)

FLAT_MODELS = [n for n in baseline_names() if n not in SEQUENCE_MODELS]


@pytest.mark.parametrize("name", FLAT_MODELS)
def test_fit_flat_model(benchmark, name):
    model = make_baseline(name)
    if hasattr(model, "max_iter"):
        model.set_params(max_iter=min(model.max_iter, 2000))
    benchmark.pedantic(
        lambda: make_baseline(name).fit(X_FLAT, Y_FLAT),
        rounds=1, iterations=1, warmup_rounds=0,
    )


@pytest.mark.parametrize("name", FLAT_MODELS)
def test_predict_flat_model(benchmark, name):
    model = make_baseline(name).fit(X_FLAT, Y_FLAT)
    Xq = X_FLAT[:N_PRED]
    result = benchmark.pedantic(
        lambda: model.predict(Xq), rounds=3, iterations=1, warmup_rounds=1
    )
    assert np.isfinite(result).all()


# Walk-vs-compiled pairs: the estimators whose predict now routes through
# the repro.perf flat-array layer, timed against the seed's reference path.
COMPILED_MODELS = {
    "DT": "_predict_walk",
    "RF": "_predict_walk",
    "GB": "_predict_walk",
    "NN": "_predict_reference",
}


@pytest.mark.parametrize("name", sorted(COMPILED_MODELS))
@pytest.mark.parametrize("path", ["walk", "compiled"])
def test_predict_walk_vs_compiled(benchmark, name, path):
    model = make_baseline(name)
    if hasattr(model, "max_iter"):
        model.set_params(max_iter=min(model.max_iter, 2000))
    model.fit(X_FLAT, Y_FLAT)
    Xq = X_FLAT[:N_PRED]
    fn = getattr(model, COMPILED_MODELS[name]) if path == "walk" else model.predict
    result = benchmark.pedantic(
        lambda: fn(Xq), rounds=3, iterations=1, warmup_rounds=1
    )
    assert np.isfinite(result).all()


@pytest.mark.parametrize("name", sorted(SEQUENCE_MODELS))
def test_fit_rnn_model(benchmark, name):
    def fit():
        m = make_baseline(name)
        m.set_params(max_iter=100)
        return m.fit(X_SEQ, Y_SEQ)

    benchmark.pedantic(fit, rounds=1, iterations=1, warmup_rounds=0)


@pytest.mark.parametrize("name", sorted(SEQUENCE_MODELS))
def test_predict_rnn_model(benchmark, name):
    model = make_baseline(name)
    model.set_params(max_iter=50)
    model.fit(X_SEQ, Y_SEQ)
    result = benchmark.pedantic(
        lambda: model.predict(X_SEQ[:100]), rounds=3, iterations=1,
        warmup_rounds=1,
    )
    assert np.isfinite(result).all()
