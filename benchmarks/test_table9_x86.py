"""Table 9 — the full pipeline on the x86/RAPL platform, unseen programs.

Paper: DynamicTRR 3.48 % node MAPE (4–10 % below alternatives); SRR 9.94 %
CPU / 10.64 % MEM; absolute errors a bit higher than on ARM (faster CPU).
"""

from conftest import by_model, run_once

from repro.eval.experiments import table9


def test_table9_x86(benchmark, settings):
    result = run_once(benchmark, lambda: table9(settings))
    print("\n" + result.render())
    rows = by_model(result)

    dyn_node = rows["TRR/DynamicTRR"][0]
    srr_cpu, srr_mem = rows["SRR"][3], rows["SRR"][6]

    baselines = {
        k: v for k, v in rows.items()
        if not k.startswith("TRR/") and k != "SRR"
    }
    # DynamicTRR beats every baseline's node-power error.
    for name, cells in baselines.items():
        assert dyn_node < cells[0], f"{name} beat DynamicTRR on x86 node power"
    # SRR beats every baseline on P_CPU.
    for name, cells in baselines.items():
        assert srr_cpu < cells[3], f"{name} beat SRR on x86 P_CPU"
    # On P_MEM our simulator narrows the paper's margin: the restored node
    # budget carries the x86 node's larger absolute volatility into the small
    # DRAM component. Require SRR to beat the baseline *average* (the paper
    # beats every baseline individually; see EXPERIMENTS.md).
    mem_avg = sum(c[6] for c in baselines.values()) / len(baselines)
    assert srr_mem < mem_avg

    # Bands comparable to the paper's x86 numbers.
    assert dyn_node < 10.0
    assert srr_cpu < 18.0
    assert srr_mem < 25.0
