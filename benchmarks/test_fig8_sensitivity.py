"""Fig. 8 — HighRPM's sensitivity to miss_interval.

Paper: node-power MAPE stays roughly consistent across 10–100 s intervals
(splines carry the trend; active calibration does the rest).
"""

from conftest import by_model, run_once

from repro.eval.figures import fig8


def test_fig8_sensitivity(benchmark, settings):
    result = run_once(benchmark, lambda: fig8(settings))
    print("\n" + result.render())
    rows = by_model(result)  # interval -> (MAPE,)

    mapes = [rows[k][0] for k in ("10s", "30s", "60s", "100s")]
    # Roughly flat: the worst interval is within a small factor of the best.
    assert max(mapes) < 3.0 * min(mapes)
    # And the whole sweep stays in a usable band.
    assert max(mapes) < 15.0
