"""Table 5 — node-power restoration: TRR vs the 12 baseline models.

Paper: DynamicTRR 4.46 % MAPE seen / 4.38 % unseen; every baseline lands in
the 9.6–28 % band, and PMC-only models degrade sharply on unseen programs.
"""

from conftest import by_model, run_once

from repro.eval.experiments import table5
from repro.ml.registry import baseline_names


def test_table5_trr_vs_baselines(benchmark, settings):
    result = run_once(benchmark, lambda: table5(settings))
    print("\n" + result.render())
    rows = by_model(result)
    trr_seen, trr_unseen = rows["TRR/DynamicTRR"][0], rows["TRR/DynamicTRR"][3]

    baseline_rows = {
        k: v for k, v in rows.items() if not k.startswith("TRR/")
    }
    assert len(baseline_rows) == len(baseline_names())

    # Claim 1 (DESIGN §5): DynamicTRR beats every baseline, both protocols.
    for name, cells in baseline_rows.items():
        assert trr_seen < cells[0], f"{name} beat TRR on seen MAPE"
        assert trr_unseen < cells[3], f"{name} beat TRR on unseen MAPE"

    # TRR lands in a usable band (paper ~4.4 %).
    assert trr_seen < 8.0
    assert trr_unseen < 10.0

    # Claim 4: PMC-only models degrade unseen (on average).
    seen_avg = sum(c[0] for c in baseline_rows.values()) / len(baseline_rows)
    unseen_avg = sum(c[3] for c in baseline_rows.values()) / len(baseline_rows)
    assert unseen_avg > seen_avg
