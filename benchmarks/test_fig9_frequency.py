"""Fig. 9 — accuracy across CPU frequency levels (Graph500).

Paper: prediction gets harder as frequency rises, but even the worst case
stays ≤ 10 % (P_CPU) / ≤ 14 % (P_MEM) — below the baseline methods.
"""

from conftest import by_model, run_once

from repro.eval.figures import fig9


def test_fig9_frequency(benchmark, settings):
    result = run_once(benchmark, lambda: fig9(settings))
    print("\n" + result.render())
    rows = by_model(result)
    assert len(rows) == 3  # min / mid / max

    cpu_mapes = {k: v[0] for k, v in rows.items()}
    mem_mapes = {k: v[1] for k, v in rows.items()}

    # Usable accuracy at every level (paper's worst: 10 % CPU, 14 % MEM —
    # allow simulator headroom).
    assert max(cpu_mapes.values()) < 20.0
    assert max(mem_mapes.values()) < 28.0

    # The max-frequency level should not be dramatically easier than min
    # (the paper's trend is monotone-ish; we only require directionality
    # within noise).
    (min_label,) = [k for k in rows if k.startswith("min")]
    (max_label,) = [k for k in rows if k.startswith("max")]
    assert cpu_mapes[max_label] > cpu_mapes[min_label] * 0.5
