"""§6.4.6 — failure injection: ragged IPMI intervals.

Not a paper table; pins the documented limitation's *shape*: accuracy
degrades as readings are dropped, but gracefully (no cliff), and the
offline StaticTRR — which re-fits on whatever readings exist — degrades
more slowly than the online forecaster.
"""

from conftest import by_model, run_once

from repro.eval.limitations import jitter_robustness


def test_jitter_robustness(benchmark, settings):
    result = run_once(benchmark, lambda: jitter_robustness(settings))
    print("\n" + result.render())
    rows = by_model(result)  # drop prob -> (interval, dyn, static)

    clean_dyn = rows["0%"][1]
    worst_dyn = rows["50%"][1]
    # Degradation exists (the documented limitation) ...
    assert worst_dyn >= clean_dyn * 0.95
    # ... but no cliff: 50 % dropped readings costs < 3x the clean error.
    assert worst_dyn < clean_dyn * 3.0
    # StaticTRR stays usable throughout.
    assert rows["50%"][2] < 15.0
