"""Benchmark-suite configuration.

Each bench regenerates one table or figure from the paper's evaluation
(§6) with the quick protocol by default. Set ``REPRO_FULL=1`` for the
paper-sized protocol (tens of minutes).

Benches both *time* the experiment (pytest-benchmark) and *assert the
reproduced shape* — who wins, directionality, rough factors — per the
expectations in DESIGN.md §5. The rendered table is printed so the run log
records paper-vs-measured numbers (collected into EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro.eval.harness import EvalSettings


@pytest.fixture(scope="session")
def settings() -> EvalSettings:
    return EvalSettings.from_env()


def run_once(benchmark, fn):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def by_model(result):
    """Index an ExperimentResult's rows by their first column."""
    return {row[0]: row[1:] for row in result.rows}
