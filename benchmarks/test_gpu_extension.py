"""§6.4.4 extension bench — the methodology on a CPU+DRAM+GPU node.

Not a paper table (the paper leaves GPUs to future work); this bench pins
down that the extension behaves: TRR restores accelerated-node power
unchanged, and the three-way SRR distributes the budget with usable error.
"""

import numpy as np
from conftest import run_once

from repro.core import DynamicTRR, HighRPMConfig
from repro.gpu import AcceleratedNodeSimulator, GPUSRR, gpu_workload
from repro.ml import mape
from repro.sensors.base import SparseReadings


def _experiment():
    sim = AcceleratedNodeSimulator(seed=13)
    train = [sim.run(gpu_workload(n, seed=4), duration_s=120)
             for n in ("gemm", "stencil", "training_loop", "inference_serving")]
    cfg = HighRPMConfig(miss_interval=10, lstm_iters=250, srr_iters=2500, seed=3)
    trr = DynamicTRR(cfg)
    trr.fit(train, p_bottom=sim.min_node_power_w, p_upper=sim.max_node_power_w)
    srr = GPUSRR(cfg)
    pmcs = np.vstack([b.pmcs.matrix for b in train])
    srr.fit(
        pmcs,
        np.concatenate([b.node.values for b in train]),
        np.concatenate([b.cpu.values for b in train]),
        np.concatenate([b.mem.values for b in train]),
        np.concatenate([b.gpu.values for b in train]),
    )
    test = sim.run(gpu_workload("fft_gpu", seed=9), duration_s=200)
    idx = np.arange(10, len(test), 10)
    readings = SparseReadings(idx, test.node.values[idx], 10, len(test))
    p_node = trr.restore(test.pmcs.matrix, readings)
    p_cpu, p_mem, p_gpu = srr.predict(test.pmcs.matrix, p_node)
    return {
        "node": mape(test.node.values, p_node),
        "cpu": mape(test.cpu.values, p_cpu),
        "mem": mape(test.mem.values, p_mem),
        "gpu": mape(test.gpu.values, p_gpu),
    }


def test_gpu_extension(benchmark):
    scores = run_once(benchmark, _experiment)
    print("\nGPU-node restoration MAPE%:",
          {k: round(v, 2) for k, v in scores.items()})
    assert scores["node"] < 12.0
    assert scores["gpu"] < 25.0
    assert scores["cpu"] < 35.0
