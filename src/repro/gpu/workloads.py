"""Accelerated workloads: a host workload plus GPU utilisation channels.

Each GPU workload pairs a (usually light) host-side program — the launch
and staging code — with SM / device-memory utilisation traces built from
the same phase machinery as the host catalog. The mix spans the usual
suspects: dense GEMM (compute-bound), stencils (balanced), graph analytics
(bursty, memory-heavy), and training-style steady loops.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from ..errors import WorkloadError
from ..hardware.pmu import WorkloadTraits
from ..utils.rng import as_generator
from ..workloads.base import Workload
from ..workloads.phases import Phase, burst_train, constant, periodic


@dataclass(frozen=True)
class GPUWorkload:
    """Host program + GPU activity program."""

    name: str
    host: Workload
    gpu_phases: tuple[Phase, ...]
    gpu_power_scale: float = 1.0
    gpu_ipc_scale: float = 1.0

    def synthesize_gpu(
        self, duration_s: int, rng: "int | np.random.Generator | None" = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """(sm_util, device_mem_util) arrays at 1 Sa/s.

        GPU phases reuse the host Phase machinery: the ``cpu`` channel maps
        to SM utilisation, the ``mem`` channel to device-memory traffic.
        """
        g = as_generator(rng)
        sm_parts, mem_parts = [], []
        produced = 0
        while produced < duration_s:
            for phase in self.gpu_phases:
                s, m = phase.synthesize(g)
                sm_parts.append(s)
                mem_parts.append(m)
                produced += phase.duration_s
                if produced >= duration_s:
                    break
        return (
            np.concatenate(sm_parts)[:duration_s],
            np.concatenate(mem_parts)[:duration_s],
        )


def _host_stub(name: str, rng) -> Workload:
    """Launch/staging host program: light CPU, moderate memory."""
    phases = (
        constant(int(rng.integers(3, 7)), 0.3, 0.25, wander=0.01),
        periodic(int(rng.integers(80, 140)), 0.35, 0.3,
                 cpu_amp=0.05, mem_amp=0.05, period_s=rng.uniform(30, 60)),
    )
    return Workload(f"{name}_host", "GPU", phases, WorkloadTraits.random(rng))


_GPU_PROFILES: dict[str, tuple[tuple[float, float], float]] = {
    # name: ((sm_util, mem_util), burstiness)
    "gemm": ((0.95, 0.35), 1.0),
    "stencil": ((0.7, 0.6), 2.0),
    "graph_analytics": ((0.5, 0.85), 14.0),
    "training_loop": ((0.85, 0.55), 3.0),
    "inference_serving": ((0.45, 0.4), 10.0),
    "fft_gpu": ((0.8, 0.65), 2.0),
}

GPU_WORKLOAD_NAMES: tuple[str, ...] = tuple(_GPU_PROFILES)


def gpu_workload(name: str, seed: int = 0) -> GPUWorkload:
    """Build one named accelerated workload deterministically."""
    if name not in _GPU_PROFILES:
        raise WorkloadError(
            f"unknown GPU workload {name!r}; known: {sorted(_GPU_PROFILES)}"
        )
    # zlib.crc32, not hash(): the builtin is salted per process, and a
    # workload that differs between forked shards and the parent breaks
    # the sharded == single-process bit-identity contract (and any doc
    # regeneration that embeds GPU-derived numbers).
    rng = as_generator(seed + zlib.crc32(name.encode("utf-8")) % 100003)
    (sm, mem), burst = _GPU_PROFILES[name]
    gpu_phases = (
        constant(int(rng.integers(3, 8)), 0.05, 0.05, wander=0.01),  # H2D staging
        burst_train(
            int(rng.integers(90, 150)), sm, mem,
            burst_rate=burst, burst_mag=0.3, wander=0.03,
        ),
    )
    return GPUWorkload(
        name=name,
        host=_host_stub(name, rng),
        gpu_phases=gpu_phases,
        gpu_power_scale=float(np.exp(rng.normal(0.0, 0.1))),
        gpu_ipc_scale=float(np.exp(rng.normal(0.0, 0.12))),
    )
