"""GPU hardware model and the accelerated-node simulator.

The GPU mirrors the CPU model's structure — idle + dynamic·util·(f/f_max)^e
with a hidden energy-per-work drift — because that is the structure the
restoration models exploit. Counters are the usual profiling set
(SM cycles, warps, device-memory traffic), noisy and trait-scaled like
their CPU counterparts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..errors import ValidationError
from ..hardware.node import NodeSimulator
from ..hardware.platform import ARM_PLATFORM, PlatformSpec
from ..types import PMCTrace, PowerTrace
from ..utils.rng import SeedSequenceFactory, as_generator
from ..utils.validation import check_1d, check_consistent_length
from .workloads import GPUWorkload

#: GPU performance counters monitored by the extension.
GPU_PMC_EVENTS: tuple[str, ...] = (
    "SM_ACTIVE_CYCLES",
    "WARPS_LAUNCHED",
    "INST_EXECUTED",
    "DRAM_READ_BYTES",
    "DRAM_WRITE_BYTES",
    "L2_ACCESSES",
)


@dataclass(frozen=True)
class GPUSpec:
    """Static description of one accelerator."""

    name: str = "gpu-accel"
    n_sms: int = 80
    freq_ghz: float = 1.4
    idle_w: float = 25.0
    dyn_w: float = 175.0
    mem_dyn_w: float = 50.0
    freq_exponent: float = 2.0

    def __post_init__(self) -> None:
        if self.n_sms < 1 or self.freq_ghz <= 0:
            raise ValidationError("invalid GPU spec")
        for w in (self.idle_w, self.dyn_w, self.mem_dyn_w):
            if w < 0:
                raise ValidationError("power constants must be non-negative")

    @property
    def max_power_w(self) -> float:
        return self.idle_w + self.dyn_w + self.mem_dyn_w


class GPUPowerModel:
    """Instantaneous GPU board power from SM / device-memory utilisation."""

    def __init__(
        self,
        spec: GPUSpec,
        noise_w: float = 0.5,
        intensity_sigma: float = 0.12,
        intensity_tau_s: float = 120.0,
    ) -> None:
        self.spec = spec
        self.noise_w = float(noise_w)
        self.intensity_sigma = float(intensity_sigma)
        self.intensity_tau_s = float(intensity_tau_s)

    def power(
        self,
        sm_util: np.ndarray,
        mem_util: np.ndarray,
        rng: "int | np.random.Generator | None" = None,
        power_scale: float = 1.0,
        condition: "np.ndarray | float" = 0.0,
    ) -> np.ndarray:
        u = check_1d(sm_util, "sm_util")
        m = check_1d(mem_util, "mem_util")
        check_consistent_length(u, m, names=("sm_util", "mem_util"))
        if ((u < 0) | (u > 1)).any() or ((m < 0) | (m > 1)).any():
            raise ValidationError("utilisations must lie in [0, 1]")
        g = as_generator(rng)
        spec = self.spec
        rho = np.exp(-1.0 / self.intensity_tau_s)
        eps = g.normal(0.0, self.intensity_sigma * np.sqrt(1 - rho**2), size=u.shape)
        drift = np.empty_like(u)
        acc = 0.0
        for i in range(u.shape[0]):
            acc = rho * acc + eps[i]
            drift[i] = acc
        drift = np.clip(drift, -0.35, 0.35)
        cond = np.broadcast_to(np.asarray(condition, dtype=np.float64), u.shape)
        raw = (
            spec.idle_w
            + spec.dyn_w * u * power_scale * (1.0 + drift) * (1.0 + cond)
            + spec.mem_dyn_w * (m**0.9) * power_scale * (1.0 + cond)
        )
        if self.noise_w > 0:
            raw = raw + g.normal(0.0, self.noise_w, size=u.shape)
        return np.maximum(raw, 1.0)


class GPUPMUModel:
    """Synthetic GPU profiling counters."""

    def __init__(self, spec: GPUSpec, sample_noise: float = 0.07) -> None:
        self.spec = spec
        self.sample_noise = float(sample_noise)

    def counters(
        self,
        sm_util: np.ndarray,
        mem_util: np.ndarray,
        rng: "int | np.random.Generator | None" = None,
        ipc_scale: float = 1.0,
    ) -> np.ndarray:
        u = check_1d(sm_util, "sm_util")
        m = check_1d(mem_util, "mem_util")
        g = as_generator(rng)
        spec = self.spec
        hz = spec.freq_ghz * 1e9
        cycles = spec.n_sms * hz * (0.1 + 0.9 * u)
        warps = cycles * 0.02 * ipc_scale * (0.1 + 0.9 * u)
        inst = warps * 24.0
        reads = 4e11 * (m**1.05) + 1e9
        writes = reads * 0.45
        l2 = reads * 1.8 + inst * 0.05
        matrix = np.column_stack([cycles, warps, inst, reads, writes, l2])
        if self.sample_noise > 0:
            matrix = matrix * np.exp(g.normal(0.0, self.sample_noise, size=matrix.shape))
        return np.maximum(matrix, 0.0)


@dataclass(frozen=True)
class GPUTraceBundle:
    """Ground truth for one accelerated run: four components + counters.

    ``pmcs`` concatenates the ten CPU events with the six GPU events.
    """

    node: PowerTrace
    cpu: PowerTrace
    mem: PowerTrace
    gpu: PowerTrace
    other: PowerTrace
    pmcs: PMCTrace
    workload: str = "unknown"
    metadata: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        lengths = {len(self.node), len(self.cpu), len(self.mem),
                   len(self.gpu), len(self.other), len(self.pmcs)}
        if len(lengths) != 1:
            raise ValidationError(f"bundle members have mismatched lengths: {lengths}")

    def __len__(self) -> int:
        return len(self.node)

    def check_additivity(self, atol: float = 1e-6) -> bool:
        total = (self.cpu.values + self.mem.values + self.gpu.values
                 + self.other.values)
        return bool(np.allclose(self.node.values, total, atol=atol))


class AcceleratedNodeSimulator:
    """A compute node with CPU + DRAM + GPU.

    Reuses the standard :class:`~repro.hardware.node.NodeSimulator` for the
    host side and layers the accelerator on top; node power is the exact
    four-way component sum.
    """

    def __init__(
        self,
        host_spec: PlatformSpec = ARM_PLATFORM,
        gpu_spec: "GPUSpec | None" = None,
        seed: int = 0,
    ) -> None:
        self.host_spec = host_spec
        self.gpu_spec = gpu_spec or GPUSpec()
        self._host = NodeSimulator(host_spec, seed=seed)
        self._seeds = SeedSequenceFactory(seed).child(f"gpu.{self.gpu_spec.name}")
        self.gpu_power_model = GPUPowerModel(self.gpu_spec)
        self.gpu_pmu_model = GPUPMUModel(self.gpu_spec)

    @property
    def max_node_power_w(self) -> float:
        return self.host_spec.max_node_power_w + self.gpu_spec.max_power_w

    @property
    def min_node_power_w(self) -> float:
        return self.host_spec.min_node_power_w + self.gpu_spec.idle_w

    def run(self, workload: GPUWorkload, duration_s: "int | None" = None,
            run_id: int = 0) -> GPUTraceBundle:
        """Execute an accelerated workload; returns the four-way bundle."""
        host_bundle = self._host.run(workload.host, duration_s, run_id=run_id)
        n = len(host_bundle)
        g = self._seeds.generator(f"run.{workload.name}.{run_id}")
        sm_util, gmem_util = workload.synthesize_gpu(n, g)
        p_gpu = self.gpu_power_model.power(
            sm_util, gmem_util,
            self._seeds.generator(f"pwr.{workload.name}.{run_id}"),
            power_scale=workload.gpu_power_scale,
        )
        gpu_pmcs = self.gpu_pmu_model.counters(
            sm_util, gmem_util,
            self._seeds.generator(f"pmc.{workload.name}.{run_id}"),
            ipc_scale=workload.gpu_ipc_scale,
        )
        p_node = host_bundle.node.values + p_gpu
        events = host_bundle.pmcs.events + GPU_PMC_EVENTS
        pmcs = PMCTrace(
            np.hstack([host_bundle.pmcs.matrix, gpu_pmcs]), events, 1.0
        )
        return GPUTraceBundle(
            node=PowerTrace(p_node, 1.0, "node"),
            cpu=host_bundle.cpu,
            mem=host_bundle.mem,
            gpu=PowerTrace(p_gpu, 1.0, "gpu"),
            other=host_bundle.other,
            pmcs=pmcs,
            workload=workload.name,
            metadata={"sm_util": sm_util, "gpu_mem_util": gmem_util},
        )
