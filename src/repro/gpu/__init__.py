"""GPU extension (paper §6.4.4).

The paper's future-work section argues the HighRPM methodology carries over
to any peripheral with performance counters, GPUs first among them: swap
the monitored events, collect training data on the target platform, keep
the training/usage methodology. This package is that extension:

* :class:`GPUSpec` / :class:`GPUPowerModel` / :class:`GPUPMUModel` — an
  accelerator power model (SM utilisation × DVFS law, device-memory power,
  hidden drift) and its counter set;
* :class:`AcceleratedNodeSimulator` — a node with CPU + DRAM + GPU, whose
  node power is the exact component sum (plus peripherals);
* :class:`GPUSRR` — three-way spatial restoration: the node reading is
  distributed over (CPU, DRAM, GPU) with a softmax-share MLP, the natural
  generalisation of the two-way SRR budget split.

TRR needs no changes at all — node power is node power — which is exactly
the paper's point about the methodology's generality.
"""

from .hardware import AcceleratedNodeSimulator, GPUPMUModel, GPUPowerModel, GPUSpec, GPUTraceBundle
from .srr import GPUSRR
from .workloads import GPU_WORKLOAD_NAMES, gpu_workload

__all__ = [
    "GPUSpec",
    "GPUPowerModel",
    "GPUPMUModel",
    "GPUTraceBundle",
    "AcceleratedNodeSimulator",
    "GPUSRR",
    "gpu_workload",
    "GPU_WORKLOAD_NAMES",
]
