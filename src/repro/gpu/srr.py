"""Three-way spatial restoration: distribute node power over CPU/DRAM/GPU.

The natural generalisation of :class:`repro.core.srr.SRR`'s budget split:
an MLP maps ``(P_node, PMCs) → softmax shares`` over the three components,
and each share is multiplied by the measured budget ``P_node − P_other``.
"""

from __future__ import annotations

import numpy as np

from ..core.config import HighRPMConfig
from ..errors import NotFittedError
from ..ml.neural import MLPRegressor
from ..obs import current_tracer
from ..utils.validation import check_1d, check_2d, check_consistent_length


class GPUSRR:
    """Node-to-(CPU, DRAM, GPU) power distribution."""

    COMPONENTS = ("cpu", "mem", "gpu")

    def __init__(self, config: "HighRPMConfig | None" = None) -> None:
        self.config = config or HighRPMConfig()
        self.model_: "MLPRegressor | None" = None
        self.other_w_: float = 0.0

    @staticmethod
    def _softmax(z: np.ndarray) -> np.ndarray:
        z = z - z.max(axis=1, keepdims=True)
        e = np.exp(z)
        return e / e.sum(axis=1, keepdims=True)

    def fit(self, pmcs, p_node, p_cpu, p_mem, p_gpu) -> "GPUSRR":
        pmcs = check_2d(pmcs, "pmcs")
        p_node = check_1d(p_node, "p_node")
        p_cpu = check_1d(p_cpu, "p_cpu")
        p_mem = check_1d(p_mem, "p_mem")
        p_gpu = check_1d(p_gpu, "p_gpu")
        check_consistent_length(pmcs, p_node, p_cpu, p_mem, p_gpu,
                                names=("pmcs", "p_node", "p_cpu", "p_mem", "p_gpu"))
        self.other_w_ = float(np.median(p_node - p_cpu - p_mem - p_gpu))
        total = np.maximum(p_cpu + p_mem + p_gpu, 1e-9)
        shares = np.column_stack([p_cpu, p_mem, p_gpu]) / total[:, None]
        # Targets are log-shares (softmax is shift-invariant, so plain log
        # works as the inverse link up to a constant).
        logits = np.log(np.clip(shares, 1e-4, 1.0))
        X = np.column_stack([p_node, pmcs])
        cfg = self.config
        self.model_ = MLPRegressor(
            hidden_layer_sizes=cfg.srr_hidden,
            max_iter=cfg.srr_iters,
            random_state=cfg.seed,
        )
        self.model_.fit(X, logits)
        return self

    def predict(self, pmcs, p_node) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(P_CPU, P_MEM, P_GPU); always sums to ``p_node − other_w_``."""
        if self.model_ is None:
            raise NotFittedError("GPUSRR.predict before fit")
        pmcs = check_2d(pmcs, "pmcs")
        p_node = check_1d(p_node, "p_node")
        check_consistent_length(pmcs, p_node, names=("pmcs", "p_node"))
        with current_tracer().span("srr.split"):
            X = np.column_stack([p_node, pmcs])
            shares = self._softmax(self.model_.predict(X))
            budget = np.maximum(p_node - self.other_w_, 0.0)
            return (
                shares[:, 0] * budget,
                shares[:, 1] * budget,
                shares[:, 2] * budget,
            )

    def predict_batched(
        self, parts: "list[tuple[np.ndarray, np.ndarray]]"
    ) -> "list[tuple[np.ndarray, np.ndarray, np.ndarray]]":
        """(P_CPU, P_MEM, P_GPU) for many runs' chunks in one forward pass.

        ``parts`` holds ``(pmcs, p_node)`` pairs, one per pending chunk of
        an accelerated node. Mirrors :meth:`repro.core.srr.SRR.predict_batched`:
        one concatenated MLP forward, per-part outputs bit-identical to
        :meth:`predict` because the compiled forward and the row-wise
        softmax are batch-size independent.
        """
        if self.model_ is None:
            raise NotFittedError("GPUSRR.predict before fit")
        checked = []
        for pmcs, p_node in parts:
            pmcs = check_2d(pmcs, "pmcs")
            p_node = check_1d(p_node, "p_node")
            check_consistent_length(pmcs, p_node, names=("pmcs", "p_node"))
            checked.append((pmcs, p_node))
        if not checked:
            return []
        sizes = [pmcs.shape[0] for pmcs, _ in checked]
        bounds = np.cumsum(sizes)[:-1]
        with current_tracer().span("srr.split"):
            X = np.empty((int(sum(sizes)), checked[0][0].shape[1] + 1))
            ofs = 0
            for (pmcs, p_node), k in zip(checked, sizes):
                X[ofs:ofs + k, 0] = p_node
                X[ofs:ofs + k, 1:] = pmcs
                ofs += k
            shares = np.split(self._softmax(self.model_.predict(X)), bounds)
            out = []
            for (_, p_node), share in zip(checked, shares):
                budget = np.maximum(p_node - self.other_w_, 0.0)
                out.append((
                    share[:, 0] * budget,
                    share[:, 1] * budget,
                    share[:, 2] * budget,
                ))
            return out
