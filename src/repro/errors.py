"""Exception hierarchy for the HighRPM reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ValidationError(ReproError, ValueError):
    """An argument or data container failed validation."""


class NotFittedError(ReproError, RuntimeError):
    """A model was used for prediction before :meth:`fit` was called."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver failed to converge within its iteration budget."""


class SensorError(ReproError, RuntimeError):
    """A sensor could not produce a reading (unavailable, disabled, failed)."""


class SensorUnavailableError(SensorError):
    """The requested sensor backend does not exist on this host."""


class TransientSensorError(SensorError):
    """A sensor read failed in a way that may succeed on retry (bus timeout,
    BMC busy, dropped IPMI response). Consumers should retry with backoff."""


class SensorOutageError(SensorError):
    """The sensor feed is down for the whole request: no reading survived.

    Raised instead of returning an (invalid) empty :class:`SparseReadings`
    when fault injection or a real outage drops every reading of a run.
    Consumers degrade to model-only restoration rather than retrying."""


class SimulationError(ReproError, RuntimeError):
    """The hardware/workload simulator was driven into an invalid state."""


class WorkloadError(ReproError, ValueError):
    """An unknown workload or suite was requested from the catalog."""


class ExperimentError(ReproError, RuntimeError):
    """An evaluation experiment was misconfigured or produced no data."""


class CappingError(ReproError, RuntimeError):
    """The power-capping controller was given an unreachable constraint."""
