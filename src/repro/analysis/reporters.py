"""Text, JSON, and SARIF reporters for lint diagnostics."""

from __future__ import annotations

import json
from collections import Counter
from typing import Sequence

from .diagnostics import Diagnostic

#: Stable schema version for the JSON reporter; bump on breaking changes.
JSON_SCHEMA_VERSION = 1

#: SARIF spec level pinned by the GitHub code-scanning ingester.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(diagnostics: Sequence[Diagnostic], files_checked: int) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [d.render() for d in diagnostics]
    if diagnostics:
        by_rule = Counter(d.rule_id for d in diagnostics)
        breakdown = ", ".join(f"{rid}: {n}" for rid, n in sorted(by_rule.items()))
        lines.append("")
        lines.append(
            f"found {len(diagnostics)} problem(s) in {files_checked} file(s) "
            f"({breakdown})"
        )
    else:
        lines.append(f"ok: {files_checked} file(s) lint clean")
    return "\n".join(lines)


def render_json(diagnostics: Sequence[Diagnostic], files_checked: int) -> str:
    """Machine-readable report with a stable, versioned schema."""
    by_rule = Counter(d.rule_id for d in diagnostics)
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "summary": {
            "files_checked": files_checked,
            "diagnostics": len(diagnostics),
            "by_rule": dict(sorted(by_rule.items())),
        },
        "diagnostics": [d.to_dict() for d in diagnostics],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(diagnostics: Sequence[Diagnostic], files_checked: int) -> str:
    """SARIF 2.1.0 report for GitHub code-scanning upload.

    Rule metadata is taken from the live registry so the ``rules`` array
    always matches what actually ran; rules with no findings are included
    too, which lets the code-scanning UI show them as "passing".
    """
    from .registry import all_rules

    rules_meta = []
    rule_index: "dict[str, int]" = {}
    for i, cls in enumerate(all_rules()):
        rule_index[cls.id] = i
        rules_meta.append({
            "id": cls.id,
            "name": cls.name,
            "shortDescription": {"text": cls.description or cls.name},
            "defaultConfiguration": {"level": "error"},
        })

    results = []
    for d in diagnostics:
        result = {
            "ruleId": d.rule_id,
            "level": "error",
            "message": {"text": f"{d.rule_name}: {d.message}"},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": d.path.replace("\\", "/"),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": max(d.line, 1),
                        "startColumn": max(d.col, 1),
                    },
                },
            }],
        }
        if d.rule_id in rule_index:
            result["ruleIndex"] = rule_index[d.rule_id]
        results.append(result)

    payload = {
        "version": SARIF_VERSION,
        "$schema": SARIF_SCHEMA,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri": (
                        "https://example.invalid/highrpm-repro/docs/"
                        "static_analysis.md"
                    ),
                    "rules": rules_meta,
                },
            },
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
            "properties": {"filesChecked": files_checked},
            "results": results,
        }],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
