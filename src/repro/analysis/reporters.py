"""Text and JSON reporters for lint diagnostics."""

from __future__ import annotations

import json
from collections import Counter
from typing import Sequence

from .diagnostics import Diagnostic

#: Stable schema version for the JSON reporter; bump on breaking changes.
JSON_SCHEMA_VERSION = 1


def render_text(diagnostics: Sequence[Diagnostic], files_checked: int) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [d.render() for d in diagnostics]
    if diagnostics:
        by_rule = Counter(d.rule_id for d in diagnostics)
        breakdown = ", ".join(f"{rid}: {n}" for rid, n in sorted(by_rule.items()))
        lines.append("")
        lines.append(
            f"found {len(diagnostics)} problem(s) in {files_checked} file(s) "
            f"({breakdown})"
        )
    else:
        lines.append(f"ok: {files_checked} file(s) lint clean")
    return "\n".join(lines)


def render_json(diagnostics: Sequence[Diagnostic], files_checked: int) -> str:
    """Machine-readable report with a stable, versioned schema."""
    by_rule = Counter(d.rule_id for d in diagnostics)
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "summary": {
            "files_checked": files_checked,
            "diagnostics": len(diagnostics),
            "by_rule": dict(sorted(by_rule.items())),
        },
        "diagnostics": [d.to_dict() for d in diagnostics],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
