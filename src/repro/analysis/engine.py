"""The lint engine: file discovery, suppression comments, rule dispatch.

Suppression grammar (comments, matched with the ``tokenize`` module so
strings containing the marker are never misread):

* ``# repro-lint: disable=RL001,layering`` — suppress those rules on the
  physical line carrying the comment (trailing comment) or, for a comment
  on its own line, on the next code line;
* ``# repro-lint: disable-file=RL005`` — suppress for the whole file;
* rule names and ids are interchangeable; ``all`` suppresses every rule.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .config import LintConfig, load_config
from .diagnostics import Diagnostic
from .registry import RuleContext, all_rules, normalize_rule_keys

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable(?:-file)?)\s*=\s*(?P<rules>[\w\-, ]+)"
)


@dataclass
class Suppressions:
    """Parsed suppression comments for one file."""

    file_level: "set[str]" = field(default_factory=set)
    #: line number -> set of rule ids suppressed on that line
    by_line: "dict[int, set[str]]" = field(default_factory=dict)

    def allows(self, diag: Diagnostic) -> bool:
        """True when ``diag`` survives (is *not* suppressed)."""
        if diag.rule_id in self.file_level:
            return False
        return diag.rule_id not in self.by_line.get(diag.line, set())


def parse_suppressions(source: str) -> Suppressions:
    """Extract suppression directives from comment tokens."""
    sup = Suppressions()
    pending: "set[str]" = set()  # own-line comments apply to the next code line
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return sup
    for tok in tokens:
        if tok.type == tokenize.COMMENT:
            m = _SUPPRESS_RE.search(tok.string)
            if not m:
                continue
            try:
                ids = normalize_rule_keys([r for r in m.group("rules").split(",") if r.strip()])
            except KeyError:
                continue  # unknown rule in directive: ignore rather than crash
            if m.group("kind") == "disable-file":
                sup.file_level.update(ids)
            else:
                line_start = source.splitlines()[tok.start[0] - 1] if source else ""
                own_line = line_start.lstrip().startswith("#")
                if own_line:
                    pending |= ids
                else:
                    sup.by_line.setdefault(tok.start[0], set()).update(ids)
        elif tok.type in (tokenize.NL, tokenize.NEWLINE, tokenize.INDENT, tokenize.DEDENT):
            continue
        elif pending and tok.type not in (tokenize.COMMENT, tokenize.ENCODING):
            sup.by_line.setdefault(tok.start[0], set()).update(pending)
            pending = set()
    return sup


def module_name_for(path: Path) -> "str | None":
    """Dotted module name when ``path`` sits inside a ``repro`` package tree.

    Works for the canonical ``src/repro/...`` layout and for any temporary
    tree that contains a ``repro`` directory (as the tests do).
    """
    parts = list(path.resolve().parts)
    if "repro" not in parts:
        return None
    idx = len(parts) - 1 - parts[::-1].index("repro")
    rel = parts[idx:]
    if rel[-1].endswith(".py"):
        rel[-1] = rel[-1][:-3]
    return ".".join(rel)


def iter_python_files(paths: Sequence[Path], config: LintConfig) -> "list[Path]":
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    out: "set[Path]" = set()
    for p in paths:
        p = Path(p)
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                if not config.is_excluded(f.relative_to(p)):
                    out.add(f)
        elif p.suffix == ".py":
            out.add(p)
    return sorted(out)


class LintEngine:
    """Runs the enabled rule set over files and collects diagnostics."""

    def __init__(self, config: "LintConfig | None" = None) -> None:
        self.config = config or load_config()
        enabled = all_rules()
        if self.config.select:
            keep = normalize_rule_keys(list(self.config.select))
            enabled = [r for r in enabled if r.id in keep]
        if self.config.disable:
            drop = normalize_rule_keys(list(self.config.disable))
            enabled = [r for r in enabled if r.id not in drop]
        self.rules = [cls() for cls in enabled]

    def lint_file(self, path: Path) -> "list[Diagnostic]":
        path = Path(path)
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            return [
                Diagnostic(str(path), 1, 1, "RL000", "unreadable", f"cannot read file: {exc}")
            ]
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            return [
                Diagnostic(
                    str(path), exc.lineno or 1, (exc.offset or 0) + 1,
                    "RL000", "syntax-error", f"cannot parse file: {exc.msg}",
                )
            ]
        sup = parse_suppressions(source)
        ctx_base = dict(path=path, module=module_name_for(path), tree=tree,
                        source=source, config=self.config)
        found: "list[Diagnostic]" = []
        for rule in self.rules:
            ctx = RuleContext(options=self.config.options_for(rule.name), **ctx_base)
            found.extend(d for d in rule.check(ctx) if sup.allows(d))
        return sorted(found)

    def lint_paths(self, paths: "Iterable[Path | str]") -> "list[Diagnostic]":
        files = iter_python_files([Path(p) for p in paths], self.config)
        out: "list[Diagnostic]" = []
        for f in files:
            out.extend(self.lint_file(f))
        return out


def lint_paths(
    paths: "Iterable[Path | str]", config: "LintConfig | None" = None
) -> "list[Diagnostic]":
    """Convenience wrapper: lint ``paths`` with ``config`` (or discovered)."""
    return LintEngine(config).lint_paths(paths)
