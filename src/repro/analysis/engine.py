"""The lint engine: file discovery, suppression comments, rule dispatch.

Suppression grammar (comments, matched with the ``tokenize`` module so
strings containing the marker are never misread):

* ``# repro-lint: disable=RL001,layering — why it is safe here`` —
  suppress those rules on the physical line carrying the comment (trailing
  comment) or, for a comment on its own line, on the next code line;
* ``# repro-lint: disable-file=RL005 — why`` — suppress for the whole file;
* rule names and ids are interchangeable; ``all`` suppresses every rule;
* the trailing free text is the suppression's *reason* and is mandatory:
  RL007 flags any directive without one (and any directive naming an
  unknown rule, which would otherwise silently suppress nothing).

Project-wide linting (``lint_paths``) parses every file up front and
builds a :class:`~repro.analysis.symbols.ProjectIndex` over the trees, so
cross-file rules (Stage subclassing, imported mutable globals) see the
whole project; ``lint_file`` on a single path degrades to a one-file
index.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .config import LintConfig, load_config
from .dataflow import ModuleDataflow
from .diagnostics import Diagnostic
from .registry import RuleContext, all_rules, normalize_rule_keys
from .symbols import ProjectIndex

#: Rule tokens are ids/names (``RL001``, ``rng-discipline``, ``all``);
#: anything after the comma-separated list is the human reason.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_][A-Za-z0-9_-]*(?:\s*,\s*[A-Za-z0-9_][A-Za-z0-9_-]*)*)"
    r"(?P<rest>.*)$"
)

#: Leading separators allowed between the rule list and the reason text.
_REASON_STRIP = " \t-—:;,.()"


@dataclass(frozen=True)
class SuppressionDirective:
    """One parsed ``# repro-lint: disable...`` comment."""

    line: int
    kind: str  # "disable" | "disable-file"
    #: raw rule tokens as written (ids/names/"all"), before normalisation.
    raw_rules: "tuple[str, ...]"
    #: normalised rule ids; empty when some token named an unknown rule.
    rule_ids: "frozenset[str]"
    #: free text after the rule list (the justification).
    reason: str

    @property
    def has_reason(self) -> bool:
        return bool(self.reason)

    @property
    def known(self) -> bool:
        return bool(self.rule_ids)


@dataclass
class Suppressions:
    """Parsed suppression comments for one file."""

    file_level: "set[str]" = field(default_factory=set)
    #: line number -> set of rule ids suppressed on that line
    by_line: "dict[int, set[str]]" = field(default_factory=dict)
    #: every directive found, in file order (consumed by RL007).
    directives: "list[SuppressionDirective]" = field(default_factory=list)

    def allows(self, diag: Diagnostic) -> bool:
        """True when ``diag`` survives (is *not* suppressed)."""
        if diag.rule_id in self.file_level:
            return False
        return diag.rule_id not in self.by_line.get(diag.line, set())


def parse_suppressions(source: str) -> Suppressions:
    """Extract suppression directives from comment tokens."""
    sup = Suppressions()
    pending: "set[str]" = set()  # own-line comments apply to the next code line
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return sup
    for tok in tokens:
        if tok.type == tokenize.COMMENT:
            m = _SUPPRESS_RE.search(tok.string)
            if not m:
                continue
            raw = tuple(r.strip() for r in m.group("rules").split(",") if r.strip())
            try:
                ids = frozenset(normalize_rule_keys(list(raw)))
            except KeyError:
                ids = frozenset()  # unknown rule: suppress nothing, RL007 flags it
            sup.directives.append(SuppressionDirective(
                line=tok.start[0], kind=m.group("kind"), raw_rules=raw,
                rule_ids=ids, reason=m.group("rest").strip(_REASON_STRIP),
            ))
            if not ids:
                continue
            if m.group("kind") == "disable-file":
                sup.file_level.update(ids)
            else:
                line_start = source.splitlines()[tok.start[0] - 1] if source else ""
                own_line = line_start.lstrip().startswith("#")
                if own_line:
                    pending |= ids
                else:
                    sup.by_line.setdefault(tok.start[0], set()).update(ids)
        elif tok.type in (tokenize.NL, tokenize.NEWLINE, tokenize.INDENT, tokenize.DEDENT):
            continue
        elif pending and tok.type not in (tokenize.COMMENT, tokenize.ENCODING):
            sup.by_line.setdefault(tok.start[0], set()).update(pending)
            pending = set()
    return sup


def module_name_for(path: Path) -> "str | None":
    """Dotted module name when ``path`` sits inside a ``repro`` package tree.

    Works for the canonical ``src/repro/...`` layout and for any temporary
    tree that contains a ``repro`` directory (as the tests do).
    """
    parts = list(path.resolve().parts)
    if "repro" not in parts:
        return None
    idx = len(parts) - 1 - parts[::-1].index("repro")
    rel = parts[idx:]
    if rel[-1].endswith(".py"):
        rel[-1] = rel[-1][:-3]
    return ".".join(rel)


def iter_python_files(paths: Sequence[Path], config: LintConfig) -> "list[Path]":
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    out: "set[Path]" = set()
    for p in paths:
        p = Path(p)
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                if not config.is_excluded(f.relative_to(p)):
                    out.add(f)
        elif p.suffix == ".py":
            out.add(p)
    return sorted(out)


class LintEngine:
    """Runs the enabled rule set over files and collects diagnostics."""

    def __init__(self, config: "LintConfig | None" = None) -> None:
        self.config = config or load_config()
        enabled = all_rules()
        if self.config.select:
            keep = normalize_rule_keys(list(self.config.select))
            enabled = [r for r in enabled if r.id in keep]
        if self.config.disable:
            drop = normalize_rule_keys(list(self.config.disable))
            enabled = [r for r in enabled if r.id not in drop]
        self.rules = [cls() for cls in enabled]

    def _load(self, path: Path):
        """Read and parse one file.

        Returns ``(source, tree, None)`` on success or ``(None, None,
        diagnostic)`` when the file cannot be read/parsed.
        """
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            return None, None, Diagnostic(
                str(path), 1, 1, "RL000", "unreadable", f"cannot read file: {exc}"
            )
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            return None, None, Diagnostic(
                str(path), exc.lineno or 1, (exc.offset or 0) + 1,
                "RL000", "syntax-error", f"cannot parse file: {exc.msg}",
            )
        return source, tree, None

    def _lint_parsed(
        self, path: Path, source: str, tree: ast.Module, index: ProjectIndex
    ) -> "list[Diagnostic]":
        sup = parse_suppressions(source)
        ctx_base = dict(path=path, module=module_name_for(path), tree=tree,
                        source=source, config=self.config,
                        index=index, dataflow=ModuleDataflow(tree))
        found: "list[Diagnostic]" = []
        for rule in self.rules:
            ctx = RuleContext(options=self.config.options_for(rule.name), **ctx_base)
            found.extend(d for d in rule.check(ctx) if sup.allows(d))
        return sorted(found)

    def lint_file(self, path: Path, index: "ProjectIndex | None" = None) -> "list[Diagnostic]":
        """Lint one file (building a single-file symbol index if needed)."""
        path = Path(path)
        source, tree, err = self._load(path)
        if err is not None:
            return [err]
        if index is None:
            index = ProjectIndex.build([(module_name_for(path), tree)])
        return self._lint_parsed(path, source, tree, index)

    def lint_paths(
        self, paths: "Iterable[Path | str]", only: "set[Path] | None" = None
    ) -> "list[Diagnostic]":
        """Lint every python file under ``paths``.

        The symbol index always covers the *whole* file set; ``only``
        optionally restricts which files are actually checked (the
        ``--changed`` fast path), so cross-file rules keep full context.
        ``only`` is compared on resolved paths.
        """
        files = iter_python_files([Path(p) for p in paths], self.config)
        selected = {Path(p).resolve() for p in only} if only is not None else None
        out: "list[Diagnostic]" = []
        parsed: "list[tuple[Path, str, ast.Module]]" = []
        index = ProjectIndex()
        for f in files:
            source, tree, err = self._load(f)
            if err is not None:
                if selected is None or f.resolve() in selected:
                    out.append(err)
                continue
            index.add_module(module_name_for(f), tree)
            parsed.append((f, source, tree))
        for f, source, tree in parsed:
            if selected is not None and f.resolve() not in selected:
                continue
            out.extend(self._lint_parsed(f, source, tree, index))
        return out


def lint_paths(
    paths: "Iterable[Path | str]", config: "LintConfig | None" = None
) -> "list[Diagnostic]":
    """Convenience wrapper: lint ``paths`` with ``config`` (or discovered)."""
    return LintEngine(config).lint_paths(paths)
