"""Lint configuration: defaults plus ``[tool.repro-lint]`` from pyproject.

Everything has a sensible built-in default so the tool runs with no config
file at all; a ``pyproject.toml`` section can narrow/extend it:

.. code-block:: toml

    [tool.repro-lint]
    exclude = ["tests/fixtures"]
    disable = ["RL005"]

    [tool.repro-lint.rules.boundary-validation]
    packages = ["repro.core", "repro.sensors"]

Per-rule tables are passed through verbatim as ``RuleContext.options``.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from pathlib import Path

#: The declared layer DAG, lowest first. Imports may only point to the same
#: layer or below; anything upward is a layering violation (RL002). Keys are
#: the first path component under ``repro`` (a sub-package or a top-level
#: module). Intra-layer imports are allowed — the simulator's deliberate
#: hardware<->workloads and monitor<->eval lazy cycles live within a layer.
DEFAULT_LAYERS: "dict[str, int]" = {
    "types": 0,
    "errors": 0,
    "utils": 0,
    "interp": 1,
    "ml": 1,
    "core": 2,
    "sensors": 2,
    "workloads": 2,
    "hardware": 2,
    "monitor": 3,
    "attribution": 3,
    "gpu": 3,
    "eval": 3,
    "io": 3,
    "cli": 4,
    "analysis": 4,
    "__init__": 4,
    "__main__": 4,
}

DEFAULT_EXCLUDE: tuple = (
    ".git",
    "__pycache__",
    ".ruff_cache",
    ".pytest_cache",
    "build",
    "dist",
    "fixtures",
)


@dataclass
class LintConfig:
    """Engine-level settings shared by every rule."""

    #: Directory/file basenames (or relative path fragments) to skip.
    exclude: "tuple[str, ...]" = DEFAULT_EXCLUDE
    #: Rule ids/names disabled globally.
    disable: "tuple[str, ...]" = ()
    #: Rule ids/names to run exclusively (empty = all registered).
    select: "tuple[str, ...]" = ()
    #: Layer map for RL002.
    layers: "dict[str, int]" = field(default_factory=lambda: dict(DEFAULT_LAYERS))
    #: Per-rule option tables keyed by rule name.
    rule_options: "dict[str, dict]" = field(default_factory=dict)

    def options_for(self, rule_name: str) -> dict:
        return dict(self.rule_options.get(rule_name, {}))

    def is_excluded(self, path: Path) -> bool:
        text = str(path)
        return any(part in path.parts or part in text for part in self.exclude)


def load_config(start: "Path | None" = None) -> LintConfig:
    """Build a config from the nearest ``pyproject.toml`` at/above ``start``.

    Missing file or missing ``[tool.repro-lint]`` table yields pure defaults.
    """
    cfg = LintConfig()
    root = (start or Path.cwd()).resolve()
    candidates = [root, *root.parents] if root.is_dir() else list(root.parents)
    for directory in candidates:
        pyproject = directory / "pyproject.toml"
        if pyproject.is_file():
            return _merge_pyproject(cfg, pyproject)
    return cfg


def _merge_pyproject(cfg: LintConfig, pyproject: Path) -> LintConfig:
    try:
        with pyproject.open("rb") as fh:
            data = tomllib.load(fh)
    except (OSError, tomllib.TOMLDecodeError):
        return cfg
    table = data.get("tool", {}).get("repro-lint", {})
    if not isinstance(table, dict):
        return cfg
    if "exclude" in table:
        cfg.exclude = tuple(cfg.exclude) + tuple(table["exclude"])
    if "disable" in table:
        cfg.disable = tuple(table["disable"])
    if "select" in table:
        cfg.select = tuple(table["select"])
    if isinstance(table.get("layers"), dict):
        cfg.layers.update({str(k): int(v) for k, v in table["layers"].items()})
    rules = table.get("rules", {})
    if isinstance(rules, dict):
        cfg.rule_options.update({str(k): dict(v) for k, v in rules.items() if isinstance(v, dict)})
    return cfg
