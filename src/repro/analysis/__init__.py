"""``repro-lint``: project-specific static analysis.

The HighRPM reproduction depends on invariants that ordinary linters do not
know about: all stochasticity flows through seeded generators, traces are
read-only numpy views, the package layering forms a DAG, and numerics never
read the wall clock. This package enforces them with an AST-based rule
engine:

* ``python -m repro.analysis [paths...]`` — lint, exit non-zero on findings;
* :func:`lint_paths` — the same as a library call (used by the test suite).

Rules are registered in :mod:`repro.analysis.rules`; each has a stable ID
(``RL001``…) and a mnemonic name, both usable in config and in
``# repro-lint: disable=...`` suppression comments. See
``docs/static_analysis.md`` for the full catalogue and rationale.

This package deliberately imports nothing from the rest of :mod:`repro` so
it can lint a broken tree (and so it sits outside the layer DAG it checks).
"""

from __future__ import annotations

from .config import LintConfig, load_config
from .diagnostics import Diagnostic
from .engine import LintEngine, lint_paths
from .registry import Rule, all_rules, get_rule, register
from . import rules  # noqa: F401  (import registers the built-in rule set)

__all__ = [
    "Diagnostic",
    "LintConfig",
    "LintEngine",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_paths",
    "load_config",
    "register",
]
