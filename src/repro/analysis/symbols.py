"""Project-wide symbol index for cross-file lint rules.

The RL4xx concurrency rules need two facts no single file can answer:

* is this class a (transitive) ``Stage`` subclass, when the base was
  imported from another module and the hierarchy spans files?
* is this name a *module-level mutable global* of some ``repro`` module,
  when the mutation site imported it from elsewhere?

:class:`ProjectIndex` answers both from one pass over the parsed trees the
engine already holds. Resolution is name-based where dotted resolution
runs out (re-exports through ``__init__`` make fully-qualified tracking
unreliable without executing imports): a class is considered a subclass of
``Stage`` when a chain of recorded bases ends in a class *named* ``Stage``.
That is an over-approximation only if an unrelated class reuses the name —
acceptable for a project linter, and documented in the rule catalogue.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .dataflow import MUTABLE_TAGS, ScopeDataflow, _target_names


@dataclass(frozen=True)
class ClassInfo:
    """One class definition somewhere in the linted tree."""

    module: "str | None"
    name: str
    #: base-class spellings, resolved through the module's import aliases
    #: to dotted paths where possible (``Stage`` -> ``repro.stream.Stage``).
    bases: "tuple[str, ...]"
    lineno: int


@dataclass
class ModuleSymbols:
    """Per-module slice of the index."""

    module: "str | None"
    #: import alias -> dotted target (``Stage`` -> ``repro.stream.Stage``).
    imports: "dict[str, str]" = field(default_factory=dict)
    #: module-level names with mutable-container provenance.
    mutable_globals: "dict[str, str]" = field(default_factory=dict)
    classes: "list[ClassInfo]" = field(default_factory=list)


def _resolve_relative(module: "str | None", node: ast.ImportFrom) -> "str | None":
    """Absolute dotted module an ``ImportFrom`` pulls from, or None."""
    if node.level == 0:
        return node.module
    if module is None:
        return None
    parts = module.split(".")
    # ``from . import x`` inside package module a.b.c refers to a.b.
    if len(parts) < node.level:
        return None
    base = parts[: len(parts) - node.level]
    if node.module:
        base.append(node.module)
    return ".".join(base) if base else None


class ProjectIndex:
    """Classes, imports, and module-level globals across the linted files."""

    def __init__(self) -> None:
        self.modules: "dict[str, ModuleSymbols]" = {}
        #: class name -> every ClassInfo carrying it (name collisions kept).
        self.classes_by_name: "dict[str, list[ClassInfo]]" = {}

    # ------------------------------------------------------------------ build
    @classmethod
    def build(cls, items) -> "ProjectIndex":
        """``items``: iterable of ``(module_name_or_None, ast.Module)``."""
        index = cls()
        for module, tree in items:
            index.add_module(module, tree)
        return index

    def add_module(self, module: "str | None", tree: ast.Module) -> None:
        syms = ModuleSymbols(module=module)
        scope = ScopeDataflow(tree)
        for stmt in tree.body:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    syms.imports[alias.asname or alias.name.split(".")[0]] = alias.name
            elif isinstance(stmt, ast.ImportFrom):
                src = _resolve_relative(module, stmt)
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    target = f"{src}.{alias.name}" if src else alias.name
                    syms.imports[alias.asname or alias.name] = target
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                )
                value = stmt.value
                if value is None:
                    continue
                tag = scope.infer(value).tag
                if tag in MUTABLE_TAGS:
                    for t in targets:
                        for name in _target_names(t):
                            syms.mutable_globals[name] = tag
            elif isinstance(stmt, ast.ClassDef):
                self._add_class(syms, stmt)
        if module is not None:
            self.modules[module] = syms
        else:
            self.modules.setdefault(f"<file:{id(tree)}>", syms)

    def _add_class(self, syms: ModuleSymbols, node: ast.ClassDef) -> None:
        bases = []
        for b in node.bases:
            if isinstance(b, ast.Name):
                bases.append(syms.imports.get(b.id, b.id))
            elif isinstance(b, ast.Attribute):
                parts = []
                cur: ast.AST = b
                while isinstance(cur, ast.Attribute):
                    parts.append(cur.attr)
                    cur = cur.value
                if isinstance(cur, ast.Name):
                    root = syms.imports.get(cur.id, cur.id)
                    bases.append(".".join([root, *reversed(parts)]))
        info = ClassInfo(
            module=syms.module, name=node.name,
            bases=tuple(bases), lineno=node.lineno,
        )
        syms.classes.append(info)
        self.classes_by_name.setdefault(node.name, []).append(info)

    # ------------------------------------------------------------- queries
    def is_subclass_of(self, cls_node: ast.ClassDef, root_name: str,
                       module: "str | None" = None) -> bool:
        """Transitive subclass check by base-name chains.

        ``root_name`` is the bare class name (``"Stage"``). A class
        qualifies when some chain of recorded bases reaches a base whose
        final dotted component is ``root_name``.
        """
        syms = self.modules.get(module or "", ModuleSymbols(module))
        seen: "set[str]" = set()
        frontier: "list[str]" = []
        for b in cls_node.bases:
            dotted = None
            if isinstance(b, ast.Name):
                dotted = syms.imports.get(b.id, b.id)
            elif isinstance(b, ast.Attribute):
                parts = []
                cur: ast.AST = b
                while isinstance(cur, ast.Attribute):
                    parts.append(cur.attr)
                    cur = cur.value
                if isinstance(cur, ast.Name):
                    root = syms.imports.get(cur.id, cur.id)
                    dotted = ".".join([root, *reversed(parts)])
            if dotted:
                frontier.append(dotted)
        while frontier:
            dotted = frontier.pop()
            if dotted in seen:
                continue
            seen.add(dotted)
            leaf = dotted.rsplit(".", 1)[-1]
            if leaf == root_name:
                return True
            for info in self.classes_by_name.get(leaf, []):
                frontier.extend(info.bases)
        return False

    def mutable_global_origin(
        self, module: "str | None", name: str
    ) -> "tuple[str | None, str] | None":
        """Resolve ``name`` in ``module`` to a module-level mutable global.

        Returns ``(defining_module, tag)`` when the name is a mutable
        global of the module itself, or was imported from a linted module
        that defines it as one; None otherwise.
        """
        syms = self.modules.get(module or "")
        if syms is None:
            return None
        if name in syms.mutable_globals:
            return syms.module, syms.mutable_globals[name]
        dotted = syms.imports.get(name)
        if dotted and "." in dotted:
            src_module, src_name = dotted.rsplit(".", 1)
            src = self.modules.get(src_module)
            if src is not None and src_name in src.mutable_globals:
                return src_module, src.mutable_globals[src_name]
        return None
