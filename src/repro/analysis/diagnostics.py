"""Diagnostic records emitted by lint rules."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: a rule violated at a specific source location.

    Ordering is (path, line, col, rule) so reports group naturally by file.
    """

    path: str
    line: int
    col: int
    rule_id: str
    rule_name: str
    message: str

    def to_dict(self) -> dict:
        """JSON-ready representation (stable schema, see docs)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule_id": self.rule_id,
            "rule_name": self.rule_name,
            "message": self.message,
        }

    def render(self) -> str:
        """One-line human-readable form, editor-clickable."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.rule_name}] {self.message}"
        )
