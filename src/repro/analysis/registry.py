"""Rule base class and registry.

Rules self-register at import time via the :func:`register` decorator;
importing :mod:`repro.analysis.rules` populates the registry. Each rule has

* a stable ``id`` (``RLnnn``) used in reports and suppression comments,
* a mnemonic ``name`` (kebab-case) accepted anywhere the id is,
* a ``check(ctx)`` generator yielding :class:`Diagnostic` objects.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Type

from .config import LintConfig
from .diagnostics import Diagnostic


@dataclass
class RuleContext:
    """Everything a rule may inspect for one file."""

    path: Path
    #: Dotted module name (``repro.core.srr``) when the file belongs to the
    #: ``repro`` package, else ``None`` (examples, benchmarks, scripts).
    module: "str | None"
    tree: ast.Module
    source: str
    config: LintConfig
    #: Per-rule option mapping from ``[tool.repro-lint.rules.<name>]``.
    options: dict = field(default_factory=dict)
    #: Project-wide symbol index (classes, imports, mutable globals). The
    #: engine always supplies one; it covers just this file when the rule
    #: runs through ``lint_file`` on a single path.
    index: "object | None" = None
    #: Shared per-file dataflow (:class:`~repro.analysis.dataflow
    #: .ModuleDataflow`); built once by the engine and reused across rules.
    dataflow: "object | None" = None

    @property
    def relpath(self) -> str:
        try:
            return str(self.path.relative_to(Path.cwd()))
        except ValueError:
            return str(self.path)

    def flow(self):
        """The file's :class:`ModuleDataflow`, built lazily if absent."""
        if self.dataflow is None:
            from .dataflow import ModuleDataflow
            self.dataflow = ModuleDataflow(self.tree)
        return self.dataflow

    def in_packages(self, prefixes) -> bool:
        """True when this file's module sits under any dotted prefix."""
        if self.module is None:
            return False
        return any(
            self.module == p or self.module.startswith(p + ".")
            for p in prefixes
        )


class Rule:
    """Base class for lint rules; subclass and decorate with ``@register``."""

    id: str = "RL000"
    name: str = "unnamed"
    description: str = ""

    def check(self, ctx: RuleContext) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diagnostic(self, ctx: RuleContext, node: ast.AST, message: str) -> Diagnostic:
        """Build a Diagnostic anchored at ``node``."""
        return Diagnostic(
            path=ctx.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.id,
            rule_name=self.name,
            message=message,
        )


_REGISTRY: "dict[str, Type[Rule]]" = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    for key in (cls.id, cls.name):
        if key in _REGISTRY and _REGISTRY[key] is not cls:
            raise ValueError(f"duplicate rule key {key!r}")
    _REGISTRY[cls.id] = cls
    _REGISTRY[cls.name] = cls
    return cls


def get_rule(key: str) -> Type[Rule]:
    """Look up a rule class by id or name (case-insensitive)."""
    k = key.strip()
    if k in _REGISTRY:
        return _REGISTRY[k]
    lowered = {r.lower(): c for r, c in _REGISTRY.items()}
    if k.lower() in lowered:
        return lowered[k.lower()]
    raise KeyError(f"unknown rule {key!r}")


def all_rules() -> "list[Type[Rule]]":
    """Registered rule classes, sorted by id, deduplicated."""
    seen: dict[str, Type[Rule]] = {}
    for cls in _REGISTRY.values():
        seen.setdefault(cls.id, cls)
    return [seen[k] for k in sorted(seen)]


def normalize_rule_keys(keys: "list[str] | tuple[str, ...]") -> "set[str]":
    """Map a mixed list of ids/names (or ``all``) to a set of rule ids."""
    out: set[str] = set()
    for key in keys:
        if key.strip().lower() == "all":
            out.update(cls.id for cls in all_rules())
        else:
            out.add(get_rule(key).id)
    return out
