"""Intraprocedural dataflow for lint rules.

The six seed rules are pure AST pattern matchers; the RL2xx/RL3xx/RL4xx
families need to *reason about values*: is this name an ndarray, does this
``for`` loop walk a trace sample by sample, is this subscript invariant
under the loop around it? This module supplies that reasoning as a small,
deliberately bounded dataflow layer:

* **value provenance** — a flat lattice tagging each name ``ndarray`` /
  ``scalar`` / ``list`` / ``dict`` / ``set`` / ``unknown``, inferred from
  literals, known numpy constructors, annotations, and one-hop def-use
  chains (``n = pmcs.shape[0]`` also records *which* array ``n`` measures);
* **loop context** — every ``for``/``while`` statement knows its enclosing
  loops, its loop variables, and the set of names assigned anywhere in its
  body (the write set loop-invariance is checked against);
* **sample-loop classification** — a ``for`` loop is a *sample loop* when
  it walks an ndarray element by element: ``for i in range(len(x))`` /
  ``range(x.shape[0])`` (directly or through a recorded length alias),
  ``for v in x``, ``for i in np.flatnonzero(...)``, ``enumerate(x)``, or
  ``zip(..., x, ...)`` with ``x`` an ndarray. A stepped
  ``range(0, n, chunk)`` is a *chunk* loop and is never classified as
  per-sample.

Scope and limits (also documented in ``docs/static_analysis.md``): the
analysis is intraprocedural and flow-insensitive (a name's tag is the join
over all its assignments; conflicting tags join to ``unknown``), performs
no aliasing (``b = a`` copies ``a``'s tag once, at the def-use hop), and
does not classify comprehensions as loops. Rules built on it therefore
under-approximate: they stay silent when unsure.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

#: Provenance tags (a flat lattice: anything joined with a different tag
#: becomes UNKNOWN).
NDARRAY = "ndarray"
SCALAR = "scalar"
LIST = "list"
DICT = "dict"
SET = "set"
UNKNOWN = "unknown"

#: Tags whose values are mutable containers.
MUTABLE_TAGS = frozenset((LIST, DICT, SET))

#: numpy module-level callables that return ndarrays. Curated rather than
#: exhaustive: under-approximation keeps rules quiet when unsure.
NUMPY_ARRAY_FUNCS = frozenset({
    "array", "asarray", "ascontiguousarray", "asfortranarray", "atleast_1d",
    "atleast_2d", "zeros", "zeros_like", "ones", "ones_like", "empty",
    "empty_like", "full", "full_like", "arange", "linspace", "logspace",
    "concatenate", "stack", "vstack", "hstack", "column_stack", "where",
    "clip", "abs", "minimum", "maximum", "sqrt", "exp", "log", "sign",
    "gradient", "diff", "cumsum", "sort", "argsort", "unique", "searchsorted",
    "flatnonzero", "nonzero", "interp", "pad", "repeat", "tile", "take",
    "einsum", "choose", "select", "round", "floor", "ceil", "square",
    "frombuffer", "fromiter", "copy",
})

#: ndarray methods that return ndarrays (receiver must already be ndarray).
NDARRAY_METHODS = frozenset({
    "copy", "astype", "reshape", "ravel", "flatten", "clip", "cumsum",
    "round", "take", "repeat", "transpose", "squeeze", "view",
})

#: Callables returning scalars regardless of input.
SCALAR_FUNCS = frozenset({"len", "int", "float", "bool", "abs", "min", "max", "sum", "round"})

#: Annotation spellings accepted as "this parameter is an ndarray".
_NDARRAY_ANNOTATIONS = frozenset({
    "np.ndarray", "numpy.ndarray", "ndarray", "npt.NDArray", "NDArray",
})


def _annotation_tag(text: "str | None") -> str:
    """Provenance tag implied by an annotation's text, UNKNOWN if none."""
    if text is None:
        return UNKNOWN
    if text in _NDARRAY_ANNOTATIONS:
        return NDARRAY
    head = text.split("[", 1)[0].strip().lower()
    return {
        "set": SET, "frozenset": SET,
        "list": LIST,
        "dict": DICT,
    }.get(head, UNKNOWN)


@dataclass(frozen=True)
class ValueInfo:
    """Provenance of one assigned value."""

    tag: str = UNKNOWN
    #: for SCALAR values derived from an array's extent (``len(x)``,
    #: ``x.shape[0]``): the measured array's name.
    length_of: "str | None" = None


def _dotted(node: ast.AST) -> "str | None":
    """``a.b.c`` -> ``"a.b.c"``; None for non-name/attribute expressions."""
    parts: "list[str]" = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _annotation_text(node: "ast.AST | None") -> "str | None":
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.strip().strip('"')
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse failure on exotic nodes
        return None


def names_read(node: ast.AST) -> "set[str]":
    """All plain names loaded anywhere under ``node`` (incl. attr roots)."""
    out: "set[str]" = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            out.add(sub.id)
    return out


def _target_names(target: ast.AST) -> "set[str]":
    """Names bound by an assignment/loop target (tuple targets flattened)."""
    out: "set[str]" = set()
    for sub in ast.walk(target):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, (ast.Store, ast.Del)):
            out.add(sub.id)
    return out


def names_assigned_under(node: ast.AST) -> "set[str]":
    """Every name assigned anywhere in the subtree (writes, aug-writes,
    loop targets, with-as bindings) — the write set for invariance checks.
    Attribute/subscript writes contribute their *root* name (``x[i] = v``
    writes ``x``)."""
    out: "set[str]" = set()
    for sub in ast.walk(node):
        if isinstance(sub, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = sub.targets if isinstance(sub, ast.Assign) else [sub.target]
            for t in targets:
                out |= _target_names(t)
                root = t
                while isinstance(root, (ast.Attribute, ast.Subscript)):
                    root = root.value
                if isinstance(root, ast.Name):
                    out.add(root.id)
        elif isinstance(sub, ast.For):
            out |= _target_names(sub.target)
        elif isinstance(sub, ast.withitem) and sub.optional_vars is not None:
            out |= _target_names(sub.optional_vars)
        elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            out.add(sub.name)
    return out


class ScopeDataflow:
    """Assignment tracking and provenance for one function (or the module).

    ``assignments`` maps each name to the :class:`ValueInfo` of every value
    assigned to it in this scope; :meth:`provenance` joins them.
    """

    def __init__(self, node: ast.AST, parent: "ScopeDataflow | None" = None) -> None:
        self.node = node
        self.parent = parent
        self.assignments: "dict[str, list[ValueInfo]]" = {}
        self._collect()

    # ------------------------------------------------------------ collection
    def _collect(self) -> None:
        if isinstance(self.node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = self.node.args
            for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                tag = _annotation_tag(_annotation_text(a.annotation))
                self.assignments.setdefault(a.arg, []).append(ValueInfo(tag))
        for stmt in self._own_statements(self.node):
            if isinstance(stmt, ast.Assign):
                info = self.infer(stmt.value)
                for t in stmt.targets:
                    for name in _target_names(t):
                        self.assignments.setdefault(name, []).append(info)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                if stmt.value is not None:
                    info = self.infer(stmt.value)
                else:
                    info = ValueInfo(
                        _annotation_tag(_annotation_text(stmt.annotation))
                    )
                self.assignments.setdefault(stmt.target.id, []).append(info)
            elif isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Name):
                # x += ... keeps x's tag; record as unknown-preserving noop.
                self.assignments.setdefault(stmt.target.id, [])
            elif isinstance(stmt, ast.For):
                info = self._element_info(stmt.iter)
                for name in _target_names(stmt.target):
                    self.assignments.setdefault(name, []).append(info)

    def _own_statements(self, root: ast.AST):
        """Statements of this scope, descending into control flow but not
        into nested function/class scopes."""
        stack = list(ast.iter_child_nodes(root))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    # ------------------------------------------------------------- inference
    def provenance(self, name: str, _depth: int = 0) -> str:
        """Joined tag of every value assigned to ``name`` in this scope
        (falling back to enclosing scopes for free variables)."""
        infos = self.assignments.get(name)
        if infos is None:
            if self.parent is not None and _depth < 8:
                return self.parent.provenance(name, _depth + 1)
            return UNKNOWN
        tags = {i.tag for i in infos} or {UNKNOWN}
        if len(tags) == 1:
            return next(iter(tags))
        tags.discard(UNKNOWN)
        return next(iter(tags)) if len(tags) == 1 else UNKNOWN

    def length_source(self, name: str) -> "str | None":
        """The array whose extent ``name`` records, if unambiguous."""
        sources = {
            i.length_of for i in self.assignments.get(name, []) if i.length_of
        }
        return next(iter(sources)) if len(sources) == 1 else None

    def infer(self, expr: ast.AST, _depth: int = 0) -> ValueInfo:
        """Provenance of an expression (one-hop def-use through names)."""
        if isinstance(expr, ast.Constant):
            if isinstance(expr.value, (int, float, complex, bool)):
                return ValueInfo(SCALAR)
            return ValueInfo(UNKNOWN)
        if isinstance(expr, (ast.List, ast.ListComp)):
            return ValueInfo(LIST)
        if isinstance(expr, (ast.Dict, ast.DictComp)):
            return ValueInfo(DICT)
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return ValueInfo(SET)
        if isinstance(expr, ast.Name):
            if _depth >= 4:
                return ValueInfo(UNKNOWN)
            return ValueInfo(
                self.provenance(expr.id), self.length_source(expr.id)
            )
        if isinstance(expr, ast.IfExp):
            a = self.infer(expr.body, _depth + 1)
            b = self.infer(expr.orelse, _depth + 1)
            return a if a.tag == b.tag else ValueInfo(UNKNOWN)
        if isinstance(expr, ast.BinOp):
            left = self.infer(expr.left, _depth + 1)
            right = self.infer(expr.right, _depth + 1)
            if NDARRAY in (left.tag, right.tag):
                return ValueInfo(NDARRAY)
            if left.tag == right.tag == SCALAR:
                return ValueInfo(SCALAR)
            return ValueInfo(UNKNOWN)
        if isinstance(expr, ast.UnaryOp):
            return self.infer(expr.operand, _depth + 1)
        if isinstance(expr, ast.Compare):
            # Elementwise comparisons keep array-ness (boolean masks).
            if self.infer(expr.left, _depth + 1).tag == NDARRAY or any(
                self.infer(c, _depth + 1).tag == NDARRAY for c in expr.comparators
            ):
                return ValueInfo(NDARRAY)
            return ValueInfo(SCALAR)
        if isinstance(expr, ast.Subscript):
            return self._infer_subscript(expr, _depth)
        if isinstance(expr, ast.Call):
            return self._infer_call(expr, _depth)
        if isinstance(expr, ast.Attribute):
            # Frozen trace fields are ndarrays by construction (repro.types
            # stores them read-only); ``.indices``/``.values`` of
            # SparseReadings likewise.
            if expr.attr in ("values", "matrix", "indices"):
                return ValueInfo(NDARRAY)
            return ValueInfo(UNKNOWN)
        return ValueInfo(UNKNOWN)

    def _infer_subscript(self, expr: ast.Subscript, depth: int) -> ValueInfo:
        # shape access: ``x.shape[0]`` is a length scalar. Accessing
        # ``.shape`` at all is strong evidence ``x`` is an ndarray, so this
        # does not require the base name's provenance to resolve.
        if (
            isinstance(expr.value, ast.Attribute)
            and expr.value.attr == "shape"
        ):
            idx = expr.slice
            if isinstance(idx, ast.Constant) and idx.value == 0:
                return ValueInfo(SCALAR, length_of=_dotted(expr.value.value))
            return ValueInfo(SCALAR)
        base = self.infer(expr.value, depth + 1)
        if base.tag != NDARRAY:
            return ValueInfo(UNKNOWN)
        if isinstance(expr.slice, ast.Slice):
            return ValueInfo(NDARRAY)
        idx = self.infer(expr.slice, depth + 1)
        if idx.tag == NDARRAY:  # fancy indexing keeps array-ness
            return ValueInfo(NDARRAY)
        return ValueInfo(UNKNOWN)  # scalar index: row or element, unknown

    def _infer_call(self, expr: ast.Call, depth: int) -> ValueInfo:
        fn = expr.func
        if isinstance(fn, ast.Name):
            if fn.id == "len" and expr.args:
                target = _dotted(expr.args[0])
                return ValueInfo(SCALAR, length_of=target)
            if fn.id in ("list", "sorted"):
                return ValueInfo(LIST)
            if fn.id == "dict":
                return ValueInfo(DICT)
            if fn.id in ("set", "frozenset"):
                return ValueInfo(SET)
            if fn.id in SCALAR_FUNCS:
                return ValueInfo(SCALAR)
            return ValueInfo(UNKNOWN)
        if isinstance(fn, ast.Attribute):
            owner = _dotted(fn.value)
            if owner in ("np", "numpy"):
                if fn.attr in NUMPY_ARRAY_FUNCS:
                    return ValueInfo(NDARRAY)
                return ValueInfo(UNKNOWN)
            if fn.attr in NDARRAY_METHODS:
                if self.infer(fn.value, depth + 1).tag == NDARRAY:
                    return ValueInfo(NDARRAY)
            if fn.attr == "keys":
                return ValueInfo(UNKNOWN)
        return ValueInfo(UNKNOWN)

    # ------------------------------------------------------ shape reasoning
    def is_array_extent(self, expr: ast.AST) -> bool:
        """True when ``expr`` is the element count of an ndarray:
        ``len(x)``, ``x.shape[0]``, or a name recorded as either."""
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name) \
                and expr.func.id == "len" and expr.args:
            return self.infer(expr.args[0]).tag == NDARRAY
        if (
            isinstance(expr, ast.Subscript)
            and isinstance(expr.value, ast.Attribute)
            and expr.value.attr == "shape"
        ):
            # ``.shape`` access is itself an ndarray signal; do not demand
            # the base name's provenance to resolve.
            return True
        if isinstance(expr, ast.Name):
            return self.length_source(expr.id) is not None
        return False

    def _element_info(self, iter_expr: ast.AST) -> ValueInfo:
        """Provenance of a loop variable given the iterable."""
        tag = self.infer(iter_expr).tag
        if tag == NDARRAY:
            return ValueInfo(UNKNOWN)  # rows or elements — unknown
        return ValueInfo(UNKNOWN)

    # --------------------------------------------------- loop classification
    def is_sample_loop(self, loop: ast.For) -> bool:
        """True when the loop walks an ndarray one element at a time."""
        it = loop.iter
        if isinstance(it, ast.Call) and isinstance(it.func, ast.Name):
            if it.func.id == "range":
                if len(it.args) == 1:
                    return self.is_array_extent(it.args[0])
                if len(it.args) == 2:
                    return self.is_array_extent(it.args[1])
                return False  # stepped range = chunk loop, not per-sample
            if it.func.id == "enumerate" and it.args:
                return self.infer(it.args[0]).tag == NDARRAY
            if it.func.id == "zip":
                return any(self.infer(a).tag == NDARRAY for a in it.args)
            if it.func.id == "reversed" and it.args:
                return self.infer(it.args[0]).tag == NDARRAY
        return self.infer(it).tag == NDARRAY


class ModuleDataflow:
    """Per-module dataflow: one :class:`ScopeDataflow` per function scope,
    a parent map, and loop-context queries shared by every rule."""

    def __init__(self, tree: ast.Module) -> None:
        self.tree = tree
        self.parents: "dict[ast.AST, ast.AST]" = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                self.parents[child] = node
        self.module_scope = ScopeDataflow(tree)
        self.scopes: "dict[ast.AST, ScopeDataflow]" = {tree: self.module_scope}
        self._build_scopes(tree, self.module_scope)
        self._write_sets: "dict[ast.AST, set[str]]" = {}

    def _build_scopes(self, node: ast.AST, parent: ScopeDataflow) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scope = ScopeDataflow(child, parent=parent)
                self.scopes[child] = scope
                self._build_scopes(child, scope)
            else:
                self._build_scopes(child, parent)

    # ---------------------------------------------------------------- lookup
    def scope_for(self, node: ast.AST) -> ScopeDataflow:
        """The function scope whose body contains ``node``."""
        cur: "ast.AST | None" = node
        while cur is not None:
            if cur in self.scopes:
                # A function *definition* node belongs to the enclosing
                # scope; its body belongs to its own.
                if cur is node and isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    return self.scopes[cur]
                return self.scopes[cur]
            cur = self.parents.get(cur)
        return self.module_scope

    def enclosing_loops(self, node: ast.AST) -> "list[ast.AST]":
        """For/while statements around ``node``, innermost first, stopping
        at the function boundary."""
        out: "list[ast.AST]" = []
        cur = self.parents.get(node)
        while cur is not None:
            if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
                break
            if isinstance(cur, (ast.For, ast.While)):
                out.append(cur)
            cur = self.parents.get(cur)
        return out

    def enclosing_class(self, node: ast.AST) -> "ast.ClassDef | None":
        cur = self.parents.get(node)
        while cur is not None:
            if isinstance(cur, ast.ClassDef):
                return cur
            cur = self.parents.get(cur)
        return None

    def write_set(self, loop: ast.AST) -> "set[str]":
        """Names assigned anywhere inside ``loop`` (cached)."""
        if loop not in self._write_sets:
            names = names_assigned_under(loop)
            if isinstance(loop, ast.For):
                names |= _target_names(loop.target)
            self._write_sets[loop] = names
        return self._write_sets[loop]

    def is_loop_invariant(self, expr: ast.AST, loop: ast.AST) -> bool:
        """No name the expression reads is written inside the loop."""
        return not (names_read(expr) & self.write_set(loop))

    def sample_loops(self) -> "list[tuple[ast.For, ScopeDataflow]]":
        """Every for-loop classified as per-sample, with its scope."""
        out: "list[tuple[ast.For, ScopeDataflow]]" = []
        for node in ast.walk(self.tree):
            if isinstance(node, ast.For):
                scope = self.scope_for(node)
                if scope.is_sample_loop(node):
                    out.append((node, scope))
        return out
