"""RL007 — suppression hygiene.

A suppression is a debt marker: it must say *why* the rule does not apply
(``# repro-lint: disable=RL301 — LSTM recurrence is inherently
sequential``). RL007 flags

* directives with no trailing reason text — an undocumented suppression
  reads as "trust me" and rots silently, and
* directives naming an unknown rule id/name — a typo there would
  otherwise suppress nothing while *looking* like it suppresses
  something.

This keeps ``--strict`` CI honest: every hole punched in the rule set is
annotated at the punch site.
"""

from __future__ import annotations

from typing import Iterator

from ..diagnostics import Diagnostic
from ..engine import parse_suppressions
from ..registry import Rule, RuleContext, register


@register
class SuppressionHygieneRule(Rule):
    id = "RL007"
    name = "undocumented-suppression"
    description = (
        "Every repro-lint suppression must carry a trailing reason and "
        "name only known rules."
    )

    def check(self, ctx: RuleContext) -> Iterator[Diagnostic]:
        for d in parse_suppressions(ctx.source).directives:
            if not d.known:
                rules = ", ".join(d.raw_rules)
                yield Diagnostic(
                    path=ctx.relpath, line=d.line, col=1,
                    rule_id=self.id, rule_name=self.name,
                    message=(
                        f"suppression names unknown rule(s) '{rules}' and "
                        "therefore suppresses nothing; fix the id/name."
                    ),
                )
            elif not d.has_reason:
                rules = ", ".join(d.raw_rules)
                yield Diagnostic(
                    path=ctx.relpath, line=d.line, col=1,
                    rule_id=self.id, rule_name=self.name,
                    message=(
                        f"suppression of {rules} has no reason; append one "
                        "after the rule list, e.g. '# repro-lint: "
                        f"disable={rules} — <why the rule does not apply>'."
                    ),
                )
