"""RL002 — package layering.

The package is layered so hot paths and numerics never grow upward
dependencies on orchestration code::

    types / errors / utils          (0)
      < interp / ml                 (1)
      < core / sensors / workloads / hardware  (2)
      < monitor / attribution / gpu / eval / io  (3)
      < cli / analysis              (4)

An import is legal when the importer's layer is >= the imported layer
(intra-layer imports allowed). The map lives in
:data:`repro.analysis.config.DEFAULT_LAYERS` and can be overridden from
``[tool.repro-lint.layers]``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..diagnostics import Diagnostic
from ..registry import Rule, RuleContext, register


def _layer_key(dotted: str) -> "str | None":
    """First component under ``repro`` of a dotted module path."""
    parts = dotted.split(".")
    if not parts or parts[0] != "repro":
        return None
    return parts[1] if len(parts) > 1 else "__init__"


def _resolve_relative(module: str, node: ast.ImportFrom) -> "list[str]":
    """Absolute dotted targets of a (possibly relative) ``from`` import."""
    if node.level == 0:
        base = node.module or ""
    else:
        # Within package P, level=1 -> P, level=2 -> parent of P, ...
        pkg_parts = module.split(".")[:-1]  # containing package of this file
        if node.level - 1 >= len(pkg_parts) + 1:
            return []
        base_parts = pkg_parts[: len(pkg_parts) - (node.level - 1)]
        base = ".".join(base_parts)
        if node.module:
            base = f"{base}.{node.module}" if base else node.module
    if not base:
        return [a.name for a in node.names]
    # ``from repro.core import HighRPM`` and ``from repro import core`` must
    # both resolve to the sub-package actually crossed, so append each name.
    return [f"{base}.{a.name}" for a in node.names] or [base]


@register
class LayeringRule(Rule):
    id = "RL002"
    name = "layering"
    description = "Imports must not point to a higher layer of the package DAG."

    def check(self, ctx: RuleContext) -> Iterator[Diagnostic]:
        if ctx.module is None or not ctx.module.startswith("repro"):
            return  # out-of-package files (examples, scripts) import freely
        layers = dict(ctx.config.layers)
        layers.update(ctx.options.get("layers", {}))
        own_key = _layer_key(ctx.module)
        if own_key is None or own_key not in layers:
            return
        own_layer = layers[own_key]
        for node in ast.walk(ctx.tree):
            targets: "list[str]" = []
            if isinstance(node, ast.Import):
                targets = [a.name for a in node.names]
            elif isinstance(node, ast.ImportFrom):
                targets = _resolve_relative(ctx.module, node)
            for target in targets:
                key = _layer_key(target)
                if key is None:
                    continue  # third-party / stdlib
                # Importing a symbol from ``repro`` itself (``from repro
                # import x``) resolves to repro.<x>; unknown keys (e.g. a
                # symbol name, not a submodule) are skipped.
                target_layer = layers.get(key)
                if target_layer is None or key == own_key:
                    continue
                if target_layer > own_layer:
                    yield self.diagnostic(
                        ctx, node,
                        f"layer violation: {own_key} (layer {own_layer}) must "
                        f"not import {key} (layer {target_layer})",
                    )
