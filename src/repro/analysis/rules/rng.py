"""RL001 — RNG discipline.

The paper's tables are reproducible only because every stochastic component
draws from a seeded ``numpy`` Generator handed out by
:class:`repro.utils.rng.SeedSequenceFactory`. Global-state RNG — either
numpy's legacy ``np.random.*`` module functions or the stdlib ``random``
module — silently couples streams across components and breaks that
guarantee, so both are banned everywhere except ``utils/rng.py`` itself.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..diagnostics import Diagnostic
from ..registry import Rule, RuleContext, register

#: ``np.random`` attributes that do NOT touch global state (constructors of
#: explicit generators / seed plumbing). Everything else is flagged.
SAFE_NP_RANDOM = frozenset(
    {
        "Generator",
        "default_rng",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)


def _numpy_aliases(tree: ast.Module) -> "tuple[set[str], set[str]]":
    """(aliases of the numpy module, aliases of numpy.random) in this file."""
    np_alias: "set[str]" = set()
    npr_alias: "set[str]" = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                if a.name == "numpy":
                    np_alias.add(a.asname or "numpy")
                elif a.name == "numpy.random":
                    if a.asname:  # ``import numpy.random as npr`` -> npr.rand
                        npr_alias.add(a.asname)
                    else:  # ``import numpy.random`` binds ``numpy``
                        np_alias.add("numpy")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "numpy":
                for a in node.names:
                    if a.name == "random":
                        npr_alias.add(a.asname or "random")
    return np_alias, npr_alias


@register
class RngDisciplineRule(Rule):
    id = "RL001"
    name = "rng-discipline"
    description = (
        "Global-state RNG (np.random.* module functions, stdlib random) is "
        "banned outside utils/rng.py; use seeded Generators."
    )

    def check(self, ctx: RuleContext) -> Iterator[Diagnostic]:
        exempt = tuple(ctx.options.get("exempt_modules", ("repro.utils.rng",)))
        if ctx.module in exempt:
            return
        np_alias, npr_alias = _numpy_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            yield from self._check_imports(ctx, node)
            if isinstance(node, ast.Attribute):
                yield from self._check_attribute(ctx, node, np_alias, npr_alias)

    def _check_imports(self, ctx: RuleContext, node: ast.AST) -> Iterator[Diagnostic]:
        if isinstance(node, ast.Import):
            for a in node.names:
                if a.name == "random" or a.name.startswith("random."):
                    yield self.diagnostic(
                        ctx, node,
                        "stdlib 'random' uses hidden global state; draw from a "
                        "seeded numpy Generator (utils/rng.py) instead",
                    )
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module == "random":
                yield self.diagnostic(
                    ctx, node,
                    "importing from stdlib 'random' is banned; use seeded "
                    "numpy Generators (utils/rng.py)",
                )
            elif node.module == "numpy.random":
                for a in node.names:
                    if a.name not in SAFE_NP_RANDOM and a.name != "random":
                        yield self.diagnostic(
                            ctx, node,
                            f"'from numpy.random import {a.name}' pulls a "
                            "global-state function; use a Generator method",
                        )

    def _check_attribute(
        self, ctx: RuleContext, node: ast.Attribute,
        np_alias: "set[str]", npr_alias: "set[str]",
    ) -> Iterator[Diagnostic]:
        # np.random.<attr> — flag unless <attr> is a generator constructor.
        inner = node.value
        if (
            isinstance(inner, ast.Attribute)
            and inner.attr == "random"
            and isinstance(inner.value, ast.Name)
            and inner.value.id in np_alias
            and node.attr not in SAFE_NP_RANDOM
        ):
            yield self.diagnostic(
                ctx, node,
                f"np.random.{node.attr} mutates numpy's hidden global RNG "
                "state; use a seeded np.random.Generator",
            )
        # <npr_alias>.<attr> from ``from numpy import random`` style imports.
        elif (
            isinstance(inner, ast.Name)
            and inner.id in npr_alias
            and node.attr not in SAFE_NP_RANDOM
        ):
            yield self.diagnostic(
                ctx, node,
                f"numpy.random.{node.attr} mutates global RNG state; use a "
                "seeded np.random.Generator",
            )
