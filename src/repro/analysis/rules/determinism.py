"""RL201/RL202 — determinism under the bit-identity contract.

The streaming refactor (PR 5) pinned three execution shapes of the monitor
to *bit-identical* outputs: chunked, whole-run, and fleet-batched. That
contract is what lets ``tests/test_streaming_equivalence.py`` compare
arrays with ``==`` instead of tolerances — and it is fragile in exactly
two ways this module polices:

* **GEMM-backed matrix products** (``@``, ``np.dot``, ``np.matmul``, and
  ``np.einsum(..., optimize=True)``) let BLAS choose its reduction
  blocking *per call shape*: a (256, k) chunk and an (n, k) whole trace
  sum the k-axis in different orders, so float results differ in the last
  ulp and the contract breaks. ``CompiledMLP`` runs its forwards through
  unoptimised fixed-order ``np.einsum`` for precisely this reason. RL201
  flags every matmul-family operation inside the contract modules; an
  opt-in ``fast_math`` path must carry a suppression naming it.
* **unordered iteration feeding numeric accumulation**: looping a ``set``
  (hash order) into ``+=``-style accumulation or ``list.append`` makes
  the reduction order depend on ``PYTHONHASHSEED``. RL202 flags it and
  asks for ``sorted(...)``.

The contract module list defaults to the packages the equivalence tests
pin and can be overridden per rule via ``[tool.repro-lint.rules.<name>]
modules = [...]``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..dataflow import NDARRAY, SET
from ..diagnostics import Diagnostic
from ..registry import Rule, RuleContext, register

#: Modules whose outputs the streaming-equivalence suite pins bit-identical
#: across chunked / whole-run / fleet-batched execution.
BIT_IDENTITY_MODULES = (
    "repro.perf",
    "repro.core",
    "repro.stream",
    "repro.monitor.pipeline",
    "repro.monitor.fleet",
)

_MATMUL_FUNCS = ("dot", "matmul", "inner", "vdot", "tensordot")


def _is_np(node: ast.AST) -> bool:
    return isinstance(node, ast.Name) and node.id in ("np", "numpy")


@register
class BitIdentityMatmulRule(Rule):
    id = "RL201"
    name = "bit-identity-matmul"
    description = (
        "No BLAS-order-dependent products (@ / np.dot / np.matmul / "
        "optimized einsum) in modules under the bit-identity contract; "
        "use fixed-order np.einsum or suppress with a fast_math reason."
    )

    def check(self, ctx: RuleContext) -> Iterator[Diagnostic]:
        modules = tuple(ctx.options.get("modules", BIT_IDENTITY_MODULES))
        if not ctx.in_packages(modules):
            return
        # Reasoned allowances: modules implementing the opt-in fast_math
        # tolerance tier (declared via [tool.repro-lint.rules.<name>]
        # exempt_modules) host BLAS products by design; everything else
        # under the contract stays policed.
        exempt = tuple(ctx.options.get("exempt_modules", ()))
        if exempt and ctx.in_packages(exempt):
            return
        flow = ctx.flow()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
                yield self.diagnostic(
                    ctx, node,
                    "'@' runs a BLAS GEMM whose reduction order depends on "
                    "the call shape; chunked and whole-run results differ in "
                    "the last ulp. Use fixed-order np.einsum (see "
                    "CompiledMLP) or suppress naming the fast_math contract.",
                )
            elif isinstance(node, ast.AugAssign) and isinstance(node.op, ast.MatMult):
                yield self.diagnostic(
                    ctx, node,
                    "'@=' matmul-assign is BLAS-order dependent under the "
                    "bit-identity contract; use fixed-order np.einsum.",
                )
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, flow, node)

    def _check_call(self, ctx, flow, node: ast.Call) -> Iterator[Diagnostic]:
        fn = node.func
        if not isinstance(fn, ast.Attribute):
            return
        if _is_np(fn.value) and fn.attr in _MATMUL_FUNCS:
            yield self.diagnostic(
                ctx, node,
                f"np.{fn.attr} dispatches to BLAS whose blocking varies with "
                "operand shape; under the bit-identity contract use "
                "fixed-order np.einsum or suppress naming fast_math.",
            )
            return
        if _is_np(fn.value) and fn.attr == "einsum":
            for kw in node.keywords:
                if kw.arg == "optimize" and not (
                    isinstance(kw.value, ast.Constant) and kw.value.value is False
                ):
                    yield self.diagnostic(
                        ctx, node,
                        "np.einsum(optimize=...) may reorder the contraction "
                        "per call shape, breaking chunked == whole-run "
                        "bit-identity; drop optimize (defaults to False).",
                    )
            return
        # ndarray.dot(...) method spelling.
        if fn.attr == "dot" and not _is_np(fn.value):
            scope = flow.scope_for(node)
            if scope.infer(fn.value).tag == NDARRAY:
                yield self.diagnostic(
                    ctx, node,
                    "ndarray.dot() is a BLAS GEMM; under the bit-identity "
                    "contract use fixed-order np.einsum.",
                )


@register
class UnorderedAccumulationRule(Rule):
    id = "RL202"
    name = "unordered-accumulation"
    description = (
        "No numeric accumulation over set-ordered iteration in bit-identity "
        "modules; hash order varies with PYTHONHASHSEED — iterate sorted()."
    )

    #: list/set mutators that make iteration order observable downstream.
    _ORDER_SINKS = ("append", "extend", "add")

    def check(self, ctx: RuleContext) -> Iterator[Diagnostic]:
        modules = tuple(ctx.options.get("modules", BIT_IDENTITY_MODULES))
        if not ctx.in_packages(modules):
            return
        flow = ctx.flow()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For):
                scope = flow.scope_for(node)
                if scope.infer(node.iter).tag != SET:
                    continue
                sink = self._accumulation_in(node)
                if sink is not None:
                    yield self.diagnostic(
                        ctx, node,
                        "iterating a set in hash order feeds the "
                        f"accumulation at line {sink.lineno}; the reduction "
                        "order then varies run to run — iterate "
                        "sorted(<set>) instead.",
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_reduce_call(ctx, flow, node)

    def _accumulation_in(self, loop: ast.For) -> "ast.AST | None":
        for sub in ast.walk(loop):
            if sub is loop:
                continue
            if isinstance(sub, ast.AugAssign) and isinstance(
                sub.op, (ast.Add, ast.Sub, ast.Mult, ast.Div)
            ):
                return sub
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in self._ORDER_SINKS
            ):
                return sub
        return None

    def _check_reduce_call(self, ctx, flow, node: ast.Call) -> Iterator[Diagnostic]:
        fn = node.func
        is_sum = isinstance(fn, ast.Name) and fn.id == "sum"
        is_np_sum = (
            isinstance(fn, ast.Attribute) and _is_np(fn.value) and fn.attr == "sum"
        )
        if not (is_sum or is_np_sum) or not node.args:
            return
        arg = node.args[0]
        scope = flow.scope_for(node)
        inner = arg.generators[0].iter if isinstance(
            arg, (ast.GeneratorExp, ast.ListComp)
        ) else arg
        if scope.infer(inner).tag == SET:
            yield self.diagnostic(
                ctx, node,
                "sum() over a set reduces in hash order, which varies with "
                "PYTHONHASHSEED; sum over sorted(<set>) for a fixed order.",
            )
