"""RL004 — mutation safety for frozen trace containers.

:mod:`repro.types` stores every array read-only (``_as_readonly``) so that
models, sensors and the eval harness can share views without defensive
copies. Writing through an attribute of those frozen dataclasses — or
re-enabling writability with ``setflags(write=True)`` — corrupts data that
other components believe immutable. Numpy raises at runtime for read-only
writes, but only on the code path that executes; this rule finds the write
statically.

Heuristic scope: attribute names that correspond to frozen trace fields
(``values``, ``matrix``, ...) — configurable via
``[tool.repro-lint.rules.frozen-mutation] fields = [...]``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..diagnostics import Diagnostic
from ..registry import Rule, RuleContext, register

#: Array-valued fields of the frozen dataclasses in ``repro/types.py``
#: (PowerTrace.values, PMCTrace.matrix) plus the trace members of
#: TraceBundle through which those arrays are reached.
DEFAULT_FIELDS = ("values", "matrix")


def _attr_chain_tail(node: ast.AST) -> "str | None":
    """``b.pmcs.matrix`` -> ``matrix`` (None when not an attribute access)."""
    return node.attr if isinstance(node, ast.Attribute) else None


@register
class FrozenMutationRule(Rule):
    id = "RL004"
    name = "frozen-mutation"
    description = (
        "In-place writes to frozen trace attributes (values/matrix) or "
        "setflags(write=True) are banned."
    )

    def check(self, ctx: RuleContext) -> Iterator[Diagnostic]:
        fields = frozenset(ctx.options.get("fields", DEFAULT_FIELDS))
        exempt = tuple(ctx.options.get("exempt_modules", ("repro.types",)))
        if ctx.module in exempt:
            return  # types.py itself freezes arrays via setflags
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    yield from self._check_write_target(ctx, target, fields)
            elif isinstance(node, ast.AugAssign):
                yield from self._check_aug(ctx, node, fields)
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, fields)

    def _check_write_target(
        self, ctx: RuleContext, target: ast.AST, fields: frozenset
    ) -> Iterator[Diagnostic]:
        # ``x.values[...] = ...`` / ``bundle.pmcs.matrix[i, j] = ...``
        if isinstance(target, ast.Subscript):
            attr = _attr_chain_tail(target.value)
            if attr in fields:
                yield self.diagnostic(
                    ctx, target,
                    f"in-place write through frozen trace attribute "
                    f"'.{attr}[...]'; build a new trace (e.g. with_values) "
                    "instead",
                )

    def _check_aug(
        self, ctx: RuleContext, node: ast.AugAssign, fields: frozenset
    ) -> Iterator[Diagnostic]:
        target = node.target
        # ``x.values += ...`` and ``x.values[...] += ...``
        attr = _attr_chain_tail(target)
        if attr is None and isinstance(target, ast.Subscript):
            attr = _attr_chain_tail(target.value)
        if attr in fields:
            yield self.diagnostic(
                ctx, node,
                f"augmented assignment mutates frozen trace attribute "
                f"'.{attr}' in place; compute a new array and rewrap",
            )

    def _check_call(
        self, ctx: RuleContext, node: ast.Call, fields: frozenset
    ) -> Iterator[Diagnostic]:
        fn = node.func
        if not isinstance(fn, ast.Attribute):
            return
        # ``anything.setflags(write=True)`` — defeats the read-only contract.
        if fn.attr == "setflags":
            for kw in node.keywords:
                truthy = isinstance(kw.value, ast.Constant) and bool(kw.value.value)
                if kw.arg == "write" and truthy:
                    yield self.diagnostic(
                        ctx, node,
                        "setflags(write=True) re-enables writes on a shared "
                        "read-only array; copy instead",
                    )
        # ``x.values.sort()`` / ``x.matrix.partition(...)`` — ndarray methods
        # that mutate in place.
        elif fn.attr in ("sort", "partition", "fill", "put", "itemset", "resize"):
            owner_attr = _attr_chain_tail(fn.value)
            if owner_attr in fields:
                yield self.diagnostic(
                    ctx, node,
                    f"ndarray.{fn.attr}() mutates frozen trace attribute "
                    f"'.{owner_attr}' in place; use the np.{fn.attr} copy "
                    "variant" if fn.attr in ("sort", "partition")
                    else f"ndarray.{fn.attr}() mutates frozen trace attribute "
                    f"'.{owner_attr}' in place",
                )
        # ``np.ndarray.sort(x.values)`` unbound-method spelling.
        if (
            fn.attr in ("sort", "partition", "fill", "put", "resize")
            and _attr_chain_tail(fn.value) == "ndarray"
            and node.args
            and _attr_chain_tail(node.args[0]) in fields
        ):
            yield self.diagnostic(
                ctx, node,
                f"np.ndarray.{fn.attr}(...) mutates a frozen trace attribute "
                "in place; operate on a copy",
            )
