"""Built-in rule set; importing this package registers every rule.

| id    | name                | summary                                         |
|-------|---------------------|-------------------------------------------------|
| RL001 | rng-discipline      | no global-state RNG outside ``utils/rng.py``    |
| RL002 | layering            | imports must respect the declared layer DAG     |
| RL003 | wall-clock          | no wall-clock reads inside numeric packages     |
| RL004 | frozen-mutation     | no in-place writes to frozen trace attributes   |
| RL005 | boundary-validation | array params of public core/sensors functions   |
|       |                     | must be validated                               |
| RL006 | swallowed-error     | no bare/blanket excepts that swallow errors     |
"""

from __future__ import annotations

from . import boundaries, exceptions, layering, mutation, rng, wallclock

__all__ = ["boundaries", "exceptions", "layering", "mutation", "rng", "wallclock"]
