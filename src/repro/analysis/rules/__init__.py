"""Built-in rule set; importing this package registers every rule.

| id    | name                     | summary                                      |
|-------|--------------------------|----------------------------------------------|
| RL001 | rng-discipline           | no global-state RNG outside ``utils/rng.py`` |
| RL002 | layering                 | imports must respect the declared layer DAG  |
| RL003 | wall-clock               | no wall-clock reads inside numeric packages  |
| RL004 | frozen-mutation          | no in-place writes to frozen trace attrs     |
| RL005 | boundary-validation      | array params of public core/sensors          |
|       |                          | functions must be validated                  |
| RL006 | swallowed-error          | no bare/blanket excepts that swallow errors  |
| RL007 | undocumented-suppression | suppressions need a reason + known rules     |
| RL201 | bit-identity-matmul      | no BLAS-order-dependent products in          |
|       |                          | bit-identity-contract modules                |
| RL202 | unordered-accumulation   | no numeric accumulation over set iteration   |
|       |                          | in bit-identity modules                      |
| RL301 | per-sample-loop          | no per-sample Python loops over ndarrays in  |
|       |                          | hot-path packages                            |
| RL302 | append-accumulation      | no list.append growth inside sample loops    |
| RL303 | hoistable-indexing       | no loop-invariant ndarray gathers in loops   |
| RL401 | stage-state              | Stage subclasses write self.* only in        |
|       |                          | ``__init__`` (stateless protocol)            |
| RL402 | global-mutation          | no mutation of module-level containers from  |
|       |                          | monitor/stream/faults function bodies        |
| RL403 | registry-capture         | no freezing ambient registry/tracer into     |
|       |                          | attributes or globals                        |

RL2xx guards the bit-identity contract, RL3xx the hot path, RL4xx the
worker-safety conventions — see :mod:`repro.analysis.dataflow` for the
provenance machinery they share.
"""

from __future__ import annotations

from . import (
    boundaries,
    concurrency,
    determinism,
    exceptions,
    hotpath,
    layering,
    mutation,
    rng,
    suppressions,
    wallclock,
)

__all__ = [
    "boundaries",
    "concurrency",
    "determinism",
    "exceptions",
    "hotpath",
    "layering",
    "mutation",
    "rng",
    "suppressions",
    "wallclock",
]
