"""RL003 — wall-clock reads in numeric code.

The restoration pipeline (``core``), the model zoo (``ml``), and the
interpolators (``interp``) must be pure functions of their inputs and seeds:
the paper's tables are regenerated bit-for-bit from archived campaigns.
A ``time.time()`` or ``datetime.now()`` inside those packages makes results
depend on when they ran — timing instrumentation belongs in ``eval`` (the
harness layer), where it is allowed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..diagnostics import Diagnostic
from ..registry import Rule, RuleContext, register

#: Functions of the ``time`` module that read a clock.
TIME_FUNCS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "localtime",
        "gmtime",
    }
)
#: Clock-reading constructors/classmethods of ``datetime`` objects.
DATETIME_FUNCS = frozenset({"now", "utcnow", "today", "fromtimestamp"})

DEFAULT_PACKAGES = ("repro.core", "repro.ml", "repro.interp")


@register
class WallClockRule(Rule):
    id = "RL003"
    name = "wall-clock"
    description = "Numeric packages (core/ml/interp) must not read wall clocks."

    def check(self, ctx: RuleContext) -> Iterator[Diagnostic]:
        packages = tuple(ctx.options.get("packages", DEFAULT_PACKAGES))
        if ctx.module is None or not ctx.module.startswith(packages):
            return
        time_aliases, dt_aliases, from_names = self._aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            fn = node.func
            if isinstance(fn, ast.Attribute) and isinstance(fn.value, ast.Name):
                owner, attr = fn.value.id, fn.attr
                if owner in time_aliases and attr in TIME_FUNCS:
                    yield self.diagnostic(
                        ctx, node,
                        f"wall-clock read time.{attr}() in numeric code; pass "
                        "timestamps in as data (eval/ may time things)",
                    )
                elif owner in dt_aliases and attr in DATETIME_FUNCS:
                    yield self.diagnostic(
                        ctx, node,
                        f"wall-clock read datetime.{attr}() in numeric code; "
                        "pass timestamps in as data",
                    )
            elif (
                isinstance(fn, ast.Attribute)
                and isinstance(fn.value, ast.Attribute)
                and isinstance(fn.value.value, ast.Name)
                and fn.value.value.id in dt_aliases
                and fn.value.attr in ("datetime", "date")
                and fn.attr in DATETIME_FUNCS
            ):
                # ``import datetime; datetime.datetime.now()`` spelling.
                yield self.diagnostic(
                    ctx, node,
                    f"wall-clock read datetime.{fn.value.attr}.{fn.attr}() in "
                    "numeric code; pass timestamps in as data",
                )
            elif isinstance(fn, ast.Name) and fn.id in from_names:
                yield self.diagnostic(
                    ctx, node,
                    f"wall-clock read {from_names[fn.id]}() in numeric code; "
                    "pass timestamps in as data",
                )

    @staticmethod
    def _aliases(tree: ast.Module):
        """Aliases of the time module, datetime-ish names, clock functions."""
        time_aliases: "set[str]" = set()
        dt_aliases: "set[str]" = set()
        from_names: "dict[str, str]" = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    if a.name == "time":
                        time_aliases.add(a.asname or "time")
                    elif a.name == "datetime":
                        dt_aliases.add(a.asname or "datetime")
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "time":
                    for a in node.names:
                        if a.name in TIME_FUNCS:
                            from_names[a.asname or a.name] = f"time.{a.name}"
                elif node.module == "datetime":
                    for a in node.names:
                        # ``from datetime import datetime/date`` -> class with
                        # .now()/.today() classmethods.
                        if a.name in ("datetime", "date"):
                            dt_aliases.add(a.asname or a.name)
        return time_aliases, dt_aliases, from_names
