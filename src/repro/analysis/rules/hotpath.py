"""RL301/RL302/RL303 — hot-path performance in the streaming monitor.

A monitor that runs as a long-lived service must keep its own hot path
cheap (SmartWatts; the RAPL-overhead study) — and the profiled truth of
this repo is that the compiled kernels are fast while the remaining
per-sample Python in the pipeline stages caps end-to-end throughput
(ROADMAP: "kill per-sample Python in the pipeline"). These rules turn
that roadmap item into a worklist:

* **RL301 per-sample-loop** — a ``for`` loop classified as *per-sample*
  (``range(len(x))`` / ``range(x.shape[0])`` / direct ndarray iteration;
  see :mod:`repro.analysis.dataflow`) that indexes ndarrays with the loop
  variable pays interpreter dispatch per sample. One diagnostic per loop.
* **RL302 append-accumulation** — ``list.append``/``extend`` inside a
  per-sample loop grows a Python list sample by sample; preallocate with
  ``np.empty`` or build the result with one vectorised expression.
* **RL303 hoistable-indexing** — a slice / fancy-index of an ndarray
  inside a loop whose every input is loop-invariant re-gathers the same
  data every iteration; hoist it above the loop.

Scope: the packages on the service's hot path (``core``, ``perf``,
``stream``, ``monitor`` by default; override via ``[tool.repro-lint.rules
.<name>] packages``). Chunk loops (``range(0, n, chunk_size)``) are never
per-sample; comprehensions are not classified (documented limit).
Inherently sequential loops (LSTM steps, Algorithm-1 holds) carry
suppressions whose reasons point at the vectorisation roadmap item.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..dataflow import LIST, NDARRAY, names_read
from ..diagnostics import Diagnostic
from ..registry import Rule, RuleContext, register

#: Default hot-path packages (prefix match on the dotted module name).
HOT_PACKAGES = ("repro.core", "repro.perf", "repro.stream", "repro.monitor")


def _loop_vars(loop: ast.For) -> "set[str]":
    out: "set[str]" = set()
    for sub in ast.walk(loop.target):
        if isinstance(sub, ast.Name):
            out.add(sub.id)
    return out


def _subscripts_under(node: ast.AST):
    yield from (s for s in ast.walk(node) if isinstance(s, ast.Subscript))


@register
class PerSampleLoopRule(Rule):
    id = "RL301"
    name = "per-sample-loop"
    description = (
        "No per-sample Python loops over trace/chunk ndarrays in hot-path "
        "packages; vectorise over the whole chunk."
    )

    def check(self, ctx: RuleContext) -> Iterator[Diagnostic]:
        packages = tuple(ctx.options.get("packages", HOT_PACKAGES))
        if not ctx.in_packages(packages):
            return
        flow = ctx.flow()
        for loop, scope in flow.sample_loops():
            offenders = []
            lvars = _loop_vars(loop)
            for sub in _subscripts_under(loop):
                if not (names_read(sub.slice) & lvars):
                    continue  # index does not move with the loop
                if scope.infer(sub.value).tag != NDARRAY:
                    continue
                offenders.append(sub)
            if offenders:
                first = offenders[0]
                where = f"line {first.lineno}"
                yield self.diagnostic(
                    ctx, loop,
                    f"per-sample Python loop: {len(offenders)} ndarray "
                    f"subscript(s) move with the loop variable (first at "
                    f"{where}); each iteration pays interpreter dispatch — "
                    "vectorise over the chunk (see ROADMAP: kill per-sample "
                    "Python in the pipeline).",
                )


@register
class AppendAccumulationRule(Rule):
    id = "RL302"
    name = "append-accumulation"
    description = (
        "No list.append accumulation inside per-sample loops; preallocate "
        "an array or build the result with one vectorised expression."
    )

    def check(self, ctx: RuleContext) -> Iterator[Diagnostic]:
        packages = tuple(ctx.options.get("packages", HOT_PACKAGES))
        if not ctx.in_packages(packages):
            return
        flow = ctx.flow()
        for loop, scope in flow.sample_loops():
            for sub in ast.walk(loop):
                if not (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in ("append", "extend")
                ):
                    continue
                recv = sub.func.value
                if isinstance(recv, ast.Name) and scope.provenance(recv.id) == LIST:
                    yield self.diagnostic(
                        ctx, sub,
                        f"'{recv.id}.{sub.func.attr}' grows a Python list "
                        "one sample at a time inside a per-sample loop; "
                        "preallocate with np.empty(n) and fill by index, or "
                        "compute the whole chunk vectorised.",
                    )


@register
class HoistableIndexingRule(Rule):
    id = "RL303"
    name = "hoistable-indexing"
    description = (
        "No loop-invariant ndarray slicing/fancy-indexing inside loops; "
        "hoist the gather above the loop."
    )

    def check(self, ctx: RuleContext) -> Iterator[Diagnostic]:
        packages = tuple(ctx.options.get("packages", HOT_PACKAGES))
        if not ctx.in_packages(packages):
            return
        flow = ctx.flow()
        seen: "set[tuple[int, str]]" = set()
        for sub in _subscripts_under(ctx.tree):
            if not isinstance(sub.ctx, ast.Load):
                continue
            loops = flow.enclosing_loops(sub)
            if not loops:
                continue
            inner = loops[0]  # judge against the innermost enclosing loop
            scope = flow.scope_for(sub)
            if not self._is_gather(sub, scope):
                continue
            if not flow.is_loop_invariant(sub, inner):
                continue
            # Anchor once per distinct expression per loop.
            key = (inner.lineno, ast.dump(sub))
            if key in seen:
                continue
            seen.add(key)
            try:
                text = ast.unparse(sub)
            except Exception:  # pragma: no cover - unparse of exotic nodes
                text = "<subscript>"
            yield self.diagnostic(
                ctx, sub,
                f"'{text}' gathers the same ndarray data every iteration "
                "(all of its inputs are loop-invariant); hoist it above "
                f"the loop at line {inner.lineno}.",
            )

    def _is_gather(self, sub: ast.Subscript, scope) -> bool:
        """Slice or fancy-index of an ndarray (scalar loads are cheap and
        often deliberate — constants like W[0] stay silent)."""
        if scope.infer(sub.value).tag != NDARRAY:
            return False
        sl = sub.slice
        if isinstance(sl, ast.Slice):
            return True
        if isinstance(sl, ast.Tuple) and any(
            isinstance(e, ast.Slice) for e in sl.elts
        ):
            return True
        return scope.infer(sl).tag == NDARRAY  # boolean mask / index array
