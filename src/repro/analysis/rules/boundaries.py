"""RL005 — validation at package boundaries.

Public entry points of ``repro.core`` and ``repro.sensors`` accept arrays
from user code (campaign matrices, sparse readings); the paper's restoration
math assumes those are finite, correctly shaped, consistent-length arrays.
Every public function/method taking an array-annotated parameter must call a
:mod:`repro.utils.validation` helper (``check_1d``/``check_2d``/...), wrap
inputs into a validating container (``PowerTrace``/``PMCTrace``/...), or
call ``_as_readonly`` — otherwise a malformed input fails deep inside the
numerics with an unhelpful error (or worse, silently).

The rule is intentionally shallow: it looks for a *direct* call to a known
validator inside the function body (delegation to another checked public
function of the same class counts — see ``delegates``). Hot-path per-sample
methods that are validated once upstream may carry a suppression comment
with a justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..diagnostics import Diagnostic
from ..registry import Rule, RuleContext, register

DEFAULT_PACKAGES = ("repro.core", "repro.sensors")

#: Callable names that count as validating their input.
DEFAULT_VALIDATORS = (
    "check_1d",
    "check_2d",
    "check_consistent_length",
    "check_positive",
    "check_fraction",
    "_as_readonly",
    "as_readonly",
    # Constructors whose __post_init__ validates (repro.types / sensors.base).
    "PowerTrace",
    "PMCTrace",
    "TraceBundle",
    "SparseReadings",
)

#: Annotation substrings identifying array-like parameters.
ARRAY_MARKERS = ("ndarray", "ArrayLike", "NDArray")


def _is_array_annotation(ann: "ast.expr | None") -> bool:
    if ann is None:
        return False
    text = ast.unparse(ann) if not isinstance(ann, ast.Constant) else str(ann.value)
    return any(marker in text for marker in ARRAY_MARKERS)


def _called_names(fn: ast.AST) -> "set[str]":
    """Bare and attribute-tail names of everything called inside ``fn``."""
    names: "set[str]" = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            f = node.func
            if isinstance(f, ast.Name):
                names.add(f.id)
            elif isinstance(f, ast.Attribute):
                names.add(f.attr)
    return names


def _is_stub(fn: ast.AST) -> bool:
    """True for docstring-only bodies, ``...``, and NotImplementedError stubs."""
    body = list(fn.body)
    if body and isinstance(body[0], ast.Expr) and isinstance(body[0].value, ast.Constant):
        body = body[1:]  # drop docstring
    if not body:
        return True
    if len(body) == 1:
        stmt = body[0]
        if isinstance(stmt, ast.Pass):
            return True
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            return True  # bare ``...``
        if isinstance(stmt, ast.Raise):
            return True  # abstract: raise NotImplementedError
    return False


@register
class BoundaryValidationRule(Rule):
    id = "RL005"
    name = "boundary-validation"
    description = (
        "Public core/sensors functions with array parameters must validate "
        "them (utils.validation helper, trace constructor, or _as_readonly)."
    )

    def check(self, ctx: RuleContext) -> Iterator[Diagnostic]:
        packages = tuple(ctx.options.get("packages", DEFAULT_PACKAGES))
        if ctx.module is None or not ctx.module.startswith(packages):
            return
        validators = set(ctx.options.get("validators", DEFAULT_VALIDATORS))
        validators |= set(ctx.options.get("extra_validators", ()))
        # First pass: public functions that DO validate, so delegation to
        # them (``self.fit_restore(...)`` inside ``restore``) also counts.
        checked: "set[str]" = set()
        # Only module-level functions and class methods form the public
        # boundary; helpers nested inside a function body are internal.
        funcs: "list[ast.FunctionDef | ast.AsyncFunctionDef]" = []
        for top in ctx.tree.body:
            if isinstance(top, (ast.FunctionDef, ast.AsyncFunctionDef)):
                funcs.append(top)
            elif isinstance(top, ast.ClassDef):
                funcs.extend(
                    n for n in top.body
                    if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
                )
        for fn in funcs:
            if _called_names(fn) & validators:
                checked.add(fn.name)
        for fn in funcs:
            if fn.name.startswith("_") or _is_stub(fn):
                continue
            skip_decorators = ("property", "abstractmethod", "setter", "cached_property")
            if any(
                (isinstance(d, ast.Name) and d.id in skip_decorators)
                or (isinstance(d, ast.Attribute) and d.attr in skip_decorators)
                for d in fn.decorator_list
            ):
                continue
            args = fn.args
            params = [*args.posonlyargs, *args.args, *args.kwonlyargs]
            array_params = [a.arg for a in params if _is_array_annotation(a.annotation)]
            if not array_params:
                continue
            called = _called_names(fn)
            if called & validators or called & (checked - {fn.name}):
                continue
            plural = "s" if len(array_params) > 1 else ""
            yield self.diagnostic(
                ctx, fn,
                f"public function '{fn.name}' takes array parameter{plural} "
                f"({', '.join(array_params)}) but never calls a validation "
                "helper (utils.validation / _as_readonly / trace constructor)",
            )
