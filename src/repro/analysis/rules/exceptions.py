"""RL006 — naked excepts and swallowed errors.

A power monitor that swallows exceptions reports confident nonsense: a
sensor read that failed silently becomes a zero-watt sample in a table. The
RAPL-overhead literature stresses auditable measurement pipelines — failures
must surface or be logged, never discarded. Flagged:

* ``except:`` (bare) — also catches KeyboardInterrupt/SystemExit;
* ``except Exception`` / ``except BaseException`` whose handler only
  ``pass``es (or is ``...``) — the error vanishes.

Fault-tolerant monitor paths that intentionally degrade (e.g. a service
loop that must survive a flaky sensor) carry an inline
``# repro-lint: disable=swallowed-error`` with the justification next to it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..diagnostics import Diagnostic
from ..registry import Rule, RuleContext, register

BLANKET = ("Exception", "BaseException")


def _is_noop_body(body: "list[ast.stmt]") -> bool:
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or ``...``
        return False
    return True


@register
class SwallowedErrorRule(Rule):
    id = "RL006"
    name = "swallowed-error"
    description = "No bare excepts; no blanket excepts whose body swallows the error."

    def check(self, ctx: RuleContext) -> Iterator[Diagnostic]:
        exempt = tuple(ctx.options.get("exempt_modules", ()))
        if ctx.module is not None and ctx.module.startswith(exempt) and exempt:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.diagnostic(
                    ctx, node,
                    "bare 'except:' also catches KeyboardInterrupt/SystemExit; "
                    "name the exception type",
                )
                continue
            names = self._exception_names(node.type)
            if any(n in BLANKET for n in names) and _is_noop_body(node.body):
                yield self.diagnostic(
                    ctx, node,
                    "'except Exception: pass' swallows the error; handle, log, "
                    "or re-raise it",
                )

    @staticmethod
    def _exception_names(expr: ast.expr) -> "list[str]":
        if isinstance(expr, ast.Name):
            return [expr.id]
        if isinstance(expr, ast.Attribute):
            return [expr.attr]
        if isinstance(expr, ast.Tuple):
            out: "list[str]" = []
            for el in expr.elts:
                out.extend(SwallowedErrorRule._exception_names(el))
            return out
        return []
