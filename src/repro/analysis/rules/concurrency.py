"""RL401/RL402/RL403 — shared-state safety for the sharded fleet.

The ROADMAP's next step runs the streaming pipeline inside worker
processes (per-shard ``StreamPipeline``\\ s behind a service daemon). That
deployment shape is only safe because of three conventions the code
relies on today but nothing enforces:

* **RL401 stage-state** — :class:`repro.stream.Stage` objects are shared
  by every concurrently interleaved run (the fleet front-end drives one
  ``RunContext`` per node through *one* stage list). A stage that assigns
  ``self.<attr>`` outside ``__init__`` smuggles per-run state onto the
  shared instance; two interleaved runs then race on it. All per-run
  state belongs on the ``RunContext``. Subclasses are resolved through
  the project symbol index, so hierarchies spanning files are seen.
* **RL402 global-mutation** — mutating a module-level mutable container
  (list/dict/set) from ``monitor``/``stream``/``faults`` code is invisible
  cross-shard state: each worker process mutates its own copy and the
  merge step sees none of it. Module-level constants stay readable;
  mutation from function bodies is flagged (imports of another linted
  module's globals are resolved through the index).
* **RL403 registry-capture** — ``get_registry()``/``current_tracer()``
  return whatever is *ambient at call time*; that is the whole point
  (``use_registry`` swaps a per-shard registry in around worker code).
  Capturing the result into ``self.<attr>`` or a module global freezes
  the registry of whichever context happened to be active at
  construction, defeating per-shard injection. Read it at call time, or
  accept an explicitly injected registry. Direct ``GLOBAL_REGISTRY`` use
  outside ``repro.obs`` is flagged for the same reason.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..diagnostics import Diagnostic
from ..registry import Rule, RuleContext, register
from ..symbols import ProjectIndex

#: Packages whose code is worker-eligible under the sharded fleet plan.
WORKER_PACKAGES = ("repro.monitor", "repro.stream", "repro.serve")

#: Packages checked for module-global mutation.
GLOBAL_MUTATION_PACKAGES = (
    "repro.monitor", "repro.stream", "repro.faults", "repro.serve",
)

#: Methods that mutate a list/dict/set in place.
_CONTAINER_MUTATORS = frozenset({
    "append", "extend", "insert", "remove", "pop", "clear", "add",
    "discard", "update", "setdefault", "popitem", "sort", "reverse",
    "difference_update", "intersection_update", "symmetric_difference_update",
})

#: Ambient-accessor names whose results must not be captured (RL403).
_AMBIENT_ACCESSORS = ("get_registry", "current_tracer")


def _self_attr(node: ast.AST) -> "str | None":
    """``self.x`` -> ``"x"`` (only one attribute level)."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


@register
class StageStateRule(Rule):
    id = "RL401"
    name = "stage-state"
    description = (
        "Stage subclasses must stay stateless: no self.<attr> writes "
        "outside __init__ — per-run state belongs on the RunContext."
    )

    _ALLOWED_METHODS = ("__init__", "__init_subclass__", "__new__", "__set_name__")

    def check(self, ctx: RuleContext) -> Iterator[Diagnostic]:
        root = str(ctx.options.get("base_class", "Stage"))
        index = ctx.index if isinstance(ctx.index, ProjectIndex) else None
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not self._is_stage(node, root, index, ctx.module):
                continue
            for method in node.body:
                if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if method.name in self._ALLOWED_METHODS:
                    continue
                yield from self._check_method(ctx, node, method)

    def _is_stage(self, node: ast.ClassDef, root: str,
                  index: "ProjectIndex | None", module: "str | None") -> bool:
        if index is not None and index.is_subclass_of(node, root, module):
            return True
        # Single-file fallback: a base literally named ``root``.
        for b in node.bases:
            name = b.id if isinstance(b, ast.Name) else (
                b.attr if isinstance(b, ast.Attribute) else None
            )
            if name == root:
                return True
        return False

    def _check_method(self, ctx, cls: ast.ClassDef, method) -> Iterator[Diagnostic]:
        for sub in ast.walk(method):
            if isinstance(sub, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                )
                for t in targets:
                    attr = _self_attr(t)
                    if attr is None and isinstance(t, ast.Subscript):
                        attr = _self_attr(t.value)
                    if attr is not None:
                        yield self.diagnostic(
                            ctx, sub,
                            f"stage {cls.name}.{method.name} writes "
                            f"'self.{attr}': stages are shared across "
                            "interleaved runs, so per-run state must live "
                            "on the RunContext, not the stage instance.",
                        )
            elif (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in _CONTAINER_MUTATORS
            ):
                attr = _self_attr(sub.func.value)
                if attr is not None:
                    yield self.diagnostic(
                        ctx, sub,
                        f"stage {cls.name}.{method.name} mutates "
                        f"'self.{attr}.{sub.func.attr}(...)' in place; "
                        "shared stage instances must not accumulate "
                        "per-run state — move it to the RunContext.",
                    )


@register
class GlobalMutationRule(Rule):
    id = "RL402"
    name = "global-mutation"
    description = (
        "No mutation of module-level mutable containers from monitor/"
        "stream/faults code: worker processes each mutate their own copy."
    )

    def check(self, ctx: RuleContext) -> Iterator[Diagnostic]:
        packages = tuple(ctx.options.get("packages", GLOBAL_MUTATION_PACKAGES))
        if not ctx.in_packages(packages):
            return
        index = ctx.index if isinstance(ctx.index, ProjectIndex) else None
        if index is None:
            return
        flow = ctx.flow()
        for node in ast.walk(ctx.tree):
            scope = flow.scope_for(node)
            if scope.node is ctx.tree:
                continue  # module-level construction/initialisation is fine
            name = self._mutated_name(node, scope)
            if name is None:
                continue
            origin = index.mutable_global_origin(ctx.module, name)
            if origin is None:
                continue
            where, tag = origin
            owner = f" of {where}" if where and where != ctx.module else ""
            yield self.diagnostic(
                ctx, node,
                f"mutates module-level {tag} '{name}'{owner} from a "
                "function body; under the sharded fleet each worker "
                "process mutates its own copy and the state silently "
                "diverges — pass the container explicitly or move it onto "
                "a context object.",
            )

    def _mutated_name(self, node: ast.AST, scope) -> "str | None":
        """The bare name a statement/call mutates, if any."""
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _CONTAINER_MUTATORS and isinstance(
                node.func.value, ast.Name
            ):
                name = node.func.value.id
                if name not in scope.assignments:  # not shadowed locally
                    return name
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for t in targets:
                if isinstance(t, ast.Subscript) and isinstance(t.value, ast.Name):
                    name = t.value.id
                    if name not in scope.assignments:
                        return name
        elif isinstance(node, ast.Delete):
            for t in node.targets:
                if isinstance(t, ast.Subscript) and isinstance(t.value, ast.Name):
                    name = t.value.id
                    if name not in scope.assignments:
                        return name
        return None


@register
class RegistryCaptureRule(Rule):
    id = "RL403"
    name = "registry-capture"
    description = (
        "No capturing get_registry()/current_tracer() into attributes or "
        "globals in worker-eligible code; read the ambient one at call "
        "time so per-shard injection keeps working."
    )

    def check(self, ctx: RuleContext) -> Iterator[Diagnostic]:
        packages = tuple(ctx.options.get("packages", WORKER_PACKAGES))
        if not ctx.in_packages(packages):
            return
        flow = ctx.flow()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                yield from self._check_assign(ctx, flow, node)
            elif isinstance(node, ast.Name) and node.id == "GLOBAL_REGISTRY":
                yield self.diagnostic(
                    ctx, node,
                    "direct GLOBAL_REGISTRY use bypasses use_registry() "
                    "scoping; call get_registry() at the point of use (or "
                    "accept an injected MetricsRegistry).",
                )

    def _check_assign(self, ctx, flow, node) -> Iterator[Diagnostic]:
        value = node.value
        if value is None:
            return
        accessor = self._ambient_call_in(value)
        if accessor is None:
            return
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for t in targets:
            attr = _self_attr(t)
            is_module_level = (
                isinstance(t, ast.Name) and flow.scope_for(node).node is ctx.tree
            )
            if attr is not None or is_module_level:
                where = f"self.{attr}" if attr is not None else "a module global"
                yield self.diagnostic(
                    ctx, node,
                    f"captures {accessor}() into {where}: this freezes "
                    "whichever registry/tracer was ambient at construction "
                    "and defeats per-shard use_registry()/use_tracer() "
                    "injection — read the accessor at call time or accept "
                    "an explicit instance.",
                )

    def _ambient_call_in(self, expr: ast.AST) -> "str | None":
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Call):
                fn = sub.func
                name = fn.id if isinstance(fn, ast.Name) else (
                    fn.attr if isinstance(fn, ast.Attribute) else None
                )
                if name in _AMBIENT_ACCESSORS:
                    return name
        return None
