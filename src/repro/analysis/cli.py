"""``repro-lint`` command line (also ``python -m repro.analysis``).

Exit codes: 0 clean, 1 findings, 2 usage/config error.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from . import rules as _rules  # noqa: F401  (import registers the rule set)
from .config import load_config
from .engine import LintEngine, iter_python_files
from .registry import all_rules, normalize_rule_keys
from .reporters import render_json, render_text

DEFAULT_PATHS = ("src", "examples", "benchmarks", "scripts")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Project-specific static analysis for the HighRPM reproduction",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: src examples benchmarks scripts)",
    )
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument(
        "--select", help="comma-separated rule ids/names to run exclusively"
    )
    parser.add_argument("--ignore", help="comma-separated rule ids/names to skip")
    parser.add_argument(
        "--config-root", type=Path, default=None,
        help="directory whose pyproject.toml supplies [tool.repro-lint] "
        "(default: discovered from cwd)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for cls in all_rules():
            print(f"{cls.id}  {cls.name:<20} {cls.description}")
        return 0

    config = load_config(args.config_root)
    try:
        if args.select:
            config.select = tuple(s for s in args.select.split(",") if s.strip())
            normalize_rule_keys(list(config.select))
        if args.ignore:
            config.disable = tuple(config.disable) + tuple(
                s for s in args.ignore.split(",") if s.strip()
            )
            normalize_rule_keys(list(config.disable))
    except KeyError as exc:
        print(f"repro-lint: {exc.args[0]}", file=sys.stderr)
        return 2

    paths = [Path(p) for p in args.paths] if args.paths else [
        Path(p) for p in DEFAULT_PATHS if Path(p).exists()
    ]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"repro-lint: no such path: {missing[0]}", file=sys.stderr)
        return 2
    if not paths:
        print("repro-lint: nothing to lint", file=sys.stderr)
        return 2

    engine = LintEngine(config)
    files = iter_python_files(paths, config)
    diagnostics = []
    for f in files:
        diagnostics.extend(engine.lint_file(f))
    diagnostics.sort()

    render = render_json if args.format == "json" else render_text
    try:
        print(render(diagnostics, len(files)))
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit with the right code
        # instead of a traceback. Detach stdout so interpreter shutdown
        # doesn't trip over the closed descriptor.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
    return 1 if diagnostics else 0


if __name__ == "__main__":
    sys.exit(main())
