"""``repro-lint`` command line (also ``python -m repro.analysis``).

Exit codes: 0 clean, 1 findings, 2 usage/config error.

``--changed`` lints only files touched relative to ``--diff-base``
(default ``HEAD``) plus uncommitted/untracked files — the fast CI
pre-gate. The project symbol index still covers the *whole* path set,
so cross-file rules (Stage subclassing, imported globals) see full
context even on a partial run; the full lint remains the tier-1 gate.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from pathlib import Path

from . import rules as _rules  # noqa: F401  (import registers the rule set)
from .config import load_config
from .engine import LintEngine, iter_python_files
from .registry import all_rules, normalize_rule_keys
from .reporters import render_json, render_sarif, render_text

DEFAULT_PATHS = ("src", "examples", "benchmarks", "scripts")

_RENDERERS = {"text": render_text, "json": render_json, "sarif": render_sarif}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Project-specific static analysis for the HighRPM reproduction",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: src examples benchmarks scripts)",
    )
    parser.add_argument("--format", choices=("text", "json", "sarif"), default="text")
    parser.add_argument(
        "--output", type=Path, default=None,
        help="write the report to this file instead of stdout",
    )
    parser.add_argument(
        "--changed", action="store_true",
        help="lint only files changed vs --diff-base (plus uncommitted and "
        "untracked files); the symbol index still spans all paths",
    )
    parser.add_argument(
        "--diff-base", default="HEAD",
        help="git ref to diff against for --changed (default: HEAD)",
    )
    parser.add_argument(
        "--select", help="comma-separated rule ids/names to run exclusively"
    )
    parser.add_argument("--ignore", help="comma-separated rule ids/names to skip")
    parser.add_argument(
        "--config-root", type=Path, default=None,
        help="directory whose pyproject.toml supplies [tool.repro-lint] "
        "(default: discovered from cwd)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    return parser


def changed_files(base: str) -> "set[Path]":
    """Python files changed vs ``base``: committed diff, working tree, untracked."""
    out: "set[Path]" = set()
    commands = [
        ["git", "diff", "--name-only", "--diff-filter=d", base],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ]
    for cmd in commands:
        proc = subprocess.run(
            cmd, capture_output=True, text=True, check=True
        )
        for line in proc.stdout.splitlines():
            line = line.strip()
            if line.endswith(".py"):
                out.add(Path(line).resolve())
    return out


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for cls in all_rules():
            print(f"{cls.id}  {cls.name:<24} {cls.description}")
        return 0

    config = load_config(args.config_root)
    try:
        if args.select:
            config.select = tuple(s for s in args.select.split(",") if s.strip())
            normalize_rule_keys(list(config.select))
        if args.ignore:
            config.disable = tuple(config.disable) + tuple(
                s for s in args.ignore.split(",") if s.strip()
            )
            normalize_rule_keys(list(config.disable))
    except KeyError as exc:
        print(f"repro-lint: {exc.args[0]}", file=sys.stderr)
        return 2

    paths = [Path(p) for p in args.paths] if args.paths else [
        Path(p) for p in DEFAULT_PATHS if Path(p).exists()
    ]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"repro-lint: no such path: {missing[0]}", file=sys.stderr)
        return 2
    if not paths:
        print("repro-lint: nothing to lint", file=sys.stderr)
        return 2

    only: "set[Path] | None" = None
    if args.changed:
        try:
            only = changed_files(args.diff_base)
        except (OSError, subprocess.CalledProcessError) as exc:
            detail = getattr(exc, "stderr", "") or str(exc)
            print(
                f"repro-lint: --changed needs a git checkout: {detail.strip()}",
                file=sys.stderr,
            )
            return 2

    engine = LintEngine(config)
    files = iter_python_files(paths, config)
    if only is not None:
        checked = [f for f in files if f.resolve() in only]
    else:
        checked = files
    diagnostics = sorted(engine.lint_paths(paths, only=only))

    render = _RENDERERS[args.format]
    report = render(diagnostics, len(checked))
    if args.output is not None:
        args.output.write_text(report + "\n", encoding="utf-8")
    else:
        try:
            print(report)
        except BrokenPipeError:
            # Downstream pager/head closed the pipe; exit with the right code
            # instead of a traceback. Detach stdout so interpreter shutdown
            # doesn't trip over the closed descriptor.
            devnull = os.open(os.devnull, os.O_WRONLY)
            os.dup2(devnull, sys.stdout.fileno())
    return 1 if diagnostics else 0


if __name__ == "__main__":
    sys.exit(main())
