"""HighRPM reproduction: high-resolution power monitoring by combining
integrated measurement with software power modeling (Qi et al., ICPP 2023).

Public API tour
---------------
* :mod:`repro.core` — the paper's contribution: :class:`~repro.core.HighRPM`
  (facade), :class:`~repro.core.StaticTRR`, :class:`~repro.core.DynamicTRR`,
  :class:`~repro.core.SRR`;
* :mod:`repro.hardware` / :mod:`repro.workloads` / :mod:`repro.sensors` —
  the simulated measurement substrate (see DESIGN.md §2);
* :mod:`repro.ml` — the from-scratch Table-4 baseline model zoo;
* :mod:`repro.monitor` — power capping and the multi-node monitor service;
* :mod:`repro.eval` — the paper's evaluation protocol (one entry point per
  table/figure).
"""

from .core import SRR, DynamicTRR, HighRPM, HighRPMConfig, StaticTRR
from .errors import ReproError
from .types import PMC_EVENTS, PMCTrace, PowerTrace, TraceBundle

__version__ = "1.0.0"

__all__ = [
    "HighRPM",
    "HighRPMConfig",
    "StaticTRR",
    "DynamicTRR",
    "SRR",
    "ReproError",
    "PowerTrace",
    "PMCTrace",
    "TraceBundle",
    "PMC_EVENTS",
    "__version__",
]
