"""Daemon scaling bench: samples/s, per-node overhead, merge latency.

Runs the sharded daemon end to end — worker startup, per-node simulator
and sensor construction, one full observation round, drain — at a ladder
of fleet sizes (8/64/512/4096 nodes by default, shards scaling 1/2/4/8)
and records the curve into a ``repro-bench/1`` payload under
``serve_scaling``::

    python -m repro.serve.bench --output BENCH_PR9.json
    python -m repro.serve.bench --sizes 8:1,64:2 --processes
    python -m repro.serve.bench --hosts both --before BENCH_PR9.json

Per rung it reports end-to-end ``samples_per_s`` (restored samples over
daemon wall time), ``per_node_ms`` (wall time spread across the fleet),
and the merge-sink latency distribution (mean / p95 out of the
``repro_serve_merge_latency_seconds`` histogram). ``--hosts both``
records the thread ladder *and* the process ladder into one payload
(each rung carries its ``processes`` flag); ``--before OLD.json`` copies
the matching rung's old merge latency into ``merge_latency_before``, so
a collector change ships its before/after in the committed file. The
curve is gated by ``scripts/check_bench.py --require-scaling`` in CI;
``docs/deployment.md`` turns it into the capacity-planning table.

Observation runs offline (StaticTRR) so the rung cost is the steady-state
pipeline, not the per-run DynamicTRR fine-tune; the HTTP server is up
throughout (it is part of the daemon being priced) but never scraped.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from time import perf_counter

from .config import ServeConfig
from .daemon import FleetDaemon, train_model

SCHEMA = "repro-bench/1"
DEFAULT_OUTPUT = "BENCH_PR9.json"

#: (nodes, shards) ladder: shard count grows with the fleet the way a
#: deployment would scale workers, keeping nodes-per-shard sublinear.
DEFAULT_SIZES = ((8, 1), (64, 2), (512, 4), (4096, 8))


def _rung_key(entry: dict) -> tuple:
    """Full protocol identity of one rung (mirrors scripts/check_bench.py)."""
    return (
        entry.get("nodes"), entry.get("shards"), entry.get("run_seconds"),
        entry.get("chunk_size"), entry.get("processes"), entry.get("online"),
    )


def _latency_stats(registry) -> "dict[str, float]":
    """Mean / p95 (ms) from the merge-latency histogram snapshot."""
    snapshot = registry.snapshot().get("repro_serve_merge_latency_seconds")
    if not snapshot or not snapshot["samples"]:
        return {"mean_ms": 0.0, "p95_ms": 0.0, "events": 0}
    (sample,) = snapshot["samples"]
    count = int(sample["count"])
    if count == 0:
        return {"mean_ms": 0.0, "p95_ms": 0.0, "events": 0}
    target = 0.95 * count
    p95_s = sample["buckets"][-1][0]
    for le, cumulative in sample["buckets"]:
        if cumulative >= target:
            p95_s = le
            break
    if p95_s == float("inf"):  # fell past the last finite bucket
        p95_s = sample["buckets"][-2][0] if len(sample["buckets"]) > 1 else 0.0
    return {
        "mean_ms": round(1e3 * float(sample["sum"]) / count, 4),
        "p95_ms": round(1e3 * float(p95_s), 4),
        "events": count,
    }


def measure_serve(
    model, nodes: int, shards: int, run_seconds: int = 40,
    chunk_size: int = 32, processes: bool = False,
) -> "dict[str, object]":
    """One rung: boot the daemon, drain one round, price the wall time."""
    config = ServeConfig(
        nodes=nodes, shards=shards, runs=1, run_seconds=run_seconds,
        chunk_size=chunk_size, processes=processes, online=False, port=0,
    )
    daemon = FleetDaemon(config, model=model)
    start = perf_counter()
    daemon.start()
    if not daemon.wait(timeout=3600):
        raise RuntimeError(f"rung {nodes}x{shards} failed to drain")
    wall_s = perf_counter() - start
    daemon.stop()
    health = daemon.healthz()
    if health["status"] == "failed":
        raise RuntimeError(f"rung {nodes}x{shards} failed: {health}")
    samples = nodes * run_seconds  # 1 Sa/s restored resolution
    entry = {
        "nodes": nodes,
        "shards": shards,
        "run_seconds": run_seconds,
        "chunk_size": chunk_size,
        "processes": bool(processes),
        "online": False,
        "samples": samples,
        "wall_s": round(wall_s, 3),
        "samples_per_s": round(samples / wall_s, 1),
        "per_node_ms": round(1e3 * wall_s / nodes, 3),
        "merge_latency": _latency_stats(daemon.registry),
    }
    return entry


def _parse_sizes(text: str) -> "tuple[tuple[int, int], ...]":
    """``"8:1,64:2"`` → ((8, 1), (64, 2)); bare counts default shards."""
    sizes = []
    for part in text.split(","):
        nodes, _, shards = part.partition(":")
        sizes.append((int(nodes), int(shards) if shards else 1))
    return tuple(sizes)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.bench",
        description="Record the daemon's fleet-scaling curve "
                    "(BENCH_PR9.json).",
    )
    parser.add_argument("--sizes", type=_parse_sizes, default=DEFAULT_SIZES,
                        metavar="N:K,...",
                        help="nodes:shards rungs "
                             "(default 8:1,64:2,512:4,4096:8)")
    parser.add_argument("--run-seconds", type=int, default=40,
                        help="simulated seconds per run (default 40)")
    parser.add_argument("--chunk-size", type=int, default=32)
    parser.add_argument("--processes", action="store_true",
                        help="host shards in worker processes "
                             "(same as --hosts processes)")
    parser.add_argument("--hosts", choices=("threads", "processes", "both"),
                        default=None,
                        help="which shard-hosting ladder(s) to record "
                             "(default threads; 'both' records each rung "
                             "twice, thread- then process-hosted)")
    parser.add_argument("--before", type=Path, default=None, metavar="OLD",
                        help="previous payload: matching rungs get their "
                             "old merge latency as merge_latency_before")
    parser.add_argument("--repeats", type=int, default=1,
                        help="daemon boots per rung; the best one (highest "
                             "samples/s) is recorded, mirroring the per-op "
                             "bench's minimum-over-repeats discipline "
                             "(default 1)")
    parser.add_argument("--output", type=Path, default=Path(DEFAULT_OUTPUT))
    args = parser.parse_args(argv)

    hosts = args.hosts or ("processes" if args.processes else "threads")
    process_arms = {"threads": (False,), "processes": (True,),
                    "both": (False, True)}[hosts]
    before_rungs: "dict[tuple, dict]" = {}
    if args.before is not None:
        old = json.loads(args.before.read_text())
        before_rungs = {
            _rung_key(e): e for e in old.get("serve_scaling", [])
        }

    model = train_model(ServeConfig())
    curve = []
    repeats = max(1, args.repeats)
    for nodes, shards in args.sizes:
        for processes in process_arms:
            entry = max(
                (measure_serve(
                    model, nodes, shards, run_seconds=args.run_seconds,
                    chunk_size=args.chunk_size, processes=processes,
                ) for _ in range(repeats)),
                key=lambda e: e["samples_per_s"],
            )
            if repeats > 1:
                entry["repeats"] = repeats
            previous = before_rungs.get(_rung_key(entry))
            if previous and previous.get("merge_latency"):
                entry["merge_latency_before"] = previous["merge_latency"]
            curve.append(entry)
            lat = entry["merge_latency"]
            host = "processes" if processes else "threads"
            print(f"{nodes:>5} nodes x {shards} shard(s) [{host}]: "
                  f"{entry['samples_per_s']:>9.0f} samples/s, "
                  f"{entry['per_node_ms']:>8.2f} ms/node, "
                  f"merge {lat['mean_ms']:.2f} ms mean / "
                  f"{lat['p95_ms']:.2f} ms p95")
    payload = {
        "schema": SCHEMA,
        "protocol": {
            "mode": "serve-scaling",
            "timer": "single end-to-end daemon wall time (perf_counter)",
            "hosts": "threads+processes" if hosts == "both" else hosts,
            "repeats": repeats,
        },
        "serve_scaling": curve,
    }
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
