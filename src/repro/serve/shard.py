"""Shard workers: one FleetMonitor tick loop per shard, events out a queue.

A shard hosts a contiguous block of the fleet (see
:meth:`~repro.serve.config.ServeConfig.shard_layout`) behind its own
:class:`~repro.monitor.PowerMonitorService` with an **explicit, private**
:class:`~repro.obs.MetricsRegistry` — ambient registries do not cross
process boundaries, and the daemon merges the per-shard snapshots for
``/metrics`` (:mod:`repro.obs.merge`).

:func:`run_worker` is the process/thread entry point. Everything it emits
travels one way over the event queue as plain tuples::

    ("chunk",   shard, t_emit, record)   # JsonlSink-shaped chunk record
    ("end_run", shard, t_emit, record)   # run-boundary record
    ("result",  shard, node_id, round, MonitorResult)   # keep_results only
    ("state",   shard, t_emit, {"metrics": ..., "health": ..., ...})
    ("error",   shard, "ExcType: message")
    ("done",    shard, t_emit)           # always the shard's last event

``t_emit`` is ``time.monotonic()`` — on Linux that is ``CLOCK_MONOTONIC``,
comparable across processes, so the collector can price the merge-sink
latency. The loop drains at *round* boundaries: a stop request lets every
in-flight run finish, so downstream ndjson never ends mid-run.
"""

from __future__ import annotations

import time

from ..errors import ValidationError
from ..faults.inject import FaultySensor
from ..faults.models import OutageWindow, RandomDropout
from ..gpu import AcceleratedNodeSimulator, gpu_workload
from ..hardware.node import NodeSimulator
from ..hardware.platform import get_platform
from ..monitor import (
    FleetMonitor,
    GPUSRRHead,
    NodeProfile,
    PowerMonitorService,
    SamplingGovernor,
)
from ..obs import MetricsRegistry
from ..sensors.ipmi import IPMISensor
from ..stream import Sink, chunk_record, end_run_record
from ..workloads.catalog import default_catalog
from .config import ServeConfig


class QueueSink(Sink):
    """Stream every finished chunk / run boundary onto the event queue.

    Records are the :func:`~repro.stream.chunk_record` wire shape — the
    exact lines a :class:`~repro.stream.JsonlSink` would write — so the
    daemon's ``/stream`` endpoint and ndjson file need no re-encoding.
    """

    def __init__(self, shard_id: int, events) -> None:
        self.shard_id = shard_id
        self.events = events

    def write(self, chunk) -> None:
        self.events.put(
            ("chunk", self.shard_id, time.monotonic(), chunk_record(chunk))
        )

    def end_run(self, node_id: str, workload: str, mode: str) -> None:
        self.events.put(
            ("end_run", self.shard_id, time.monotonic(),
             end_run_record(node_id, workload, mode))
        )


def _faulted_sensor(sensor, preset: str, index: int, config: ServeConfig):
    """Wrap a node's sensor per its configured fault preset.

    Seeded by global node index — same rule as every other per-node seed.
    """
    if preset == "dead-feed":
        return FaultySensor(
            sensor, faults=(OutageWindow(0, 10 * config.run_seconds),),
            seed=config.seed + index,
        )
    if preset == "flaky-reads":
        return FaultySensor(sensor, seed=config.seed + index, fail_first=2)
    # "dropout" — ServeConfig validated membership already
    return FaultySensor(
        sensor, faults=(RandomDropout(0.3),), seed=config.seed + index
    )


class ShardRunner:
    """One shard's service, fleet front-end, and tick loop.

    ``gpu`` ships the GPU device class's trained pair
    ``(HighRPM, GPUSRR)`` when the fleet has accelerated nodes — every
    shard registers the class (harmless for shards hosting none) so the
    fleet front-end's per-head batching works wherever GPU nodes land.
    """

    def __init__(self, shard_id: int, config: ServeConfig, model,
                 events, gpu=None) -> None:
        self.shard_id = shard_id
        self.config = config
        self.events = events
        self.rounds = 0
        spec = get_platform(config.platform)
        self.registry = MetricsRegistry()
        self.service = PowerMonitorService(
            model, spec, registry=self.registry,
            sinks=[QueueSink(shard_id, events)],
        )
        if config.gpu_nodes and gpu is None:
            raise ValidationError(
                f"shard {shard_id}: config names {config.gpu_nodes} GPU "
                f"node(s) but no GPU models were shipped"
            )
        if gpu is not None:
            gpu_model, gpu_srr = gpu
            self.service.register_device_class(
                "gpu", gpu_model, head=GPUSRRHead(gpu_srr)
            )
        policy = config.governor_policy()
        if policy is not None:
            self.service.set_governor(SamplingGovernor(policy))
        catalog = default_catalog(config.seed)
        workload = catalog.get(config.workload)
        accel_workload = gpu_workload(config.gpu_workload, seed=config.seed) \
            if config.gpu_nodes else None
        self.bundles = {}
        for index in config.shard_layout()[shard_id]:
            node_id = f"node{index}"
            device_class = config.device_class_of_index(index)
            sensor = IPMISensor(
                spec, interval_s=config.interval_s, seed=config.seed + index
            )
            preset = config.fault_nodes.get(node_id)
            if preset is not None:
                sensor = _faulted_sensor(sensor, preset, index, config)
            self.service.register_node(
                node_id, sensor=sensor,
                profile=NodeProfile(device_class=device_class,
                                    seed=config.seed + index,
                                    interval_s=config.interval_s),
            )
            if device_class == "gpu":
                self.bundles[node_id] = AcceleratedNodeSimulator(
                    host_spec=spec, seed=config.seed + index
                ).run(accel_workload, duration_s=config.run_seconds)
            else:
                self.bundles[node_id] = NodeSimulator(
                    spec, seed=config.seed + index
                ).run(workload, duration_s=config.run_seconds)
        self.fleet = FleetMonitor(self.service, chunk_size=config.chunk_size)

    def push_state(self) -> None:
        """Publish this shard's registry snapshot + per-node health."""
        health = {
            node_id: {
                "status": h.status,
                "runs": h.runs,
                "degraded_runs": h.degraded_runs,
                "outages": h.outages,
                "last_error": h.last_error,
            }
            for node_id, h in (
                (n, self.service.health(n)) for n in self.bundles
            )
        }
        self.events.put(("state", self.shard_id, time.monotonic(), {
            "metrics": self.registry.snapshot(),
            "health": health,
            "rounds": self.rounds,
            "nodes": list(self.bundles),
        }))

    def run_round(self) -> None:
        """Submit one run per node and tick the shard until drained."""
        config = self.config
        for node_id, bundle in self.bundles.items():
            self.fleet.submit(node_id, bundle, online=config.online)
        while self.fleet.active_nodes:
            finished = self.fleet.tick()
            if config.keep_results:
                for node_id, result in finished.items():
                    self.events.put(
                        ("result", self.shard_id, node_id, self.rounds, result)
                    )
        self.rounds += 1

    def loop(self, stop) -> None:
        """Rounds until ``config.runs`` is reached or ``stop`` is set.

        The stop check sits at the round boundary: an in-flight round
        always drains completely (the SIGTERM contract).
        """
        self.push_state()  # /healthz answers before the first round lands
        config = self.config
        while not stop.is_set() and (
            config.runs == 0 or self.rounds < config.runs
        ):
            self.run_round()
            self.push_state()


def run_worker(shard_id: int, config: ServeConfig, model, events,
               stop, gpu=None) -> None:
    """Process/thread entry: build the shard, loop, always emit ``done``."""
    try:
        ShardRunner(shard_id, config, model, events, gpu=gpu).loop(stop)
    except Exception as exc:  # surfaced via /healthz, not a silent death
        events.put(("error", shard_id, f"{type(exc).__name__}: {exc}"))
    finally:
        events.put(("done", shard_id, time.monotonic()))
