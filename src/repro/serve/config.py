"""Configuration and node/shard planning for the service daemon.

:class:`ServeConfig` is a picklable value object: worker processes receive
it (plus the trained model) as their entire world description and rebuild
sensors, simulators, and bundles locally from seeds. The planning helpers
pin the **shard-layout independence** rule: everything that seeds a node —
its IPMI sensor, its workload simulator, its fault injector — derives from
the node's *global index* alone, never from the shard it landed on, so
re-sharding a fleet cannot change a single restored bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ValidationError
from ..gpu.workloads import GPU_WORKLOAD_NAMES
from ..monitor.scheduler import GovernorPolicy

#: Fault presets a node can be pinned to via ``fault_nodes`` (a subset of
#: the chaos-scenario vocabulary that is meaningful for a daemon demo).
FAULT_PRESETS = ("dead-feed", "flaky-reads", "dropout")


@dataclass(frozen=True)
class ServeConfig:
    """Everything a daemon run needs, shippable to worker processes.

    Parameters
    ----------
    nodes / shards:
        Fleet size and how many shard workers to split it across.
    port / host:
        HTTP scrape surface bind address (``port=0`` picks an ephemeral
        port — tests use this).
    chunk_size:
        Streaming chunk size inside each shard's
        :class:`~repro.monitor.fleet.FleetMonitor`.
    runs:
        Observation rounds per node; ``0`` means run until stopped
        (SIGTERM / :meth:`~repro.serve.daemon.FleetDaemon.request_stop`).
    run_seconds:
        Simulated duration of each node's workload run.
    workload:
        Workload name from the catalog every node runs.
    platform:
        Platform spec name (``arm`` / ``x86``).
    interval_s:
        IM sampling interval of each node's IPMI sensor.
    seed:
        Base seed; node ``i`` uses ``seed + i`` for sensor and simulator.
    online:
        Observe with DynamicTRR (per-run fine-tune on a deep copy) rather
        than StaticTRR.
    processes:
        Host each shard in its own worker process (the deployment shape);
        ``False`` runs shards on threads in-process (tests, benchmarks).
    ndjson:
        Optional path: the merge sink persists every stream record there
        (``JsonlSink``-compatible file).
    gauges / label_shards:
        Registry-merge knobs for ``/metrics``
        (see :func:`repro.obs.merge_snapshots`): gauge collision policy,
        and whether to tag every shard's samples with ``shard="sK"``
        instead of folding collisions into fleet totals.
    keep_results:
        Collect every finished run's :class:`~repro.core.MonitorResult`
        on the daemon (bit-identity tests); leave off for long-lived
        daemons — it grows without bound.
    fault_nodes:
        ``{node_id: preset}`` fault injection (see :data:`FAULT_PRESETS`);
        the named nodes' sensors are wrapped in a
        :class:`~repro.faults.FaultySensor` seeded by global node index.
    train_seconds / lstm_iters / srr_iters:
        Sizing for the daemon-trained model when no model is injected.
    gpu_nodes / gpu_workload:
        Heterogeneous fleets: the **last** ``gpu_nodes`` global indices
        are accelerated nodes (GPU device class, three-way attribution,
        16-column counter matrix) running ``gpu_workload`` from
        :data:`~repro.gpu.GPU_WORKLOAD_NAMES`. Membership derives from
        the global index alone, so sharding stays layout-independent.
    governor / governor_aggressiveness / governor_max_stride /
    governor_budget_fraction:
        Overhead-adaptive sampling: each shard attaches a
        :class:`~repro.monitor.SamplingGovernor` that thins confident
        nodes' IM feeds. The budget fraction is **pinned** (not read from
        the live profiler) so governor decisions — and every downstream
        restored bit — stay identical across shard layouts and process
        counts.
    """

    nodes: int = 8
    shards: int = 2
    port: int = 0
    host: str = "127.0.0.1"
    chunk_size: int = 64
    runs: int = 1
    run_seconds: int = 60
    workload: str = "hpcc_fft"
    platform: str = "arm"
    interval_s: int = 10
    seed: int = 2023
    online: bool = True
    processes: bool = False
    ndjson: "str | None" = None
    gauges: str = "last"
    label_shards: bool = False
    keep_results: bool = False
    fault_nodes: "dict[str, str]" = field(default_factory=dict)
    train_seconds: int = 60
    lstm_iters: int = 20
    srr_iters: int = 100
    gpu_nodes: int = 0
    gpu_workload: str = "gemm"
    governor: bool = False
    governor_aggressiveness: float = 0.5
    governor_max_stride: int = 4
    governor_budget_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValidationError(f"nodes must be >= 1, got {self.nodes}")
        if not 1 <= self.shards <= self.nodes:
            raise ValidationError(
                f"shards must lie in [1, nodes], got {self.shards} "
                f"for {self.nodes} node(s)"
            )
        if self.runs < 0:
            raise ValidationError(f"runs must be >= 0, got {self.runs}")
        if self.chunk_size < 1:
            raise ValidationError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )
        if self.run_seconds < 1:
            raise ValidationError(
                f"run_seconds must be >= 1, got {self.run_seconds}"
            )
        if not 0 <= self.gpu_nodes <= self.nodes:
            raise ValidationError(
                f"gpu_nodes must lie in [0, nodes], got {self.gpu_nodes} "
                f"for {self.nodes} node(s)"
            )
        if self.gpu_workload not in GPU_WORKLOAD_NAMES:
            raise ValidationError(
                f"unknown GPU workload {self.gpu_workload!r}; "
                f"expected one of {GPU_WORKLOAD_NAMES}"
            )
        # GovernorPolicy re-validates, but fail at config time with the
        # daemon-flag vocabulary rather than deep in a shard worker.
        if not 0.0 <= self.governor_aggressiveness <= 1.0:
            raise ValidationError(
                f"governor_aggressiveness must be in [0, 1], "
                f"got {self.governor_aggressiveness}"
            )
        if self.governor_max_stride < 1:
            raise ValidationError(
                f"governor_max_stride must be >= 1, "
                f"got {self.governor_max_stride}"
            )
        known = {node_id for node_id, _ in self.node_plan()}
        for node_id, preset in self.fault_nodes.items():
            if node_id not in known:
                raise ValidationError(
                    f"fault_nodes names unknown node {node_id!r} "
                    f"(fleet has {self.nodes} node(s): node0..node{self.nodes - 1})"
                )
            if preset not in FAULT_PRESETS:
                raise ValidationError(
                    f"unknown fault preset {preset!r} for {node_id!r}; "
                    f"expected one of {FAULT_PRESETS}"
                )

    # ---------------------------------------------------------- planning
    def node_plan(self) -> "list[tuple[str, int]]":
        """Every fleet node as ``(node_id, global_index)``."""
        return [(f"node{i}", i) for i in range(self.nodes)]

    def shard_layout(self) -> "list[list[int]]":
        """Global node indices per shard (contiguous, near-even blocks).

        Layout only decides *where* a node runs; all per-node seeds come
        from the global index, so any layout yields identical outputs.
        """
        base, extra = divmod(self.nodes, self.shards)
        layout, start = [], 0
        for s in range(self.shards):
            size = base + (1 if s < extra else 0)
            layout.append(list(range(start, start + size)))
            start += size
        return layout

    def shard_of(self, index: int) -> int:
        """Which shard hosts global node ``index``."""
        for s, members in enumerate(self.shard_layout()):
            if index in members:
                return s
        raise ValidationError(f"node index {index} outside fleet of {self.nodes}")

    def device_class_of_index(self, index: int) -> str:
        """The device class of global node ``index``.

        The last ``gpu_nodes`` indices are accelerated — a pure function
        of the global index, like every other per-node fact.
        """
        if not 0 <= index < self.nodes:
            raise ValidationError(
                f"node index {index} outside fleet of {self.nodes}"
            )
        return "gpu" if index >= self.nodes - self.gpu_nodes else "cpu"

    def governor_policy(self) -> "GovernorPolicy | None":
        """The shards' sampling-governor policy (None when disabled).

        The budget fraction is pinned so the decision function is a pure
        function of (seed, node id, confidence) — required for sharded ==
        single-process bit identity.
        """
        if not self.governor:
            return None
        return GovernorPolicy(
            aggressiveness=self.governor_aggressiveness,
            max_stride=self.governor_max_stride,
            pinned_budget_fraction=self.governor_budget_fraction,
            seed=self.seed,
        )
