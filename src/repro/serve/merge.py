"""Merge side of the daemon: event collector and the /stream hub.

One :class:`EventCollector` thread drains the shard event queue and fans
everything out: stream records go to the :class:`StreamHub` (live
``/stream`` clients) and the optional ndjson file, registry snapshots and
health states are kept per shard for ``/metrics`` and ``/healthz``, and
each event's queue transit time lands in the
``repro_serve_merge_latency_seconds`` histogram — the merge-sink latency
the bench reports.
"""

from __future__ import annotations

import json
import queue
import threading
import time
from collections import deque
from pathlib import Path

#: Merge-sink latency buckets: queue transit is sub-millisecond in-process
#: and single-digit milliseconds across a loaded multiprocessing queue.
LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.5, 1.0,
)

#: Per-client buffer for /stream; a slow client drops records (counted)
#: rather than stalling the merge loop.
STREAM_QUEUE_DEPTH = 4096

#: Records replayed to a client that connects mid-flight (must be <=
#: STREAM_QUEUE_DEPTH so the replay itself can never overflow a client).
REPLAY_DEPTH = 1024


class StreamHub:
    """Broadcasts ndjson lines to every connected ``/stream`` client.

    Subscribers get a bounded queue of encoded lines; ``None`` is the
    end-of-stream sentinel (daemon drained). A late subscriber first
    receives the last :data:`REPLAY_DEPTH` records, so scraping after the
    fleet already ticked still yields a coherent tail. Publishing never
    blocks: a full client queue drops the record and bumps
    ``repro_serve_stream_dropped_total``.
    """

    def __init__(self, registry, replay_depth: int = REPLAY_DEPTH) -> None:
        self._registry = registry
        self._lock = threading.Lock()
        self._subscribers: "list[queue.Queue]" = []
        self._replay: "deque[str]" = deque(maxlen=replay_depth)
        self._closed = False

    def subscribe(self) -> "queue.Queue":
        q = queue.Queue(maxsize=STREAM_QUEUE_DEPTH)
        with self._lock:
            for line in self._replay:
                q.put_nowait(line)  # replay <= queue depth, cannot overflow
            if self._closed:
                q.put_nowait(None)
                return q
            self._subscribers.append(q)
        self._clients_gauge()
        return q

    def unsubscribe(self, q) -> None:
        with self._lock:
            if q in self._subscribers:
                self._subscribers.remove(q)
        self._clients_gauge()

    def _clients_gauge(self) -> None:
        with self._lock:
            n = len(self._subscribers)
        self._registry.gauge(
            "repro_serve_stream_clients", "Connected /stream clients."
        ).set(float(n))

    def publish(self, record: dict) -> None:
        line = json.dumps(record, separators=(",", ":"))
        with self._lock:
            self._replay.append(line)
            subscribers = list(self._subscribers)
        for q in subscribers:
            try:
                q.put_nowait(line)
            except queue.Full:
                self._registry.counter(
                    "repro_serve_stream_dropped_total",
                    "Records dropped on a slow /stream client.",
                ).inc()

    def close(self) -> None:
        """End of stream: every client gets the sentinel, new ones too."""
        with self._lock:
            self._closed = True
            subscribers = list(self._subscribers)
        for q in subscribers:
            try:
                q.put_nowait(None)
            except queue.Full:
                pass  # client was hopeless anyway; its reader will EOF


class EventCollector:
    """Drains shard events until every shard reported ``done``.

    Runs on a daemon-side thread (:meth:`run` is the thread target). All
    mutated structures are swapped under the GIL and only read whole by
    the HTTP handlers, so no further locking is needed.
    """

    def __init__(self, registry, hub: StreamHub, n_shards: int,
                 ndjson: "str | None" = None,
                 keep_results: bool = False) -> None:
        self.registry = registry
        self.hub = hub
        self.n_shards = n_shards
        self.ndjson = ndjson
        self.keep_results = keep_results
        #: latest ("state", ...) payload per shard id
        self.shard_states: "dict[int, dict]" = {}
        #: {node_id: [MonitorResult per round]} when keep_results
        self.results: "dict[str, list]" = {}
        self.done: "set[int]" = set()
        self.errors: "dict[int, str]" = {}
        self._fh = None
        self._events_counter = registry.counter(
            "repro_serve_events_total",
            "Shard events drained by the merge collector.", ("kind",),
        )
        self._latency = registry.histogram(
            "repro_serve_merge_latency_seconds",
            "Shard-to-collector queue transit time.",
            buckets=LATENCY_BUCKETS,
        )
        self._batch_counter = registry.counter(
            "repro_serve_merge_batched_events_total",
            "Events drained via non-blocking batch gets (vs one blocking "
            "get per wakeup).",
        )

    # ------------------------------------------------------------ events
    def run(self, events) -> None:
        """Thread target: drain until all shards are done, then finalize.

        Drains in batches: one blocking ``get`` per wakeup, then
        ``get_nowait`` until the queue is momentarily empty. Under load,
        records queue faster than one-blocking-get-per-record can clear
        them (each blocking get pays the condition-variable / pipe-poll
        round trip), so batch draining is what keeps the merge latency
        histogram flat as the fleet scales.
        """
        while len(self.done) < self.n_shards:
            self._dispatch(events.get())
            batched = 0
            while len(self.done) < self.n_shards:
                try:
                    event = events.get_nowait()
                except queue.Empty:  # multiprocessing.Queue raises it too
                    break
                self._dispatch(event)
                batched += 1
            if batched:
                self._batch_counter.inc(batched)
        self._finalize()

    def _dispatch(self, event) -> None:
        kind = event[0]
        self._events_counter.labels(kind=kind).inc()
        if kind in ("chunk", "end_run"):
            _, _, t_emit, record = event
            self._latency.observe(max(time.monotonic() - t_emit, 0.0))
            self.hub.publish(record)
            self._persist(record)
        elif kind == "state":
            _, shard, t_emit, payload = event
            self._latency.observe(max(time.monotonic() - t_emit, 0.0))
            self.shard_states[shard] = payload
        elif kind == "result":
            _, _, node_id, _round, result = event
            if self.keep_results:
                self.results.setdefault(node_id, []).append(result)
        elif kind == "error":
            _, shard, message = event
            self.errors[shard] = message
        elif kind == "done":
            self.done.add(event[1])

    def _persist(self, record: dict) -> None:
        if self.ndjson is None:
            return
        if self._fh is None:
            self._fh = Path(self.ndjson).open("a", encoding="utf-8")
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._fh.flush()

    def _finalize(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        self.hub.close()
