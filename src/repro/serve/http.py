"""Stdlib-only HTTP scrape surface for the fleet daemon.

Three endpoints on a :class:`~http.server.ThreadingHTTPServer`:

``GET /metrics``
    Merged Prometheus exposition: every shard's registry snapshot plus
    the daemon's own ``repro_serve_*`` registry, folded through
    :func:`repro.obs.merge_snapshots`.
``GET /healthz``
    JSON: daemon status plus per-shard, per-node health states (the
    :mod:`repro.monitor.resilience` vocabulary). 503 when a shard died.
``GET /stream``
    ndjson of live chunk / run-boundary records (the
    :class:`~repro.stream.JsonlSink` wire shape), HTTP/1.0 close-at-end;
    the connection closes cleanly once the daemon drains.

Handlers only *read* daemon state assembled by the merge collector, so a
slow scrape never blocks a shard.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class ServeHandler(BaseHTTPRequestHandler):
    """Routes the three endpoints; anything else is a 404."""

    #: HTTP/1.0 keeps /stream simple: no chunked framing, close delimits.
    protocol_version = "HTTP/1.0"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        """Silence per-request stderr logging (the daemon has metrics)."""

    @property
    def daemon(self):
        return self.server.fleet_daemon

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler name
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            self._count(path)
            self._reply(200, PROM_CONTENT_TYPE, self.daemon.metrics_text())
        elif path == "/healthz":
            self._count(path)
            payload = self.daemon.healthz()
            status = 503 if payload["status"] == "failed" else 200
            self._reply(status, "application/json",
                        json.dumps(payload, indent=2) + "\n")
        elif path == "/stream":
            self._count(path)
            self._stream()
        else:
            self._reply(404, "text/plain", f"no such endpoint: {path}\n")

    def _count(self, path: str) -> None:
        self.daemon.registry.counter(
            "repro_serve_scrapes_total",
            "HTTP requests served by endpoint.", ("endpoint",),
        ).labels(endpoint=path).inc()

    def _reply(self, status: int, content_type: str, body: str) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _stream(self) -> None:
        hub = self.daemon.hub
        q = hub.subscribe()
        try:
            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson")
            self.end_headers()
            while True:
                line = q.get()
                if line is None:  # daemon drained: clean end of stream
                    break
                self.wfile.write(line.encode("utf-8") + b"\n")
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing to clean up but the sub
        finally:
            hub.unsubscribe(q)


class ServeHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying a reference back to the daemon."""

    daemon_threads = True  # stuck /stream clients never pin shutdown

    def __init__(self, address, fleet_daemon) -> None:
        super().__init__(address, ServeHandler)
        self.fleet_daemon = fleet_daemon
