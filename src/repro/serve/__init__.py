"""Always-on sharded monitoring service (the SmartWatts deployment shape).

The paper deploys HighRPM as a service on the control node shared by the
computing nodes (§4.1); this package is that service as a long-running
daemon: the fleet is split across shard workers — each an independent
:class:`~repro.monitor.FleetMonitor` tick loop over its own
:class:`~repro.monitor.PowerMonitorService` and private metrics registry —
feeding one merge collector over an event queue, with a stdlib HTTP
surface on top (``/metrics``, ``/healthz``, ``/stream``).

Sharding is a *layout*, not a semantic: every per-node seed derives from
the node's global index, observation never mutates the shared model, and
the registry merge is exact — so a sharded run's per-node outputs are
bitwise-equal to a single-process ``FleetMonitor`` over the same fleet
(pinned in ``tests/test_streaming_equivalence.py``).

``python -m repro serve --nodes N --shards K --port P`` boots one;
``docs/deployment.md`` is the operator's guide.
"""

from .config import FAULT_PRESETS, ServeConfig
from .daemon import FleetDaemon, train_model
from .merge import EventCollector, StreamHub
from .shard import QueueSink, ShardRunner, run_worker

__all__ = [
    "ServeConfig",
    "FAULT_PRESETS",
    "FleetDaemon",
    "train_model",
    "EventCollector",
    "StreamHub",
    "QueueSink",
    "ShardRunner",
    "run_worker",
]
