"""The fleet daemon: shard hosts, merge collector, HTTP surface, drain.

:class:`FleetDaemon` turns a :class:`~repro.serve.config.ServeConfig` into
a running service: it trains (or receives) one HighRPM model, hosts each
shard's :class:`~repro.serve.shard.ShardRunner` on a worker process
(``processes=True``, the deployment shape) or an in-process thread
(tests/benchmarks), drains their event queue through a
:class:`~repro.serve.merge.EventCollector`, and serves
``/metrics`` / ``/healthz`` / ``/stream`` from the merged state
(:mod:`repro.serve.http`).

Shutdown is a *drain*, not a kill: ``request_stop()`` (the SIGTERM
handler's job) sets a shared stop event; every shard finishes its
in-flight round, pushes a final state, and reports ``done``; the collector
then closes the ndjson file and end-of-streams every ``/stream`` client.
``repro_serve_drain_seconds`` records how long that took.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
import time

import numpy as np

from ..core import HighRPM, HighRPMConfig
from ..errors import ValidationError
from ..gpu import GPUSRR, AcceleratedNodeSimulator, gpu_workload
from ..hardware.node import NodeSimulator
from ..hardware.platform import get_platform
from ..monitor.resilience import HEALTHY, OUTAGE
from ..obs import MetricsRegistry, merge_snapshots, render_prometheus
from ..workloads.catalog import default_catalog
from .config import ServeConfig
from .http import ServeHTTPServer
from .merge import EventCollector, StreamHub
from .shard import run_worker

#: Fixed training mix for daemon-trained models (compute-bound, memory-
#: bound, and mixed workloads — the same spread ``repro monitor`` uses).
TRAIN_BENCHMARKS = ("spec_gcc", "hpcc_hpl", "hpcc_stream")

#: Training mix for the GPU device class (compute-bound, balanced, and
#: steady-loop accelerated workloads).
GPU_TRAIN_WORKLOADS = ("gemm", "stencil", "training_loop")


def train_model(config: ServeConfig) -> HighRPM:
    """Train a daemon-sized HighRPM from the config's seeds and sizing."""
    spec = get_platform(config.platform)
    catalog = default_catalog(config.seed)
    sim = NodeSimulator(spec, seed=config.seed)
    train = [
        sim.run(catalog.get(name), duration_s=config.train_seconds)
        for name in TRAIN_BENCHMARKS
    ]
    model = HighRPM(
        HighRPMConfig(
            miss_interval=config.interval_s,
            lstm_iters=config.lstm_iters,
            srr_iters=config.srr_iters,
            seed=config.seed,
        ),
        p_bottom=spec.min_node_power_w,
        p_upper=spec.max_node_power_w,
    )
    model.fit_initial(train)
    return model


def train_gpu_models(config: ServeConfig) -> "tuple[HighRPM, GPUSRR]":
    """Train the GPU device class: a 16-column HighRPM plus its 3-way head.

    The restoration model trains directly on accelerated bundles (TRR is
    component-agnostic — node power is node power — and
    ``fit_initial`` duck-types the bundle shape); the separately-fitted
    :class:`~repro.gpu.GPUSRR` becomes the class's attribution head.
    """
    spec = get_platform(config.platform)
    sim = AcceleratedNodeSimulator(host_spec=spec, seed=config.seed)
    train = [
        sim.run(gpu_workload(name, seed=config.seed),
                duration_s=config.train_seconds)
        for name in GPU_TRAIN_WORKLOADS
    ]
    gpu_config = HighRPMConfig(
        miss_interval=config.interval_s,
        lstm_iters=config.lstm_iters,
        srr_iters=config.srr_iters,
        seed=config.seed,
    )
    model = HighRPM(
        gpu_config,
        p_bottom=sim.min_node_power_w,
        p_upper=sim.max_node_power_w,
    )
    model.fit_initial(train)
    head = GPUSRR(gpu_config)
    head.fit(
        np.vstack([b.pmcs.matrix for b in train]),
        np.concatenate([b.node.values for b in train]),
        np.concatenate([b.cpu.values for b in train]),
        np.concatenate([b.mem.values for b in train]),
        np.concatenate([b.gpu.values for b in train]),
    )
    return model, head


def _fork_context():
    """Fork keeps worker startup cheap; fall back where it is missing."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return multiprocessing.get_context()


class FleetDaemon:
    """Sharded always-on monitoring service with an HTTP scrape surface.

    Lifecycle::

        daemon = FleetDaemon(config, model=trained)   # model optional
        daemon.start()          # workers + collector + HTTP all running
        ...                     # scrape daemon.address, tail /stream
        daemon.request_stop()   # begin the drain (SIGTERM calls this)
        daemon.stop()           # drain, join, shut the HTTP server down

    With bounded ``config.runs``, :meth:`wait` returns once every shard
    drained on its own — no stop request needed.
    """

    def __init__(self, config: ServeConfig, model: "HighRPM | None" = None,
                 gpu: "tuple[HighRPM, GPUSRR] | None" = None) -> None:
        self.config = config
        self.model = model
        #: the GPU device class's (restoration model, attribution head)
        #: pair; trained at start() when the fleet has GPU nodes and none
        #: was injected.
        self.gpu = gpu
        self.registry = MetricsRegistry()
        self.hub = StreamHub(self.registry)
        self.collector = EventCollector(
            self.registry, self.hub, config.shards,
            ndjson=config.ndjson, keep_results=config.keep_results,
        )
        self._workers: list = []
        self._collector_thread: "threading.Thread | None" = None
        self._http: "ServeHTTPServer | None" = None
        self._http_thread: "threading.Thread | None" = None
        self._stop = None
        self._stop_early = False
        self._stop_requested_at: "float | None" = None
        self._started = False

    # ----------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Train if needed, launch shards, collector, and HTTP server."""
        if self._started:
            raise ValidationError("daemon already started")
        self._started = True
        config = self.config
        if self.model is None:
            self.model = train_model(config)
        if config.gpu_nodes and self.gpu is None:
            self.gpu = train_gpu_models(config)
        if config.processes:
            ctx = _fork_context()
            events = ctx.Queue()
            self._stop = ctx.Event()
            self._workers = [
                ctx.Process(
                    target=run_worker,
                    args=(s, config, self.model, events, self._stop,
                          self.gpu),
                    daemon=True, name=f"repro-serve-shard{s}",
                )
                for s in range(config.shards)
            ]
        else:
            events = queue.Queue()
            self._stop = threading.Event()
            self._workers = [
                threading.Thread(
                    target=run_worker,
                    args=(s, config, self.model, events, self._stop,
                          self.gpu),
                    daemon=True, name=f"repro-serve-shard{s}",
                )
                for s in range(config.shards)
            ]
        if self._stop_early:
            self._stop.set()
        # Workers first (fork before daemon-side threads exist), then the
        # collector that consumes them, then the scrape surface.
        for worker in self._workers:
            worker.start()
        self._collector_thread = threading.Thread(
            target=self.collector.run, args=(events,),
            daemon=True, name="repro-serve-collector",
        )
        self._collector_thread.start()
        self._http = ServeHTTPServer((config.host, config.port), self)
        self._http_thread = threading.Thread(
            target=self._http.serve_forever,
            daemon=True, name="repro-serve-http",
        )
        self._http_thread.start()
        self.registry.gauge(
            "repro_serve_shards", "Shard workers launched."
        ).set(float(config.shards))
        self.registry.gauge(
            "repro_serve_nodes", "Fleet nodes monitored."
        ).set(float(config.nodes))

    @property
    def address(self) -> "tuple[str, int]":
        """Bound (host, port) — resolves ``port=0`` to the real port."""
        if self._http is None:
            raise ValidationError("daemon not started")
        return self._http.server_address[:2]

    def request_stop(self) -> None:
        """Begin the drain: shards finish their round, then exit.

        Safe before :meth:`start` (e.g. SIGTERM while the model is still
        training): the request is remembered and the shards drain after
        zero rounds instead of the signal killing the process.
        """
        if self._stop is None:
            self._stop_requested_at = time.monotonic()
            self._stop_early = True
            return
        if not self._stop.is_set():
            self._stop_requested_at = time.monotonic()
            self._stop.set()

    def wait(self, timeout: "float | None" = None) -> bool:
        """Block until every shard drained; True when fully drained."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for worker in self._workers:
            worker.join(
                None if deadline is None
                else max(deadline - time.monotonic(), 0.0)
            )
        if self._collector_thread is not None:
            self._collector_thread.join(
                None if deadline is None
                else max(deadline - time.monotonic(), 0.0)
            )
            if not self._collector_thread.is_alive() \
                    and self._stop_requested_at is not None:
                self.registry.gauge(
                    "repro_serve_drain_seconds",
                    "Stop-request to fully-drained latency.",
                ).set(time.monotonic() - self._stop_requested_at)
        return not any(w.is_alive() for w in self._workers) and (
            self._collector_thread is None
            or not self._collector_thread.is_alive()
        )

    def stop(self, timeout: "float | None" = None) -> bool:
        """Drain, join, and shut down the HTTP server."""
        self.request_stop()
        drained = self.wait(timeout)
        if self._http is not None:
            self._http.shutdown()
            self._http.server_close()
            if self._http_thread is not None:
                self._http_thread.join(timeout=5.0)
        return drained

    # ------------------------------------------------------------- surface
    @property
    def results(self) -> "dict[str, list]":
        """Collected per-node MonitorResults (``keep_results`` only)."""
        return self.collector.results

    def metrics_text(self) -> str:
        """Merged Prometheus exposition across shards + the daemon."""
        states = self.collector.shard_states
        shard_ids = sorted(states)
        snapshots = [states[s]["metrics"] for s in shard_ids]
        labels = None
        if self.config.label_shards:
            labels = [{"shard": f"s{s}"} for s in shard_ids]
        snapshots.append(self.registry.snapshot())
        if labels is not None:
            labels.append(None)  # daemon metrics carry no shard label
        merged = merge_snapshots(
            snapshots, gauges=self.config.gauges, labels=labels
        )
        return render_prometheus(merged)

    def healthz(self) -> dict:
        """Daemon + per-shard + per-node health as a JSON-safe dict.

        ``status`` is ``failed`` when a shard raised, ``degraded`` when
        any node left the healthy state, else ``ok``.
        """
        collector = self.collector
        shards = {}
        for s in range(self.config.shards):
            state = collector.shard_states.get(s)
            if s in collector.errors:
                shard_state = "failed"
            elif s in collector.done:
                shard_state = "drained"
            else:
                shard_state = "running" if state is not None else "starting"
            shards[f"s{s}"] = {
                "state": shard_state,
                "error": collector.errors.get(s),
                "rounds": 0 if state is None else state["rounds"],
                "nodes": {} if state is None else state["health"],
            }
        node_states = [
            node["status"]
            for shard in shards.values()
            for node in shard["nodes"].values()
        ]
        if collector.errors:
            status = "failed"
        elif any(state != HEALTHY for state in node_states):
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "nodes": self.config.nodes,
            "shards": shards,
            "outage_nodes": sum(1 for s in node_states if s == OUTAGE),
            "drained": len(collector.done) == self.config.shards,
        }
