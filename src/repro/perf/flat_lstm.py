"""Batched sliding-window LSTM forecaster (the DynamicTRR hot path).

``OnlineTRRSession`` forecasts every unmeasured second from a width-``w``
window of recent ``(PMCs, hold)`` rows. The reference path calls
``LSTMRegressor.predict`` once per second with a batch of one window —
validation, standardisation, and ``(1, d)`` GEMMs dominate, not the math.

:class:`CompiledLSTM` compiles a fitted ``LSTMRegressor`` for segments of
*consecutive* windows: because window ``k`` and window ``k+1`` share all
but one row, the ``m`` windows of a segment cover only ``m + w − 1``
distinct rows. The kernel folds input standardisation into the layer-0
input projection (``W0' = W0 / σx``, ``b0' = b0 − (µx/σx)·W0``) and target
de-standardisation into the head, computes the layer-0 input projections
for the distinct rows in **one** product, and leaves only the small
hidden-state product inside the per-timestep recurrence. Higher layers
project their full ``(m, w, H)`` inputs in one product each, and the head
reads just the final timestep.

Bit-identity contract: all products run through unoptimised fixed-order
``np.einsum`` and all gate math is row-local, so window ``k``'s forecast
is the same float no matter how the trace is cut into segments — which is
what keeps ``run_chunk`` outputs bit-identical to ``step``-by-``step``
execution. The opt-in ``fast_math`` tier (see :mod:`repro.perf.fastmath`)
routes the projections through BLAS under the documented tolerance
contract instead.

The kernel snapshots (and folds) the model parameters at build time;
sessions rebuild it after every online fine-tune (the same invalidation
contract as ``_compiled`` on the batch estimators).
"""

from __future__ import annotations

import numpy as np

from ..errors import NotFittedError
from .fastmath import gemm
from .telemetry import record_predict


def _sigmoid(x: np.ndarray) -> np.ndarray:
    # Same two-branch stable sigmoid as repro.ml.recurrent._sigmoid
    # (element-local, so batch-shape independent).
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


class CompiledLSTM:
    """Affine-folded segment forecaster for a fitted ``LSTMRegressor``.

    ``forecast`` takes the ``n = m + w − 1`` distinct **raw** feature rows
    covering ``m`` consecutive width-``w`` windows (callers own window
    construction and padding) and returns the de-standardised final-step
    prediction of each window, shape ``(m,)``.
    """

    __slots__ = ("wx", "wh", "b", "head_w", "head_b", "hidden", "layers",
                 "window", "fast_math")

    def __init__(self, params, head_w, head_b, x_mean, x_scale, y_mean,
                 y_scale, window: int, fast_math: bool = False) -> None:
        inv = 1.0 / np.asarray(x_scale, dtype=np.float64)
        self.wx = [np.array(p["W"], dtype=np.float64) for p in params]
        self.wh = [np.array(p["U"], dtype=np.float64) for p in params]
        self.b = [np.array(p["b"], dtype=np.float64) for p in params]
        # repro-lint: disable=bit-identity-matmul — one-shot compile-time
        # constant fold with fixed operand shapes (cannot vary across chunk
        # shapes); every segment forward reuses the identical folded bias.
        self.b[0] = self.b[0] - (np.asarray(x_mean) * inv) @ self.wx[0]
        self.wx[0] = self.wx[0] * inv[:, None]
        y_scale = float(y_scale)
        self.head_w = np.asarray(head_w, dtype=np.float64) * y_scale
        self.head_b = float(head_b) * y_scale + float(y_mean)
        self.hidden = int(self.wh[0].shape[0])
        self.layers = len(self.wx)
        self.window = int(window)
        self.fast_math = bool(fast_math)

    def _project(self, rows: np.ndarray, w: np.ndarray) -> np.ndarray:
        """Input projection of every distinct row / timestep in one product."""
        if self.fast_math:
            return gemm(rows, w)
        return np.einsum("nk,ko->no", rows, w)

    def _recur(self, h: np.ndarray, u: np.ndarray) -> np.ndarray:
        if self.fast_math:
            return gemm(h, u)
        return np.einsum("nk,ko->no", h, u)

    def forecast(self, rows: np.ndarray, m: int) -> np.ndarray:
        """Final-step predictions for ``m`` consecutive windows over ``rows``.

        ``rows`` is ``(m + window − 1, d)``: window ``k`` spans rows
        ``[k, k + window)``. Everything inside is row-local or fixed-order,
        so the result for window ``k`` is independent of ``m`` — the
        chunking-invariance the streaming contract needs.
        """
        w = self.window
        H = self.hidden
        record_predict("lstm", "fast" if self.fast_math else "compiled", m)
        # Layer 0: one projection over the distinct rows; window k's
        # timestep t reads slice row k + t.
        proj = self._project(rows, self.wx[0]) + self.b[0]
        h = np.zeros((m, H))
        c = np.zeros((m, H))
        outs = np.empty((m, w, H)) if self.layers > 1 else None
        for t in range(w):
            z = proj[t:t + m] + self._recur(h, self.wh[0])
            h, c = self._gates(z, c, H)
            if outs is not None:
                outs[:, t, :] = h
        # Higher layers: windows no longer share rows (hidden states
        # diverge per window), but the input projection still batches over
        # all m·w positions in one fixed-order product.
        for layer in range(1, self.layers):
            flat = outs.reshape(m * w, H)
            proj = (self._project(flat, self.wx[layer])
                    + self.b[layer]).reshape(m, w, 4 * H)
            h = np.zeros((m, H))
            c = np.zeros((m, H))
            last = layer == self.layers - 1
            for t in range(w):
                z = proj[:, t, :] + self._recur(h, self.wh[layer])
                h, c = self._gates(z, c, H)
                if not last:
                    outs[:, t, :] = h
        # Head on the final timestep only (the session consumes preds[:, -1]).
        return np.einsum("nk,k->n", h, self.head_w) + self.head_b

    @staticmethod
    def _gates(z: np.ndarray, c_prev: np.ndarray, H: int):
        i = _sigmoid(z[:, :H])
        f = _sigmoid(z[:, H:2 * H])
        g = np.tanh(z[:, 2 * H:3 * H])
        o = _sigmoid(z[:, 3 * H:])
        c = f * c_prev + i * g
        return o * np.tanh(c), c


def compile_lstm(model, window: int, fast_math: bool = False) -> CompiledLSTM:
    """Compile a fitted ``LSTMRegressor`` for width-``window`` segments.

    Duck-typed on the fitted attributes (``params_`` with 4-gate cells,
    ``head_w_``) so this module never imports the model class.
    """
    params = getattr(model, "params_", None)
    if params is None:
        raise NotFittedError("compile_lstm needs a fitted LSTMRegressor")
    return CompiledLSTM(
        params=params,
        head_w=model.head_w_,
        head_b=model.head_b_,
        x_mean=model._x_mean,
        x_scale=model._x_scale,
        y_mean=model._y_mean,
        y_scale=model._y_scale,
        window=window,
        fast_math=fast_math,
    )
