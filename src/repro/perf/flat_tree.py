"""Flat-array decision-tree predictors (the TRR hot path).

The object-walk ``DecisionTreeRegressor.predict`` descends ``_Node``
instances in a per-sample Python loop — ~1 µs *per sample per level* of
interpreter dispatch. Every restore funnels through that loop (StaticTRR's
ResModel, the Table-4/5 tree baselines, the forest/boosting ensembles), so
it is the monitor's dominant inference cost at deployment batch sizes.

This module compiles a fitted tree into parallel numpy arrays (``feature``,
``threshold``, ``left``, ``right``, ``value``) and predicts with a
*vectorised frontier descent*: one numpy step advances every
still-descending sample by one level, so the Python-level work is
O(depth · n_trees), not O(n_samples · depth · n_trees).

Kernel layout (``_descend``): each node owns two consecutive *slots*
(``slot = 2·node + branch``) so the branch decision folds into the child
gather — ``child[slot + (x ≤ t)]`` — with children stored ``[right, left]``
per pair. A NaN feature therefore takes the right branch, exactly as the
object walk's failed ``<=`` does. Leaves self-loop (both child slots point
back at the leaf) with a ``+inf`` threshold, which lets the frontier run
several levels between leaf checks: finished samples spin harmlessly in
place until the next periodic compaction retires them. All per-level
scratch lives in a :class:`_Workspace` cached on the compiled object, so a
warmed predictor allocates nothing but its output.

Ensembles descend tree-by-tree rather than over one concatenated node pool:
a single tree's slot arrays are a few hundred KiB and stay cache-resident
for the whole batch, which measures ~30 % faster than the fused frontier
whose working set spills to last-level cache.

Numerical contract: a compiled tree performs exactly the comparisons of the
object walk (same thresholds, same ``<=``), so single-tree predictions are
bit-identical and ensemble reductions replicate the reference accumulation
order (stacked mean for forests, sequential shrinkage sum for boosting).
"""

from __future__ import annotations

import numpy as np

from ..errors import NotFittedError
from .telemetry import record_predict

# Levels descended between leaf checks. Checking every level pays a gather
# + count + compaction per level; never checking runs every sample to
# max_depth. Sweeping C on depth-~20 forests put the minimum at 3-4.
_COMPRESS_EVERY = 4


def _node_depths(feature: np.ndarray, left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Depth of every node. Children are appended after their parent by the
    grower, so one forward pass suffices."""
    depth = np.zeros(feature.shape[0], dtype=np.intp)
    # repro-lint: disable=per-sample-loop — runs once per tree *compile*
    # (O(nodes), not O(samples)); the per-chunk hot path is the vectorised
    # predict below and never re-enters this.
    for i in range(feature.shape[0]):
        if feature[i] >= 0:
            depth[left[i]] = depth[i] + 1
            depth[right[i]] = depth[i] + 1
    return depth


class _Workspace:
    """Per-batch-size scratch for the frontier descent.

    Rebuilt only when the batch size changes, so steady-state prediction
    (the monitor restoring same-length traces) reuses every buffer.
    """

    __slots__ = ("n", "slot", "pos", "idx", "x", "thr", "slot_c", "pos_c", "keep", "fin")

    def __init__(self, n: int) -> None:
        self.n = n
        self.slot = np.empty(n, dtype=np.intp)
        self.pos = np.empty(n, dtype=np.intp)
        self.idx = np.empty(n, dtype=np.intp)
        self.x = np.empty(n)
        self.thr = np.empty(n)
        self.slot_c = np.empty(n, dtype=np.intp)
        self.pos_c = np.empty(n, dtype=np.intp)
        self.keep = np.empty(n, dtype=bool)
        self.fin = np.empty(n, dtype=bool)


class CompiledTree:
    """Contiguous-array form of one fitted CART tree.

    ``predict`` takes a validated ``(n, d)`` float64 matrix — callers (the
    estimators' public ``predict``) own input checking.
    """

    __slots__ = (
        "feature", "gather_feature", "threshold", "left", "right", "value",
        "is_leaf", "max_depth", "min_leaf_depth",
        "_slot_gf", "_slot_thr", "_slot_child", "_slot_live", "_slot_value",
        "_ws",
    )

    def __init__(self, nodes) -> None:
        n = len(nodes)
        feature = np.fromiter((nd.feature for nd in nodes), dtype=np.intp, count=n)
        threshold = np.fromiter((nd.threshold for nd in nodes), dtype=np.float64, count=n)
        left = np.fromiter((nd.left for nd in nodes), dtype=np.intp, count=n)
        right = np.fromiter((nd.right for nd in nodes), dtype=np.intp, count=n)
        self.value = np.fromiter((nd.value for nd in nodes), dtype=np.float64, count=n)
        self.is_leaf = feature < 0
        ids = np.arange(n, dtype=np.intp)
        self.feature = feature
        self.gather_feature = np.where(self.is_leaf, 0, feature)
        self.threshold = np.where(self.is_leaf, np.inf, threshold)
        self.left = np.where(self.is_leaf, ids, left)
        self.right = np.where(self.is_leaf, ids, right)
        depths = _node_depths(feature, self.left, self.right)
        self.max_depth = int(depths.max()) if n else 0
        self.min_leaf_depth = int(depths[self.is_leaf].min()) if n else 0

        # Doubled-slot kernel arrays (see module docstring). Children are
        # stored [right, left] so the branch index is the <= result itself.
        self._slot_gf = np.repeat(self.gather_feature, 2)
        self._slot_thr = np.repeat(self.threshold, 2)
        self._slot_live = np.repeat(~self.is_leaf, 2)
        self._slot_value = np.repeat(self.value, 2)
        child = np.empty(2 * n, dtype=np.intp)
        child[0::2] = 2 * self.right
        child[1::2] = 2 * self.left
        self._slot_child = child
        self._ws: "_Workspace | None" = None

    @property
    def n_nodes(self) -> int:
        return int(self.value.shape[0])

    def _workspace(self, n: int) -> _Workspace:
        if self._ws is None or self._ws.n != n:
            self._ws = _Workspace(n)
        return self._ws

    def _descend(self, xt: np.ndarray, n: int, ws: _Workspace, out: np.ndarray) -> None:
        """Fill ``out[i]`` with the leaf value of transposed-flat ``xt``.

        ``xt`` is ``X.T.ravel()`` — feature-major, so the per-level value
        gather reads each feature's row in ascending sample order instead of
        striding across rows.
        """
        if self.max_depth == 0:  # root-only tree
            out[:] = self.value[0]
            return
        gather_base = self._slot_gf * n  # feature-row offsets for this batch
        thr2, child = self._slot_thr, self._slot_child
        live, val2 = self._slot_live, self._slot_value
        min_leaf, max_depth = self.min_leaf_depth, self.max_depth
        slot, pos = ws.slot, ws.pos
        slot[:n] = 0  # node 0 is the root; slot 0 is its even half
        pos[:n] = np.arange(n, dtype=np.intp)
        k = n
        level = 0
        while k:
            sk, posk = slot[:k], pos[:k]
            idxk, xk, tk = ws.idx[:k], ws.x[:k], ws.thr[:k]
            np.take(gather_base, sk, out=idxk)
            idxk += posk
            np.take(xt, idxk, out=xk)
            np.take(thr2, sk, out=tk)
            np.less_equal(xk, tk, out=idxk, casting="unsafe")
            idxk += sk  # slot + (x <= t): child pairs are [right, left]
            np.take(child, idxk, out=sk)
            level += 1
            if (level >= min_leaf and level % _COMPRESS_EVERY == 0) or level >= max_depth:
                keepk = ws.keep[:k]
                np.take(live, sk, out=keepk)
                k2 = int(np.count_nonzero(keepk))
                if k2 < k:
                    fink = ws.fin[:k]
                    np.logical_not(keepk, out=fink)
                    out[posk[fink]] = val2[sk[fink]]
                    if k2:
                        np.compress(keepk, sk, out=ws.slot_c[:k2])
                        np.compress(keepk, posk, out=ws.pos_c[:k2])
                        slot[:k2] = ws.slot_c[:k2]
                        pos[:k2] = ws.pos_c[:k2]
                    k = k2

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Vectorised frontier descent: one numpy step per tree level."""
        n, _ = X.shape
        record_predict("tree", "compiled", n)
        out = np.empty(n)
        if n == 0:
            return out
        xt = np.ascontiguousarray(X.T).ravel()
        self._descend(xt, n, self._workspace(n), out)
        return out


class CompiledTreeEnsemble:
    """Member trees sharing one descent workspace and one transposed batch.

    Trees descend one at a time: a single tree's slot arrays are small
    enough to stay cache-resident across the whole batch, which beats
    fusing all trees into one concatenated frontier whose node pool and
    per-pair state spill to last-level cache. The transpose of ``X`` and
    the scratch buffers are shared across members, so per-tree overhead is
    just the descent itself.
    """

    def __init__(self, trees: "list[CompiledTree]") -> None:
        if not trees:
            raise NotFittedError("cannot compile an empty ensemble")
        self.trees = trees
        self.n_trees = len(trees)
        self.max_depth = max(t.max_depth for t in trees)
        self._ws: "_Workspace | None" = None

    def _workspace(self, n: int) -> _Workspace:
        if self._ws is None or self._ws.n != n:
            self._ws = _Workspace(n)
        return self._ws

    def leaf_values(self, X: np.ndarray) -> np.ndarray:
        """``(n_trees, n_samples)`` leaf values, one tree-row at a time."""
        n, _ = X.shape
        out = np.empty((self.n_trees, n))
        if n == 0:
            return out
        xt = np.ascontiguousarray(X.T).ravel()
        ws = self._workspace(n)
        for row, tree in zip(out, self.trees):
            tree._descend(xt, n, ws, row)
        return out


class CompiledForest(CompiledTreeEnsemble):
    """Bagged-mean reduction over the stacked leaf values."""

    def predict(self, X: np.ndarray) -> np.ndarray:
        record_predict("forest", "compiled", X.shape[0])
        return self.leaf_values(X).mean(axis=0)


class CompiledBoosting(CompiledTreeEnsemble):
    """Shrinkage-sum reduction; stage accumulation replicates the reference
    (sequential) order so outputs match the object walk bit-for-bit."""

    def __init__(self, trees, init: float, learning_rate: float) -> None:
        super().__init__(trees)
        self.init = float(init)
        self.learning_rate = float(learning_rate)

    def predict(self, X: np.ndarray) -> np.ndarray:
        record_predict("boosting", "compiled", X.shape[0])
        values = self.leaf_values(X)
        out = np.full(X.shape[0], self.init)
        for row in values:
            out += self.learning_rate * row
        return out

    def staged(self, X: np.ndarray):
        """Yield the running prediction after each boosting stage."""
        values = self.leaf_values(X)
        out = np.full(X.shape[0], self.init)
        for row in values:
            out = out + self.learning_rate * row
            yield out.copy()
