"""Cross-run batched tree inference for the fleet front-end.

A fleet tick holds one pending chunk per node, and every *static* run owns
its own per-run ResModel tree (StaticTRR fits one per observed trace).
Calling ``predict`` once per node pays the frontier-descent setup — the
transpose, the workspace, the per-level Python dispatch — N times on small
batches. :class:`TreeStack` concatenates the trees' slot arrays into one
pool (per-tree root offsets, shifted child indices) and descends the
combined batch in a single frontier, so the per-level Python cost is paid
once for the whole fleet.

Numerical contract: the stacked descent performs exactly the comparisons
of each member tree on its own rows, so per-run outputs are bit-identical
to ``tree.predict(rows)``.
"""

from __future__ import annotations

import numpy as np

from ..errors import NotFittedError
from .compile import compile_tree
from .flat_tree import _COMPRESS_EVERY, CompiledTree, _Workspace
from .telemetry import record_predict


def single_tree_of(est) -> "CompiledTree | None":
    """The :class:`CompiledTree` form of a fitted estimator, or None.

    Returns the cached compiled predictor when present, building (and
    caching) it for fitted single trees; ensembles and non-tree estimators
    have no single-tree form and yield None — callers fall back to
    per-model ``predict``.
    """
    compiled = getattr(est, "_compiled", None)
    if isinstance(compiled, CompiledTree):
        return compiled
    if getattr(est, "_nodes", None) is not None:
        est._compiled = compile_tree(est)
        return est._compiled
    return None


class TreeStack:
    """Heterogeneous compiled trees fused into one frontier descent.

    Each member tree predicts its *own* row batch; the stacked descent
    starts every (tree, row) pair at that tree's root slot inside one
    concatenated slot pool.
    """

    def __init__(self, trees: "list[CompiledTree]") -> None:
        if not trees:
            raise NotFittedError("TreeStack needs at least one compiled tree")
        self.trees = list(trees)
        n_slots = [t._slot_thr.shape[0] for t in self.trees]
        offsets = np.concatenate([[0], np.cumsum(n_slots)[:-1]]).astype(np.intp)
        #: slot index of each member tree's root in the concatenated pool.
        self.root_slots = offsets
        self._slot_gf = np.concatenate([t._slot_gf for t in self.trees])
        self._slot_thr = np.concatenate([t._slot_thr for t in self.trees])
        self._slot_live = np.concatenate([t._slot_live for t in self.trees])
        self._slot_value = np.concatenate([t._slot_value for t in self.trees])
        self._slot_child = np.concatenate(
            [t._slot_child + off for t, off in zip(self.trees, offsets)]
        )
        self.max_depth = max(t.max_depth for t in self.trees)
        self.min_leaf_depth = min(t.min_leaf_depth for t in self.trees)
        self._ws: "_Workspace | None" = None

    def _workspace(self, n: int) -> _Workspace:
        if self._ws is None or self._ws.n != n:
            self._ws = _Workspace(n)
        return self._ws

    def predict(self, parts: "list[np.ndarray]") -> "list[np.ndarray]":
        """Per-tree predictions for per-tree row batches, in one descent.

        ``parts[i]`` is the validated ``(n_i, d)`` batch of ``trees[i]``;
        the returned list holds each tree's predictions for its own rows,
        bit-identical to ``trees[i].predict(parts[i])``.
        """
        if len(parts) != len(self.trees):
            raise NotFittedError(
                f"TreeStack.predict got {len(parts)} batches for "
                f"{len(self.trees)} trees"
            )
        ns = [p.shape[0] for p in parts]
        bounds = np.cumsum(ns)[:-1]
        n = int(sum(ns))
        record_predict("tree", "compiled", n)
        out = np.empty(n)
        slices = list(np.split(out, bounds))  # views — filled in place
        if n == 0:
            return slices
        if self.max_depth == 0:  # every member is a root-only tree
            for sl, tree in zip(slices, self.trees):
                sl[:] = tree.value[0]
            return slices
        X = np.vstack(parts)
        xt = np.ascontiguousarray(X.T).ravel()
        ws = self._workspace(n)
        self._descend(xt, n, np.repeat(self.root_slots, ns), ws, out)
        return slices

    def _descend(self, xt, n, init_slots, ws: _Workspace, out) -> None:
        """The doubled-slot frontier kernel over the concatenated pool.

        Identical to ``CompiledTree._descend`` except the frontier starts
        at per-pair root slots instead of slot 0; members shallower than
        ``max_depth`` spin harmlessly in their leaf self-loops until the
        next compaction retires them.
        """
        gather_base = self._slot_gf * n
        thr2, child = self._slot_thr, self._slot_child
        live, val2 = self._slot_live, self._slot_value
        min_leaf, max_depth = self.min_leaf_depth, self.max_depth
        slot, pos = ws.slot, ws.pos
        slot[:n] = init_slots
        pos[:n] = np.arange(n, dtype=np.intp)
        k = n
        level = 0
        while k:
            sk, posk = slot[:k], pos[:k]
            idxk, xk, tk = ws.idx[:k], ws.x[:k], ws.thr[:k]
            np.take(gather_base, sk, out=idxk)
            idxk += posk
            np.take(xt, idxk, out=xk)
            np.take(thr2, sk, out=tk)
            np.less_equal(xk, tk, out=idxk, casting="unsafe")
            idxk += sk  # slot + (x <= t): child pairs are [right, left]
            np.take(child, idxk, out=sk)
            level += 1
            if (level >= min_leaf and level % _COMPRESS_EVERY == 0) or level >= max_depth:
                keepk = ws.keep[:k]
                np.take(live, sk, out=keepk)
                k2 = int(np.count_nonzero(keepk))
                if k2 < k:
                    fink = ws.fin[:k]
                    np.logical_not(keepk, out=fink)
                    out[posk[fink]] = val2[sk[fink]]
                    if k2:
                        np.compress(keepk, sk, out=ws.slot_c[:k2])
                        np.compress(keepk, posk, out=ws.pos_c[:k2])
                        slot[:k2] = ws.slot_c[:k2]
                        pos[:k2] = ws.pos_c[:k2]
                    k = k2
