"""Dispatch counters for the inference hot paths.

Every compiled predictor (``CompiledTree``/``Forest``/``Boosting``/``MLP``)
and every reference walk (``_predict_walk``/``_predict_reference``) reports
each call here, so the ambient :mod:`repro.obs` registry records *which*
path served *how many* samples — the walk-vs-compiled dispatch mix and the
batch-size distribution the flat-array layer was tuned for. One call costs
two dict lookups and a float add; the predictors it annotates run matmuls
and frontier descents, so the overhead is noise even at smoke batch sizes.
"""

from __future__ import annotations

from ..obs import get_registry

#: Batch-size buckets: single rows (online steps) through campaign batches.
BATCH_BUCKETS: "tuple[float, ...]" = (
    1.0, 8.0, 64.0, 512.0, 4096.0, 32768.0, 262144.0,
)


def record_predict(model: str, path: str, n_samples: int) -> None:
    """Count one predict call of ``model`` via ``path`` over ``n_samples``."""
    registry = get_registry()
    registry.counter(
        "repro_perf_predict_total",
        "Predict calls by model and dispatch path (compiled vs walk).",
        ("model", "path"),
    ).labels(model=model, path=path).inc()
    registry.histogram(
        "repro_perf_batch_size",
        "Samples per predict call.",
        ("model", "path"),
        buckets=BATCH_BUCKETS,
    ).labels(model=model, path=path).observe(n_samples)
