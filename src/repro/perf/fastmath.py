"""Opt-in fast-math GEMM tier: BLAS products under a tolerance contract.

The default inference path keeps every large dense product on unoptimised
``np.einsum``: it reduces the contraction axis in fixed index order per
output element, so per-row results are independent of the batch they
arrive in — the property the streaming-equivalence suite pins as
*bit-identical* chunked / whole-run / fleet-batched outputs.

``fast_math`` (``HighRPMConfig.fast_math``, ``repro-bench --fast-math``)
routes those products through BLAS ``np.matmul`` instead. BLAS picks its
reduction blocking per operand shape, so the same row may round
differently in a 32-row chunk than in a 480-row fleet batch — results are
no longer bit-identical across chunkings, only equivalent within the
documented tolerances below. Everything else about the computation is
unchanged: same folded weights, same activations, same clamps.

Equivalence contract
--------------------
For float64 operands of the sizes this library ships (feature axes up to
a few hundred), reassociating the reduction perturbs each output element
by at most a few ulps. The guaranteed envelope, enforced by the property
suite in ``tests/test_fast_math.py`` and used by ``repro-bench`` when
comparing fast-math outputs against the default path:

* relative: :data:`FAST_MATH_RTOL` (``1e-9``)
* absolute: :data:`FAST_MATH_ATOL` (``1e-9``)

Both are ~5 orders of magnitude below IPMI sensor quantisation, so the
tier changes no scientific conclusion — only the bitwise reproducibility
guarantee. Modules must never import this one on the default path's
behalf: callers branch on an explicit ``fast_math`` flag so the default
stays einsum.

This module carries the repository's single reasoned RL201 allowance
(``[tool.repro-lint.rules.bit-identity-matmul] exempt_modules`` in
``pyproject.toml``): the determinism lint keeps flagging BLAS products
everywhere else under the bit-identity contract, and the only sanctioned
escape hatch is calling :func:`gemm` behind a ``fast_math`` check.
"""

from __future__ import annotations

import numpy as np

#: Maximum relative deviation of a fast-math product from the fixed-order
#: einsum result (see the module docstring for the derivation).
FAST_MATH_RTOL = 1e-9

#: Maximum absolute deviation, in the operands' units (watts for power
#: paths); dominates only when outputs are near zero.
FAST_MATH_ATOL = 1e-9


def gemm(a: np.ndarray, w: np.ndarray, out: "np.ndarray | None" = None) -> np.ndarray:
    """``a @ w`` through BLAS — batch-shape-dependent rounding, fast.

    Drop-in for ``np.einsum("nk,ko->no", a, w, out=out)`` on the fast-math
    tier; results agree with the einsum path within
    :data:`FAST_MATH_RTOL`/:data:`FAST_MATH_ATOL`.
    """
    return np.matmul(a, w, out=out)
