"""Model compilation and benchmark tracking for the inference hot paths.

Two halves:

* :mod:`repro.perf.compile` / :mod:`repro.perf.flat_tree` /
  :mod:`repro.perf.flat_mlp` — convert fitted estimators into
  contiguous-array predictors (vectorised frontier descent for trees,
  stacked batched traversal for ensembles, affine-folded buffered forward
  for the MLP). The :mod:`repro.ml` estimators build these lazily on first
  ``predict``, so every caller — StaticTRR's ResModel, the Table-4/5
  baselines, SRR, ``PowerMonitorService.observe_run`` — gets the fast path
  with no API change.
* :mod:`repro.perf.bench` — the ``repro-bench`` runner that times the
  ml/interp microbenches and writes the machine-readable ``BENCH_*.json``
  regression trajectory.

See ``docs/performance.md`` for the cache-invalidation contract and the
benchmark protocol.
"""

from .batch import TreeStack, single_tree_of
from .compile import (
    compile_boosting,
    compile_forest,
    compile_mlp,
    compile_model,
    compile_tree,
    precompile,
)
from .fastmath import FAST_MATH_ATOL, FAST_MATH_RTOL
from .flat_lstm import CompiledLSTM, compile_lstm
from .flat_mlp import CompiledMLP
from .flat_tree import CompiledBoosting, CompiledForest, CompiledTree, CompiledTreeEnsemble

__all__ = [
    "CompiledBoosting",
    "CompiledForest",
    "CompiledLSTM",
    "CompiledMLP",
    "CompiledTree",
    "CompiledTreeEnsemble",
    "FAST_MATH_ATOL",
    "FAST_MATH_RTOL",
    "TreeStack",
    "single_tree_of",
    "compile_boosting",
    "compile_lstm",
    "compile_forest",
    "compile_mlp",
    "compile_model",
    "compile_tree",
    "precompile",
]
