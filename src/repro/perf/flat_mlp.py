"""Fused-forward MLP predictor (the SRR hot path).

``MLPRegressor.predict`` runs standardise → matmul chain → de-standardise,
allocating a fresh intermediate at every step. SRR calls it once per
observed run with the same batch shape over and over (one row per monitored
second), so the allocations and the separate standardisation passes are
pure overhead.

:class:`CompiledMLP` folds the input standardisation into the first weight
matrix (``W0' = W0 / σx``, ``b0' = b0 − (µx/σx)·W0``) and the target
de-standardisation into the last (``WL' = WL·σy``, ``bL' = bL·σy + µy``),
then runs the forward pass through preallocated hidden-layer buffers with
in-place activations. Buffers are keyed by batch size and rebuilt only
when it changes — the steady-state monitor shape reuses them on every
call. The matmuls run through unoptimised ``np.einsum`` rather than GEMM
calls: einsum reduces the feature axis in fixed index order per output
element, so per-row results are independent of the batch they arrive in —
which the streaming/fleet paths rely on for bit-identical chunked and
cross-node-batched inference (a GEMM's blocking, and therefore its
summation order, varies with batch size).

The output layer always writes to a *fresh* array (callers may keep or
mutate predictions), so only hidden activations are recycled. Folding the
affine maps reassociates a handful of float operations; predictions agree
with the reference forward pass to ~1e-13 relative (the equivalence suite
pins this down).
"""

from __future__ import annotations

import numpy as np

from .fastmath import gemm
from .telemetry import record_predict


def _relu_inplace(buf: np.ndarray) -> None:
    np.maximum(buf, 0.0, out=buf)


def _tanh_inplace(buf: np.ndarray) -> None:
    np.tanh(buf, out=buf)


_INPLACE_ACTIVATIONS = {"relu": _relu_inplace, "tanh": _tanh_inplace}


class CompiledMLP:
    """Affine-folded, buffer-reusing forward pass of a fitted MLP.

    ``predict`` takes a validated ``(n, d)`` float64 matrix — callers own
    input checking, exactly as with the compiled trees.
    """

    __slots__ = ("weights", "biases", "activation", "single_output", "_buf_n",
                 "_bufs", "fast_math")

    def __init__(
        self,
        weights: "list[np.ndarray]",
        biases: "list[np.ndarray]",
        x_mean: np.ndarray,
        x_scale: np.ndarray,
        y_mean: np.ndarray,
        y_scale: np.ndarray,
        activation: str,
        single_output: bool,
        fast_math: bool = False,
    ) -> None:
        inv = 1.0 / np.asarray(x_scale, dtype=np.float64)
        W = [np.array(w, dtype=np.float64) for w in weights]
        b = [np.array(v, dtype=np.float64) for v in biases]
        # repro-lint: disable=bit-identity-matmul — one-shot compile-time
        # constant fold: it runs once with fixed operand shapes, so the BLAS
        # blocking cannot vary across chunk shapes; every chunked forward
        # then reuses the identical folded bias (fast_math does not apply).
        b[0] = b[0] - (np.asarray(x_mean) * inv) @ W[0]
        W[0] = W[0] * inv[:, None]
        W[-1] = W[-1] * np.asarray(y_scale)[None, :]
        b[-1] = b[-1] * np.asarray(y_scale) + np.asarray(y_mean)
        self.weights = W
        self.biases = b
        self.activation = _INPLACE_ACTIVATIONS[activation]
        self.single_output = bool(single_output)
        self._buf_n = -1
        self._bufs: "list[np.ndarray]" = []
        #: opt-in tolerance tier: route the layer products through BLAS
        #: (see repro.perf.fastmath). Mutable so a service can flip one
        #: shared compiled model; False keeps the bit-identical einsum path.
        self.fast_math = bool(fast_math)

    def _buffers(self, n: int) -> "list[np.ndarray]":
        if self._buf_n != n:
            self._bufs = [np.empty((n, w.shape[1])) for w in self.weights[:-1]]
            self._buf_n = n
        return self._bufs

    def predict(self, X: np.ndarray) -> np.ndarray:
        fast = self.fast_math
        record_predict("mlp", "fast" if fast else "compiled", X.shape[0])
        bufs = self._buffers(X.shape[0])
        a = X
        last = len(self.weights) - 1
        for li, (w, bias) in enumerate(zip(self.weights, self.biases)):
            out = np.empty((X.shape[0], w.shape[1])) if li == last else bufs[li]
            if fast:
                # Opt-in fast-math tier: BLAS GEMM under the tolerance
                # contract in repro.perf.fastmath.
                gemm(a, w, out=out)
            else:
                # Unoptimised einsum instead of a GEMM: BLAS picks its
                # blocking (and therefore its summation order) by batch
                # size, so the same row can round differently in a 17-row
                # chunk than in the full trace. einsum's sum-of-products
                # loop reduces k in fixed index order per output element,
                # which makes predictions bit-identical whether a trace is
                # pushed through whole, in chunks, or batched across nodes.
                np.einsum("nk,ko->no", a, w, out=out)
            out += bias
            if li < last:
                self.activation(out)
            a = out
        return a.ravel() if self.single_output else a
