"""``repro-bench``: regression tracking for the inference hot paths.

Times each hot operation twice — the seed's reference implementation
("before": the per-sample object walk, the unfused MLP forward) and the
compiled flat-array path ("after") — and writes a machine-readable JSON
trajectory so perf regressions show up as diffs, not anecdotes.

Protocol
--------
Every op is measured as the **minimum over R repeats after two warmup
calls**. The minimum is the standard microbenchmark estimator (`timeit`
docs): slower repeats measure machine noise, not the code. Warmups build
the lazily-compiled predictor and fault in the workspace so the steady
state — a monitor restoring trace after trace — is what gets timed.
Before timing, each op's two paths are checked for agreement, so the
recorded speedups always compare implementations with identical outputs.

Run ``python -m repro.perf.bench`` (or the ``repro-bench`` console script)
from the repo root; ``--smoke`` shrinks sizes/repeats for CI. See
``docs/performance.md`` for how to read and update ``BENCH_*.json``.
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..interp.spline import CubicSplineInterpolator
from ..ml.ensemble import GradientBoostingRegressor, RandomForestRegressor
from ..ml.neural import MLPRegressor
from ..ml.tree import DecisionTreeRegressor

SCHEMA = "repro-bench/1"
DEFAULT_OUTPUT = "BENCH_PR7.json"

#: Fleet-stage trace length (seconds of 1 Sa/s samples per node). The
#: steady-state protocol amortises per-run setup (model fits, sensor
#: sampling) over a campaign-length trace, so the recorded samples/s
#: reflects the monitoring hot path rather than run-open costs. The
#: BENCH_PR2 baseline used the 60 s smoke trace; see docs/performance.md.
FLEET_TEST_SECONDS = 1200


@dataclass(frozen=True)
class BenchCase:
    """One op: a reference ("before") and an optimised ("after") callable."""

    name: str
    after: "callable"
    before: "callable | None"  # None: tracked op with no compiled form
    n_samples: int
    #: max |after - before| tolerated by the pre-timing agreement check;
    #: 0.0 demands bit-identical outputs.
    atol: float = 0.0


def _make_regression(n_train: int, n_pred: int, d: int):
    """Synthetic PMC-like regression task shared by every model op."""
    rng = np.random.default_rng(7)
    X = rng.uniform(0.0, 1.0, size=(n_train, d))
    y = np.sin(3.0 * X[:, 0]) + 2.0 * X[:, 1] + rng.normal(0.0, 0.1, size=n_train)
    Xq = rng.uniform(0.0, 1.0, size=(n_pred, d))
    return X, y, Xq


def build_cases(smoke: bool = False) -> "list[BenchCase]":
    """Fit the hot-path models and pair each reference with its fast path.

    The full protocol matches the acceptance batch: 10-tree ensembles
    trained on 2000×16 and predicting a 10000×16 batch.
    """
    n_train, n_pred, d = (400, 1000, 8) if smoke else (2000, 10000, 16)
    X, y, Xq = _make_regression(n_train, n_pred, d)

    tree = DecisionTreeRegressor().fit(X, y)
    forest = RandomForestRegressor(n_estimators=10, random_state=7).fit(X, y)
    boost = GradientBoostingRegressor(n_estimators=10, random_state=7).fit(X, y)
    mlp = MLPRegressor(max_iter=200 if smoke else 500).fit(X, y)

    knots = np.linspace(0.0, float(n_pred - 1), num=max(8, n_pred // 50))
    spline = CubicSplineInterpolator().fit(knots, np.sin(knots / 40.0) + 2.0)
    t_dense = np.arange(n_pred, dtype=np.float64)

    return [
        BenchCase("tree_predict", lambda: tree.predict(Xq),
                  lambda: tree._predict_walk(Xq), n_pred),
        BenchCase("forest_predict", lambda: forest.predict(Xq),
                  lambda: forest._predict_walk(Xq), n_pred),
        BenchCase("boosting_predict", lambda: boost.predict(Xq),
                  lambda: boost._predict_walk(Xq), n_pred),
        # The fused MLP reassociates the affine folds, so agreement is tight
        # float tolerance rather than bit-exact.
        BenchCase("mlp_predict", lambda: mlp.predict(Xq),
                  lambda: mlp._predict_reference(Xq), n_pred, atol=1e-9),
        # Trend restoration has a single implementation; tracked for the
        # trajectory only.
        BenchCase("spline_predict", lambda: spline.predict(t_dense), None, n_pred),
    ]


def _check_agreement(case: BenchCase) -> None:
    if case.before is None:
        return
    a, b = case.after(), case.before()
    gap = float(np.max(np.abs(np.asarray(a) - np.asarray(b)), initial=0.0))
    if gap > case.atol:
        raise AssertionError(
            f"{case.name}: compiled path disagrees with reference "
            f"(max abs diff {gap:.3e} > atol {case.atol:.1e})"
        )


def _best_of(fn, repeats: int, warmup: int = 2) -> float:
    """Minimum wall-clock seconds over ``repeats`` calls after warmups."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run(cases: "list[BenchCase]", repeats: int) -> "dict[str, dict]":
    """Measure every case; returns ``{op: result}`` with ns/sample figures."""
    results: "dict[str, dict]" = {}
    for case in cases:
        _check_agreement(case)
        after_ns = _best_of(case.after, repeats) * 1e9 / case.n_samples
        entry = {
            "ns_per_sample": round(after_ns, 2),
            "ns_per_sample_before": None,
            "speedup": None,
            "n_samples": case.n_samples,
            "repeats": repeats,
        }
        if case.before is not None:
            before_ns = _best_of(case.before, repeats) * 1e9 / case.n_samples
            entry["ns_per_sample_before"] = round(before_ns, 2)
            entry["speedup"] = round(before_ns / after_ns, 2)
        results[case.name] = entry
    return results


def measure_monitor_overhead() -> "dict[str, float | int | bool]":
    """End-to-end self-overhead: one tiny service observing one run.

    The per-op cases above time isolated predict calls; this probe prices
    the whole ``observe_run`` pipeline against the paper's 1 s sampling
    budget, the same figure the chaos report and ``repro.obs.dump`` show.
    The tiny training budget makes the *model* useless but leaves the
    per-sample restoration cost representative.
    """
    # Upward import (faults sits above perf): confined to this CLI probe,
    # which nothing imports back.
    from ..faults.chaos import ChaosSettings, reference_run  # repro-lint: disable=layering — CLI-only upward import, nothing imports back
    from ..obs import MetricsRegistry, use_registry

    with use_registry(MetricsRegistry()):
        service, bundle = reference_run(ChaosSettings.tiny())
        service.register_node("bench")
        service.observe_run("bench", bundle)
    return service.profiler.report()


def measure_fleet(
    nodes: int = 8, repeats: int = 3, chunk_size: int = 32,
    test_seconds: int = FLEET_TEST_SECONDS, fast_math: bool = False,
) -> "dict[str, float | int | bool]":
    """Fleet throughput: N sequential ``observe_run`` calls vs one batched
    :class:`~repro.monitor.FleetMonitor` drain over the same runs.

    Both paths stream the same chunk size; the fleet path fuses the
    per-tick ResModel descents into one ``TreeStack`` call and the SRR
    forwards into one concatenated MLP pass. On the default tier the two
    paths are checked for bit-identity before timing; under ``fast_math``
    the BLAS forwards are batch-shape dependent, so the check relaxes to
    the documented allclose contract (:data:`FAST_MATH_RTOL` /
    ``FAST_MATH_ATOL``) — the recorded speedup still compares paths with
    (tolerance-)identical outputs.
    """
    # Upward imports (faults/monitor sit above perf): confined to this CLI
    # probe, which nothing imports back.
    import dataclasses

    from ..faults.chaos import ChaosSettings, reference_run  # repro-lint: disable=layering — CLI-only upward import, nothing imports back
    from ..monitor.fleet import FleetMonitor  # repro-lint: disable=layering — CLI-only upward import, nothing imports back
    from ..monitor.service import PowerMonitorService  # repro-lint: disable=layering — CLI-only upward import, nothing imports back
    from ..obs import MetricsRegistry, use_registry
    from .fastmath import FAST_MATH_ATOL, FAST_MATH_RTOL

    settings = dataclasses.replace(
        ChaosSettings.tiny(), test_seconds=int(test_seconds)
    )
    with use_registry(MetricsRegistry()):
        service, bundle = reference_run(settings)
        node_ids = [f"fleet{i}" for i in range(nodes)]

        def fresh() -> PowerMonitorService:
            # Fresh same-seed sensors per phase: sensors consume RNG per
            # sampled run, so fair comparisons never share a service. The
            # explicit tier flag also resets the shared model's tier in
            # case a previous stage switched it.
            svc = PowerMonitorService(service.model, service.spec,
                                      fast_math=fast_math)
            for i, nid in enumerate(node_ids):
                svc.register_node(nid, seed=100 + i)
            return svc

        def run_sequential(svc: PowerMonitorService) -> dict:
            return {
                nid: svc.observe_run(nid, bundle, online=False,
                                     chunk_size=chunk_size)
                for nid in node_ids
            }

        def run_fleet(svc: PowerMonitorService) -> dict:
            fleet = FleetMonitor(svc, chunk_size=chunk_size)
            return fleet.observe_all(
                {nid: bundle for nid in node_ids}, online=False
            )

        if fast_math:
            def agrees(a, b):
                return np.allclose(a, b, rtol=FAST_MATH_RTOL,
                                   atol=FAST_MATH_ATOL)
        else:
            agrees = np.array_equal
        seq_out, fleet_out = run_sequential(fresh()), run_fleet(fresh())
        for nid in node_ids:
            if not (agrees(seq_out[nid].p_node, fleet_out[nid].p_node)
                    and agrees(seq_out[nid].p_cpu, fleet_out[nid].p_cpu)):
                raise AssertionError(
                    f"fleet path disagrees with sequential observe_run on {nid}"
                )
        seq_s = _best_of(lambda: run_sequential(fresh()), repeats)
        fleet_s = _best_of(lambda: run_fleet(fresh()), repeats)
    total = nodes * len(bundle)
    return {
        "nodes": nodes,
        "samples": total,
        "chunk_size": chunk_size,
        "test_seconds": int(test_seconds),
        "fast_math": bool(fast_math),
        "sequential_s": round(seq_s, 6),
        "fleet_s": round(fleet_s, 6),
        "speedup": round(seq_s / fleet_s, 2),
        "samples_per_s": round(total / fleet_s, 1),
        "repeats": repeats,
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Time the inference hot paths and write a BENCH_*.json trajectory.",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes and few repeats (CI smoke subset)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats per op (default: 3 smoke, 7 full)")
    parser.add_argument("--no-monitor", action="store_true",
                        help="skip the end-to-end monitor self-overhead probe")
    parser.add_argument("--no-fleet", action="store_true",
                        help="skip the fleet-throughput stage")
    parser.add_argument("--fleet-nodes", type=int, default=8,
                        help="node count for the fleet-throughput stage")
    parser.add_argument("--fast-math", action="store_true",
                        help="also record the fleet stage on the opt-in "
                             "fast-math tier (fleet_fast_math)")
    parser.add_argument("--output", type=Path, default=Path(DEFAULT_OUTPUT),
                        help=f"output JSON path (default: {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)
    repeats = args.repeats if args.repeats is not None else (3 if args.smoke else 7)

    results = run(build_cases(smoke=args.smoke), repeats=repeats)
    payload = {
        "schema": SCHEMA,
        "protocol": {
            "mode": "smoke" if args.smoke else "full",
            "timer": "min over repeats after 2 warmups (perf_counter)",
            "repeats": repeats,
        },
        "results": results,
    }
    if not args.no_monitor:
        payload["self_overhead"] = measure_monitor_overhead()
    if not args.no_fleet:
        fleet_seconds = 60 if args.smoke else FLEET_TEST_SECONDS
        payload["fleet"] = measure_fleet(
            nodes=args.fleet_nodes, repeats=repeats,
            test_seconds=fleet_seconds,
        )
        if args.fast_math:
            payload["fleet_fast_math"] = measure_fleet(
                nodes=args.fleet_nodes, repeats=repeats,
                test_seconds=fleet_seconds, fast_math=True,
            )
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    width = max(len(name) for name in results)
    for name, entry in results.items():
        line = f"{name:<{width}}  {entry['ns_per_sample']:>10.1f} ns/sample"
        if entry["speedup"] is not None:
            line += (f"  (before {entry['ns_per_sample_before']:.1f}, "
                     f"speedup {entry['speedup']:.1f}x)")
        print(line)
    if "self_overhead" in payload:
        from ..obs import render_overhead

        print(render_overhead(payload["self_overhead"]))
    for stage in ("fleet", "fleet_fast_math"):
        if stage not in payload:
            continue
        fleet = payload[stage]
        print(
            f"{stage}: {fleet['nodes']} nodes x "
            f"{fleet['samples'] // fleet['nodes']}"
            f" samples, batched {fleet['fleet_s'] * 1e3:.1f} ms vs sequential"
            f" {fleet['sequential_s'] * 1e3:.1f} ms "
            f"(speedup {fleet['speedup']:.2f}x, "
            f"{fleet['samples_per_s']:.0f} samples/s)"
        )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
