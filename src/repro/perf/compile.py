"""Fitted estimator → compiled flat-array predictor.

The compilers are duck-typed on the fitted attributes of the
:mod:`repro.ml` estimators (``_nodes``, ``estimators_``, ``weights_``) so
this module never imports the model classes — ``repro.ml`` lazily imports
*us* from inside ``predict`` to build its transparent fast path, and
keeping this side import-free avoids any load-order cycle.

Cache-invalidation contract (honoured by every integrated estimator):

* ``predict`` builds the compiled form on first use and caches it on the
  estimator as ``_compiled``;
* every ``fit`` / ``partial_fit`` / warm start clears ``_compiled`` before
  touching parameters, so a stale predictor can never serve a refitted
  model;
* :func:`precompile` forces the build eagerly (e.g. at service
  registration time) so the first monitored batch does not pay it.
"""

from __future__ import annotations

from ..errors import NotFittedError
from .flat_lstm import compile_lstm as compile_lstm  # re-export: window-parameterised
from .flat_mlp import CompiledMLP
from .flat_tree import CompiledBoosting, CompiledForest, CompiledTree


def compile_tree(tree) -> CompiledTree:
    """Flatten a fitted :class:`~repro.ml.tree.DecisionTreeRegressor`."""
    nodes = getattr(tree, "_nodes", None)
    if nodes is None:
        raise NotFittedError("compile_tree needs a fitted tree")
    return CompiledTree(nodes)


def compile_forest(forest) -> CompiledForest:
    """Stack a fitted random forest into one batched traversal."""
    trees = getattr(forest, "estimators_", None)
    if trees is None:
        raise NotFittedError("compile_forest needs a fitted forest")
    return CompiledForest([compile_tree(t) for t in trees])


def compile_boosting(booster) -> CompiledBoosting:
    """Stack a fitted gradient-boosting ensemble (keeps init/shrinkage)."""
    trees = getattr(booster, "estimators_", None)
    if trees is None:
        raise NotFittedError("compile_boosting needs a fitted booster")
    return CompiledBoosting(
        [compile_tree(t) for t in trees],
        init=booster.init_,
        learning_rate=booster.learning_rate,
    )


def compile_mlp(mlp) -> CompiledMLP:
    """Fold a fitted :class:`~repro.ml.neural.MLPRegressor` forward pass."""
    if getattr(mlp, "weights_", None) is None:
        raise NotFittedError("compile_mlp needs a fitted MLP")
    return CompiledMLP(
        weights=mlp.weights_,
        biases=mlp.biases_,
        x_mean=mlp._x_mean,
        x_scale=mlp._x_scale,
        y_mean=mlp._y_mean,
        y_scale=mlp._y_scale,
        activation=mlp.activation,
        single_output=mlp._single_output,
    )


def _compiler_for(est):
    """The matching compiler, or None for estimator types with no flat form
    (linear models are already vectorised; the LSTM's segment kernel is
    window-parameterised, so sessions build it via :func:`compile_lstm`
    rather than through this shape-only dispatch)."""
    if getattr(est, "_nodes", None) is not None:
        return compile_tree
    if getattr(est, "estimators_", None) is not None:
        return compile_boosting if hasattr(est, "init_") else compile_forest
    if getattr(est, "weights_", None) is not None and hasattr(est, "_x_mean"):
        return compile_mlp
    return None


def compile_model(est):
    """Dispatch on the fitted estimator's shape; raises for unsupported types."""
    compiler = _compiler_for(est)
    if compiler is None:
        raise NotFittedError(
            f"no compiled form for {type(est).__name__}; supported: fitted "
            "tree, forest, boosting, MLP"
        )
    return compiler(est)


def precompile(*estimators, fast_math: "bool | None" = None) -> int:
    """Eagerly build and cache the compiled form of each supported estimator.

    Unsupported or unfitted estimators are skipped (capability-checked, not
    caught), so callers can pass whatever models they hold. Returns the
    number of predictors built.

    ``fast_math`` selects the inference tier for predictors that have one
    (currently the MLP): ``True`` routes their matmuls through BLAS and
    relaxes bit-identity to the :data:`repro.perf.FAST_MATH_RTOL` /
    ``FAST_MATH_ATOL`` allclose contract. ``None`` keeps each predictor's
    default (the exact tier).
    """
    built = 0
    for est in estimators:
        compiler = _compiler_for(est)
        if compiler is None:
            continue
        est._compiled = compiler(est)
        if fast_math is not None and hasattr(est._compiled, "fast_math"):
            est._compiled.fast_math = bool(fast_math)
        built += 1
    return built
