"""CPU power model: activity × DVFS law plus thermal leakage drift.

The shape matters more than the constants: power capping experiments (Fig. 1)
work by dropping frequency, so the model must respond superlinearly to
frequency; the TRR experiments need realistic short-term structure, supplied
by the leakage drift (a slow thermal state) and white supply-ripple noise.

Two entry points share one implementation:

* :meth:`CPUPowerModel.power` — vectorised, for open-loop trace synthesis;
* :meth:`CPUPowerModel.make_stepper` — one-sample-at-a-time, for closed-loop
  simulation where a controller changes the frequency in response to
  observed power (power capping).
"""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError
from ..utils.rng import as_generator
from ..utils.validation import check_1d
from .platform import PlatformSpec


class _CPUStepper:
    """Stateful per-second evaluator (thermal + latent intensity states)."""

    def __init__(self, model: "CPUPowerModel", rng, power_scale: float = 1.0) -> None:
        self._model = model
        self._rng = rng
        self._power_scale = float(power_scale)
        self._thermal = 0.0
        self._intensity = 0.0  # latent AR(1) energy-per-work modulation
        self._started = False

    def step(self, activity: float, freq_ghz: float, condition: float = 0.0) -> float:
        """True CPU power for one second of execution.

        ``condition`` is the node-wide platform-condition drift (voltage
        regulator efficiency, ambient temperature) supplied by the node
        simulator; it multiplies the dynamic term like the local intensity
        drift does.
        """
        if not 0.0 <= activity <= 1.0:
            raise ValidationError(f"activity must lie in [0, 1], got {activity}")
        if freq_ghz <= 0:
            raise ValidationError("frequency must be positive")
        model, spec = self._model, self._model.spec
        if not self._started:
            # Cold start: thermal state begins at the first activity level.
            self._thermal = activity
            self._started = True
        alpha = 1.0 / model.thermal_tau_s
        self._thermal += alpha * (activity - self._thermal)
        # Latent instruction-intensity drift: vector-width / port-pressure
        # phases change watts-per-event without changing counter readings.
        rho = np.exp(-1.0 / model.intensity_tau_s)
        self._intensity = rho * self._intensity + float(
            self._rng.normal(0.0, model.intensity_sigma * np.sqrt(1 - rho**2))
        )
        intensity = float(np.clip(self._intensity, -0.45, 0.45))
        rel = freq_ghz / spec.f_max_ghz
        base = spec.cpu_idle_w * (0.4 + 0.6 * rel)
        dynamic = (
            spec.cpu_dyn_w * activity * rel**spec.freq_exponent
            * self._power_scale * (1.0 + intensity) * (1.0 + condition)
        )
        raw = (base + dynamic) * (1.0 + model.leakage_gain * self._thermal)
        if model.noise_w > 0:
            raw += float(self._rng.normal(0.0, model.noise_w))
        return max(raw, 0.1)


class CPUPowerModel:
    """Instantaneous CPU power from activity and frequency traces.

    Parameters
    ----------
    spec:
        Platform constants.
    thermal_tau_s:
        Time constant of the leakage drift: the chip heats under load and
        leakage rises a few percent, which is what makes power "trend"
        beyond raw activity.
    noise_w:
        White noise amplitude on the *true* power (supply ripple — sensors
        add their own error on top).
    """

    def __init__(
        self,
        spec: PlatformSpec,
        thermal_tau_s: float = 30.0,
        leakage_gain: float = 0.05,
        noise_w: float = 0.25,
        intensity_sigma: float = 0.15,
        intensity_tau_s: float = 180.0,
    ) -> None:
        if thermal_tau_s <= 0 or intensity_tau_s <= 0:
            raise ValidationError("time constants must be positive")
        if intensity_sigma < 0:
            raise ValidationError("intensity_sigma must be >= 0")
        self.spec = spec
        self.thermal_tau_s = float(thermal_tau_s)
        self.leakage_gain = float(leakage_gain)
        self.noise_w = float(noise_w)
        self.intensity_sigma = float(intensity_sigma)
        self.intensity_tau_s = float(intensity_tau_s)

    def make_stepper(
        self,
        rng: "int | np.random.Generator | None" = None,
        power_scale: float = 1.0,
    ) -> _CPUStepper:
        """A fresh closed-loop evaluator (own thermal/intensity state).

        ``power_scale`` is the benchmark's hidden energy-per-work trait.
        """
        return _CPUStepper(self, as_generator(rng), power_scale)

    def power(
        self,
        activity: np.ndarray,
        freq_ghz: "np.ndarray | float",
        rng: "int | np.random.Generator | None" = None,
        power_scale: float = 1.0,
        condition: "np.ndarray | float" = 0.0,
    ) -> np.ndarray:
        """Per-second CPU power for an activity trace in [0, 1].

        ``freq_ghz`` may be scalar (fixed frequency) or a per-sample array;
        ``condition`` likewise (the node-wide platform drift).
        """
        a = check_1d(activity, "activity")
        if ((a < 0) | (a > 1)).any():
            raise ValidationError("activity must lie in [0, 1]")
        f = np.broadcast_to(np.asarray(freq_ghz, dtype=np.float64), a.shape)
        c = np.broadcast_to(np.asarray(condition, dtype=np.float64), a.shape)
        stepper = self.make_stepper(rng, power_scale)
        out = np.empty_like(a)
        for i in range(a.shape[0]):
            out[i] = stepper.step(float(a[i]), float(f[i]), float(c[i]))
        return out
