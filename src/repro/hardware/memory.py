"""DRAM power model.

Memory power has a *narrow* dynamic range (the paper leans on this to explain
why P_MEM MAPE is volatile: small absolute errors are large relative ones).
Activate/precharge energy tracks the access intensity; background/refresh
power is constant.
"""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError
from ..utils.rng import as_generator
from ..utils.validation import check_1d
from .platform import PlatformSpec


class MemoryPowerModel:
    """Instantaneous DRAM power from a memory-intensity trace in [0, 1].

    Like the CPU model, a latent AR(1) process modulates the dynamic term:
    row-buffer hit rates and refresh pressure change joules-per-access in
    ways the bus/access counters do not expose.
    """

    def __init__(
        self,
        spec: PlatformSpec,
        noise_w: float = 0.08,
        intensity_sigma: float = 0.10,
        intensity_tau_s: float = 180.0,
    ) -> None:
        if intensity_tau_s <= 0:
            raise ValidationError("intensity_tau_s must be positive")
        if intensity_sigma < 0:
            raise ValidationError("intensity_sigma must be >= 0")
        self.spec = spec
        self.noise_w = float(noise_w)
        self.intensity_sigma = float(intensity_sigma)
        self.intensity_tau_s = float(intensity_tau_s)

    def power(
        self,
        mem_intensity: np.ndarray,
        rng: "int | np.random.Generator | None" = None,
        power_scale: float = 1.0,
        condition: "np.ndarray | float" = 0.0,
    ) -> np.ndarray:
        m = check_1d(mem_intensity, "mem_intensity")
        if ((m < 0) | (m > 1)).any():
            raise ValidationError("mem_intensity must lie in [0, 1]")
        g = as_generator(rng)
        spec = self.spec
        # Latent joules-per-access drift (stationary AR(1)).
        rho = np.exp(-1.0 / self.intensity_tau_s)
        eps = g.normal(0.0, self.intensity_sigma * np.sqrt(1 - rho**2), size=m.shape)
        drift = np.empty_like(m)
        acc = 0.0
        for i in range(m.shape[0]):
            acc = rho * acc + eps[i]
            drift[i] = acc
        drift = np.clip(drift, -0.4, 0.4)
        # Mild saturation: row-buffer locality makes the first accesses the
        # expensive ones, so power rises sub-linearly near full intensity.
        cond = np.broadcast_to(np.asarray(condition, dtype=np.float64), m.shape)
        raw = (
            spec.mem_idle_w
            + spec.mem_dyn_w * (m**0.85) * power_scale * (1.0 + drift) * (1.0 + cond)
        )
        if self.noise_w > 0:
            raw = raw + g.normal(0.0, self.noise_w, size=m.shape)
        return np.maximum(raw, 0.1)
