"""Performance-monitoring-unit model: synthetic Table-2 event counters.

The paper's PMC collector is a Linux kernel module that samples ten events
per core at 1 Sa/s and aggregates them (§5.2). Here, each event is generated
as a nonlinear function of the true CPU activity and memory intensity, scaled
by *hidden per-benchmark traits* (instruction mix, cache behaviour) and
corrupted by sampling noise. Two properties are deliberate:

* traits vary **between** benchmarks ⇒ a model trained on some programs
  generalises imperfectly to unseen ones (the paper's seen/unseen gap);
* per-sample noise is multiplicative ⇒ even seen-program PMC-only models
  retain a noise floor (the paper's 15–35 % baseline MAPE band).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ValidationError
from ..types import PMC_EVENTS
from ..utils.rng import as_generator
from ..utils.validation import check_1d, check_consistent_length
from .platform import PlatformSpec


@dataclass(frozen=True)
class WorkloadTraits:
    """Hidden per-benchmark microarchitectural character.

    These are *not observable* by the power models — they are the latent
    reason PMC→power mappings differ across programs.
    """

    ipc_scale: float = 1.0  # instruction throughput vs. platform nominal
    branch_ratio: float = 0.18  # branches per instruction
    uop_ratio: float = 1.3  # micro-ops per instruction
    load_ratio: float = 0.25  # L1I loads per instruction
    store_ratio: float = 0.12  # L1I stores per instruction
    locality: float = 0.5  # 0 = streaming (cache-hostile), 1 = resident
    bus_scale: float = 1.0
    mem_scale: float = 1.0
    # Hidden energy-per-work character: the same counter readings cost
    # different watts on different programs (SIMD width, port pressure,
    # row-buffer behaviour). PMC-only models cannot observe these — they
    # are the per-benchmark part of the paper's baseline error.
    cpu_power_scale: float = 1.0
    mem_power_scale: float = 1.0

    def __post_init__(self) -> None:
        for name in ("ipc_scale", "bus_scale", "mem_scale"):
            if getattr(self, name) <= 0:
                raise ValidationError(f"{name} must be positive")
        if not 0.0 <= self.locality <= 1.0:
            raise ValidationError("locality must lie in [0, 1]")

    @staticmethod
    def random(rng, suite_bias: "dict[str, float] | None" = None) -> "WorkloadTraits":
        """Draw traits for one benchmark; ``suite_bias`` shifts the centre."""
        g = as_generator(rng)
        bias = suite_bias or {}
        return WorkloadTraits(
            ipc_scale=float(np.exp(g.normal(bias.get("ipc", 0.0), 0.18))),
            branch_ratio=float(np.clip(g.normal(0.18 + bias.get("branch", 0.0), 0.04), 0.02, 0.45)),
            uop_ratio=float(np.clip(g.normal(1.3, 0.1), 1.0, 1.8)),
            load_ratio=float(np.clip(g.normal(0.25, 0.04), 0.08, 0.45)),
            store_ratio=float(np.clip(g.normal(0.12, 0.025), 0.03, 0.3)),
            locality=float(np.clip(g.normal(0.5 + bias.get("locality", 0.0), 0.15), 0.0, 1.0)),
            bus_scale=float(np.exp(g.normal(bias.get("bus", 0.0), 0.15))),
            mem_scale=float(np.exp(g.normal(bias.get("mem", 0.0), 0.15))),
            cpu_power_scale=float(np.exp(g.normal(0.0, 0.12))),
            mem_power_scale=float(np.exp(g.normal(0.0, 0.10))),
        )


class PMUModel:
    """Generates the ten Table-2 counters from activity traces."""

    def __init__(
        self,
        spec: PlatformSpec,
        sample_noise: float = 0.06,
        multiplex_drop: float = 0.02,
    ) -> None:
        self.spec = spec
        self.sample_noise = float(sample_noise)
        self.multiplex_drop = float(multiplex_drop)

    def counters(
        self,
        cpu_activity: np.ndarray,
        mem_intensity: np.ndarray,
        freq_ghz: "np.ndarray | float",
        traits: WorkloadTraits,
        rng: "int | np.random.Generator | None" = None,
    ) -> np.ndarray:
        """Aggregated per-second event counts, shape ``(n, len(PMC_EVENTS))``."""
        a = check_1d(cpu_activity, "cpu_activity")
        m = check_1d(mem_intensity, "mem_intensity")
        check_consistent_length(a, m, names=("cpu_activity", "mem_intensity"))
        g = as_generator(rng)
        spec = self.spec
        f = np.broadcast_to(np.asarray(freq_ghz, dtype=np.float64), a.shape)

        hz = f * 1e9
        # Cycles tick whenever cores are clocked; idle loops still consume
        # ~25 % of cycle slots on non-gated cores.
        cycles = spec.n_cores * hz * (0.25 + 0.75 * a)
        # Memory stalls depress IPC: the higher the memory intensity and the
        # lower the locality, the fewer instructions retire per cycle.
        stall_factor = 1.0 - 0.55 * m * (1.0 - 0.6 * traits.locality)
        ipc = spec.ipc_base * traits.ipc_scale * stall_factor
        inst = cycles * ipc * (0.05 + 0.95 * a) / (1.0 + 0.25 * a)
        branches = inst * traits.branch_ratio
        uops = inst * traits.uop_ratio
        l1_ld = inst * traits.load_ratio
        l1_st = inst * traits.store_ratio
        # Lower-level cache traffic: the miss fraction grows as locality
        # drops and as memory intensity rises.
        miss = (1.0 - traits.locality) * (0.08 + 0.9 * m)
        lx_ld = l1_ld * np.clip(miss, 0.0, 1.0)
        lx_st = l1_st * np.clip(miss * 0.8, 0.0, 1.0)
        bus = spec.n_cores * hz * 0.015 * (0.05 + m) * traits.bus_scale
        mem_acc = spec.n_cores * hz * 0.01 * (m**1.1 + 0.02) * traits.mem_scale

        matrix = np.column_stack(
            [cycles, inst, branches, uops, l1_ld, l1_st, lx_ld, lx_st, bus, mem_acc]
        )
        assert matrix.shape[1] == len(PMC_EVENTS)

        if self.sample_noise > 0:
            matrix = matrix * np.exp(
                g.normal(0.0, self.sample_noise, size=matrix.shape)
            )
        if self.multiplex_drop > 0:
            # Counter multiplexing occasionally under-counts one event for a
            # sample (the kernel module rotates counters on real PMUs).
            drop = g.random(matrix.shape) < self.multiplex_drop
            matrix = np.where(drop, matrix * g.uniform(0.7, 0.95, size=matrix.shape), matrix)
        return np.maximum(matrix, 0.0)
