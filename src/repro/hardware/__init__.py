"""Hardware simulation substrate.

The paper's measurement host — a 64-core ARMv8 board with a BMC power chip
and jumper-wire probes, plus a Xeon E5-2660 v2 cluster with RAPL — is not
available here, so this package provides a parametric node simulator that
reproduces the *statistical structure* HighRPM exploits:

* node power is exactly the sum of component power (CPU + DRAM + a nearly
  constant ~25 W of peripherals);
* CPU power follows workload activity scaled by a DVFS frequency law;
* DRAM power follows memory-access intensity over a narrow dynamic range;
* PMC readings are noisy, benchmark-dependent nonlinear transforms of the
  underlying activity, so PMC-only power models are plausibly mediocre
  while IM-informed models can be much better.

See DESIGN.md §2 for the full substitution rationale.
"""

from .cluster import ClusterSimulator
from .cpu import CPUPowerModel
from .memory import MemoryPowerModel
from .node import NodeSimulator
from .platform import ARM_PLATFORM, X86_PLATFORM, PlatformSpec, get_platform
from .pmu import PMUModel

__all__ = [
    "ClusterSimulator",
    "CPUPowerModel",
    "MemoryPowerModel",
    "NodeSimulator",
    "PMUModel",
    "PlatformSpec",
    "ARM_PLATFORM",
    "X86_PLATFORM",
    "get_platform",
]
