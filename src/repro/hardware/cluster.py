"""Multi-node cluster simulation with per-node manufacturing variation.

The paper deploys HighRPM as a shared service because "power variations
between nodes" make per-node calibration valuable (§4.1). This module
supplies that heterogeneity: each node of a cluster gets its own simulator
whose platform constants are perturbed by a manufacturing lottery (silicon
quality shifts idle and dynamic power a few percent), plus its own sensor
noise realisation.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..errors import ValidationError
from ..types import TraceBundle
from ..utils.rng import SeedSequenceFactory
from ..workloads.base import Workload
from .node import NodeSimulator
from .platform import PlatformSpec


class ClusterSimulator:
    """``n_nodes`` heterogeneous instances of one platform.

    Parameters
    ----------
    spec:
        Nominal platform; each node perturbs its power constants.
    variation:
        Std-dev of the lognormal manufacturing factor applied to the CPU
        idle/dynamic power (silicon lottery, typically a few percent).
    """

    def __init__(
        self,
        spec: PlatformSpec,
        n_nodes: int = 4,
        variation: float = 0.04,
        seed: int = 0,
    ) -> None:
        if n_nodes < 1:
            raise ValidationError("n_nodes must be >= 1")
        if variation < 0:
            raise ValidationError("variation must be >= 0")
        self.spec = spec
        self.n_nodes = int(n_nodes)
        self.variation = float(variation)
        self._seeds = SeedSequenceFactory(seed).child(f"cluster.{spec.name}")
        self._nodes: dict[str, NodeSimulator] = {}
        self._specs: dict[str, PlatformSpec] = {}
        for k in range(self.n_nodes):
            node_id = f"node-{k}"
            g = self._seeds.generator(f"mfg.{node_id}")
            factor_idle = float(np.exp(g.normal(0.0, self.variation)))
            factor_dyn = float(np.exp(g.normal(0.0, self.variation)))
            node_spec = replace(
                spec,
                name=f"{spec.name}/{node_id}",
                cpu_idle_w=spec.cpu_idle_w * factor_idle,
                cpu_dyn_w=spec.cpu_dyn_w * factor_dyn,
            )
            self._specs[node_id] = node_spec
            self._nodes[node_id] = NodeSimulator(
                node_spec, seed=int(g.integers(0, 2**31 - 1))
            )

    @property
    def node_ids(self) -> tuple[str, ...]:
        return tuple(self._nodes)

    def node(self, node_id: str) -> NodeSimulator:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise ValidationError(
                f"unknown node {node_id!r}; have {sorted(self._nodes)}"
            ) from None

    def node_spec(self, node_id: str) -> PlatformSpec:
        self.node(node_id)
        return self._specs[node_id]

    def run(self, node_id: str, workload: Workload,
            duration_s: "int | None" = None, run_id: int = 0) -> TraceBundle:
        """Run a workload on one node."""
        return self.node(node_id).run(workload, duration_s, run_id=run_id)

    def idle_power_spread_w(self) -> float:
        """Max − min idle CPU power across nodes (heterogeneity measure)."""
        idles = [s.cpu_idle_w for s in self._specs.values()]
        return float(max(idles) - min(idles))
