"""Platform specifications for the two evaluation systems.

``ARM_PLATFORM`` models the paper's 64-core ARMv8 development board with a
BMC (IPMI readings at 0.1 Sa/s, jumper-wire direct measurement at 1 Sa/s).
``X86_PLATFORM`` models a Tianhe-1A-like node with Intel Xeon E5-2660 v2
processors (RAPL energy counters via perf). Constants are chosen to land in
the wattage ranges the paper plots (node ≈ 90 W under load on ARM, Fig. 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ValidationError


@dataclass(frozen=True)
class PlatformSpec:
    """Static description of one compute-node type.

    Power model constants
    ---------------------
    CPU power at frequency ``f`` and activity ``a ∈ [0, 1]``:
    ``P = cpu_idle_w·(0.4 + 0.6·f/f_max) + cpu_dyn_w · a · (f/f_max)^freq_exponent``
    (idle power has a frequency-dependent part: voltage scales with f).
    Memory power: ``P = mem_idle_w + mem_dyn_w · m`` for access intensity m.
    """

    name: str
    arch: str  # "arm" or "x86"
    n_cores: int
    freq_levels_ghz: tuple[float, ...]
    default_freq_ghz: float
    cpu_idle_w: float
    cpu_dyn_w: float
    mem_idle_w: float
    mem_dyn_w: float
    other_w: float = 25.0
    other_jitter_w: float = 0.3  # "varies very little, within just under 1W"
    freq_exponent: float = 2.2
    ipc_base: float = 1.6  # nominal instructions per cycle at a=1
    ipmi_interval_s: int = 10  # 0.1 Sa/s integrated measurement
    ipmi_noise_w: float = 0.4
    ipmi_quantum_w: float = 1.0  # vendor tools quantise to 1 W
    direct_noise_w: float = 0.1  # jumper-wire method: 0.1 W error
    rapl_available: bool = False

    def __post_init__(self) -> None:
        if self.arch not in ("arm", "x86"):
            raise ValidationError(f"arch must be 'arm' or 'x86', got {self.arch!r}")
        if self.n_cores < 1:
            raise ValidationError("n_cores must be >= 1")
        if not self.freq_levels_ghz:
            raise ValidationError("need at least one frequency level")
        if self.default_freq_ghz not in self.freq_levels_ghz:
            raise ValidationError(
                f"default frequency {self.default_freq_ghz} not in levels "
                f"{self.freq_levels_ghz}"
            )
        for w in (self.cpu_idle_w, self.cpu_dyn_w, self.mem_idle_w, self.mem_dyn_w):
            if w < 0:
                raise ValidationError("power constants must be non-negative")

    @property
    def f_max_ghz(self) -> float:
        return max(self.freq_levels_ghz)

    @property
    def max_node_power_w(self) -> float:
        """Upper power bound (P_upper in Algorithm 1 terms)."""
        return (
            self.cpu_idle_w
            + self.cpu_dyn_w
            + self.mem_idle_w
            + self.mem_dyn_w
            + self.other_w
            + 3.0 * self.other_jitter_w
        )

    @property
    def min_node_power_w(self) -> float:
        """Lower power bound (P_bottom in Algorithm 1 terms)."""
        return (
            self.cpu_idle_w * 0.4
            + self.mem_idle_w
            + self.other_w
            - 3.0 * self.other_jitter_w
        )

    def validate_frequency(self, freq_ghz: float) -> float:
        if freq_ghz not in self.freq_levels_ghz:
            raise ValidationError(
                f"{self.name} supports frequencies {self.freq_levels_ghz}, "
                f"got {freq_ghz}"
            )
        return freq_ghz


#: The paper's ARM evaluation board: 64-core ARMv8, 128 GB DDR4, BMC/IPMI at
#: 0.1 Sa/s, DVFS levels 1.4 / 1.8 / 2.2 GHz (§5.1, §6.4.2). Constants put a
#: fully-loaded node near 90 W with ~25 W of peripherals (Fig. 2).
ARM_PLATFORM = PlatformSpec(
    name="arm-v8-board",
    arch="arm",
    n_cores=64,
    freq_levels_ghz=(1.4, 1.8, 2.2),
    default_freq_ghz=2.2,
    cpu_idle_w=18.0,
    cpu_dyn_w=34.0,
    mem_idle_w=6.0,  # 128 GB of DDR4 idles warm
    mem_dyn_w=26.0,
)

#: Tianhe-1A-like x86 node: Xeon E5-2660 v2 (2.2 GHz base / 2.6 GHz with
#: turbo active in the paper's text), RAPL energy counters available. Higher
#: frequency and TDP ⇒ larger absolute errors, as Table 9 observes.
X86_PLATFORM = PlatformSpec(
    name="x86-tianhe-node",
    arch="x86",
    n_cores=20,  # dual-socket E5-2660 v2: 2 × 10 cores
    freq_levels_ghz=(1.6, 2.2, 2.6),
    default_freq_ghz=2.6,
    cpu_idle_w=40.0,
    cpu_dyn_w=150.0,
    mem_idle_w=10.0,
    mem_dyn_w=40.0,
    other_w=45.0,
    other_jitter_w=0.5,
    freq_exponent=2.4,
    ipc_base=2.2,
    rapl_available=True,
)

_PLATFORMS = {"arm": ARM_PLATFORM, "x86": X86_PLATFORM}


def get_platform(name: str) -> PlatformSpec:
    """Look up a built-in platform by short name (``"arm"`` / ``"x86"``)."""
    try:
        return _PLATFORMS[name]
    except KeyError:
        raise ValidationError(
            f"unknown platform {name!r}; known: {sorted(_PLATFORMS)}"
        ) from None
