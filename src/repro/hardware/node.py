"""Whole-node simulator: workload → ground-truth TraceBundle.

The simulator enforces the additivity invariant the SRR model exploits:
``P_node(t) = P_cpu(t) + P_mem(t) + P_other(t)`` exactly, with P_other
hovering around the platform's ~25 W peripheral budget ("varies very
little, within just under 1 W" — §5.2).

Two modes:

* :meth:`run` — open loop, fixed frequency (or per-sample frequency array);
* :meth:`run_controlled` — closed loop, a controller callback sets the
  frequency each second from the power it has *observed so far* (this is
  how the Fig. 1 power-capping experiment drives the node).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

import numpy as np

from ..errors import SimulationError, ValidationError
from ..types import PMCTrace, PowerTrace, TraceBundle
from ..utils.rng import SeedSequenceFactory

if TYPE_CHECKING:  # avoid a workloads<->hardware import cycle at runtime
    from ..workloads.base import Workload
from .cpu import CPUPowerModel
from .memory import MemoryPowerModel
from .platform import PlatformSpec
from .pmu import PMUModel

#: Controller signature for closed-loop runs: (t_seconds, node_power_history)
#: → frequency in GHz for the *next* second. The history array holds true
#: node power for seconds [0, t); the controller typically looks only at its
#: own sensor's readings of it.
FrequencyController = Callable[[int, np.ndarray], float]


class NodeSimulator:
    """Simulates one compute node of a given platform."""

    def __init__(
        self,
        spec: PlatformSpec,
        seed: int = 0,
        cpu_model: "CPUPowerModel | None" = None,
        mem_model: "MemoryPowerModel | None" = None,
        pmu_model: "PMUModel | None" = None,
    ) -> None:
        self.spec = spec
        self._seeds = SeedSequenceFactory(seed).child(f"node.{spec.name}")
        self.cpu_model = cpu_model or CPUPowerModel(spec)
        self.mem_model = mem_model or MemoryPowerModel(spec)
        self.pmu_model = pmu_model or PMUModel(spec)

    # ------------------------------------------------------------------ runs
    def _condition(self, n: int, rng) -> np.ndarray:
        """Node-wide platform-condition drift (VR efficiency, ambient temp).

        A slow AR(1) that multiplies every domain's dynamic power. It is
        invisible to the PMCs — the common-mode part of the error that
        PMC-only power models cannot remove, but that IM readings expose.
        """
        sigma, tau = 0.30, 150.0
        rho = np.exp(-1.0 / tau)
        eps = rng.normal(0.0, sigma * np.sqrt(1 - rho**2), size=n)
        drift = np.empty(n)
        acc = float(rng.normal(0.0, sigma))  # start in steady state
        for i in range(n):
            acc = rho * acc + eps[i]
            drift[i] = acc
        return np.clip(drift, -0.5, 0.5)

    def _other_power(self, n: int, rng) -> np.ndarray:
        """Peripheral power: slow random walk in a tight band around other_w."""
        spec = self.spec
        eps = rng.normal(0.0, spec.other_jitter_w * 0.2, size=n)
        walk = np.empty(n)
        acc = 0.0
        for i in range(n):
            acc = 0.95 * acc + eps[i]
            walk[i] = acc
        walk = np.clip(walk, -spec.other_jitter_w, spec.other_jitter_w)
        return spec.other_w + walk

    def _bundle(
        self,
        workload: Workload,
        cpu_act: np.ndarray,
        mem_int: np.ndarray,
        freq: np.ndarray,
        p_cpu: np.ndarray,
        run_rng_name: str,
        condition: np.ndarray,
    ) -> TraceBundle:
        rng = self._seeds.generator(run_rng_name + ".rest")
        p_mem = self.mem_model.power(
            mem_int, rng, power_scale=workload.traits.mem_power_scale,
            condition=condition,
        )
        p_other = self._other_power(len(cpu_act), rng)
        p_node = p_cpu + p_mem + p_other
        pmcs = self.pmu_model.counters(cpu_act, mem_int, freq, workload.traits, rng)
        rate = 1.0
        return TraceBundle(
            node=PowerTrace(p_node, rate, "node"),
            cpu=PowerTrace(p_cpu, rate, "cpu"),
            mem=PowerTrace(p_mem, rate, "mem"),
            other=PowerTrace(p_other, rate, "other"),
            pmcs=PMCTrace(pmcs, sample_rate_hz=rate),
            workload=workload.name,
            platform=self.spec.name,
            metadata={
                "freq_ghz": freq.copy(),
                "cpu_activity": cpu_act.copy(),
                "mem_intensity": mem_int.copy(),
            },
        )

    def run(
        self,
        workload: Workload,
        duration_s: "int | None" = None,
        freq_ghz: "float | np.ndarray | None" = None,
        run_id: int = 0,
    ) -> TraceBundle:
        """Execute a workload open-loop and return the ground-truth bundle.

        ``run_id`` distinguishes repeated runs of the same benchmark (the
        paper validates over five runs per configuration); each id yields a
        different but reproducible realisation.
        """
        rng_name = f"run.{workload.name}.{run_id}"
        act_rng = self._seeds.generator(rng_name + ".activity")
        cpu_act, mem_int = workload.synthesize(duration_s, act_rng)
        n = cpu_act.shape[0]
        if freq_ghz is None:
            freq = np.full(n, self.spec.default_freq_ghz)
        elif np.isscalar(freq_ghz):
            self.spec.validate_frequency(float(freq_ghz))
            freq = np.full(n, float(freq_ghz))
        else:
            freq = np.asarray(freq_ghz, dtype=np.float64)
            if freq.shape != (n,):
                raise ValidationError(
                    f"frequency array must have shape ({n},), got {freq.shape}"
                )
        condition = self._condition(
            n, self._seeds.generator(rng_name + ".condition")
        )
        p_cpu = self.cpu_model.power(
            cpu_act, freq, self._seeds.generator(rng_name + ".cpu"),
            power_scale=workload.traits.cpu_power_scale,
            condition=condition,
        )
        return self._bundle(
            workload, cpu_act, mem_int, freq, p_cpu, rng_name, condition
        )

    def run_controlled(
        self,
        workload: Workload,
        controller: FrequencyController,
        duration_s: "int | None" = None,
        run_id: int = 0,
    ) -> TraceBundle:
        """Closed-loop run: the controller picks the frequency each second.

        The controller sees the history of *true node power* up to (not
        including) the current second; capping policies wrap this with their
        own sensing interval (they only look at every PI-th sample).
        """
        rng_name = f"ctl.{workload.name}.{run_id}"
        act_rng = self._seeds.generator(rng_name + ".activity")
        cpu_act, mem_int = workload.synthesize(duration_s, act_rng)
        n = cpu_act.shape[0]
        stepper = self.cpu_model.make_stepper(
            self._seeds.generator(rng_name + ".cpu"),
            power_scale=workload.traits.cpu_power_scale,
        )
        rest_rng = self._seeds.generator(rng_name + ".rest.preview")
        condition = self._condition(
            n, self._seeds.generator(rng_name + ".condition")
        )
        # Memory + other power do not depend on frequency, so they can be
        # synthesised up front; node history fed to the controller includes
        # them for realism.
        p_mem = self.mem_model.power(
            mem_int, rest_rng, power_scale=workload.traits.mem_power_scale,
            condition=condition,
        )
        p_other = self._other_power(n, rest_rng)
        p_cpu = np.empty(n)
        p_node = np.empty(n)
        freq = np.empty(n)
        for t in range(n):
            f = float(controller(t, p_node[:t]))
            self.spec.validate_frequency(f)
            freq[t] = f
            p_cpu[t] = stepper.step(float(cpu_act[t]), f, float(condition[t]))
            p_node[t] = p_cpu[t] + p_mem[t] + p_other[t]
        if not np.isfinite(p_node).all():
            raise SimulationError("controller produced non-finite power")
        rng = self._seeds.generator(rng_name + ".pmc")
        pmcs = self.pmu_model.counters(cpu_act, mem_int, freq, workload.traits, rng)
        rate = 1.0
        return TraceBundle(
            node=PowerTrace(p_node, rate, "node"),
            cpu=PowerTrace(p_cpu, rate, "cpu"),
            mem=PowerTrace(p_mem, rate, "mem"),
            other=PowerTrace(p_other, rate, "other"),
            pmcs=PMCTrace(pmcs, sample_rate_hz=rate),
            workload=workload.name,
            platform=self.spec.name,
            metadata={
                "freq_ghz": freq.copy(),
                "cpu_activity": cpu_act.copy(),
                "mem_intensity": mem_int.copy(),
                "controlled": True,
            },
        )
