"""Span-based tracing for the restoration pipeline.

A :class:`Tracer` records nested *spans* — named sections of the pipeline
(``monitor.observe_run`` > ``monitor.restore`` > ``trr.spline`` …) — with
parent links and, when the tracer carries a :mod:`~repro.obs.clock`,
durations. Library code never holds a tracer: it asks for the ambient one
with :func:`current_tracer`, which is a no-op :data:`NULL_TRACER` unless a
harness has installed a real tracer via :func:`use_tracer`. That keeps the
numeric layers deterministic (an unclocked tracer records *counts* only,
which are a pure function of the inputs) and makes the instrumentation
free when nobody is looking.

A tracer wired to a :class:`~repro.obs.metrics.MetricsRegistry` also emits
``repro_span_total{span=...}`` on every span and
``repro_span_seconds{span=...}`` when clocked, so span statistics ride
along in the same exposition/snapshot as the counters.

Span taxonomy (see ``docs/observability.md`` for the full table):

===================== ====================================================
``monitor.*``         service orchestration (observe_run, im_sample, gate,
                      restore, log_append)
``trr.*``             temporal restoration (static, spline, resmodel,
                      fusion, dynamic, finetune)
``srr.split``         spatial restoration (node -> CPU/MEM split)
===================== ====================================================
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from .clock import Clock


@dataclass(frozen=True)
class SpanRecord:
    """One closed span."""

    name: str
    parent: "str | None"
    depth: int
    duration_s: "float | None"  # None when the tracer has no clock


@dataclass
class SpanStats:
    """Aggregate over every closed span of one name."""

    count: int = 0
    total_s: float = 0.0
    max_s: float = 0.0
    timed: bool = False

    def add(self, duration_s: "float | None") -> None:
        self.count += 1
        if duration_s is not None:
            self.timed = True
            self.total_s += duration_s
            self.max_s = max(self.max_s, duration_s)

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


class NullTracer:
    """The ambient default: spans cost one dict-free context switch."""

    records: "tuple[SpanRecord, ...]" = ()

    @contextmanager
    def span(self, name: str):
        yield

    def stats(self) -> "dict[str, SpanStats]":
        return {}


NULL_TRACER = NullTracer()


class Tracer:
    """Records nested spans; optionally timed, optionally metric-emitting.

    Parameters
    ----------
    clock:
        Zero-argument seconds source. ``None`` records span counts and
        nesting but no durations — the deterministic mode core code sees
        under test.
    registry:
        When given, every closed span increments ``repro_span_total`` and
        (if clocked) observes ``repro_span_seconds``.
    max_records:
        The flat span log is capped so a long-lived service cannot grow
        without bound; aggregated :meth:`stats` keep counting past the cap.
    """

    def __init__(
        self,
        clock: "Clock | None" = None,
        registry=None,
        max_records: int = 4096,
    ) -> None:
        self.clock = clock
        self.registry = registry
        self.max_records = int(max_records)
        self.records: "list[SpanRecord]" = []
        self._stack: "list[str]" = []
        self._stats: "dict[str, SpanStats]" = {}

    @contextmanager
    def span(self, name: str):
        parent = self._stack[-1] if self._stack else None
        depth = len(self._stack)
        self._stack.append(name)
        start = self.clock() if self.clock is not None else None
        try:
            yield
        finally:
            self._stack.pop()
            duration = self.clock() - start if start is not None else None
            record = SpanRecord(name=name, parent=parent, depth=depth,
                                duration_s=duration)
            if len(self.records) < self.max_records:
                self.records.append(record)
            self._stats.setdefault(name, SpanStats()).add(duration)
            if self.registry is not None:
                self.registry.counter(
                    "repro_span_total", "Closed pipeline spans.", ("span",)
                ).labels(span=name).inc()
                if duration is not None:
                    self.registry.histogram(
                        "repro_span_seconds", "Span durations.", ("span",)
                    ).labels(span=name).observe(duration)

    # ------------------------------------------------------------- reading
    def stats(self) -> "dict[str, SpanStats]":
        return dict(self._stats)

    def snapshot(self) -> "dict[str, dict]":
        """JSON-able per-span aggregates."""
        return {
            name: {
                "count": s.count,
                "total_s": s.total_s,
                "mean_s": s.mean_s,
                "max_s": s.max_s,
                "timed": s.timed,
            }
            for name, s in sorted(self._stats.items())
        }

    def render(self) -> str:
        """A fixed-width per-span summary table."""
        rows = [
            (name, str(s.count),
             f"{s.total_s * 1e3:.2f}" if s.timed else "-",
             f"{s.mean_s * 1e6:.1f}" if s.timed else "-")
            for name, s in sorted(self._stats.items())
        ]
        header = ("span", "count", "total ms", "mean us")
        widths = [max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
                  for i, h in enumerate(header)]
        lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
        lines += ["  ".join(c.ljust(w) for c, w in zip(r, widths)) for r in rows]
        return "\n".join(lines)

    def reset(self) -> None:
        self.records.clear()
        self._stats.clear()


# --------------------------------------------------------------- ambient
_tracer_stack: "list[Tracer]" = []


def current_tracer() -> "Tracer | NullTracer":
    """The innermost :func:`use_tracer` override, else the no-op tracer."""
    return _tracer_stack[-1] if _tracer_stack else NULL_TRACER


@contextmanager
def use_tracer(tracer: Tracer):
    """Route spans opened in this block into ``tracer``."""
    _tracer_stack.append(tracer)
    try:
        yield tracer
    finally:
        _tracer_stack.pop()
