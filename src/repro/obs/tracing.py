"""Span-based tracing for the restoration pipeline.

A :class:`Tracer` records nested *spans* — named sections of the pipeline
(``monitor.observe_run`` > ``monitor.restore`` > ``trr.spline`` …) — with
parent links and, when the tracer carries a :mod:`~repro.obs.clock`,
durations. Library code never holds a tracer: it asks for the ambient one
with :func:`current_tracer`, which is a no-op :data:`NULL_TRACER` unless a
harness has installed a real tracer via :func:`use_tracer`. That keeps the
numeric layers deterministic (an unclocked tracer records *counts* only,
which are a pure function of the inputs) and makes the instrumentation
free when nobody is looking.

A tracer wired to a :class:`~repro.obs.metrics.MetricsRegistry` also emits
``repro_span_total{span=...}`` on every span and
``repro_span_seconds{span=...}`` when clocked, so span statistics ride
along in the same exposition/snapshot as the counters.

Span taxonomy (see ``docs/observability.md`` for the full table):

===================== ====================================================
``monitor.*``         service orchestration (observe_run, im_sample, gate,
                      restore, log_append)
``trr.*``             temporal restoration (static, spline, resmodel,
                      fusion, dynamic, finetune)
``srr.split``         spatial restoration (node -> CPU/MEM split)
===================== ====================================================
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from .clock import Clock


@dataclass(frozen=True)
class SpanRecord:
    """One closed span."""

    name: str
    parent: "str | None"
    depth: int
    duration_s: "float | None"  # None when the tracer has no clock


@dataclass
class SpanStats:
    """Aggregate over every closed span of one name."""

    count: int = 0
    total_s: float = 0.0
    max_s: float = 0.0
    timed: bool = False

    def add(self, duration_s: "float | None") -> None:
        self.count += 1
        if duration_s is not None:
            self.timed = True
            self.total_s += duration_s
            self.max_s = max(self.max_s, duration_s)

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


class _NullSpan:
    """A reusable no-op context manager (one shared instance, no per-span
    allocation — the null tracer sits on every hot path)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The ambient default: spans cost one dict-free context switch."""

    records: "tuple[SpanRecord, ...]" = ()

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def stats(self) -> "dict[str, SpanStats]":
        return {}


NULL_TRACER = NullTracer()


class _Span:
    """One live span of a :class:`Tracer`.

    A plain context-manager class rather than ``@contextmanager``: spans
    wrap every pipeline stage of every chunk, and the generator protocol's
    frame suspension costs several times the bookkeeping itself.
    """

    __slots__ = ("_tracer", "_name", "_start")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self._name = name
        self._start = None

    def __enter__(self) -> None:
        tracer = self._tracer
        tracer._stack.append(self._name)
        if tracer.clock is not None:
            self._start = tracer.clock()
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        duration = (
            tracer.clock() - self._start if self._start is not None else None
        )
        stack = tracer._stack
        stack.pop()
        tracer._close(self._name, stack[-1] if stack else None, len(stack),
                      duration)
        tracer._pool.append(self)
        return False


class Tracer:
    """Records nested spans; optionally timed, optionally metric-emitting.

    Parameters
    ----------
    clock:
        Zero-argument seconds source. ``None`` records span counts and
        nesting but no durations — the deterministic mode core code sees
        under test.
    registry:
        When given, every closed span increments ``repro_span_total`` and
        (if clocked) observes ``repro_span_seconds``.
    max_records:
        The flat span log is capped so a long-lived service cannot grow
        without bound; aggregated :meth:`stats` keep counting past the cap.
    """

    def __init__(
        self,
        clock: "Clock | None" = None,
        registry=None,
        max_records: int = 4096,
    ) -> None:
        self.clock = clock
        self.registry = registry
        self.max_records = int(max_records)
        self._stack: "list[str]" = []
        self._stats: "dict[str, SpanStats]" = {}
        #: raw (name, parent, depth, duration) tuples; materialised into
        #: SpanRecord objects only when ``records`` is read — span close is
        #: on the per-chunk hot path and a frozen-dataclass construction
        #: per span costs more than the rest of the bookkeeping combined.
        self._records_raw: "list[tuple]" = []
        #: per-span-name metric children, resolved once — the registry and
        #: label set are fixed per tracer, so the family lookup and label
        #: validation need not repeat on every closed span.
        self._span_metrics: "dict[str, list]" = {}
        #: closed _Span objects, reused by the next ``span`` call (spans are
        #: strictly LIFO, so a closed one can never still be live).
        self._pool: "list[_Span]" = []

    @property
    def records(self) -> "list[SpanRecord]":
        """Closed spans in order (capped at ``max_records``)."""
        return [SpanRecord(name=n, parent=p, depth=d, duration_s=s)
                for n, p, d, s in self._records_raw]

    def span(self, name: str) -> _Span:
        pool = self._pool
        if pool:
            span = pool.pop()
            span._name = name
            span._start = None
            return span
        return _Span(self, name)

    def _close(self, name: str, parent: "str | None", depth: int,
               duration: "float | None") -> None:
        raw = self._records_raw
        if len(raw) < self.max_records:
            raw.append((name, parent, depth, duration))
        stats = self._stats.get(name)
        if stats is None:
            stats = self._stats[name] = SpanStats()
        stats.add(duration)
        if self.registry is not None:
            entry = self._span_metrics.get(name)
            if entry is None:
                entry = self._span_metrics[name] = [
                    self.registry.counter(
                        "repro_span_total", "Closed pipeline spans.", ("span",)
                    ).labels(span=name),
                    None,  # histogram child, declared on first timed close
                ]
            entry[0].inc()
            if duration is not None:
                hist = entry[1]
                if hist is None:
                    hist = entry[1] = self.registry.histogram(
                        "repro_span_seconds", "Span durations.", ("span",)
                    ).labels(span=name)
                hist.observe(duration)

    # ------------------------------------------------------------- reading
    def stats(self) -> "dict[str, SpanStats]":
        return dict(self._stats)

    def snapshot(self) -> "dict[str, dict]":
        """JSON-able per-span aggregates."""
        return {
            name: {
                "count": s.count,
                "total_s": s.total_s,
                "mean_s": s.mean_s,
                "max_s": s.max_s,
                "timed": s.timed,
            }
            for name, s in sorted(self._stats.items())
        }

    def render(self) -> str:
        """A fixed-width per-span summary table."""
        rows = [
            (name, str(s.count),
             f"{s.total_s * 1e3:.2f}" if s.timed else "-",
             f"{s.mean_s * 1e6:.1f}" if s.timed else "-")
            for name, s in sorted(self._stats.items())
        ]
        header = ("span", "count", "total ms", "mean us")
        widths = [max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
                  for i, h in enumerate(header)]
        lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
        lines += ["  ".join(c.ljust(w) for c, w in zip(r, widths)) for r in rows]
        return "\n".join(lines)

    def reset(self) -> None:
        self._records_raw.clear()
        self._stats.clear()
        # Drop cached metric children too: a harness that resets the tracer
        # may also have reset the registry, orphaning the old children.
        self._span_metrics.clear()


# --------------------------------------------------------------- ambient
_tracer_stack: "list[Tracer]" = []


def current_tracer() -> "Tracer | NullTracer":
    """The innermost :func:`use_tracer` override, else the no-op tracer."""
    return _tracer_stack[-1] if _tracer_stack else NULL_TRACER


@contextmanager
def use_tracer(tracer: Tracer):
    """Route spans opened in this block into ``tracer``."""
    _tracer_stack.append(tracer)
    try:
        yield tracer
    finally:
        _tracer_stack.pop()
