"""Injectable clocks for the observability layer.

The numeric packages (``core``/``ml``/``interp``) are pure functions of
their inputs and seeds — RL003 bans wall-clock reads there — yet the
observability layer must measure durations somewhere. The resolution is
dependency injection: everything in :mod:`repro.obs` that can time work
takes a ``clock`` argument satisfying :class:`Clock` (any zero-argument
callable returning monotonically non-decreasing seconds) and records no
duration at all when none is given. Wall-clock access is confined to
:func:`system_clock`, which orchestration layers (``monitor``, ``faults``,
``perf.bench``) inject; deterministic tests inject a :class:`ManualClock`
and advance it by hand.
"""

from __future__ import annotations

import time
from typing import Callable, Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """A monotonic time source: call it, get seconds as a float."""

    def __call__(self) -> float: ...


def system_clock() -> Callable[[], float]:
    """The process-wide monotonic clock (``time.perf_counter``).

    Returned as a value rather than called at import time so that merely
    importing :mod:`repro.obs` never touches a clock.
    """
    return time.perf_counter


class ManualClock:
    """A deterministic clock for tests and simulations.

    Starts at ``start`` seconds and only moves when :meth:`advance` is
    called, so any duration measured against it is an exact function of
    the test script.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        """Move the clock forward; negative steps are rejected."""
        if seconds < 0:
            raise ValueError("ManualClock cannot run backwards")
        self._now += float(seconds)

    @property
    def now(self) -> float:
        return self._now
