"""A dependency-free metrics registry: counters, gauges, histograms.

The shape follows the Prometheus client model — named metric *families*
with declared label names, addressed children per label-value combination —
but the implementation is deliberately small and deterministic: plain
floats, fixed histogram bucket boundaries, no background threads, and no
clock reads anywhere (durations enter as observed values, measured by
whoever holds a :mod:`~repro.obs.clock`).

Registration is idempotent: asking a registry for a family that already
exists with the same type/labels/buckets returns the existing one, so
instrumented library code can declare its metrics at the point of use
without import-order ceremony. Re-declaring a name with a *different*
signature raises — silent type drift is how dashboards lie.

The default registry is process-global (:func:`get_registry`), and a
scoped override (:func:`use_registry`) lets a harness — the chaos sweep,
``repro-bench``, a test — collect everything emitted inside a ``with``
block into its own registry without threading a handle through every
layer. See ``docs/observability.md`` for the metric catalog.
"""

from __future__ import annotations

from contextlib import contextmanager

from ..errors import ValidationError

#: Default histogram buckets: latency-flavoured, in seconds, spanning the
#: microsecond-to-minute range the monitor's self-measurements live in.
DEFAULT_BUCKETS: "tuple[float, ...]" = (
    1e-5, 1e-4, 1e-3, 5e-3, 0.025, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0,
)

_VALID_KINDS = ("counter", "gauge", "histogram")


def _check_name(name: str) -> str:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ValidationError(f"invalid metric name {name!r}")
    if name[0].isdigit():
        raise ValidationError(f"metric name {name!r} must not start with a digit")
    return name


class Counter:
    """A monotonically increasing value (one labeled child of a family)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValidationError("counters only go up; use a gauge")
        self.value += float(amount)


class Gauge:
    """A value that can go anywhere (one labeled child of a family)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += float(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.value -= float(amount)


class Histogram:
    """Fixed-boundary histogram (one labeled child of a family).

    ``bucket_counts[i]`` counts observations ``<= boundaries[i]``
    *non*-cumulatively; the exposition layer renders the cumulative
    ``le``-style view Prometheus expects. The overflow bucket (``+Inf``)
    is the last slot.
    """

    __slots__ = ("boundaries", "bucket_counts", "sum", "count")

    def __init__(self, boundaries: "tuple[float, ...]") -> None:
        self.boundaries = boundaries
        self.bucket_counts = [0] * (len(boundaries) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.boundaries):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def cumulative(self) -> "list[tuple[float, int]]":
        """``(le, cumulative_count)`` pairs, ending with ``(inf, count)``."""
        out: "list[tuple[float, int]]" = []
        running = 0
        for bound, n in zip(self.boundaries, self.bucket_counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), self.count))
        return out


_CHILD_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric with declared label names and per-label children."""

    def __init__(
        self,
        kind: str,
        name: str,
        help: str,
        label_names: "tuple[str, ...]" = (),
        buckets: "tuple[float, ...] | None" = None,
    ) -> None:
        if kind not in _VALID_KINDS:
            raise ValidationError(f"unknown metric kind {kind!r}")
        if kind == "histogram":
            buckets = tuple(float(b) for b in (buckets or DEFAULT_BUCKETS))
            if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
                raise ValidationError(
                    f"histogram {name!r}: buckets must be strictly increasing"
                )
        elif buckets is not None:
            raise ValidationError(f"{kind} {name!r} does not take buckets")
        self.kind = kind
        self.name = _check_name(name)
        self.help = str(help)
        self.label_names = tuple(label_names)
        self.buckets = buckets
        self._children: "dict[tuple[str, ...], object]" = {}

    def signature(self) -> tuple:
        return (self.kind, self.label_names, self.buckets)

    # ------------------------------------------------------------- children
    def labels(self, **label_values: str):
        """The child for one label-value combination (created on first use)."""
        # Kwargs keys are unique, so "same length and every declared name
        # present" is exactly the multiset equality the slow sorted-tuple
        # comparison checked — without the two sorts per call.
        key = None
        if len(label_values) == len(self.label_names):
            try:
                key = tuple(str(label_values[n]) for n in self.label_names)
            except KeyError:
                key = None
        if key is None:
            raise ValidationError(
                f"metric {self.name!r} declares labels {self.label_names}, "
                f"got {tuple(sorted(label_values))}"
            )
        child = self._children.get(key)
        if child is None:
            child = self._new_child()
            self._children[key] = child
        return child

    def _new_child(self):
        if self.kind == "histogram":
            return Histogram(self.buckets)
        return _CHILD_TYPES[self.kind]()

    def _default_child(self):
        if self.label_names:
            raise ValidationError(
                f"metric {self.name!r} has labels {self.label_names}; "
                "address a child via .labels(...)"
            )
        return self.labels()

    # Convenience: an unlabeled family acts as its own single child.
    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    @property
    def value(self) -> float:
        return self._default_child().value

    def samples(self) -> "list[tuple[dict[str, str], object]]":
        """``(labels_dict, child)`` pairs in insertion order."""
        return [
            (dict(zip(self.label_names, key)), child)
            for key, child in self._children.items()
        ]

    def clear(self) -> None:
        self._children.clear()


class MetricsRegistry:
    """A namespace of metric families with an idempotent declaration API."""

    def __init__(self) -> None:
        self._families: "dict[str, MetricFamily]" = {}

    # ---------------------------------------------------------- declaration
    def _declare(self, kind, name, help, label_names, buckets=None) -> MetricFamily:
        family = self._families.get(name)
        if family is not None:
            # Hot path for instrumented code declaring at the point of use:
            # compare signatures without building a throwaway family.
            if kind == "histogram":
                norm_buckets = tuple(float(b) for b in (buckets or DEFAULT_BUCKETS))
            else:
                norm_buckets = None
            signature = (kind, tuple(label_names), norm_buckets)
            if family.signature() != signature:
                raise ValidationError(
                    f"metric {name!r} re-declared with a different signature: "
                    f"{family.signature()} vs {signature}"
                )
            return family
        family = MetricFamily(kind, name, help, tuple(label_names), buckets)
        self._families[name] = family
        return family

    def counter(self, name: str, help: str = "",
                labels: "tuple[str, ...]" = ()) -> MetricFamily:
        return self._declare("counter", name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: "tuple[str, ...]" = ()) -> MetricFamily:
        return self._declare("gauge", name, help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: "tuple[str, ...]" = (),
                  buckets: "tuple[float, ...] | None" = None) -> MetricFamily:
        return self._declare("histogram", name, help, labels, buckets)

    # -------------------------------------------------------------- reading
    def families(self) -> "list[MetricFamily]":
        return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> "MetricFamily | None":
        return self._families.get(name)

    def snapshot(self) -> "dict[str, dict]":
        """A plain JSON-able view of every family and child."""
        out: "dict[str, dict]" = {}
        for family in self.families():
            samples = []
            for labels, child in family.samples():
                if family.kind == "histogram":
                    samples.append({
                        "labels": labels,
                        "buckets": [[le, n] for le, n in child.cumulative()],
                        "sum": child.sum,
                        "count": child.count,
                    })
                else:
                    samples.append({"labels": labels, "value": child.value})
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "label_names": list(family.label_names),
                "samples": samples,
            }
        return out

    def reset(self) -> None:
        """Drop every child (declarations survive, values go to zero)."""
        for family in self._families.values():
            family.clear()


# --------------------------------------------------------------- defaults
#: The process-global registry instrumented library code lands in when no
#: harness has installed a scoped one.
GLOBAL_REGISTRY = MetricsRegistry()

_registry_stack: "list[MetricsRegistry]" = []


def get_registry() -> MetricsRegistry:
    """The innermost :func:`use_registry` override, else the global one."""
    return _registry_stack[-1] if _registry_stack else GLOBAL_REGISTRY


@contextmanager
def use_registry(registry: MetricsRegistry):
    """Route everything emitted in this block into ``registry``."""
    _registry_stack.append(registry)
    try:
        yield registry
    finally:
        _registry_stack.pop()
