"""Self-overhead profiling: what does the monitor cost per sample?

Monitoring overhead is a first-class result in the energy-measurement
literature (Diamond et al. measure what RAPL tooling itself costs; the
SmartWatts power meter exposes its own runtime telemetry), and HighRPM's
operating point only makes sense if restoring a sample costs far less than
the sampling period it fills. :class:`OverheadProfiler` is that
meta-measurement for this reproduction: the service wraps every
``observe_run`` in :meth:`measure`, and the profiler accumulates the
monitor's own CPU seconds against the number of dense samples it restored.

The headline figure is the **budget fraction** — self seconds per restored
sample divided by the sampling period (1 s at the paper's 1 Sa/s) — i.e.
the share of each monitored second the monitor spends monitoring. It is
reported in the chaos report, the ``repro-bench`` trajectory, and the
``python -m repro.obs.dump`` demo.

Like everything in :mod:`repro.obs`, timing is injected: with no clock the
profiler still counts runs and samples but reports zero seconds
(``clocked: false``), keeping instrumented code deterministic under test.
"""

from __future__ import annotations

from contextlib import contextmanager

from .clock import Clock

#: The paper's restored stream is 1 sample per second.
DEFAULT_SAMPLE_PERIOD_S = 1.0


class _Measurement:
    """Mutable handle yielded by :meth:`OverheadProfiler.measure`; the
    caller fills in ``samples`` once it knows how many were restored."""

    __slots__ = ("samples",)

    def __init__(self) -> None:
        self.samples = 0


class OverheadProfiler:
    """Accumulates the monitor's self-cost per restored sample."""

    def __init__(
        self,
        clock: "Clock | None" = None,
        sample_period_s: float = DEFAULT_SAMPLE_PERIOD_S,
        registry=None,
    ) -> None:
        self.clock = clock
        self.sample_period_s = float(sample_period_s)
        self.registry = registry
        self.runs = 0
        self.samples = 0
        self.seconds = 0.0

    @contextmanager
    def measure(self):
        """Time one monitored run; set ``.samples`` on the yielded handle."""
        handle = _Measurement()
        start = self.clock() if self.clock is not None else None
        try:
            yield handle
        finally:
            seconds = self.clock() - start if start is not None else 0.0
            self.record(handle.samples, seconds)

    def record(self, samples: int, seconds: float) -> None:
        """Fold one run's (restored samples, self seconds) into the totals."""
        self.runs += 1
        self.samples += int(samples)
        self.seconds += float(seconds)
        if self.registry is not None:
            self.registry.counter(
                "repro_monitor_overhead_seconds_total",
                "Monitor self-time spent restoring, all runs.",
            ).inc(float(seconds))
            self.registry.counter(
                "repro_monitor_overhead_samples_total",
                "Dense samples restored, all runs.",
            ).inc(int(samples))
            self.registry.gauge(
                "repro_monitor_overhead_seconds_per_sample",
                "Monitor self-time per restored sample.",
            ).set(self.seconds_per_sample)
            self.registry.gauge(
                "repro_monitor_overhead_budget_fraction",
                "Self-time per sample over the sampling period.",
            ).set(self.budget_fraction)

    # ------------------------------------------------------------- figures
    @property
    def clocked(self) -> bool:
        return self.clock is not None

    @property
    def seconds_per_sample(self) -> float:
        return self.seconds / self.samples if self.samples else 0.0

    @property
    def budget_fraction(self) -> float:
        """Share of each sampling period spent inside the monitor itself."""
        return self.seconds_per_sample / self.sample_period_s

    def report(self) -> "dict[str, float | int | bool]":
        """JSON-able summary (embedded in chaos and bench reports)."""
        return {
            "clocked": self.clocked,
            "runs": self.runs,
            "samples": self.samples,
            "seconds_total": self.seconds,
            "seconds_per_sample": self.seconds_per_sample,
            "sample_period_s": self.sample_period_s,
            "budget_fraction": self.budget_fraction,
        }

    def render(self) -> str:
        """One human line: the number an operator actually wants."""
        return render_overhead(self.report())

    def reset(self) -> None:
        self.runs = 0
        self.samples = 0
        self.seconds = 0.0


def render_overhead(report: "dict[str, float | int | bool]") -> str:
    """Format a :meth:`OverheadProfiler.report` dict as the one-line figure
    (shared by the profiler itself, the chaos report, and ``repro-bench``)."""
    if not report.get("clocked"):
        return (f"self-overhead: unclocked ({report['samples']} samples "
                f"across {report['runs']} runs)")
    return (
        f"self-overhead: {report['seconds_per_sample'] * 1e3:.3f} ms/sample "
        f"= {report['budget_fraction'] * 100:.3f}% of the "
        f"{report['sample_period_s']:g} s sampling budget "
        f"({report['samples']} samples across {report['runs']} runs)"
    )
