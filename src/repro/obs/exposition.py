"""Prometheus-style text exposition and its inverse.

:func:`render_prometheus` serialises a :class:`~repro.obs.metrics.MetricsRegistry`
(or a snapshot dict from ``registry.snapshot()``) into the text exposition
format — ``# HELP``/``# TYPE`` preambles, ``name{label="value"} value``
samples, cumulative ``_bucket``/``_sum``/``_count`` triples for
histograms. :func:`parse_prometheus` parses that text back into a
snapshot-shaped dict, which makes the format a checked contract:
``parse_prometheus(render_prometheus(reg)) == reg.snapshot()`` for any
populated registry (the round-trip test in ``tests/test_obs_metrics.py``).

Floats are rendered with ``repr``, whose shortest-round-trip guarantee is
what makes the equality above exact rather than approximate.
"""

from __future__ import annotations

import re

from ..errors import ValidationError
from .metrics import MetricsRegistry


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape_label(value: str) -> str:
    return value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _fmt_value(value: float) -> str:
    value = float(value)
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)


def _labels_text(labels: "dict[str, str]") -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in labels.items())
    return "{" + inner + "}"


def render_prometheus(source: "MetricsRegistry | dict") -> str:
    """Text exposition of a registry or of a ``registry.snapshot()`` dict."""
    snapshot = source.snapshot() if isinstance(source, MetricsRegistry) else source
    lines: "list[str]" = []
    for name in sorted(snapshot):
        family = snapshot[name]
        lines.append(f"# HELP {name} {_escape_help(family.get('help', ''))}")
        lines.append(f"# TYPE {name} {family['type']}")
        for sample in family["samples"]:
            labels = dict(sample["labels"])
            if family["type"] == "histogram":
                for le, count in sample["buckets"]:
                    le_text = "+Inf" if le == float("inf") else _fmt_value(le)
                    bucket_labels = {**labels, "le": le_text}
                    lines.append(
                        f"{name}_bucket{_labels_text(bucket_labels)} {int(count)}"
                    )
                lines.append(f"{name}_sum{_labels_text(labels)} "
                             f"{_fmt_value(sample['sum'])}")
                lines.append(f"{name}_count{_labels_text(labels)} "
                             f"{int(sample['count'])}")
            else:
                lines.append(
                    f"{name}{_labels_text(labels)} {_fmt_value(sample['value'])}"
                )
    return "\n".join(lines) + "\n"


_HELP_RE = re.compile(r"^# HELP (?P<name>[A-Za-z_:][\w:]*)(?: (?P<help>.*))?$")
_TYPE_RE = re.compile(r"^# TYPE (?P<name>[A-Za-z_:][\w:]*) (?P<kind>\w+)$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[A-Za-z_:][\w:]*)(?:\{(?P<labels>.*)\})? (?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'(?P<key>[A-Za-z_][\w]*)="(?P<value>(?:\\.|[^"\\])*)"')


def _parse_labels(text: "str | None") -> "dict[str, str]":
    if not text:
        return {}
    labels: "dict[str, str]" = {}
    pos = 0
    while pos < len(text):
        m = _LABEL_RE.match(text, pos)
        if m is None:
            raise ValidationError(f"malformed label segment: {text[pos:]!r}")
        labels[m.group("key")] = _unescape_label(m.group("value"))
        pos = m.end()
        if pos < len(text):
            if text[pos] != ",":
                raise ValidationError(f"malformed label segment: {text[pos:]!r}")
            pos += 1
    return labels


def parse_prometheus(text: str) -> "dict[str, dict]":
    """Parse exposition text back into a ``registry.snapshot()``-shaped dict.

    Histogram series (``_bucket``/``_sum``/``_count``) are reassembled into
    one sample per label combination. Lines that are neither comments nor
    well-formed samples raise :class:`~repro.errors.ValidationError`.
    """
    families: "dict[str, dict]" = {}
    # histogram accumulators: name -> {label_key: {"labels", "buckets", ...}}
    partial: "dict[str, dict[tuple, dict]]" = {}

    def family_for(name: str) -> dict:
        return families.setdefault(
            name, {"type": None, "help": "", "label_names": [], "samples": []}
        )

    def owning_histogram(name: str) -> "str | None":
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix):
                base = name[: -len(suffix)]
                if families.get(base, {}).get("type") == "histogram":
                    return base
        return None

    def histogram_slot(base: str, labels: "dict[str, str]") -> dict:
        key = tuple(sorted((k, v) for k, v in labels.items()))
        slot = partial.setdefault(base, {}).get(key)
        if slot is None:
            slot = {"labels": labels, "buckets": [], "sum": 0.0, "count": 0}
            partial[base][key] = slot
            families[base]["samples"].append(slot)
            if not families[base]["label_names"]:
                families[base]["label_names"] = list(labels)
        return slot

    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        m = _HELP_RE.match(line)
        if m:
            fam = family_for(m.group("name"))
            fam["help"] = (m.group("help") or "").replace("\\n", "\n") \
                                                 .replace("\\\\", "\\")
            continue
        m = _TYPE_RE.match(line)
        if m:
            family_for(m.group("name"))["type"] = m.group("kind")
            continue
        if line.startswith("#"):
            continue  # free-form comment
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValidationError(f"malformed exposition line: {raw!r}")
        name = m.group("name")
        labels = _parse_labels(m.group("labels"))
        value = _parse_value(m.group("value"))
        base = owning_histogram(name)
        if base is not None:
            if name.endswith("_bucket"):
                le = labels.pop("le", None)
                if le is None:
                    raise ValidationError(f"histogram bucket without le: {raw!r}")
                slot = histogram_slot(base, labels)
                slot["buckets"].append([_parse_value(le), int(value)])
            elif name.endswith("_sum"):
                histogram_slot(base, labels)["sum"] = value
            else:
                histogram_slot(base, labels)["count"] = int(value)
            continue
        fam = family_for(name)
        if fam["type"] is None:
            fam["type"] = "untyped"
        fam["samples"].append({"labels": labels, "value": value})
        if not fam["label_names"]:
            fam["label_names"] = list(labels)
    return families
