"""Render collected observability data from the command line.

Three modes::

    python -m repro.obs.dump                     # live demo
    python -m repro.obs.dump report.json         # re-render saved data
    python -m repro.obs.dump s0.json s1.json     # merge shard snapshots

With no input file the tool trains a deliberately tiny monitor service
(:meth:`~repro.faults.chaos.ChaosSettings.tiny` — seconds of work, useless
accuracy), observes one run on a healthy and a flaky node, and prints what
the instrumentation saw: the Prometheus exposition, the span table, and
the self-overhead line. That is the fastest way to see every metric name
in ``docs/observability.md`` with real values attached.

With input files it re-renders saved data without running anything: each
file may be a bare ``MetricsRegistry.snapshot()`` dict, a wrapped
``repro-obs/1`` payload (what ``--output`` writes), or a chaos report
(``python -m repro.faults.chaos --output``), whose embedded ``metrics``
snapshot is used.

With *several* input files their metric snapshots are merged through
:func:`repro.obs.merge_snapshots` — the registry-merge contract the
sharded service daemon's ``/metrics`` endpoint uses (counters and
histograms sum across inputs, colliding gauges follow ``--gauges``, see
``docs/observability.md``). ``--label-by-source`` tags every sample with
``source="<file stem>"`` first, turning the merged exposition into a
per-input view with no collisions at all. Spans and self-overhead are
only rendered for single-input payloads (they have no merge semantics).

``--format prom`` (default) prints text exposition; ``--format json``
prints the wrapped JSON payload. ``--output PATH`` writes instead of
printing.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .exposition import render_prometheus
from .merge import GAUGE_POLICIES, merge_snapshots
from .metrics import MetricsRegistry, use_registry
from .overhead import render_overhead

#: Wrapped payload schema written by ``--format json`` / ``--output``.
SCHEMA = "repro-obs/1"


def demo_payload() -> "dict[str, object]":
    """Run the tiny instrumented demo and return its wrapped payload."""
    # Upward imports (monitor/faults sit above obs in the layer DAG) are
    # confined to this CLI entry point, which nothing imports back.
    from ..faults.chaos import ChaosSettings, reference_run  # repro-lint: disable=layering — CLI-only upward import, nothing imports back
    from ..faults.inject import FaultySensor  # repro-lint: disable=layering — CLI-only upward import, nothing imports back
    from ..sensors.ipmi import IPMISensor  # repro-lint: disable=layering — CLI-only upward import, nothing imports back

    registry = MetricsRegistry()
    with use_registry(registry):
        service, bundle = reference_run(ChaosSettings.tiny())
        service.register_node("demo-healthy")
        service.register_node(
            "demo-flaky",
            sensor=FaultySensor(
                IPMISensor(service.spec, seed=11), seed=12, fail_first=2
            ),
        )
        service.observe_run("demo-healthy", bundle)
        service.observe_run("demo-flaky", bundle)
    return {
        "schema": SCHEMA,
        "metrics": registry.snapshot(),
        "spans": service.tracer.snapshot(),
        "self_overhead": service.profiler.report(),
    }


def load_payload(path: str) -> "dict[str, object]":
    """Read a saved payload: wrapped, bare snapshot, or chaos report."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict):
        raise SystemExit(f"{path}: expected a JSON object")
    if data.get("schema") == SCHEMA:
        return data
    if "metrics" in data and "scenarios" in data:  # a chaos report
        return {
            "schema": SCHEMA,
            "metrics": data["metrics"],
            "spans": {},
            "self_overhead": data.get("self_overhead", {}),
        }
    # Bare MetricsRegistry.snapshot(): {name: {type, help, ...}, ...}
    return {"schema": SCHEMA, "metrics": data, "spans": {},
            "self_overhead": {}}


def _render_spans(spans: "dict[str, dict]") -> str:
    rows = [
        (name, str(s["count"]),
         f"{s['total_s'] * 1e3:.2f}" if s.get("timed") else "-",
         f"{s['mean_s'] * 1e6:.1f}" if s.get("timed") else "-")
        for name, s in sorted(spans.items())
    ]
    header = ("span", "count", "total ms", "mean us")
    widths = [max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
              for i, h in enumerate(header)]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
    lines += ["  ".join(c.ljust(w) for c, w in zip(r, widths)) for r in rows]
    return "\n".join(lines)


def render_text(payload: "dict[str, object]") -> str:
    """Exposition + span table + overhead line, for humans."""
    parts = [render_prometheus(payload["metrics"])]
    if payload.get("spans"):
        parts.append(_render_spans(payload["spans"]) + "\n")
    if payload.get("self_overhead"):
        parts.append(render_overhead(payload["self_overhead"]) + "\n")
    return "\n".join(parts)


def merged_payload(paths: "list[str]", gauges: str,
                   label_by_source: bool) -> "dict[str, object]":
    """Load every input and merge their metric snapshots into one payload.

    Single inputs pass through unchanged (spans/self-overhead kept);
    merged outputs carry only the merged ``metrics`` — spans and overhead
    reports have no cross-registry merge semantics.
    """
    payloads = [load_payload(p) for p in paths]
    if len(payloads) == 1:
        return payloads[0]
    labels = None
    if label_by_source:
        labels = [{"source": Path(p).stem} for p in paths]
    metrics = merge_snapshots(
        [p["metrics"] for p in payloads], gauges=gauges, labels=labels
    )
    return {"schema": SCHEMA, "metrics": metrics, "spans": {},
            "self_overhead": {}, "merged_from": len(payloads)}


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.dump",
        description="Render collected metrics/spans/self-overhead "
                    "(live demo when no input file is given; several "
                    "inputs are merged shard-style).",
    )
    parser.add_argument("snapshots", nargs="*", default=[], metavar="PATH",
                        help="saved payloads, registry snapshots, or chaos "
                             "report JSON (omit to run the live demo; "
                             "several files are merged)")
    parser.add_argument("--format", choices=("prom", "json"), default="prom",
                        help="text exposition (default) or wrapped JSON")
    parser.add_argument("--gauges", choices=GAUGE_POLICIES, default="last",
                        help="gauge collision policy when merging several "
                             "inputs (default: last)")
    parser.add_argument("--label-by-source", action="store_true",
                        help="tag each input's samples with "
                             "source=\"<file stem>\" before merging")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="write instead of printing")
    args = parser.parse_args(argv)

    payload = (
        merged_payload(args.snapshots, args.gauges, args.label_by_source)
        if args.snapshots else demo_payload()
    )
    if args.format == "json":
        text = json.dumps(payload, indent=2) + "\n"
    else:
        text = render_text(payload)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.output}")
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
