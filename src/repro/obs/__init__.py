"""Observability substrate: metrics, tracing, self-overhead profiling.

HighRPM is itself a monitoring system, so this reproduction measures
itself the way it measures nodes: a dependency-free metrics registry
(:mod:`~repro.obs.metrics`), a span tracer for the restoration pipeline
(:mod:`~repro.obs.tracing`), a self-overhead profiler reporting the
monitor's cost per restored sample (:mod:`~repro.obs.overhead`), and a
Prometheus-style text exposition with a checked round-trip parser
(:mod:`~repro.obs.exposition`). ``python -m repro.obs.dump`` renders it
all from the command line.

The package sits at layer 0 of the lint DAG — everything above may import
it — and is deterministic by construction: no wall-clock reads anywhere;
durations only exist when an orchestration layer injects a clock
(:mod:`~repro.obs.clock`). The metric catalog and span taxonomy live in
``docs/observability.md``.
"""

from .clock import Clock, ManualClock, system_clock
from .exposition import parse_prometheus, render_prometheus
from .metrics import (
    DEFAULT_BUCKETS,
    GLOBAL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    get_registry,
    use_registry,
)
from .merge import GAUGE_POLICIES, merge_snapshots
from .overhead import DEFAULT_SAMPLE_PERIOD_S, OverheadProfiler, render_overhead
from .tracing import (
    NULL_TRACER,
    NullTracer,
    SpanRecord,
    SpanStats,
    Tracer,
    current_tracer,
    use_tracer,
)

__all__ = [
    "Clock",
    "ManualClock",
    "system_clock",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "GLOBAL_REGISTRY",
    "get_registry",
    "use_registry",
    "render_prometheus",
    "parse_prometheus",
    "merge_snapshots",
    "GAUGE_POLICIES",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "SpanRecord",
    "SpanStats",
    "current_tracer",
    "use_tracer",
    "OverheadProfiler",
    "render_overhead",
    "DEFAULT_SAMPLE_PERIOD_S",
]
