"""Merging metric snapshots from many registries into one exposition.

The sharded service daemon (:mod:`repro.serve`) runs one
:class:`~repro.obs.metrics.MetricsRegistry` per shard worker — ambient
registries do not cross process boundaries — and its ``/metrics`` endpoint
must serve the *fleet* view. :func:`merge_snapshots` folds any number of
``registry.snapshot()`` dicts into one snapshot-shaped dict that
:func:`~repro.obs.exposition.render_prometheus` can serialise.

Merge semantics (the registry-merge contract, see
``docs/observability.md``):

* Families merge **by name**. Every snapshot contributing a family must
  agree on its type and label names; a mismatch raises
  :class:`~repro.errors.ValidationError` (silent type drift is how
  dashboards lie — same rule as re-declaration inside one registry).
* Samples merge **by label values**. Label combinations unique to one
  snapshot pass through unchanged — per-node series from disjoint shards
  never collide.
* Colliding **counters** sum (each shard counted disjoint work, so the
  sum is the fleet total). Colliding **histograms** sum bucket-wise;
  their bucket boundaries must match exactly.
* Colliding **gauges** follow the ``gauges`` policy: ``"last"`` (default:
  the latest snapshot in argument order wins — right for
  point-in-time values like configured coefficients), ``"sum"`` (right
  for additive gauges like queue depths), or ``"max"``.
* ``help`` text: first non-empty wins.

Pass ``labels`` to tag every sample of the i-th snapshot with extra
label pairs (e.g. ``{"shard": "s0"}``) *before* merging — collisions then
only happen within one snapshot, which turns the merged exposition into a
per-shard view instead of a fleet-total view.
"""

from __future__ import annotations

from typing import Iterable

from ..errors import ValidationError

#: Valid gauge-collision policies.
GAUGE_POLICIES = ("last", "sum", "max")


def _labelled(sample: dict, extra: "dict[str, str] | None") -> dict:
    if not extra:
        return dict(sample)
    out = dict(sample)
    out["labels"] = {**sample.get("labels", {}), **{
        str(k): str(v) for k, v in extra.items()
    }}
    return out


def _label_key(sample: dict) -> tuple:
    return tuple(sorted((k, v) for k, v in sample.get("labels", {}).items()))


def _merge_histogram(name: str, into: dict, sample: dict) -> None:
    a, b = into.get("buckets", []), sample.get("buckets", [])
    if [le for le, _ in a] != [le for le, _ in b]:
        raise ValidationError(
            f"histogram {name!r}: cannot merge samples with different "
            f"bucket boundaries ({[le for le, _ in a]} vs {[le for le, _ in b]})"
        )
    into["buckets"] = [[le, na + nb] for (le, na), (_, nb) in zip(a, b)]
    into["sum"] = float(into.get("sum", 0.0)) + float(sample.get("sum", 0.0))
    into["count"] = int(into.get("count", 0)) + int(sample.get("count", 0))


def _merge_value(kind: str, name: str, into: dict, sample: dict,
                 gauges: str) -> None:
    if kind == "histogram":
        _merge_histogram(name, into, sample)
        return
    current = float(into.get("value", 0.0))
    incoming = float(sample.get("value", 0.0))
    if kind == "counter":
        into["value"] = current + incoming
    elif gauges == "sum":
        into["value"] = current + incoming
    elif gauges == "max":
        into["value"] = max(current, incoming)
    else:  # "last": the later snapshot in argument order wins
        into["value"] = incoming


def merge_snapshots(
    snapshots: "Iterable[dict]",
    gauges: str = "last",
    labels: "list[dict[str, str] | None] | None" = None,
) -> "dict[str, dict]":
    """Fold many ``registry.snapshot()`` dicts into one merged snapshot.

    ``labels[i]`` (optional) is added to every sample of ``snapshots[i]``
    before merging. See the module docstring for collision semantics.
    """
    if gauges not in GAUGE_POLICIES:
        raise ValidationError(
            f"unknown gauge merge policy {gauges!r}; expected one of "
            f"{GAUGE_POLICIES}"
        )
    snapshots = list(snapshots)
    if labels is not None and len(labels) != len(snapshots):
        raise ValidationError(
            f"labels list has {len(labels)} entries for "
            f"{len(snapshots)} snapshots"
        )
    merged: "dict[str, dict]" = {}
    slots: "dict[str, dict[tuple, dict]]" = {}
    for i, snapshot in enumerate(snapshots):
        extra = labels[i] if labels is not None else None
        extra_names = list(extra) if extra else []
        for name in snapshot:
            family = snapshot[name]
            kind = family.get("type", "untyped")
            label_names = list(family.get("label_names", [])) + extra_names
            have = merged.get(name)
            if have is None:
                have = merged[name] = {
                    "type": kind,
                    "help": family.get("help", ""),
                    "label_names": label_names,
                    "samples": [],
                }
                slots[name] = {}
            else:
                if have["type"] != kind:
                    raise ValidationError(
                        f"metric {name!r}: cannot merge type "
                        f"{have['type']!r} with {kind!r}"
                    )
                if sorted(have["label_names"]) != sorted(label_names):
                    raise ValidationError(
                        f"metric {name!r}: cannot merge label names "
                        f"{have['label_names']} with {label_names}"
                    )
                if not have["help"]:
                    have["help"] = family.get("help", "")
            for sample in family.get("samples", []):
                sample = _labelled(sample, extra)
                key = _label_key(sample)
                slot = slots[name].get(key)
                if slot is None:
                    slots[name][key] = sample
                    have["samples"].append(sample)
                else:
                    _merge_value(kind, name, slot, sample, gauges)
    return merged
