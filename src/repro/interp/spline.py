"""Natural cubic spline interpolation, implemented from scratch.

Given knots ``(x_k, y_k)`` the natural cubic spline is the C² piecewise
cubic with zero second derivative at both ends. Its second derivatives at
the knots solve a symmetric tridiagonal system, which we solve with the
Thomas algorithm in O(n) — no dense linear algebra.

This is the trend model inside StaticTRR: the sparse IPMI readings are the
knots, and evaluating the spline at 1 Sa/s restores the long-term power
trend (:class:`repro.core.static_trr.StaticTRR` adds the residual model on
top for short-term fluctuations).
"""

from __future__ import annotations

import numpy as np

from ..errors import NotFittedError, ValidationError
from ..utils.validation import check_1d, check_consistent_length


def _thomas_solve(lower: np.ndarray, diag: np.ndarray, upper: np.ndarray,
                  rhs: np.ndarray) -> np.ndarray:
    """Solve a tridiagonal system in O(n) (Thomas algorithm).

    ``lower[i]`` multiplies ``x[i-1]`` in row ``i``; ``upper[i]`` multiplies
    ``x[i+1]``. The matrix must be diagonally dominant (true for the spline
    system, whose diagonal is 2·(h_i + h_{i+1}) against off-diagonals h).
    """
    n = diag.shape[0]
    c = np.empty(n)
    d = np.empty(n)
    c[0] = upper[0] / diag[0]
    d[0] = rhs[0] / diag[0]
    for i in range(1, n):
        denom = diag[i] - lower[i] * c[i - 1]
        c[i] = upper[i] / denom if i < n - 1 else 0.0
        d[i] = (rhs[i] - lower[i] * d[i - 1]) / denom
    x = np.empty(n)
    x[-1] = d[-1]
    for i in range(n - 2, -1, -1):
        x[i] = d[i] - c[i] * x[i + 1]
    return x


class CubicSplineInterpolator:
    """Natural cubic spline through ``(x, y)`` knots.

    Follows the estimator convention of the rest of the library:
    :meth:`fit` then :meth:`predict`. Evaluation outside the knot range is
    clamped to the boundary cubic's linear extension (constant second
    derivative zero ⇒ linear extrapolation), which keeps extrapolated power
    finite — important because StaticTRR post-processing clamps against
    physical power limits anyway.
    """

    def __init__(self, extrapolate: str = "linear") -> None:
        if extrapolate not in ("linear", "clamp"):
            raise ValidationError("extrapolate must be 'linear' or 'clamp'")
        self.extrapolate = extrapolate
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._m: np.ndarray | None = None  # second derivatives at the knots

    @property
    def is_fitted(self) -> bool:
        return self._x is not None

    def fit(self, x, y) -> "CubicSplineInterpolator":
        """Compute knot second derivatives from sparse readings."""
        x = check_1d(x, "x")
        y = check_1d(y, "y")
        check_consistent_length(x, y, names=("x", "y"))
        if x.shape[0] < 2:
            raise ValidationError("spline needs at least two knots")
        order = np.argsort(x)
        x, y = x[order], y[order]
        if np.any(np.diff(x) <= 0):
            raise ValidationError("spline knots must have distinct x values")
        n = x.shape[0]
        m = np.zeros(n)
        if n > 2:
            h = np.diff(x)
            # Interior rows of the tridiagonal system for second derivatives:
            # row k (knot i=k+1): h[k]·M_k + 2(h[k]+h[k+1])·M_{k+1} + h[k+1]·M_{k+2}.
            lower = np.concatenate(([0.0], h[1:-1]))
            diag = 2.0 * (h[:-1] + h[1:])
            upper = np.concatenate((h[1:-1], [0.0]))
            rhs = 6.0 * ((y[2:] - y[1:-1]) / h[1:] - (y[1:-1] - y[:-2]) / h[:-1])
            m[1:-1] = _thomas_solve(lower, diag, upper, rhs)
        self._x, self._y, self._m = x, y, m
        return self

    def predict(self, xq) -> np.ndarray:
        """Evaluate the spline at query points ``xq`` (vectorised)."""
        if self._x is None:
            raise NotFittedError("CubicSplineInterpolator.predict before fit")
        xq = check_1d(np.atleast_1d(xq), "xq")
        x, y, m = self._x, self._y, self._m
        n = x.shape[0]
        idx = np.clip(np.searchsorted(x, xq) - 1, 0, n - 2)
        h = x[idx + 1] - x[idx]
        a = (x[idx + 1] - xq) / h
        b = (xq - x[idx]) / h
        out = (
            a * y[idx]
            + b * y[idx + 1]
            + ((a**3 - a) * m[idx] + (b**3 - b) * m[idx + 1]) * h**2 / 6.0
        )
        below = xq < x[0]
        above = xq > x[-1]
        if below.any() or above.any():
            if self.extrapolate == "clamp":
                out[below] = y[0]
                out[above] = y[-1]
            else:
                out[below] = y[0] + self._slope_at(0) * (xq[below] - x[0])
                out[above] = y[-1] + self._slope_at(n - 1) * (xq[above] - x[-1])
        return out

    def fit_predict(self, x, y, xq) -> np.ndarray:
        return self.fit(x, y).predict(xq)

    def _slope_at(self, k: int) -> float:
        """First derivative of the spline at knot ``k`` (for extrapolation)."""
        x, y, m = self._x, self._y, self._m
        if k == 0:
            h = x[1] - x[0]
            return float((y[1] - y[0]) / h - h * (2 * m[0] + m[1]) / 6.0)
        h = x[k] - x[k - 1]
        return float((y[k] - y[k - 1]) / h + h * (2 * m[k] + m[k - 1]) / 6.0)
