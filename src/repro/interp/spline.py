"""Natural cubic spline interpolation, implemented from scratch.

Given knots ``(x_k, y_k)`` the natural cubic spline is the C² piecewise
cubic with zero second derivative at both ends. Its second derivatives at
the knots solve a symmetric tridiagonal system, which we solve with the
Thomas algorithm in O(n) — no dense linear algebra.

This is the trend model inside StaticTRR: the sparse IPMI readings are the
knots, and evaluating the spline at 1 Sa/s restores the long-term power
trend (:class:`repro.core.static_trr.StaticTRR` adds the residual model on
top for short-term fluctuations).
"""

from __future__ import annotations

import numpy as np

from ..errors import NotFittedError, ValidationError
from ..utils.validation import check_1d, check_consistent_length


def _thomas_solve(lower: np.ndarray, diag: np.ndarray, upper: np.ndarray,
                  rhs: np.ndarray) -> np.ndarray:
    """Solve a tridiagonal system in O(n) (Thomas algorithm).

    ``lower[i]`` multiplies ``x[i-1]`` in row ``i``; ``upper[i]`` multiplies
    ``x[i+1]``. The matrix must be diagonally dominant (true for the spline
    system, whose diagonal is 2·(h_i + h_{i+1}) against off-diagonals h).
    """
    n = diag.shape[0]
    c = np.empty(n)
    d = np.empty(n)
    c[0] = upper[0] / diag[0]
    d[0] = rhs[0] / diag[0]
    for i in range(1, n):
        denom = diag[i] - lower[i] * c[i - 1]
        c[i] = upper[i] / denom if i < n - 1 else 0.0
        d[i] = (rhs[i] - lower[i] * d[i - 1]) / denom
    x = np.empty(n)
    x[-1] = d[-1]
    for i in range(n - 2, -1, -1):
        x[i] = d[i] - c[i] * x[i + 1]
    return x


class CubicSplineInterpolator:
    """Natural cubic spline through ``(x, y)`` knots.

    Follows the estimator convention of the rest of the library:
    :meth:`fit` then :meth:`predict`. Evaluation outside the knot range is
    clamped to the boundary cubic's linear extension (constant second
    derivative zero ⇒ linear extrapolation), which keeps extrapolated power
    finite — important because StaticTRR post-processing clamps against
    physical power limits anyway.
    """

    def __init__(self, extrapolate: str = "linear") -> None:
        if extrapolate not in ("linear", "clamp"):
            raise ValidationError("extrapolate must be 'linear' or 'clamp'")
        self.extrapolate = extrapolate
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._m: np.ndarray | None = None  # second derivatives at the knots
        # Per-interval polynomial coefficients, compiled at fit time so
        # evaluation is one searchsorted + Horner (no a/b/h re-derivation).
        self._c0: np.ndarray | None = None
        self._c1: np.ndarray | None = None
        self._c2: np.ndarray | None = None
        self._c3: np.ndarray | None = None
        self._x_inner: np.ndarray | None = None  # knots sans x_0 (interval lookup)

    @property
    def is_fitted(self) -> bool:
        return self._x is not None

    def fit(self, x, y) -> "CubicSplineInterpolator":
        """Compute knot second derivatives from sparse readings."""
        x = check_1d(x, "x")
        y = check_1d(y, "y")
        check_consistent_length(x, y, names=("x", "y"))
        if x.shape[0] < 2:
            raise ValidationError("spline needs at least two knots")
        h = np.diff(x)
        if np.any(h <= 0):
            # Slow path: callers with unsorted knots (the common case —
            # reading indices — arrives already ascending and skips the sort).
            order = np.argsort(x)
            x, y = x[order], y[order]
            h = np.diff(x)
            if np.any(h <= 0):
                raise ValidationError("spline knots must have distinct x values")
        n = x.shape[0]
        m = np.zeros(n)
        if n > 2:
            # Interior rows of the tridiagonal system for second derivatives:
            # row k (knot i=k+1): h[k]·M_k + 2(h[k]+h[k+1])·M_{k+1} + h[k+1]·M_{k+2}.
            lower = np.concatenate(([0.0], h[1:-1]))
            diag = 2.0 * (h[:-1] + h[1:])
            upper = np.concatenate((h[1:-1], [0.0]))
            rhs = 6.0 * ((y[2:] - y[1:-1]) / h[1:] - (y[1:-1] - y[:-2]) / h[:-1])
            m[1:-1] = _thomas_solve(lower, diag, upper, rhs)
        self._x, self._y, self._m = x, y, m
        self._compile(h)
        return self

    def _compile(self, h: np.ndarray) -> None:
        """Precompute per-interval Horner coefficients.

        Interval ``k < n-1`` covers ``[x_k, x_{k+1})`` with the cubic
        ``c0 + dx·(c1 + dx·(c2 + dx·c3))`` in ``dx = xq − x_k``. Slot
        ``n-1`` is a boundary sentinel for ``xq ≥ x_{n-1}``: constant
        ``y_{n-1}`` under clamp extrapolation, the right-tangent line under
        linear — so knot queries land at ``dx = 0`` and reproduce ``y``
        exactly, and above-range queries need no separate mask.
        """
        x, y, m = self._x, self._y, self._m
        n = x.shape[0]
        c0 = np.empty(n)
        c1 = np.empty(n)
        c2 = np.empty(n)
        c3 = np.empty(n)
        c0[:-1] = y[:-1]
        c1[:-1] = (y[1:] - y[:-1]) / h - h * (2.0 * m[:-1] + m[1:]) / 6.0
        c2[:-1] = m[:-1] / 2.0
        c3[:-1] = (m[1:] - m[:-1]) / (6.0 * h)
        c0[-1] = y[-1]
        c1[-1] = 0.0 if self.extrapolate == "clamp" else self._slope_at(n - 1)
        c2[-1] = 0.0
        c3[-1] = 0.0
        self._c0, self._c1, self._c2, self._c3 = c0, c1, c2, c3
        # Searching the knots without x_0 maps xq directly to its interval
        # (count of interior knots ≤ xq), replacing the searchsorted−1 plus
        # clip of the naive lookup with a single call.
        self._x_inner = x[1:]

    def predict(self, xq) -> np.ndarray:
        """Evaluate the spline at query points ``xq`` (vectorised)."""
        if self._x is None:
            raise NotFittedError("CubicSplineInterpolator.predict before fit")
        xq = check_1d(np.atleast_1d(xq), "xq")
        return self._eval_compiled(xq)

    def _eval_compiled(self, xq: np.ndarray) -> np.ndarray:
        """Validation-free Horner evaluation over the compiled coefficients.

        Above-range queries fall into the sentinel interval (see
        :meth:`_compile`); only below-range queries need a mask.
        """
        x = self._x
        idx = self._x_inner.searchsorted(xq, side="right")
        dx = xq - x[idx]
        out = self._c0[idx] + dx * (
            self._c1[idx] + dx * (self._c2[idx] + dx * self._c3[idx])
        )
        below = xq < x[0]
        if below.any():
            y = self._y
            if self.extrapolate == "clamp":
                out[below] = y[0]
            else:
                out[below] = y[0] + self._slope_at(0) * (xq[below] - x[0])
        return out

    def evaluator(self):
        """The validation-free compiled evaluator, for trusted hot callers.

        Chunked restoration (:class:`repro.core.static_trr.StaticTRRStream`)
        calls the spline once per chunk with indices it generated itself;
        binding the evaluator once per run skips the per-call validation.
        """
        if self._x is None:
            raise NotFittedError("CubicSplineInterpolator.evaluator before fit")
        return self._eval_compiled

    def fit_predict(self, x, y, xq) -> np.ndarray:
        return self.fit(x, y).predict(xq)

    def _slope_at(self, k: int) -> float:
        """First derivative of the spline at knot ``k`` (for extrapolation)."""
        x, y, m = self._x, self._y, self._m
        if k == 0:
            h = x[1] - x[0]
            return float((y[1] - y[0]) / h - h * (2 * m[0] + m[1]) / 6.0)
        h = x[k] - x[k - 1]
        return float((y[k] - y[k - 1]) / h + h * (2 * m[k] + m[k - 1]) / 6.0)
