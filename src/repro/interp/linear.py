"""Piecewise-linear interpolation with the estimator interface.

Used as the cheap baseline trend model and in tests as a sanity reference
(the spline must beat it on smooth signals).
"""

from __future__ import annotations

import numpy as np

from ..errors import NotFittedError, ValidationError
from ..utils.validation import check_1d, check_consistent_length


class LinearInterpolator:
    """Connect-the-dots interpolation over sparse ``(x, y)`` readings."""

    def __init__(self) -> None:
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        return self._x is not None

    def fit(self, x, y) -> "LinearInterpolator":
        x = check_1d(x, "x")
        y = check_1d(y, "y")
        check_consistent_length(x, y, names=("x", "y"))
        if x.shape[0] < 1:
            raise ValidationError("need at least one reading")
        order = np.argsort(x)
        x, y = x[order], y[order]
        if np.any(np.diff(x) <= 0):
            raise ValidationError("x values must be distinct")
        self._x, self._y = x, y
        return self

    def predict(self, xq) -> np.ndarray:
        if self._x is None:
            raise NotFittedError("LinearInterpolator.predict before fit")
        xq = check_1d(np.atleast_1d(xq), "xq")
        # np.interp clamps outside the range, matching 'clamp' extrapolation.
        return np.interp(xq, self._x, self._y)

    def fit_predict(self, x, y, xq) -> np.ndarray:
        return self.fit(x, y).predict(xq)
