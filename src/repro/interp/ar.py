"""Autoregressive AR(p) forecaster — the classic statistical alternative.

The paper notes (§4.2.1) that spline/ARIMA-style completion tracks long-term
trends but misses short-term fluctuations. We include an AR(p) model fitted
by conditional least squares so benchmarks can quantify exactly that gap.
"""

from __future__ import annotations

import numpy as np

from ..errors import NotFittedError, ValidationError
from ..utils.timeseries import sliding_windows
from ..utils.validation import check_1d, check_positive


class ARForecaster:
    """AR(p) model ``y_t = c + sum_i phi_i * y_{t-i} + eps``.

    Fitted via least squares on lagged windows; forecasting iterates the
    recurrence. ``ridge`` adds Tikhonov damping for near-unit-root series
    (power traces are strongly autocorrelated).
    """

    def __init__(self, order: int = 4, ridge: float = 1e-6) -> None:
        check_positive(order, "order")
        check_positive(ridge, "ridge", strict=False)
        self.order = int(order)
        self.ridge = float(ridge)
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self._history: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        return self.coef_ is not None

    def fit(self, series) -> "ARForecaster":
        y = check_1d(series, "series")
        p = self.order
        if y.shape[0] <= p:
            raise ValidationError(
                f"series of length {y.shape[0]} too short for AR({p})"
            )
        windows = sliding_windows(y, p + 1)  # rows: [y_{t-p} ... y_t]
        X = windows[:, :-1][:, ::-1]  # lag-1 first
        t = windows[:, -1]
        Xb = np.column_stack([X, np.ones(X.shape[0])])
        gram = Xb.T @ Xb + self.ridge * np.eye(p + 1)
        beta = np.linalg.solve(gram, Xb.T @ t)
        self.coef_ = beta[:-1]
        self.intercept_ = float(beta[-1])
        self._history = y[-p:].copy()
        return self

    def forecast(self, steps: int, history=None) -> np.ndarray:
        """Iterated multi-step forecast from the stored (or given) history."""
        if self.coef_ is None:
            raise NotFittedError("ARForecaster.forecast before fit")
        check_positive(steps, "steps")
        hist = self._history if history is None else check_1d(history, "history")
        if hist.shape[0] < self.order:
            raise ValidationError(
                f"history must contain at least order={self.order} samples"
            )
        buf = list(hist[-self.order:])
        out = np.empty(steps)
        for k in range(steps):
            lags = np.array(buf[::-1][: self.order])
            val = self.intercept_ + float(self.coef_ @ lags)
            out[k] = val
            buf.append(val)
            buf.pop(0)
        return out

    def predict_in_sample(self, series) -> np.ndarray:
        """One-step-ahead predictions over ``series`` (first p echoed back)."""
        if self.coef_ is None:
            raise NotFittedError("ARForecaster.predict_in_sample before fit")
        y = check_1d(series, "series")
        p = self.order
        if y.shape[0] <= p:
            return y.copy()
        windows = sliding_windows(y, p + 1)
        X = windows[:, :-1][:, ::-1]
        pred = X @ self.coef_ + self.intercept_
        return np.concatenate([y[:p], pred])
