"""Interpolation and short-horizon forecasting substrate.

StaticTRR's long-term-trend component is a natural cubic spline fitted to
the sparse integrated-measurement readings (paper §4.2.1). We implement the
spline from scratch (tridiagonal solve) rather than calling
``scipy.interpolate`` so the whole contribution is self-contained; the test
suite cross-checks against SciPy.

An AR(p) forecaster is included as the classic statistical alternative the
paper mentions (ARIMA-style trend completion) and is used in ablations.
"""

from .ar import ARForecaster
from .arima import ARIMAForecaster
from .linear import LinearInterpolator
from .spline import CubicSplineInterpolator

__all__ = [
    "ARForecaster",
    "ARIMAForecaster",
    "LinearInterpolator",
    "CubicSplineInterpolator",
]
