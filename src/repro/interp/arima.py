"""ARIMA(p, d, q) forecasting via conditional sum of squares.

The paper names ARIMA alongside splines as the classic trend-completion
tool that "can only estimate missing data points based on long-term trends"
(§4.2.1). This implementation:

* differences the series ``d`` times;
* fits the ARMA(p, q) part by minimising the conditional sum of squared
  one-step errors (CSS) with ``scipy.optimize.minimize``;
* forecasts by iterating the recurrence and integrating the differences
  back.

It is deliberately compact — enough to serve as an honest baseline trend
model, not a statsmodels replacement.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize

from ..errors import ConvergenceError, NotFittedError, ValidationError
from ..utils.validation import check_1d, check_positive


def difference(series: np.ndarray, d: int) -> np.ndarray:
    """Apply d rounds of first differencing."""
    out = np.asarray(series, dtype=np.float64)
    for _ in range(d):
        out = np.diff(out)
    return out


def undifference(forecast: np.ndarray, history: np.ndarray, d: int) -> np.ndarray:
    """Integrate a d-times-differenced forecast back to the original scale."""
    out = np.asarray(forecast, dtype=np.float64).copy()
    for k in range(d, 0, -1):
        # Last value of the (k-1)-times differenced history.
        base = difference(history, k - 1)[-1]
        out = base + np.cumsum(out)
    return out


class ARIMAForecaster:
    """ARIMA(p, d, q) with CSS fitting.

    Parameters
    ----------
    order:
        (p, d, q). ``p + q >= 1`` and all non-negative.
    """

    def __init__(self, order: tuple[int, int, int] = (2, 1, 1)) -> None:
        p, d, q = (int(v) for v in order)
        if p < 0 or d < 0 or q < 0:
            raise ValidationError("ARIMA orders must be non-negative")
        if p + q < 1:
            raise ValidationError("need p + q >= 1")
        self.order = (p, d, q)
        self.phi_: np.ndarray | None = None
        self.theta_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self._history: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        return self.phi_ is not None

    # ------------------------------------------------------------------ CSS
    def _css_residuals(self, params: np.ndarray, z: np.ndarray) -> np.ndarray:
        p, _, q = self.order
        c = params[0]
        phi = params[1 : 1 + p]
        theta = params[1 + p :]
        n = z.shape[0]
        eps = np.zeros(n)
        for t in range(n):
            ar = 0.0
            for i in range(min(p, t)):
                ar += phi[i] * z[t - 1 - i]
            ma = 0.0
            for j in range(min(q, t)):
                ma += theta[j] * eps[t - 1 - j]
            eps[t] = z[t] - c - ar - ma
        return eps

    def fit(self, series) -> "ARIMAForecaster":
        y = check_1d(series, "series")
        p, d, q = self.order
        if y.shape[0] <= p + d + q + 2:
            raise ValidationError(
                f"series of length {y.shape[0]} too short for ARIMA{self.order}"
            )
        z = difference(y, d)

        burn = max(p, q)

        def objective(params: np.ndarray) -> float:
            # Conditional SS: the first max(p, q) residuals are conditioning
            # values, not fit targets (they lack full lag support).
            eps = self._css_residuals(params, z)[burn:]
            return float(eps @ eps)

        # Initialise the AR part by OLS on lagged values (theta starts at 0);
        # Nelder-Mead then polishes jointly with the MA terms.
        x0 = np.zeros(1 + p + q)
        if p and z.shape[0] > p + 1:
            lags = np.column_stack(
                [z[p - 1 - i : -1 - i] if i else z[p - 1 : -1] for i in range(p)]
            )
            target = z[p:]
            design = np.column_stack([np.ones(lags.shape[0]), lags])
            beta, *_ = np.linalg.lstsq(design, target, rcond=None)
            x0[0] = beta[0]
            x0[1 : 1 + p] = beta[1:]
        else:
            x0[0] = float(z.mean())
        result = minimize(objective, x0, method="Nelder-Mead",
                          options={"maxiter": 4000, "xatol": 1e-7, "fatol": 1e-9})
        if not np.isfinite(result.fun):
            raise ConvergenceError("ARIMA CSS optimisation diverged")
        params = result.x
        self.intercept_ = float(params[0])
        self.phi_ = params[1 : 1 + p].copy()
        self.theta_ = params[1 + p :].copy()
        self._history = y.copy()
        return self

    # -------------------------------------------------------------- forecast
    def forecast(self, steps: int) -> np.ndarray:
        if self.phi_ is None:
            raise NotFittedError("ARIMAForecaster.forecast before fit")
        check_positive(steps, "steps")
        p, d, q = self.order
        z = difference(self._history, d)
        eps_hist = self._css_residuals(
            np.concatenate([[self.intercept_], self.phi_, self.theta_]), z
        )
        z_buf = list(z)
        eps_buf = list(eps_hist)
        out = np.empty(steps)
        for k in range(steps):
            ar = sum(
                self.phi_[i] * z_buf[-1 - i] for i in range(min(p, len(z_buf)))
            )
            ma = sum(
                self.theta_[j] * eps_buf[-1 - j]
                for j in range(min(q, len(eps_buf)))
            )
            val = self.intercept_ + ar + ma
            out[k] = val
            z_buf.append(val)
            eps_buf.append(0.0)  # future shocks have zero expectation
        return undifference(out, self._history, d)

    def predict_in_sample(self) -> np.ndarray:
        """One-step-ahead fitted values on the original scale."""
        if self.phi_ is None:
            raise NotFittedError("ARIMAForecaster.predict_in_sample before fit")
        p, d, q = self.order
        z = difference(self._history, d)
        eps = self._css_residuals(
            np.concatenate([[self.intercept_], self.phi_, self.theta_]), z
        )
        fitted_z = z - eps
        if d == 0:
            return fitted_z
        if d == 1:
            # Rebuild levels: level_t ≈ level_{t-1} + fitted diff.
            return self._history[:-1] + fitted_z
        raise ValidationError("predict_in_sample supports d in {0, 1}")
