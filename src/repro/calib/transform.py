"""Compensation transforms: undo structured IM error upstream of TRR.

A :class:`CompensationTransform` is the *correction* direction of a sensor
error model — it maps what the sensor reported back toward what the power
actually was. It composes the two structured error families the
calibration layer estimates (see :mod:`repro.calib.estimators`):

* **clock lag** — the sensor attributes its readings ``lag_s`` ticks too
  late (BMC readout delay, clock skew, delayed arrival); compensation
  shifts every timestamp back by ``lag_s``;
* **affine miscalibration** — the reported value is ``gain * truth +
  bias``; compensation applies the inverse affine ``scale * value +
  offset_w``. A piecewise-linear schedule (``knots_s``/``scales``/
  ``offsets_w``) covers *drifting* gain and bias: per-reading
  coefficients are interpolated over the dense timebase, so a correction
  learned window-by-window by the :class:`~repro.calib.DriftTracker`
  tracks the drift instead of averaging it away.

Contract: ``apply`` never mutates its input — it returns **new** arrays
(or, for the identity transform, the *same* :class:`SparseReadings`
object untouched, which is what keeps the pipeline's calibrate stage
bit-identity-neutral when no calibration is registered).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import SensorOutageError, ValidationError
from ..sensors.base import SparseReadings


@dataclass(frozen=True)
class CompensationTransform:
    """Lag shift plus (possibly scheduled) affine correction.

    Parameters
    ----------
    lag_s:
        Ticks by which the feed's timestamps run late; compensation moves
        every reading ``lag_s`` ticks earlier (negative values shift
        later). Readings shifted outside the run are dropped.
    scale / offset_w:
        Constant affine correction ``compensated = scale * value +
        offset_w``, used when no schedule is given.
    knots_s / scales / offsets_w:
        Optional piecewise-linear schedule over the dense timebase: the
        correction at reading index ``i`` interpolates linearly between
        the knots (constant extrapolation outside), overriding the scalar
        ``scale``/``offset_w``.
    """

    lag_s: int = 0
    scale: float = 1.0
    offset_w: float = 0.0
    knots_s: "tuple[float, ...]" = field(default=())
    scales: "tuple[float, ...]" = field(default=())
    offsets_w: "tuple[float, ...]" = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(self, "lag_s", int(self.lag_s))
        object.__setattr__(self, "scale", float(self.scale))
        object.__setattr__(self, "offset_w", float(self.offset_w))
        object.__setattr__(self, "knots_s", tuple(float(k) for k in self.knots_s))
        object.__setattr__(self, "scales", tuple(float(s) for s in self.scales))
        object.__setattr__(self, "offsets_w", tuple(float(o) for o in self.offsets_w))
        if self.scale <= 0.0:
            raise ValidationError("correction scale must be > 0")
        if not (len(self.knots_s) == len(self.scales) == len(self.offsets_w)):
            raise ValidationError(
                "knots_s, scales and offsets_w must have equal length"
            )
        if any(s <= 0.0 for s in self.scales):
            raise ValidationError("every scheduled scale must be > 0")
        if len(self.knots_s) > 1 and (np.diff(self.knots_s) <= 0).any():
            raise ValidationError("knots_s must be strictly increasing")

    @property
    def is_identity(self) -> bool:
        """True when applying the transform is a guaranteed no-op."""
        return (
            self.lag_s == 0
            and not self.knots_s
            and self.scale == 1.0
            and self.offset_w == 0.0
        )

    def coefficients_at(self, indices: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
        """Per-reading ``(scale, offset)`` arrays for the given indices."""
        t = np.asarray(indices, dtype=np.float64)
        if self.knots_s:
            knots = np.asarray(self.knots_s, dtype=np.float64)
            scales = np.interp(t, knots, np.asarray(self.scales, dtype=np.float64))
            offsets = np.interp(t, knots, np.asarray(self.offsets_w, dtype=np.float64))
            return scales, offsets
        return (
            np.full(t.shape[0], self.scale),
            np.full(t.shape[0], self.offset_w),
        )

    def apply(self, readings: SparseReadings) -> SparseReadings:
        """Compensated copy of ``readings`` (or ``readings`` itself if
        the transform is the identity).

        Raises :class:`~repro.errors.SensorOutageError` when the lag
        shift moves every reading outside the run — for the consumer
        that is indistinguishable from a dead feed.
        """
        if self.is_identity:
            return readings
        scales, offsets = self.coefficients_at(readings.indices)
        values = np.maximum(scales * readings.values + offsets, 0.0)
        indices = readings.indices - self.lag_s
        keep = (indices >= 0) & (indices < readings.n_dense)
        if not keep.all():
            indices = indices[keep]
            values = values[keep]
        if indices.shape[0] == 0:
            raise SensorOutageError(
                f"lag compensation ({self.lag_s} s) shifted every reading "
                "outside the run"
            )
        return SparseReadings(
            indices=indices,
            values=values,
            interval_s=readings.interval_s,
            n_dense=readings.n_dense,
        )

    def as_dict(self) -> "dict[str, object]":
        """JSON-friendly parameter dump for reports and fixtures."""
        return {
            "lag_s": self.lag_s,
            "scale": self.scale,
            "offset_w": self.offset_w,
            "knots_s": list(self.knots_s),
            "scales": list(self.scales),
            "offsets_w": list(self.offsets_w),
        }


#: The do-nothing transform (``apply`` returns its input object).
IDENTITY = CompensationTransform()
