"""Calibration estimators: clock lag, affine gain/bias, residual stats.

The IM feed's error is *structured*, not i.i.d. — the OCC/RAPL-overhead
literature reports clock lag, affine bias and slow drift as the dominant
modes — so it can be estimated against a ground-truth channel and
compensated (see :mod:`repro.calib.transform`). The reference channel is
the jumper-wire direct measurement
(:meth:`~repro.sensors.DirectPowerSensor.measure_node`), available on the
calibration bench exactly the way the paper's §5.2 ground truth is.

Two estimators, composed by :func:`estimate_calibration`:

* **lag** — normalized cross-correlation between the sparse readings and
  the dense reference evaluated at every candidate shift in
  ``[-max_lag_s, +max_lag_s]``; NCC is invariant under affine value
  error, so the lag estimate is unbiased even on a badly miscalibrated
  feed, which is why lag is estimated *first*;
* **affine** — ordinary least squares of the reference on the lag-aligned
  readings, giving the correction ``truth ≈ scale * value + offset_w``
  directly (the inverse of the sensor's ``gain``/``bias`` error model).

Everything here is pure ``numpy`` with no RNG at all: the same inputs
produce bit-identical estimates (the property suite pins this), which is
the calibration layer's half of the project's seeded-determinism
contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ValidationError
from ..sensors.base import SparseReadings
from ..utils.validation import check_1d, check_positive
from .transform import CompensationTransform

#: Fewest lag-aligned reading/reference pairs a candidate lag needs before
#: its correlation is trusted (fewer pairs correlate spuriously).
MIN_OVERLAP = 4

#: Variance floor below which a stream is treated as constant (no affine
#: gain is identifiable from a flat signal).
_VAR_FLOOR = 1e-12

#: Residual-trimmed refit: with at least this many pairs, the affine fit
#: drops its worst-residual quartile and refits on the rest. Residual
#: clock jitter misaligns a few pairs across steep power transitions and
#: those leverage points tilt a plain OLS slope; trimming is the
#: deterministic (RNG-free) robustification.
_TRIM_MIN_PAIRS = 8
_TRIM_FRACTION = 0.25


def normalized_cross_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Pearson correlation of two equal-length 1-D arrays (0 if either is
    constant — a flat stream carries no alignment information)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    da = a - a.mean()
    db = b - b.mean()
    denom = float(np.sqrt((da * da).sum() * (db * db).sum()))
    if denom <= _VAR_FLOOR:
        return 0.0
    return float((da * db).sum() / denom)


def aligned_pairs(
    readings: SparseReadings, reference: np.ndarray, lag_s: int
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """``(indices, values, reference_values)`` for readings whose
    lag-shifted timestamp still falls inside the reference trace."""
    shifted = readings.indices - int(lag_s)
    valid = (shifted >= 0) & (shifted < reference.shape[0])
    idx = readings.indices[valid]
    return idx, readings.values[valid], reference[shifted[valid]]


def estimate_lag(
    readings: SparseReadings,
    reference: np.ndarray,
    max_lag_s: "int | None" = None,
    min_overlap: int = MIN_OVERLAP,
) -> "tuple[int, float]":
    """Clock lag of a feed against the dense reference, via NCC.

    Scans every integer shift in ``[-max_lag_s, +max_lag_s]`` (default:
    one nominal reading interval) and returns ``(lag_s, correlation)``
    for the candidate with the highest normalized cross-correlation.
    Ties break toward the smallest ``|lag|`` (then the earlier lag), so
    an uninformative reference yields lag 0, not an arbitrary shift.
    A positive lag means the feed reports *late*: the value stamped at
    tick ``t`` belongs to tick ``t - lag_s``.
    """
    reference = check_1d(reference, "reference")
    if max_lag_s is None:
        max_lag_s = int(readings.interval_s)
    max_lag_s = int(check_positive(max_lag_s, "max_lag_s"))
    check_positive(min_overlap, "min_overlap")
    best_lag, best_score = 0, -np.inf
    # Visit candidates nearest-first so strict improvement implements the
    # smallest-|lag| tie-break deterministically.
    for lag in sorted(range(-max_lag_s, max_lag_s + 1), key=lambda L: (abs(L), L)):
        _, values, ref_vals = aligned_pairs(readings, reference, lag)
        if values.shape[0] < min_overlap:
            continue
        score = normalized_cross_correlation(values, ref_vals)
        if score > best_score:
            best_lag, best_score = lag, score
    if not np.isfinite(best_score):
        raise ValidationError(
            f"no candidate lag kept >= {min_overlap} reading(s) inside the "
            f"reference; shorten max_lag_s ({max_lag_s}) or lengthen the run"
        )
    return best_lag, best_score


def _ols_affine(v: np.ndarray, r: np.ndarray) -> "tuple[float, float, bool]":
    """One OLS pass with the degenerate-input fallbacks (see below).

    The third element is False when a fallback fired — a degenerate fit's
    residuals carry no outlier information, so the caller must not trim on
    them.
    """
    v_mean = float(v.mean())
    r_mean = float(r.mean())
    dv = v - v_mean
    var = float((dv * dv).sum())
    if var > _VAR_FLOOR:
        scale = float((dv * (r - r_mean)).sum() / var)
        if scale > 0.0:
            return scale, r_mean - scale * v_mean, True
    return 1.0, r_mean - v_mean, False


def estimate_affine(
    values: np.ndarray, reference_values: np.ndarray
) -> "tuple[float, float]":
    """Least-squares correction ``reference ≈ scale * value + offset_w``.

    With :data:`_TRIM_MIN_PAIRS` or more pairs the fit is residual-trimmed:
    one OLS pass, drop the worst-|residual| :data:`_TRIM_FRACTION` of
    pairs, refit on the remainder. The dropped pairs are the ones residual
    clock jitter misaligned across steep power transitions (or a locally
    stuck feed corrupted); on an exactly-affine feed every residual is
    zero and the refit reproduces the plain OLS answer bit for bit.

    Degenerate inputs fall back to a pure offset: a constant feed (no
    identifiable gain) or a negative fitted gain (anti-correlated noise,
    never a physical sensor response) yields ``scale = 1`` with the mean
    bias as offset.
    """
    v = check_1d(values, "values").astype(np.float64)
    r = check_1d(reference_values, "reference_values").astype(np.float64)
    if v.shape[0] != r.shape[0]:
        raise ValidationError("values and reference_values must be equal length")
    if v.shape[0] == 0:
        raise ValidationError("cannot fit an affine correction to zero pairs")
    scale, offset_w, fitted = _ols_affine(v, r)
    if fitted and v.shape[0] >= _TRIM_MIN_PAIRS:
        resid = np.abs(scale * v + offset_w - r)
        keep = resid <= float(np.quantile(resid, 1.0 - _TRIM_FRACTION))
        if MIN_OVERLAP <= int(keep.sum()) < v.shape[0]:
            scale, offset_w, _ = _ols_affine(v[keep], r[keep])
    return scale, offset_w


@dataclass(frozen=True)
class CalibrationEstimate:
    """One feed's fitted error model plus its goodness-of-fit evidence.

    ``scale``/``offset_w`` are the *correction* coefficients
    (``truth ≈ scale * value + offset_w``); the sensor's own error in the
    forward direction is exposed as :attr:`sensor_gain` /
    :attr:`sensor_bias_w`. ``knots_s``/``scales``/``offsets_w`` carry the
    windowed drift schedule when the estimate came from a
    :class:`~repro.calib.DriftTracker`.
    """

    lag_s: int
    scale: float
    offset_w: float
    correlation: float
    residual_rmse_w: float
    n_readings: int
    knots_s: "tuple[float, ...]" = field(default=())
    scales: "tuple[float, ...]" = field(default=())
    offsets_w: "tuple[float, ...]" = field(default=())

    @property
    def sensor_gain(self) -> float:
        """The fitted *forward* gain (``reported = gain * truth + bias``)."""
        return 1.0 / self.scale

    @property
    def sensor_bias_w(self) -> float:
        """The fitted forward bias in watts."""
        return -self.offset_w / self.scale

    def transform(self) -> CompensationTransform:
        """The compensation this estimate prescribes."""
        return CompensationTransform(
            lag_s=self.lag_s,
            scale=self.scale,
            offset_w=self.offset_w,
            knots_s=self.knots_s,
            scales=self.scales,
            offsets_w=self.offsets_w,
        )

    def as_dict(self) -> "dict[str, object]":
        return {
            "lag_s": self.lag_s,
            "scale": self.scale,
            "offset_w": self.offset_w,
            "sensor_gain": self.sensor_gain,
            "sensor_bias_w": self.sensor_bias_w,
            "correlation": self.correlation,
            "residual_rmse_w": self.residual_rmse_w,
            "n_readings": self.n_readings,
            "n_drift_knots": len(self.knots_s),
        }


def residual_rmse(
    transform: CompensationTransform,
    indices: np.ndarray,
    values: np.ndarray,
    reference_values: np.ndarray,
) -> float:
    """RMSE (watts) of the compensated values against the reference."""
    scales, offsets = transform.coefficients_at(indices)
    resid = scales * values + offsets - reference_values
    return float(np.sqrt((resid * resid).mean()))


def estimate_calibration(
    readings: SparseReadings,
    reference: np.ndarray,
    max_lag_s: "int | None" = None,
) -> CalibrationEstimate:
    """Full static calibration of one feed: lag first, then affine.

    ``reference`` is the dense ground-truth node power over the same run
    (the direct-measurement channel). For a drift-tracking variant see
    :func:`repro.calib.drift.estimate_drift_calibration`.
    """
    reference = check_1d(reference, "reference")
    if reference.shape[0] != readings.n_dense:
        raise ValidationError(
            f"reference has {reference.shape[0]} samples but the readings "
            f"cover a {readings.n_dense}-sample run"
        )
    lag_s, correlation = estimate_lag(readings, reference, max_lag_s=max_lag_s)
    idx, values, ref_vals = aligned_pairs(readings, reference, lag_s)
    scale, offset_w = estimate_affine(values, ref_vals)
    resid = scale * values + offset_w - ref_vals
    return CalibrationEstimate(
        lag_s=lag_s,
        scale=scale,
        offset_w=offset_w,
        correlation=correlation,
        residual_rmse_w=float(np.sqrt((resid * resid).mean())),
        n_readings=int(values.shape[0]),
    )
