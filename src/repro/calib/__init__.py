"""Sensor calibration & drift layer: estimate and undo structured IM error.

HighRPM anchors its restoration on the integrated-measurement feed, so a
miscalibrated feed — clock lag, affine gain/bias, slow drift — bounds the
restoration quality from below. The OCC-evaluation and RAPL-overhead
literature shows this error is *structured*, not i.i.d. noise, which
means it can be estimated against the jumper-wire direct channel and
compensated upstream of TRR instead of merely survived by the resilience
policies (:mod:`repro.monitor.resilience`).

* :mod:`repro.calib.estimators` — lag via normalized cross-correlation,
  affine scale/offset via least squares, composed by
  :func:`estimate_calibration`;
* :mod:`repro.calib.transform` — :class:`CompensationTransform`: lag
  shift plus (possibly scheduled) affine correction, applied by the
  monitor pipeline's ``calibrate`` stage
  (:class:`repro.monitor.pipeline.CalibrateStage`);
* :mod:`repro.calib.drift` — :class:`DriftTracker`: windowed
  re-estimation with an error-percentile trigger, producing piecewise
  correction schedules for drifting feeds;
* :mod:`repro.calib.check` — the verification harness
  (``python -m repro.calib.check``): sweeps fault scenarios and reports
  fault-window MAPE with vs without compensation. (Imported lazily —
  not re-exported here — because it drives the monitor service.)

The compensation contract, estimator math, and harness output format are
documented in ``docs/calibration.md``.
"""

from .drift import DriftConfig, DriftTracker, estimate_drift_calibration
from .estimators import (
    CalibrationEstimate,
    estimate_affine,
    estimate_calibration,
    estimate_lag,
    normalized_cross_correlation,
)
from .transform import IDENTITY, CompensationTransform

__all__ = [
    "CompensationTransform",
    "IDENTITY",
    "CalibrationEstimate",
    "estimate_calibration",
    "estimate_lag",
    "estimate_affine",
    "normalized_cross_correlation",
    "DriftConfig",
    "DriftTracker",
    "estimate_drift_calibration",
]
