"""Online drift tracking: windowed re-estimation of the affine correction.

A statically-calibrated feed can still wander — thermal gain drift, a
firmware update shifting the bias — so the calibration layer re-checks
itself in windows. The :class:`DriftTracker` consumes lag-aligned
``(index, sensor value, reference value)`` pairs in arrival order; each
time a window's worth has accumulated it prices the *current* correction
on that window and, when the error percentile crosses the configured
trigger, refits the affine correction on exactly that window. The fitted
windows become the knots of a piecewise-linear
:class:`~repro.calib.CompensationTransform` schedule, so a drifting gain
is tracked rather than averaged away.

The tracker is deliberately RNG-free: re-estimation is pure least
squares, so identical inputs yield bit-identical schedules (the same
determinism discipline RL001 enforces on the stochastic layers).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ValidationError
from ..sensors.base import SparseReadings
from ..utils.validation import check_1d, check_positive
from .estimators import (
    CalibrationEstimate,
    aligned_pairs,
    estimate_affine,
    estimate_lag,
)
from .transform import CompensationTransform

#: Relative-error floor (watts) guarding the percentile against division
#: by a near-zero reference sample.
_REF_FLOOR_W = 1e-9


@dataclass(frozen=True)
class DriftConfig:
    """Knobs for windowed drift re-estimation.

    Parameters
    ----------
    window_s:
        Dense-timebase span one re-estimation window covers.
    min_pairs:
        Fewest aligned pairs a window needs before it is evaluated; a
        sparser window is merged into the next one.
    trigger_percentile:
        Percentile of the window's relative compensation error that is
        compared against the trigger (default P90: a sustained drift
        fires it, a lone glitch does not).
    trigger_fraction:
        Relative error at the trigger percentile above which the window
        is refit (0.04 = 4 %).
    max_lag_s:
        Lag search range handed to :func:`~repro.calib.estimate_lag`
        by :func:`estimate_drift_calibration`; ``None`` uses one nominal
        reading interval.
    """

    window_s: int = 50
    min_pairs: int = 4
    trigger_percentile: float = 90.0
    trigger_fraction: float = 0.04
    max_lag_s: "int | None" = None

    def __post_init__(self) -> None:
        check_positive(self.window_s, "window_s")
        check_positive(self.min_pairs, "min_pairs")
        if not 0.0 < self.trigger_percentile <= 100.0:
            raise ValidationError("trigger_percentile must lie in (0, 100]")
        if self.trigger_fraction < 0.0:
            raise ValidationError("trigger_fraction must be >= 0")


class DriftTracker:
    """Windowed affine re-estimation with an error-percentile trigger.

    Feed pairs with :meth:`observe` (any batch size, in index order),
    then :meth:`finish` once the stream ends. :attr:`refits` counts
    trigger firings after the initial fit; :meth:`schedule` returns the
    fitted ``(knots_s, scales, offsets_w)`` arrays for a
    :class:`~repro.calib.CompensationTransform`.
    """

    def __init__(self, config: "DriftConfig | None" = None) -> None:
        self.config = config or DriftConfig()
        #: correction currently believed in (identity until the first fit).
        self.scale = 1.0
        self.offset_w = 0.0
        #: fitted windows: (mid index, scale, offset_w).
        self.knots: "list[tuple[float, float, float]]" = []
        #: windows whose trigger fired after the initial fit.
        self.refits = 0
        #: windows evaluated (fit or skipped).
        self.windows = 0
        #: trigger-percentile relative error of the latest window.
        self.last_error_fraction = 0.0
        self._buf_idx: "list[np.ndarray]" = []
        self._buf_val: "list[np.ndarray]" = []
        self._buf_ref: "list[np.ndarray]" = []
        self._buf_n = 0
        self._fitted = False

    def observe(
        self,
        indices: np.ndarray,
        values: np.ndarray,
        reference_values: np.ndarray,
    ) -> int:
        """Ingest aligned pairs; returns refits triggered by this batch."""
        idx = check_1d(np.asarray(indices, dtype=np.float64), "indices")
        val = check_1d(np.asarray(values, dtype=np.float64), "values")
        ref = check_1d(np.asarray(reference_values, dtype=np.float64),
                       "reference_values")
        if not idx.shape[0] == val.shape[0] == ref.shape[0]:
            raise ValidationError("indices, values and reference_values must "
                                  "be equal length")
        before = self.refits
        self._buf_idx.append(idx)
        self._buf_val.append(val)
        self._buf_ref.append(ref)
        self._buf_n += idx.shape[0]
        self._drain(final=False)
        return self.refits - before

    def finish(self) -> "tuple[float, float]":
        """Close the stream (fits any residual window); returns the
        current ``(scale, offset_w)`` correction."""
        self._drain(final=True)
        return self.scale, self.offset_w

    def schedule(self) -> "tuple[tuple, tuple, tuple]":
        """``(knots_s, scales, offsets_w)`` of every fitted window."""
        if not self.knots:
            return (), (), ()
        knots, scales, offsets = zip(*self.knots)
        return tuple(knots), tuple(scales), tuple(offsets)

    # ------------------------------------------------------------ internals
    def _drain(self, final: bool) -> None:
        """Evaluate every complete window currently buffered."""
        while self._buf_n > 0:
            idx = np.concatenate(self._buf_idx)
            span = idx[-1] - idx[0]
            if span < self.config.window_s and not final:
                return
            cut = idx[0] + self.config.window_s
            in_window = idx < cut
            if final and (~in_window).sum() < self.config.min_pairs:
                in_window = np.ones(idx.shape[0], dtype=bool)  # merge tail
            val = np.concatenate(self._buf_val)
            ref = np.concatenate(self._buf_ref)
            n_window = int(in_window.sum())
            rest = ~in_window
            self._buf_idx = [idx[rest]]
            self._buf_val = [val[rest]]
            self._buf_ref = [ref[rest]]
            self._buf_n = int(rest.sum())
            if n_window >= self.config.min_pairs:
                self._evaluate(idx[in_window], val[in_window], ref[in_window])
            if final and self._buf_n == 0:
                return

    def _evaluate(self, idx: np.ndarray, val: np.ndarray, ref: np.ndarray) -> None:
        """Price the current correction on one window; refit on trigger."""
        self.windows += 1
        resid = np.abs(self.scale * val + self.offset_w - ref)
        rel = resid / np.maximum(np.abs(ref), _REF_FLOOR_W)
        err = float(np.percentile(rel, self.config.trigger_percentile))
        self.last_error_fraction = err
        if self._fitted and err <= self.config.trigger_fraction:
            return
        scale, offset_w = estimate_affine(val, ref)
        if self._fitted:
            self.refits += 1
        self._fitted = True
        self.scale, self.offset_w = scale, offset_w
        self.knots.append((float(idx.mean()), scale, offset_w))


def estimate_drift_calibration(
    readings: SparseReadings,
    reference: np.ndarray,
    config: "DriftConfig | None" = None,
) -> "tuple[CalibrationEstimate, DriftTracker]":
    """Drift-aware calibration of one feed against a dense reference.

    Estimates the lag globally (NCC is drift-tolerant), then runs the
    lag-aligned pairs through a :class:`DriftTracker` to fit the windowed
    affine schedule. Returns the estimate (scalar coefficients = whole-run
    fit, schedule = fitted windows) plus the tracker for its counters.
    """
    config = config or DriftConfig()
    reference = check_1d(reference, "reference")
    if reference.shape[0] != readings.n_dense:
        raise ValidationError(
            f"reference has {reference.shape[0]} samples but the readings "
            f"cover a {readings.n_dense}-sample run"
        )
    lag_s, correlation = estimate_lag(
        readings, reference, max_lag_s=config.max_lag_s
    )
    idx, values, ref_vals = aligned_pairs(readings, reference, lag_s)
    scale, offset_w = estimate_affine(values, ref_vals)
    tracker = DriftTracker(config)
    tracker.observe(idx, values, ref_vals)
    tracker.finish()
    knots_s, scales, offsets_w = tracker.schedule()
    estimate = CalibrationEstimate(
        lag_s=lag_s,
        scale=scale,
        offset_w=offset_w,
        correlation=correlation,
        residual_rmse_w=_schedule_rmse(
            lag_s, knots_s, scales, offsets_w, scale, offset_w,
            idx, values, ref_vals,
        ),
        n_readings=int(values.shape[0]),
        knots_s=knots_s,
        scales=scales,
        offsets_w=offsets_w,
    )
    return estimate, tracker


def _schedule_rmse(
    lag_s, knots_s, scales, offsets_w, scale, offset_w, idx, values, ref_vals
) -> float:
    transform = CompensationTransform(
        lag_s=lag_s, scale=scale, offset_w=offset_w,
        knots_s=knots_s, scales=scales, offsets_w=offsets_w,
    )
    s, o = transform.coefficients_at(idx)
    resid = s * values + o - ref_vals
    return float(np.sqrt((resid * resid).mean()))
