"""Golden traces for the calibration regression fixture.

One fixed-seed reference service (the chaos harness's smoke-sized
``reference_run``) calibrates a twin of a structurally-faulted IM feed —
systematic clock skew plus drifting affine miscalibration — against the
direct-measurement node channel, then observes the test run through the
compensated twin. Everything downstream of the seeds is deterministic, so
the fitted transform, the compensated readings and the restored traces are
a behavioural fingerprint of the whole calibration path: estimator, drift
tracker, transform arithmetic, calibrate stage.

``scripts/make_golden_monitor.py`` stores them under
``tests/fixtures/golden_calib.npz``; ``tests/test_golden_calib.py``
regenerates and compares — the compensated readings bitwise.
"""

from __future__ import annotations

import numpy as np

from ..faults.chaos import ChaosSettings, reference_run
from ..faults.inject import FaultySensor
from ..faults.models import ClockJitter, GainDrift
from ..hardware.platform import get_platform
from ..sensors.direct import DirectPowerSensor
from ..sensors.ipmi import IPMISensor

#: Seed offsets relative to ``settings.seed``; disjoint from the chaos
#: (100/200), calib-check (300+) and golden-monitor (500-502) ranges.
_SENSOR_SEED = 510
_CHAIN_SEED = 511
_REFERENCE_SEED = 512

#: The fixture's structured error: 6 s systematic clock skew with unit
#: random wander, on top of a gain/bias ramp across the run.
GOLDEN_FAULTS = (
    ClockJitter(1, drift_s=6),
    GainDrift(gain_start=1.0, gain_end=1.25, bias_start_w=0.0, bias_end_w=6.0),
)


def _twin(spec, settings: ChaosSettings) -> FaultySensor:
    """One of the fixture's identically-seeded sensor twins.

    Each twin serves exactly one ``sample()`` call, so the per-call-keyed
    fault chain yields the same faulted feed on every one of them.
    """
    return FaultySensor(
        IPMISensor(spec, seed=settings.seed + _SENSOR_SEED),
        faults=GOLDEN_FAULTS,
        seed=settings.seed + _CHAIN_SEED,
    )


def golden_calib_traces(reference=None) -> dict[str, np.ndarray]:
    """Compute the golden calibration traces (smoke-sized settings).

    ``reference`` may carry an existing ``(service, bundle)`` pair from
    :func:`~repro.faults.chaos.reference_run` with smoke settings — the
    test suite passes its shared one to skip retraining. Node names are
    chosen to not collide with the chaos, golden-monitor or resilience
    suites.
    """
    settings = ChaosSettings.smoke()
    service, bundle = reference if reference is not None else reference_run(settings)
    spec = get_platform(settings.platform)
    reference_p_node = DirectPowerSensor(
        spec, seed=settings.seed + _REFERENCE_SEED
    ).measure_node(bundle).values

    service.register_node("golden-calib-fit", sensor=_twin(spec, settings))
    service.register_node("golden-calib-comp", sensor=_twin(spec, settings))
    estimate = service.calibrate_node(
        "golden-calib-fit", bundle, reference_p_node, drift=True
    )
    transform = estimate.transform()
    service.set_calibration("golden-calib-comp", transform)

    # The faulted feed itself (a third twin, sampled directly) and its
    # compensated form — the calibrate stage's exact input and output.
    faulted = _twin(spec, settings).sample(bundle)
    compensated = transform.apply(faulted)
    result = service.observe_run("golden-calib-comp", bundle, online=True)

    return {
        "truth_p_node": bundle.node.values,
        "reference_p_node": reference_p_node,
        "faulted_indices": faulted.indices,
        "faulted_values": faulted.values,
        "compensated_indices": compensated.indices,
        "compensated_values": compensated.values,
        "transform_lag_s": np.array(transform.lag_s, dtype=np.int64),
        "transform_scale": np.array(transform.scale),
        "transform_offset_w": np.array(transform.offset_w),
        "transform_knots_s": np.asarray(transform.knots_s, dtype=np.int64),
        "transform_scales": np.asarray(transform.scales, dtype=np.float64),
        "transform_offsets_w": np.asarray(transform.offsets_w, dtype=np.float64),
        "comp_p_node": result.p_node,
        "comp_p_cpu": result.p_cpu,
        "comp_p_mem": result.p_mem,
        "comp_provenance": result.provenance,
    }
