"""Calibration harness: prove compensation pays off under injected faults.

One trained :class:`~repro.monitor.PowerMonitorService` faces a battery of
*structured*-error scenarios — systematic clock skew, gain drift, constant
affine bias, a stuck feed — and for each one observes the same test run
twice: through a raw faulted IM feed and through a bit-identical twin feed
whose node carries a fitted :class:`~repro.calib.CompensationTransform`.
The report compares fault-window restoration MAPE with vs without
compensation; the ``--gate`` flag turns the ISSUE's acceptance ratios into
a CI exit code.

The twin protocol relies on the fault layer's determinism contract:
:class:`~repro.faults.FaultInjector` keys its RNG streams by call number,
so three fresh sensors built with identical seeds — one sampled by
``calibrate_node``, one by the raw run, one by the compensated run — see
bit-identical faulted feeds. The compensated node never trains on its own
test feed; the estimate transfers from its fit twin.

Run it directly::

    python -m repro.calib.check [--smoke] [--gate] [--output report.json]
    python -m repro.calib.check --scenario jitter --scenario gain-drift

or through the eval layer (``python -m repro experiment calib``). Every
piece is seeded; two runs with the same settings produce the same report.

The gate ceilings are calibrated to the canonical seeded protocol (the
default seed, smoke or full sizing): how much a fixed-severity fault
degrades restoration depends on the seeded workload's phase structure,
so at other seeds the reported ratios are informative rather than
gateable.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import asdict, dataclass, field, replace

import numpy as np

from ..faults.chaos import ChaosSettings, reference_run
from ..faults.inject import FaultySensor
from ..faults.models import ClockJitter, FaultModel, GainDrift, StuckAt
from ..hardware.platform import get_platform
from ..ml.metrics import mape
from ..obs import MetricsRegistry, use_registry
from ..sensors.direct import DirectPowerSensor
from ..sensors.ipmi import IPMISensor

#: Seed offsets (relative to ``settings.seed``) for the harness's sensors;
#: disjoint from the chaos (100/200), golden (500+) and resilience ranges.
_REFERENCE_SEED = 300
_SENSOR_SEED = 310
_CHAIN_SEED = 360

#: Settings are shared with the chaos harness — same trained service, same
#: test bundle, so calibration numbers compose with the chaos report.
CalibSettings = ChaosSettings


@dataclass(frozen=True)
class CalibScenario:
    """One named structured-error configuration applied to twin feeds."""

    name: str
    faults: tuple[FaultModel, ...] = ()
    #: fit a windowed drift schedule instead of one static affine pair.
    drift: bool = False
    #: Dense-sample window ``[start, stop)`` the faults act on, for the
    #: windowed MAPE split; None means the whole run is the fault window.
    window: "tuple[int, int] | None" = None
    #: ``--gate`` ceiling on compensated/uncompensated fault-window MAPE;
    #: None reports the ratio without enforcing it.
    gate_ratio: "float | None" = None
    #: lag-scan radius for the fit; None keeps the estimator's default
    #: (one IM interval), which a larger injected skew must override.
    max_lag_s: "int | None" = None


def default_scenarios(test_seconds: int) -> tuple[CalibScenario, ...]:
    """The structured-error battery, gates per the acceptance criteria.

    ``jitter`` is *systematic* skew (``drift_s``) plus unit random jitter —
    exactly the structure the lag estimator can recover; ``gain-drift``
    ramps the gain and bias across the run (drift-tracked fit);
    ``affine-bias`` is the constant miscalibration case; ``stuck`` is
    unstructured — compensation cannot fix a frozen feed and the scenario
    documents that it does not make things worse either.
    """
    dur = max(test_seconds // 4, 20)
    start = (test_seconds - dur) // 2
    return (
        CalibScenario(
            "jitter", (ClockJitter(1, drift_s=25),),
            gate_ratio=0.5, max_lag_s=35,
        ),
        CalibScenario(
            "gain-drift",
            (GainDrift(gain_start=1.0, gain_end=1.35,
                       bias_start_w=0.0, bias_end_w=10.0),),
            drift=True, gate_ratio=0.5,
        ),
        CalibScenario(
            "affine-bias",
            (GainDrift(gain_start=1.12, bias_start_w=9.0),),
        ),
        CalibScenario(
            "stuck", (StuckAt(start, dur),), window=(start, start + dur),
        ),
    )


@dataclass
class CalibOutcome:
    """Fit quality and with/without-compensation MAPE for one scenario."""

    scenario: str
    lag_s: int
    scale: float
    offset_w: float
    n_knots: int
    correlation: float
    n_readings: int
    mape_raw: float
    mape_comp: float
    mape_window_raw: float
    mape_window_comp: float
    #: compensated / uncompensated fault-window MAPE (the gated quantity).
    ratio: float
    gate_ratio: "float | None"
    passed: "bool | None"

    def row(self) -> list:
        return [
            self.scenario, self.lag_s, f"{self.scale:.3f}",
            f"{self.offset_w:.2f}", self.n_knots,
            f"{self.mape_window_raw:.2f}", f"{self.mape_window_comp:.2f}",
            f"{self.ratio:.2f}",
            "-" if self.gate_ratio is None else f"<={self.gate_ratio:.2f}",
            "-" if self.passed is None else ("pass" if self.passed else "FAIL"),
        ]


COLUMNS = [
    "scenario", "lag", "scale", "offset", "knots",
    "MAPE%(raw)", "MAPE%(comp)", "ratio", "gate", "verdict",
]


@dataclass
class CalibReport:
    """Everything one calibration sweep produced, as text or JSON."""

    platform: str
    settings: CalibSettings
    outcomes: list[CalibOutcome] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)

    def outcome(self, scenario: str) -> CalibOutcome:
        for o in self.outcomes:
            if o.scenario == scenario:
                return o
        raise KeyError(f"no scenario {scenario!r} in this report")

    def gate_failures(self) -> list[str]:
        """Scenarios whose compensated/raw ratio exceeded their gate."""
        return [o.scenario for o in self.outcomes if o.passed is False]

    def render(self) -> str:
        rows = [o.row() for o in self.outcomes]
        widths = [
            max(len(str(c)), *(len(str(r[i])) for r in rows)) if rows else len(str(c))
            for i, c in enumerate(COLUMNS)
        ]
        def fmt(cells):
            return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))
        lines = [
            f"calibration sweep on {self.platform} "
            f"(test={self.settings.test_benchmark}, "
            f"{self.settings.test_seconds}s, seed={self.settings.seed}); "
            f"MAPE% columns are the fault window",
            fmt(COLUMNS),
            fmt(["-" * w for w in widths]),
        ]
        lines += [fmt(r) for r in rows]
        failures = self.gate_failures()
        if failures:
            lines.append(f"gate FAILED: {', '.join(failures)}")
        elif any(o.gate_ratio is not None for o in self.outcomes):
            lines.append("all gated scenarios passed")
        return "\n".join(lines)

    def to_json(self) -> str:
        payload = {
            "platform": self.platform,
            "settings": asdict(self.settings),
            "scenarios": [asdict(o) for o in self.outcomes],
            "gate_failures": self.gate_failures(),
            "metrics": self.metrics,
        }
        return json.dumps(payload, indent=2, default=str)


def _twin_sensor(spec, scenario: CalibScenario, settings, k: int) -> FaultySensor:
    """One of a scenario's identically-seeded sensor triplet (fit/raw/comp).

    Each twin serves exactly one ``sample()`` call, so the per-call-keyed
    fault chain produces the same faulted feed on all three.
    """
    return FaultySensor(
        IPMISensor(spec, seed=settings.seed + _SENSOR_SEED + k),
        faults=scenario.faults,
        seed=settings.seed + _CHAIN_SEED + k,
    )


def run_check(
    settings: "CalibSettings | None" = None,
    scenarios: "tuple[CalibScenario, ...] | None" = None,
    registry: "MetricsRegistry | None" = None,
) -> CalibReport:
    """Train one service, sweep every scenario with and without compensation."""
    settings = settings or CalibSettings()
    scenarios = scenarios if scenarios is not None else default_scenarios(
        settings.test_seconds
    )
    registry = registry if registry is not None else MetricsRegistry()
    with use_registry(registry):
        service, bundle = reference_run(settings)
        report = _sweep(service, bundle, settings, scenarios)
    report.metrics = registry.snapshot()
    return report


def _sweep(service, bundle, settings, scenarios) -> CalibReport:
    spec = get_platform(settings.platform)
    truth = bundle.node.values
    # The calibration bench's ground-truth channel (§5.2 jumper wire).
    reference = DirectPowerSensor(
        spec, seed=settings.seed + _REFERENCE_SEED
    ).measure_node(bundle).values
    report = CalibReport(platform=settings.platform, settings=settings)
    for k, scenario in enumerate(scenarios):
        fit = f"calib-{scenario.name}-fit"
        raw = f"calib-{scenario.name}-raw"
        comp = f"calib-{scenario.name}-comp"
        for node in (fit, raw, comp):
            service.register_node(
                node, sensor=_twin_sensor(spec, scenario, settings, k)
            )
        estimate = service.calibrate_node(
            fit, bundle, reference, max_lag_s=scenario.max_lag_s,
            drift=scenario.drift,
        )
        service.set_calibration(comp, estimate.transform())
        result_raw = service.observe_run(raw, bundle, online=settings.online)
        result_comp = service.observe_run(comp, bundle, online=settings.online)
        window = np.zeros(len(bundle), dtype=bool)
        if scenario.window is not None:
            window[scenario.window[0]:scenario.window[1]] = True
        else:
            window[:] = True  # whole-run faults: the run is the window
        win_raw = mape(truth[window], result_raw.p_node[window])
        win_comp = mape(truth[window], result_comp.p_node[window])
        ratio = win_comp / win_raw if win_raw > 0.0 else float("nan")
        report.outcomes.append(
            CalibOutcome(
                scenario=scenario.name,
                lag_s=estimate.lag_s,
                scale=estimate.scale,
                offset_w=estimate.offset_w,
                n_knots=len(estimate.knots_s),
                correlation=estimate.correlation,
                n_readings=estimate.n_readings,
                mape_raw=mape(truth, result_raw.p_node),
                mape_comp=mape(truth, result_comp.p_node),
                mape_window_raw=win_raw,
                mape_window_comp=win_comp,
                ratio=ratio,
                gate_ratio=scenario.gate_ratio,
                passed=(
                    None if scenario.gate_ratio is None
                    else bool(ratio <= scenario.gate_ratio)
                ),
            )
        )
    return report


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.calib.check",
        description="Sweep structured IM-error scenarios with vs without "
                    "fitted compensation.",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized settings (smaller training budget)")
    parser.add_argument("--platform", default=None, help="arm (default) or x86")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the canonical seed (the gate "
                             "ceilings are calibrated to the default)")
    parser.add_argument("--scenario", action="append", default=None,
                        metavar="NAME", help="run only the named scenario(s)")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="also write the report as JSON")
    parser.add_argument("--gate", action="store_true",
                        help="exit non-zero when a gated scenario's "
                             "compensated/raw MAPE ratio exceeds its ceiling")
    args = parser.parse_args(argv)

    settings = CalibSettings.smoke() if args.smoke else CalibSettings()
    if args.platform:
        settings = replace(settings, platform=args.platform)
    if args.seed is not None:
        settings = replace(settings, seed=args.seed)
    scenarios = default_scenarios(settings.test_seconds)
    if args.scenario:
        chosen = {s.lower() for s in args.scenario}
        unknown = chosen - {s.name for s in scenarios}
        if unknown:
            parser.error(f"unknown scenario(s): {sorted(unknown)}")
        scenarios = tuple(s for s in scenarios if s.name in chosen)

    report = run_check(settings, scenarios)
    print(report.render())
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(report.to_json())
        print(f"\nwrote {args.output}")
    if args.gate and report.gate_failures():
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
