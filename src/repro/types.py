"""Core data containers shared across the library.

The whole pipeline moves three kinds of time series around:

* component/node **power traces** (:class:`PowerTrace`) sampled at a fixed
  rate, in watts;
* **PMC traces** (:class:`PMCTrace`) — one row per sample, one column per
  hardware event from Table 2 of the paper;
* joint **trace bundles** (:class:`TraceBundle`) as emitted by the node
  simulator or a measurement campaign: dense ground truth power for node,
  CPU, and memory plus the aligned PMC matrix.

Containers are immutable views over ``numpy`` arrays (arrays are stored
read-only) so that models and sensors can share them without defensive
copies — an idiom the HPC guides insist on (views, not copies).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, Mapping, Sequence

import numpy as np

from .errors import ValidationError

#: Hardware performance-counter events used by HighRPM (paper Table 2).
PMC_EVENTS: tuple[str, ...] = (
    "CPU_CYCLES",
    "INST_RETIRED",
    "BR_PRED",
    "UOP_RETIRED",
    "L1I_CACHE_LD",
    "L1I_CACHE_ST",
    "LXD_CACHE_LD",
    "LXD_CACHE_ST",
    "BUS_ACCESS",
    "MEM_ACCESS",
)


def _as_readonly(a: np.ndarray, dtype=np.float64, ndim: int = 1) -> np.ndarray:
    arr = np.asarray(a, dtype=dtype)
    if arr.ndim != ndim:
        raise ValidationError(f"expected a {ndim}-D array, got shape {arr.shape}")
    arr = arr.copy() if arr.flags.writeable and not arr.flags.owndata else np.array(arr)
    arr.setflags(write=False)
    return arr


@dataclass(frozen=True)
class PowerTrace:
    """A uniformly-sampled power time series.

    Parameters
    ----------
    values:
        Power readings in watts, one per sample.
    sample_rate_hz:
        Samples per second (the paper works at 1 Sa/s ground truth and
        0.1 Sa/s IPMI readings).
    label:
        Free-form name, e.g. ``"node"``, ``"cpu"``, ``"mem"``.
    """

    values: np.ndarray
    sample_rate_hz: float = 1.0
    label: str = "power"

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", _as_readonly(self.values))
        if not np.isfinite(self.values).all():
            raise ValidationError(f"power trace {self.label!r} contains non-finite values")
        if (self.values < 0).any():
            raise ValidationError(f"power trace {self.label!r} contains negative power")
        if self.sample_rate_hz <= 0:
            raise ValidationError("sample_rate_hz must be positive")

    def __len__(self) -> int:
        return int(self.values.shape[0])

    def __iter__(self) -> Iterator[float]:
        return iter(self.values)

    @property
    def duration_s(self) -> float:
        """Trace duration in seconds."""
        return len(self) / self.sample_rate_hz

    @property
    def times(self) -> np.ndarray:
        """Sample timestamps in seconds, starting at 0."""
        return np.arange(len(self)) / self.sample_rate_hz

    def energy_joules(self) -> float:
        """Total energy via left-Riemann integration of the power curve."""
        return float(self.values.sum() / self.sample_rate_hz)

    def mean_power(self) -> float:
        if len(self) == 0:
            raise ValidationError("empty trace has no mean power")
        return float(self.values.mean())

    def peak_power(self) -> float:
        if len(self) == 0:
            raise ValidationError("empty trace has no peak power")
        return float(self.values.max())

    def slice(self, start: int, stop: int) -> "PowerTrace":
        """Return a sub-trace over sample indices ``[start, stop)``."""
        return PowerTrace(self.values[start:stop], self.sample_rate_hz, self.label)

    def decimate(self, factor: int) -> "PowerTrace":
        """Keep every ``factor``-th sample (models a slow sensor readout)."""
        if factor < 1:
            raise ValidationError("decimation factor must be >= 1")
        return PowerTrace(
            self.values[::factor], self.sample_rate_hz / factor, self.label
        )

    def with_values(self, values: np.ndarray) -> "PowerTrace":
        """Same metadata, new samples."""
        return replace(self, values=values)


@dataclass(frozen=True)
class PMCTrace:
    """Aligned per-sample hardware performance-counter readings.

    ``matrix`` has one row per time step and one column per event in
    ``events`` (default: the Table-2 event list).
    """

    matrix: np.ndarray
    events: tuple[str, ...] = PMC_EVENTS
    sample_rate_hz: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "matrix", _as_readonly(self.matrix, ndim=2))
        object.__setattr__(self, "events", tuple(self.events))
        if self.matrix.shape[1] != len(self.events):
            raise ValidationError(
                f"PMC matrix has {self.matrix.shape[1]} columns but "
                f"{len(self.events)} event names"
            )
        if not np.isfinite(self.matrix).all():
            raise ValidationError("PMC matrix contains non-finite values")
        if (self.matrix < 0).any():
            raise ValidationError("PMC counts cannot be negative")
        if self.sample_rate_hz <= 0:
            raise ValidationError("sample_rate_hz must be positive")

    def __len__(self) -> int:
        return int(self.matrix.shape[0])

    @property
    def n_events(self) -> int:
        return len(self.events)

    def column(self, event: str) -> np.ndarray:
        """Readings for a single named event."""
        try:
            idx = self.events.index(event)
        except ValueError as exc:
            raise ValidationError(f"unknown PMC event {event!r}") from exc
        return self.matrix[:, idx]

    def slice(self, start: int, stop: int) -> "PMCTrace":
        return PMCTrace(self.matrix[start:stop], self.events, self.sample_rate_hz)

    def select(self, events: Sequence[str]) -> "PMCTrace":
        """Project onto a subset of events, in the given order."""
        cols = [self.events.index(e) if e in self.events else -1 for e in events]
        if any(c < 0 for c in cols):
            missing = [e for e, c in zip(events, cols) if c < 0]
            raise ValidationError(f"unknown PMC events: {missing}")
        return PMCTrace(self.matrix[:, cols], tuple(events), self.sample_rate_hz)


@dataclass(frozen=True)
class TraceBundle:
    """Everything a measurement campaign yields for one benchmark run.

    All member traces share the same sample rate and length: the dense
    (1 Sa/s) ground truth. Sparse IM readings are derived downstream by
    :mod:`repro.sensors`.
    """

    node: PowerTrace
    cpu: PowerTrace
    mem: PowerTrace
    other: PowerTrace
    pmcs: PMCTrace
    workload: str = "unknown"
    platform: str = "arm"
    metadata: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        lengths = {len(self.node), len(self.cpu), len(self.mem), len(self.other), len(self.pmcs)}
        if len(lengths) != 1:
            raise ValidationError(f"trace bundle members have mismatched lengths: {lengths}")
        rates = {
            self.node.sample_rate_hz,
            self.cpu.sample_rate_hz,
            self.mem.sample_rate_hz,
            self.other.sample_rate_hz,
            self.pmcs.sample_rate_hz,
        }
        if len(rates) != 1:
            raise ValidationError(f"trace bundle members have mismatched rates: {rates}")

    def __len__(self) -> int:
        return len(self.node)

    @property
    def sample_rate_hz(self) -> float:
        return self.node.sample_rate_hz

    def slice(self, start: int, stop: int) -> "TraceBundle":
        return TraceBundle(
            node=self.node.slice(start, stop),
            cpu=self.cpu.slice(start, stop),
            mem=self.mem.slice(start, stop),
            other=self.other.slice(start, stop),
            pmcs=self.pmcs.slice(start, stop),
            workload=self.workload,
            platform=self.platform,
            metadata=dict(self.metadata),
        )

    def check_additivity(self, atol: float = 1e-6) -> bool:
        """True when node power equals the sum of component power.

        The simulator guarantees this by construction; measured bundles may
        carry sensor noise, hence the tolerance.
        """
        total = self.cpu.values + self.mem.values + self.other.values
        return bool(np.allclose(self.node.values, total, atol=atol))


def concat_bundles(bundles: Sequence[TraceBundle], workload: str = "concat") -> TraceBundle:
    """Concatenate bundles end-to-end into one long campaign bundle."""
    if not bundles:
        raise ValidationError("cannot concatenate zero bundles")
    rates = {b.sample_rate_hz for b in bundles}
    if len(rates) != 1:
        raise ValidationError(f"bundles have mismatched sample rates: {rates}")
    events = {b.pmcs.events for b in bundles}
    if len(events) != 1:
        raise ValidationError("bundles have mismatched PMC event sets")
    rate = bundles[0].sample_rate_hz
    ev = bundles[0].pmcs.events

    def cat(select) -> np.ndarray:
        return np.concatenate([select(b) for b in bundles])

    return TraceBundle(
        node=PowerTrace(cat(lambda b: b.node.values), rate, "node"),
        cpu=PowerTrace(cat(lambda b: b.cpu.values), rate, "cpu"),
        mem=PowerTrace(cat(lambda b: b.mem.values), rate, "mem"),
        other=PowerTrace(cat(lambda b: b.other.values), rate, "other"),
        pmcs=PMCTrace(np.vstack([b.pmcs.matrix for b in bundles]), ev, rate),
        workload=workload,
        platform=bundles[0].platform,
        metadata={"parts": [b.workload for b in bundles]},
    )
