"""§6.4.6 limitation study: ragged miss_intervals.

The paper notes DynamicTRR assumes each window contains one measured
reading; network congestion can delay or drop BMC readings, leaving
windows without a real anchor and degrading prediction. This experiment
quantifies that: IPMI readings are dropped with increasing probability and
the restoration error is tracked for DynamicTRR and StaticTRR.
"""

from __future__ import annotations

import numpy as np

from ..core.dynamic_trr import DynamicTRR
from ..core.static_trr import StaticTRR
from ..hardware.node import NodeSimulator
from ..hardware.platform import get_platform
from ..ml.metrics import mape
from ..sensors.ipmi import IPMISensor
from ..workloads.catalog import default_catalog
from .experiments import ExperimentResult, _config
from .harness import EvalSettings


def jitter_robustness(
    settings: "EvalSettings | None" = None,
    drop_probs: tuple[float, ...] = (0.0, 0.1, 0.3, 0.5),
    duration_s: int = 400,
) -> ExperimentResult:
    """Restoration error as IPMI readings get dropped (ragged intervals)."""
    settings = settings or EvalSettings.from_env()
    spec = get_platform(settings.platform)
    sim = NodeSimulator(spec, seed=settings.seed)
    catalog = default_catalog(settings.seed)
    cfg = _config(settings)

    train = [sim.run(catalog.get(n), duration_s=duration_s // 2)
             for n in ("spec_gcc", "spec_mcf", "parsec_ferret",
                       "hpcc_hpl", "hpcc_stream", "parsec_radix")]
    dyn = DynamicTRR(cfg)
    dyn.fit(train, p_bottom=spec.min_node_power_w, p_upper=spec.max_node_power_w)
    tests = [sim.run(catalog.get(n), duration_s=duration_s)
             for n in ("hpcg", "spec_xz", "graph500_bfs")]

    rows = []
    for prob in drop_probs:
        dyn_scores, static_scores, effective = [], [], []
        for k, bundle in enumerate(tests):
            sensor = IPMISensor(
                spec, jitter_prob=prob, seed=settings.seed + 23 + k
            )
            readings = sensor.sample(bundle)
            effective.append(len(bundle) / len(readings))
            dyn_scores.append(
                mape(bundle.node.values, dyn.restore(bundle.pmcs.matrix, readings))
            )
            static = StaticTRR(cfg, p_upper=spec.max_node_power_w,
                               p_bottom=spec.min_node_power_w)
            static_scores.append(
                mape(bundle.node.values,
                     static.fit_restore(bundle.pmcs.matrix, readings).p_trr)
            )
        rows.append([
            f"{prob:.0%}", float(np.mean(effective)),
            float(np.mean(dyn_scores)), float(np.mean(static_scores)),
        ])
    return ExperimentResult(
        title="§6.4.6 — robustness to ragged miss_intervals (dropped readings)",
        columns=["Drop prob", "Effective interval s", "DynamicTRR MAPE%",
                 "StaticTRR MAPE%"],
        rows=rows,
        notes="Paper: missing measured P_node inside a window degrades the "
        "final prediction — error should grow with drop probability but "
        "degrade gracefully.",
    )
