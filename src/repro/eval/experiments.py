"""Per-table / per-figure experiment definitions (paper §6).

Every public function returns an :class:`ExperimentResult` whose rows print
in the paper's format; the corresponding bench under ``benchmarks/`` calls
it and records paper-vs-measured values in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..core.config import HighRPMConfig
from ..core.dynamic_trr import DynamicTRR
from ..core.srr import SRR
from ..core.static_trr import StaticTRR
from ..errors import ExperimentError
from ..hardware.platform import get_platform
from ..interp.spline import CubicSplineInterpolator
from ..ml.metrics import ScoreReport, score_report
from ..ml.registry import MODEL_GROUPS, baseline_names, is_sequence_model
from ..sensors.ipmi import IPMISensor
from ..types import TraceBundle
from ..workloads.catalog import default_catalog
from .harness import (
    EvalSettings,
    SplitDatasets,
    build_campaign,
    build_split,
    evaluate_flat_model,
    evaluate_rnn_model,
)
from .tables import format_table, mean_report, metric_columns, score_row


@dataclass
class ExperimentResult:
    """Rendered-ready result of one experiment."""

    title: str
    columns: list[str]
    rows: list[list]
    notes: str = ""
    extras: dict = field(default_factory=dict)

    def render(self) -> str:
        text = format_table(self.title, self.columns, self.rows)
        if self.notes:
            text += f"\n{self.notes}"
        return text


# --------------------------------------------------------------------------
# Shared pieces
# --------------------------------------------------------------------------

def _config(settings: EvalSettings) -> HighRPMConfig:
    return HighRPMConfig(
        miss_interval=settings.miss_interval,
        lstm_iters=settings.lstm_iters,
        srr_iters=settings.srr_iters,
        seed=settings.seed,
    )


def _ipmi(settings: EvalSettings, interval: "int | None" = None) -> IPMISensor:
    spec = get_platform(settings.platform)
    return IPMISensor(
        spec,
        interval_s=interval or settings.miss_interval,
        seed=settings.seed + 17,
    )


def _pool_scores(pairs: list[tuple[np.ndarray, np.ndarray]]) -> ScoreReport:
    """Pool (y_true, y_pred) chunks into one report."""
    y_true = np.concatenate([t for t, _ in pairs])
    y_pred = np.concatenate([p for _, p in pairs])
    return score_report(y_true, y_pred)


def evaluate_trr_split(
    settings: EvalSettings, split: SplitDatasets, seen: bool
) -> dict[str, ScoreReport]:
    """Spline / StaticTRR / DynamicTRR node-power scores on one split."""
    cfg = _config(settings)
    spec = get_platform(settings.platform)
    sensor = _ipmi(settings)

    dyn = DynamicTRR(cfg)
    dyn.fit(
        split.train_seen if seen else split.train_unseen,
        p_bottom=spec.min_node_power_w,
        p_upper=spec.max_node_power_w,
    )

    spline_pairs, static_pairs, dyn_pairs = [], [], []
    if seen:
        cases = [(b, cut) for b, cut in split.seen_pairs]
    else:
        cases = [(b, 0) for b in split.test_unseen]
    for bundle, cut in cases:
        if len(bundle) < 4 * settings.miss_interval:
            continue
        readings = sensor.sample(bundle)
        truth = bundle.node.values
        t_all = np.arange(len(bundle), dtype=np.float64)
        # Fitting methods (spline, StaticTRR) are only defined inside the
        # reading span (§4.2.2: they "cannot predict future points beyond
        # the last known sampling point"); score every model on that span
        # so the comparison is apples-to-apples.
        end = int(readings.indices[-1]) + 1
        if end <= cut:
            continue

        spline = CubicSplineInterpolator().fit(
            readings.indices.astype(float), readings.values
        )
        spline_pairs.append((truth[cut:end], spline.predict(t_all)[cut:end]))

        static = StaticTRR(cfg, p_upper=spec.max_node_power_w,
                           p_bottom=spec.min_node_power_w)
        p_static = static.fit_restore(bundle.pmcs.matrix, readings).p_trr
        static_pairs.append((truth[cut:end], p_static[cut:end]))

        p_dyn = dyn.restore(bundle.pmcs.matrix, readings)
        dyn_pairs.append((truth[cut:end], p_dyn[cut:end]))
    if not spline_pairs:
        raise ExperimentError("no test bundle was long enough for TRR")
    return {
        "Spline": _pool_scores(spline_pairs),
        "StaticTRR": _pool_scores(static_pairs),
        "DynamicTRR": _pool_scores(dyn_pairs),
    }


def restore_node_power(
    settings: EvalSettings,
    bundles: list[TraceBundle],
    restorer: str = "static",
    train_bundles: "list[TraceBundle] | None" = None,
) -> list[np.ndarray]:
    """TRR-restored node power per bundle (SRR's runtime input).

    ``restorer="static"`` fits StaticTRR per trace (self-supervised, no
    training campaign needed); ``"dynamic"`` trains DynamicTRR on
    ``train_bundles`` and streams each trace through an online session.
    """
    cfg = _config(settings)
    spec = get_platform(settings.platform)
    sensor = _ipmi(settings)
    if restorer == "dynamic":
        if not train_bundles:
            raise ExperimentError("dynamic restorer needs train_bundles")
        dyn = DynamicTRR(cfg)
        dyn.fit(train_bundles, p_bottom=spec.min_node_power_w,
                p_upper=spec.max_node_power_w)
        return [dyn.restore(b.pmcs.matrix, sensor.sample(b)) for b in bundles]
    if restorer != "static":
        raise ExperimentError(f"unknown restorer {restorer!r}")
    out = []
    for b in bundles:
        readings = sensor.sample(b)
        static = StaticTRR(cfg, p_upper=spec.max_node_power_w,
                           p_bottom=spec.min_node_power_w)
        out.append(static.fit_restore(b.pmcs.matrix, readings).p_trr)
    return out


def evaluate_srr_split(
    settings: EvalSettings,
    split: SplitDatasets,
    seen: bool,
    use_pnode: bool = True,
    restored_pnode: bool = True,
    restorer: str = "static",
) -> dict[str, ScoreReport]:
    """SRR component-power scores on one split.

    ``restored_pnode=True`` feeds the model TRR-restored node power at test
    time (the deployed pipeline); False feeds ground truth (upper bound).
    ``restorer`` picks StaticTRR (offline analysis) or DynamicTRR (the live
    path, used for the x86 evaluation).
    """
    cfg = _config(settings)
    train, test = split.flat(seen)
    srr = SRR(cfg, use_pnode=use_pnode)
    srr.fit(train.X, train.p_node, train.p_cpu, train.p_mem)
    if use_pnode:
        if restored_pnode:
            # Restore over full traces, then crop the seen tails.
            if seen:
                full = [b for b, _ in split.seen_pairs]
                restored = restore_node_power(
                    settings, full, restorer=restorer,
                    train_bundles=split.train_seen,
                )
                p_node = np.concatenate(
                    [r[cut:] for r, (_, cut) in zip(restored, split.seen_pairs)]
                )
            else:
                p_node = np.concatenate(restore_node_power(
                    settings, split.test_unseen, restorer=restorer,
                    train_bundles=split.train_unseen,
                ))
            # Align: flat(seen) test rows were built from the same tails.
            if p_node.shape[0] != test.X.shape[0]:
                raise ExperimentError(
                    f"restored node power rows {p_node.shape[0]} != "
                    f"test rows {test.X.shape[0]}"
                )
        else:
            p_node = test.p_node
    else:
        p_node = None
    p_cpu, p_mem = srr.predict(test.X, p_node)
    return {
        "cpu": score_report(test.p_cpu, p_cpu),
        "mem": score_report(test.p_mem, p_mem),
    }


# --------------------------------------------------------------------------
# Table 5 — TRR vs the 12 baselines (node power)
# --------------------------------------------------------------------------

def table5(settings: "EvalSettings | None" = None) -> ExperimentResult:
    """Node power: TRR vs the 12 baselines, seen and unseen (paper Table 5)."""
    settings = settings or EvalSettings.from_env()
    catalog = default_catalog(settings.seed)
    campaign = build_campaign(settings, catalog)

    per_model: dict[str, dict[str, list[ScoreReport]]] = {
        name: {"seen": [], "unseen": []} for name in baseline_names()
    }
    per_model["DynamicTRR"] = {"seen": [], "unseen": []}
    for suite in settings.test_suites:
        split = build_split(settings, campaign, catalog, suite)
        for seen in (True, False):
            key = "seen" if seen else "unseen"
            train, test = split.flat(seen)
            for name in baseline_names():
                if is_sequence_model(name):
                    rep = evaluate_rnn_model(
                        name,
                        split.train_seen if seen else split.train_unseen,
                        split.test_seen if seen else split.test_unseen,
                        settings,
                    )
                else:
                    rep = evaluate_flat_model(name, train, test, "p_node")
                per_model[name][key].append(rep)
            trr = evaluate_trr_split(settings, split, seen)
            per_model["DynamicTRR"][key].append(trr["DynamicTRR"])

    rows = []
    for group, names in MODEL_GROUPS.items():
        for name in names:
            rows.append(
                score_row(
                    f"{group}/{name}",
                    mean_report(per_model[name]["seen"]),
                    mean_report(per_model[name]["unseen"]),
                )
            )
    rows.append(
        score_row(
            "TRR/DynamicTRR",
            mean_report(per_model["DynamicTRR"]["seen"]),
            mean_report(per_model["DynamicTRR"]["unseen"]),
        )
    )
    return ExperimentResult(
        title="Table 5 — node power: TRR vs alternative models "
        f"({len(settings.test_suites)} splits averaged)",
        columns=metric_columns(["seen", "unseen"]),
        rows=rows,
        notes="Paper: DynamicTRR 4.46/3.19/2.78 seen, 4.38/3.18/2.05 unseen; "
        "baselines 9.6-28% MAPE.",
    )


# --------------------------------------------------------------------------
# Table 6 — the three TRR variants
# --------------------------------------------------------------------------

def table6(settings: "EvalSettings | None" = None) -> ExperimentResult:
    """Spline vs StaticTRR vs DynamicTRR (paper Table 6)."""
    settings = settings or EvalSettings.from_env()
    catalog = default_catalog(settings.seed)
    campaign = build_campaign(settings, catalog)
    acc: dict[str, dict[str, list[ScoreReport]]] = {
        m: {"seen": [], "unseen": []} for m in ("Spline", "StaticTRR", "DynamicTRR")
    }
    for suite in settings.test_suites:
        split = build_split(settings, campaign, catalog, suite)
        for seen in (True, False):
            key = "seen" if seen else "unseen"
            reports = evaluate_trr_split(settings, split, seen)
            for m, r in reports.items():
                acc[m][key].append(r)
    rows = [
        score_row(m, mean_report(acc[m]["seen"]), mean_report(acc[m]["unseen"]))
        for m in ("Spline", "StaticTRR", "DynamicTRR")
    ]
    return ExperimentResult(
        title="Table 6 — comparisons among TRR models",
        columns=metric_columns(["seen", "unseen"]),
        rows=rows,
        notes="Paper (seen MAPE): Spline 2.21 < StaticTRR 4.02 < DynamicTRR 4.46.",
    )


# --------------------------------------------------------------------------
# Table 7 — SRR vs the 12 baselines (component power)
# --------------------------------------------------------------------------

def table7(settings: "EvalSettings | None" = None) -> ExperimentResult:
    """Component power: SRR vs the 12 baselines (paper Table 7)."""
    settings = settings or EvalSettings.from_env()
    catalog = default_catalog(settings.seed)
    campaign = build_campaign(settings, catalog)

    acc: dict[str, dict[str, list[ScoreReport]]] = {}

    def note(model: str, key: str, rep: ScoreReport) -> None:
        acc.setdefault(model, {}).setdefault(key, []).append(rep)

    for suite in settings.test_suites:
        split = build_split(settings, campaign, catalog, suite)
        for seen in (True, False):
            prot = "seen" if seen else "unseen"
            train, test = split.flat(seen)
            for name in baseline_names():
                for comp in ("cpu", "mem"):
                    if is_sequence_model(name):
                        rep = evaluate_rnn_model(
                            name,
                            split.train_seen if seen else split.train_unseen,
                            split.test_seen if seen else split.test_unseen,
                            settings,
                            target=comp,
                        )
                    else:
                        rep = evaluate_flat_model(name, train, test, f"p_{comp}")
                    note(name, f"{prot}.{comp}", rep)
            srr = evaluate_srr_split(settings, split, seen)
            note("SRR", f"{prot}.cpu", srr["cpu"])
            note("SRR", f"{prot}.mem", srr["mem"])

    def row(name: str, label: str) -> list:
        cells: list[object] = [label]
        for prot in ("seen", "unseen"):
            for comp in ("cpu", "mem"):
                r = mean_report(acc[name][f"{prot}.{comp}"])
                cells.extend([r.mape, r.rmse, r.mae])
        return cells

    rows = []
    for group, names in MODEL_GROUPS.items():
        for name in names:
            rows.append(row(name, f"{group}/{name}"))
    rows.append(row("SRR", "SRR"))
    return ExperimentResult(
        title="Table 7 — component power: SRR vs alternative models",
        columns=metric_columns(["seen Pcpu", "seen Pmem", "unseen Pcpu", "unseen Pmem"]),
        rows=rows,
        notes="Paper: SRR 7.65% CPU / 5.31% MEM seen; 7.00% / 16.49% unseen; "
        "baselines 15-35%.",
    )


# --------------------------------------------------------------------------
# Table 8 — P_node feature ablation
# --------------------------------------------------------------------------

def table8(settings: "EvalSettings | None" = None) -> ExperimentResult:
    """SRR with vs without the P_node feature (paper Table 8)."""
    settings = settings or EvalSettings.from_env()
    catalog = default_catalog(settings.seed)
    campaign = build_campaign(settings, catalog)
    acc: dict[str, list[ScoreReport]] = {}
    for suite in settings.test_suites:
        split = build_split(settings, campaign, catalog, suite)
        for seen in (True, False):
            prot = "seen" if seen else "unseen"
            with_p = evaluate_srr_split(settings, split, seen, use_pnode=True)
            without = evaluate_srr_split(settings, split, seen, use_pnode=False)
            for comp in ("cpu", "mem"):
                acc.setdefault(f"{prot}.{comp}.with", []).append(with_p[comp])
                acc.setdefault(f"{prot}.{comp}.without", []).append(without[comp])
    rows = []
    for prot in ("seen", "unseen"):
        for comp in ("cpu", "mem"):
            w = mean_report(acc[f"{prot}.{comp}.with"])
            wo = mean_report(acc[f"{prot}.{comp}.without"])
            rows.append(
                [f"{prot} P_{comp.upper()}", w.mape, w.rmse, w.mae,
                 wo.mape, wo.rmse, wo.mae]
            )
    return ExperimentResult(
        title="Table 8 — SRR with/without P_node as a feature",
        columns=["Target", "with MAPE%", "with RMSE", "with MAE",
                 "w/o MAPE%", "w/o RMSE", "w/o MAE"],
        rows=rows,
        notes="Paper: removing P_node inflates CPU MAPE 7.65->30.46 (seen), "
        "MEM 5.31->21.56.",
    )


# --------------------------------------------------------------------------
# Table 9 — x86 platform, unseen applications
# --------------------------------------------------------------------------

def table9(settings: "EvalSettings | None" = None) -> ExperimentResult:
    """The full pipeline on the x86/RAPL platform, unseen programs (paper Table 9)."""
    settings = (settings or EvalSettings.from_env()).on_platform("x86")
    catalog = default_catalog(settings.seed)
    campaign = build_campaign(settings, catalog)

    acc: dict[str, list[ScoreReport]] = {}

    def note(key: str, rep: ScoreReport) -> None:
        acc.setdefault(key, []).append(rep)

    for suite in settings.test_suites:
        split = build_split(settings, campaign, catalog, suite)
        train, test = split.flat(False)
        for name in baseline_names():
            if is_sequence_model(name):
                note(f"{name}.node", evaluate_rnn_model(
                    name, split.train_unseen, split.test_unseen, settings))
                for comp in ("cpu", "mem"):
                    note(f"{name}.{comp}", evaluate_rnn_model(
                        name, split.train_unseen, split.test_unseen, settings,
                        target=comp))
            else:
                note(f"{name}.node", evaluate_flat_model(name, train, test, "p_node"))
                for comp in ("cpu", "mem"):
                    note(f"{name}.{comp}",
                         evaluate_flat_model(name, train, test, f"p_{comp}"))
        trr = evaluate_trr_split(settings, split, seen=False)
        for m, r in trr.items():
            note(f"{m}.node", r)
        # The x86 deployment is the live path: DynamicTRR feeds SRR.
        srr = evaluate_srr_split(settings, split, seen=False, restorer="dynamic")
        note("SRR.cpu", srr["cpu"])
        note("SRR.mem", srr["mem"])

    def cells(key: str) -> list[object]:
        if key not in acc:
            return ["-", "-", "-"]
        r = mean_report(acc[key])
        return [r.mape, r.rmse, r.mae]

    rows = []
    for group, names in MODEL_GROUPS.items():
        for name in names:
            rows.append([f"{group}/{name}", *cells(f"{name}.node"),
                         *cells(f"{name}.cpu"), *cells(f"{name}.mem")])
    for m in ("Spline", "StaticTRR", "DynamicTRR"):
        rows.append([f"TRR/{m}", *cells(f"{m}.node"), "-", "-", "-", "-", "-", "-"])
    rows.append(["SRR", "-", "-", "-", *cells("SRR.cpu"), *cells("SRR.mem")])
    return ExperimentResult(
        title="Table 9 — x86 system, unseen applications",
        columns=metric_columns(["Pnode", "Pcpu", "Pmem"]),
        rows=rows,
        notes="Paper: DynamicTRR 3.48% node MAPE; SRR 9.94% CPU / 10.64% MEM.",
    )


# --------------------------------------------------------------------------
# Per-suite breakdown (extends the Table-3 protocol view)
# --------------------------------------------------------------------------

def per_suite_breakdown(settings: "EvalSettings | None" = None) -> ExperimentResult:
    """DynamicTRR node-power error per held-out suite.

    The paper reports averages over the seven Table-3 rotations "due to
    page constraints"; this experiment shows the distribution behind that
    average — which unseen suites are hard (bursty Graph500, skewed HPCC)
    and which are easy.
    """
    settings = settings or EvalSettings.from_env()
    catalog = default_catalog(settings.seed)
    campaign = build_campaign(settings, catalog)
    rows = []
    for suite in settings.test_suites:
        split = build_split(settings, campaign, catalog, suite)
        reports = evaluate_trr_split(settings, split, seen=False)
        r = reports["DynamicTRR"]
        rows.append([suite, r.mape, r.rmse, r.mae])
    return ExperimentResult(
        title="Per-suite breakdown — DynamicTRR node power, unseen protocol",
        columns=["Held-out suite", "MAPE%", "RMSE", "MAE"],
        rows=rows,
        notes="The paper's Table 5 averages these rotations; the spread "
        "shows which program families are hardest to restore.",
    )


def chaos_robustness(settings: "EvalSettings | None" = None) -> ExperimentResult:
    """Fault-scenario sweep: restoration MAPE under a misbehaving IM feed.

    Runs the chaos harness (``python -m repro.faults.chaos``) — one monitor
    node per fault scenario, same trained model — and reports node-power
    MAPE per scenario, split into the fault window and the healthy
    remainder. The §6.4.6 jitter experiment generalised to outages,
    stuck-at readings, spikes, clock jitter and delayed arrivals; see
    ``docs/robustness.md``.
    """
    from ..faults.chaos import COLUMNS as chaos_columns
    from ..faults.chaos import ChaosSettings, run_chaos

    settings = settings or EvalSettings.from_env()
    chaos_settings = ChaosSettings.smoke() if settings.samples_per_set < 1000 \
        else ChaosSettings()
    chaos_settings = replace(
        chaos_settings, platform=settings.platform, seed=settings.seed
    )
    report = run_chaos(chaos_settings)
    rows = [o.row() for o in report.outcomes]
    from ..obs import render_overhead

    notes = [
        report.degradation_summary() + ".",
        render_overhead(report.self_overhead) + ".",
        "Graceful degradation gate: during a mid-run outage the "
        "fault-window MAPE must stay within 2x the healthy-window MAPE, "
        "and a dead feed must degrade to model-only restoration instead "
        "of failing the run.",
    ]
    return ExperimentResult(
        title=f"Chaos sweep — IM-feed fault scenarios ({report.platform})",
        columns=list(chaos_columns),
        rows=rows,
        notes=" ".join(notes),
        extras={"report": report},
    )


def calib_compensation(settings: "EvalSettings | None" = None) -> ExperimentResult:
    """Structured-error sweep: fault-window MAPE with vs without compensation.

    Runs the calibration harness (``python -m repro.calib.check``) — per
    scenario, twin faulted IM feeds observe the same run, one raw and one
    behind a fitted :class:`~repro.calib.CompensationTransform` — and
    reports the compensated/uncompensated MAPE ratio next to the recovered
    lag/affine coefficients; see ``docs/calibration.md``.
    """
    from ..calib.check import COLUMNS as calib_columns
    from ..calib.check import CalibSettings, run_check

    settings = settings or EvalSettings.from_env()
    calib_settings = CalibSettings.smoke() if settings.samples_per_set < 1000 \
        else CalibSettings()
    # Platform follows the eval settings; the seed deliberately does NOT.
    # The gate ceilings are calibrated to the harness's canonical seeded
    # protocol (how degrading a fixed-severity fault is varies with the
    # seeded workload's phase structure), so grafting the eval seed onto
    # them would turn a protocol gate into a coin flip.
    calib_settings = replace(calib_settings, platform=settings.platform)
    report = run_check(calib_settings)
    failures = report.gate_failures()
    notes = (
        "MAPE%/ratio columns cover the fault window. Gate: compensated "
        "fault-window MAPE <= 0.5x uncompensated on the systematic-skew "
        "and gain-drift scenarios. "
        + (f"Gate FAILED: {', '.join(failures)}." if failures
           else "All gated scenarios passed.")
    )
    return ExperimentResult(
        title=f"Calibration sweep — structured IM error ({report.platform})",
        columns=list(calib_columns),
        rows=[o.row() for o in report.outcomes],
        notes=notes,
        extras={"report": report},
    )
