"""Terminal trace rendering: sparkline strips and block charts.

Keeps the CLI self-contained on headless clusters — no matplotlib. Used by
``python -m repro monitor --plot`` and handy in notebooks-over-ssh.
"""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError
from ..utils.validation import check_1d

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values, width: int = 80) -> str:
    """One-line unicode sparkline, resampled to ``width`` characters."""
    x = check_1d(values, "values")
    if x.shape[0] == 0:
        raise ValidationError("cannot plot an empty series")
    if width < 1:
        raise ValidationError("width must be >= 1")
    # Resample by block means.
    idx = np.linspace(0, x.shape[0], width + 1).astype(int)
    blocks = np.array([
        x[a:b].mean() if b > a else x[min(a, x.shape[0] - 1)]
        for a, b in zip(idx[:-1], idx[1:])
    ])
    lo, hi = float(blocks.min()), float(blocks.max())
    if hi - lo < 1e-12:
        return _SPARK_LEVELS[0] * width
    scaled = ((blocks - lo) / (hi - lo) * (len(_SPARK_LEVELS) - 1)).round().astype(int)
    return "".join(_SPARK_LEVELS[k] for k in scaled)


def strip_chart(
    series: dict[str, np.ndarray],
    width: int = 72,
    unit: str = "W",
) -> str:
    """Labelled multi-series sparkline strip with min/mean/max columns."""
    if not series:
        raise ValidationError("no series to plot")
    label_w = max(len(k) for k in series)
    lines = []
    for label, values in series.items():
        x = check_1d(values, label)
        lines.append(
            f"{label:>{label_w}} {sparkline(x, width)} "
            f"min {x.min():7.1f}{unit}  mean {x.mean():7.1f}{unit}  "
            f"max {x.max():7.1f}{unit}"
        )
    return "\n".join(lines)


def histogram(values, bins: int = 10, width: int = 40, unit: str = "W") -> str:
    """Horizontal block histogram."""
    x = check_1d(values, "values")
    if x.shape[0] == 0:
        raise ValidationError("cannot plot an empty series")
    if bins < 1 or width < 1:
        raise ValidationError("bins and width must be >= 1")
    counts, edges = np.histogram(x, bins=bins)
    peak = counts.max() or 1
    lines = []
    for k in range(bins):
        bar = "█" * int(round(counts[k] / peak * width))
        lines.append(
            f"{edges[k]:8.1f}-{edges[k + 1]:8.1f} {unit} | {bar} {counts[k]}"
        )
    return "\n".join(lines)
