"""Ablation studies for the design choices DESIGN.md calls out.

Each mirrors a claim from the paper:

* ``ablation_resmodel`` — the paper tried every Table-4 model for the
  StaticTRR residual learner and found the decision tree best (§4.2.1);
* ``ablation_postprocessing`` — Algorithm 1's contribution to StaticTRR;
* ``ablation_finetune`` — DynamicTRR's online fine-tuning (§4.2.2);
* ``ablation_lstm_depth`` — two recurrent layers are optimal (§6.4.3).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..core.dynamic_trr import DynamicTRR
from ..core.static_trr import StaticTRR
from ..hardware.node import NodeSimulator
from ..hardware.platform import get_platform
from ..ml.metrics import mape
from ..ml.registry import make_baseline
from ..sensors.ipmi import IPMISensor
from ..workloads.catalog import default_catalog
from .experiments import ExperimentResult, _config
from .harness import EvalSettings

_TEST_NAMES = ("hpcc_fft", "graph500_bfs", "spec_xz", "hpcg")
_TRAIN_NAMES = ("spec_gcc", "spec_mcf", "parsec_ferret", "hpcc_hpl",
                "hpcc_stream", "parsec_radix")


def _fixture(settings: EvalSettings, duration_s: int = 300):
    spec = get_platform(settings.platform)
    sim = NodeSimulator(spec, seed=settings.seed)
    catalog = default_catalog(settings.seed)
    train = [sim.run(catalog.get(n), duration_s=duration_s // 2)
             for n in _TRAIN_NAMES]
    tests = [sim.run(catalog.get(n), duration_s=duration_s) for n in _TEST_NAMES]
    sensor = IPMISensor(spec, seed=settings.seed + 19)
    readings = [sensor.sample(b) for b in tests]
    return spec, train, tests, readings


def ablation_resmodel(settings: "EvalSettings | None" = None) -> ExperimentResult:
    """StaticTRR with different residual learners (paper picked DT)."""
    settings = settings or EvalSettings.from_env()
    spec, _, tests, readings = _fixture(settings)
    cfg = _config(settings)
    rows = []
    for name in ("DT", "LR", "RR", "RF", "KNN", "NN"):
        scores = []
        for bundle, r in zip(tests, readings):
            # "DT" uses StaticTRR's own shallow-tree default (the deployed
            # configuration); the alternatives come from the Table-4 zoo.
            factory = None if name == "DT" else (lambda n=name: make_baseline(n))
            trr = StaticTRR(
                cfg,
                p_upper=spec.max_node_power_w,
                p_bottom=spec.min_node_power_w,
                res_model_factory=factory,
            )
            p = trr.fit_restore(bundle.pmcs.matrix, r).p_trr
            scores.append(mape(bundle.node.values, p))
        rows.append([name, float(np.mean(scores))])
    return ExperimentResult(
        title="Ablation — ResModel learner choice (StaticTRR)",
        columns=["ResModel", "Node MAPE%"],
        rows=rows,
        notes="Paper §4.2.1: 'we tested all the linear and nonlinear methods "
        "... DT worked best'.",
    )


def ablation_postprocessing(settings: "EvalSettings | None" = None) -> ExperimentResult:
    """Algorithm 1 on vs off (off = raw ResModel output everywhere)."""
    settings = settings or EvalSettings.from_env()
    spec, _, tests, readings = _fixture(settings)
    cfg = _config(settings)
    rows = []
    for bundle, r in zip(tests, readings):
        trr = StaticTRR(cfg, p_upper=spec.max_node_power_w,
                        p_bottom=spec.min_node_power_w)
        result = trr.fit_restore(bundle.pmcs.matrix, r)
        fused = mape(bundle.node.values, result.p_trr)
        raw_res = mape(bundle.node.values, result.p_residual)
        raw_spline = mape(bundle.node.values, result.p_splined)
        rows.append([bundle.workload, fused, raw_res, raw_spline])
    return ExperimentResult(
        title="Ablation — Algorithm-1 post-processing",
        columns=["Benchmark", "fused MAPE%", "ResModel-only MAPE%",
                 "Spline-only MAPE%"],
        rows=rows,
        notes="The fusion should never be much worse than the better of its "
        "two inputs.",
    )


def ablation_finetune(settings: "EvalSettings | None" = None) -> ExperimentResult:
    """DynamicTRR with and without online fine-tuning."""
    settings = settings or EvalSettings.from_env()
    spec, train, tests, readings = _fixture(settings)
    cfg = _config(settings)
    dyn = DynamicTRR(cfg)
    dyn.fit(train, p_bottom=spec.min_node_power_w, p_upper=spec.max_node_power_w)
    rows = []
    for bundle, r in zip(tests, readings):
        with_ft = mape(bundle.node.values, dyn.restore(bundle.pmcs.matrix, r))
        session = dyn.session()
        session._fine_tune = lambda X, d, boost=1: None  # disable adaptation
        without = mape(bundle.node.values, session.run(bundle.pmcs.matrix, r))
        rows.append([bundle.workload, with_ft, without])
    return ExperimentResult(
        title="Ablation — DynamicTRR online fine-tuning",
        columns=["Benchmark", "with fine-tune MAPE%", "without MAPE%"],
        rows=rows,
        notes="Paper §6.4.5: fine-tuning takes < 2 s and keeps the model "
        "calibrated on unseen programs.",
    )


def ablation_trend_model(settings: "EvalSettings | None" = None) -> ExperimentResult:
    """StaticTRR's trend component: natural cubic spline vs linear interp.

    The paper selects splines for the long-term trend; this checks that the
    choice actually pays against the cheapest alternative.
    """
    from ..interp.linear import LinearInterpolator

    settings = settings or EvalSettings.from_env()
    spec, _, tests, readings = _fixture(settings)
    cfg = _config(settings)
    rows = []
    for name, factory in (("spline", None), ("linear", LinearInterpolator)):
        scores = []
        for bundle, r in zip(tests, readings):
            trr = StaticTRR(cfg, p_upper=spec.max_node_power_w,
                            p_bottom=spec.min_node_power_w,
                            trend_factory=factory)
            scores.append(mape(bundle.node.values,
                               trr.fit_restore(bundle.pmcs.matrix, r).p_trr))
        rows.append([name, float(np.mean(scores))])
    return ExperimentResult(
        title="Ablation — StaticTRR trend model (spline vs linear)",
        columns=["Trend", "Node MAPE%"],
        rows=rows,
        notes="The spline should match or beat connect-the-dots on smooth "
        "power trends.",
    )


def ablation_lstm_depth(settings: "EvalSettings | None" = None) -> ExperimentResult:
    """Hyperparameter study: number of recurrent layers (§6.4.3)."""
    settings = settings or EvalSettings.from_env()
    spec, train, tests, readings = _fixture(settings)
    rows = []
    for layers in (1, 2, 4):
        cfg = replace(_config(settings), lstm_layers=layers)
        dyn = DynamicTRR(cfg)
        dyn.fit(train, p_bottom=spec.min_node_power_w, p_upper=spec.max_node_power_w)
        scores = [
            mape(b.node.values, dyn.restore(b.pmcs.matrix, r))
            for b, r in zip(tests, readings)
        ]
        rows.append([layers, float(np.mean(scores))])
    return ExperimentResult(
        title="Ablation — LSTM depth (paper: accuracy peaks at 2 layers)",
        columns=["Layers", "Node MAPE%"],
        rows=rows,
    )
