"""Campaign construction and the seen/unseen evaluation protocol (§5.3).

The paper groups the 96 benchmarks into seven suite sets, compiles 1000
samples from each set in order, and rotates which set is held out:

* **unseen**: train on the six remaining sets' samples, test on the
  held-out set's samples;
* **seen**: train on the first 90 % of every set's samples, test on the
  last 10 % of every set.

``EvalSettings.quick()`` shrinks sample counts and training budgets so the
whole table suite runs in minutes; ``EvalSettings.full()`` matches the
paper's sizes. Set the environment variable ``REPRO_FULL=1`` to make the
benchmarks use the full protocol.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

import numpy as np

from ..core.dataset import FlatDataset, build_flat_dataset
from ..errors import ExperimentError
from ..hardware.node import NodeSimulator
from ..hardware.platform import get_platform
from ..ml.metrics import ScoreReport, score_report
from ..ml.registry import make_baseline
from ..types import TraceBundle
from ..utils.timeseries import sliding_windows
from ..workloads.catalog import TABLE3_TEST_SUITES, BenchmarkCatalog, default_catalog


@dataclass(frozen=True)
class EvalSettings:
    """Sizes and budgets for one evaluation run."""

    platform: str = "arm"
    seconds_per_benchmark: int = 120
    samples_per_set: int = 1000
    seen_train_fraction: float = 0.9
    miss_interval: int = 10
    seed: int = 2023
    test_suites: tuple[str, ...] = TABLE3_TEST_SUITES
    rnn_iters: int = 400
    lstm_iters: int = 400
    srr_iters: int = 4000

    @staticmethod
    def quick() -> "EvalSettings":
        """Minutes-scale settings for CI and default bench runs."""
        return EvalSettings(
            seconds_per_benchmark=80,
            samples_per_set=350,
            test_suites=("HPCG", "HPCC", "SPEC"),
            rnn_iters=250,
            lstm_iters=300,
            srr_iters=2500,
        )

    @staticmethod
    def full() -> "EvalSettings":
        """The paper's protocol sizes (tens of minutes)."""
        return EvalSettings()

    @staticmethod
    def from_env() -> "EvalSettings":
        return EvalSettings.full() if os.environ.get("REPRO_FULL") == "1" else EvalSettings.quick()

    def on_platform(self, platform: str) -> "EvalSettings":
        return replace(self, platform=platform)


# --------------------------------------------------------------------------
# Campaign construction
# --------------------------------------------------------------------------

def build_campaign(
    settings: EvalSettings,
    catalog: "BenchmarkCatalog | None" = None,
    freq_ghz: "float | None" = None,
) -> dict[str, TraceBundle]:
    """Run every catalog workload once; returns name → ground-truth bundle."""
    catalog = catalog or default_catalog(settings.seed)
    spec = get_platform(settings.platform)
    sim = NodeSimulator(spec, seed=settings.seed)
    return {
        w.name: sim.run(w, duration_s=settings.seconds_per_benchmark, freq_ghz=freq_ghz)
        for w in catalog
    }


def _suite_samples(
    campaign: dict[str, TraceBundle],
    catalog: BenchmarkCatalog,
    suite: str,
    limit: int,
    min_len: int,
) -> list[TraceBundle]:
    """Bundles of one suite, trimmed so their total length is ≈ ``limit``.

    Samples are compiled "in order" (§5.3): whole bundles are taken until
    the budget runs out, then the final bundle is truncated. A trailing
    fragment shorter than ``min_len`` is dropped — TRR restoration needs a
    handful of IM readings per trace, and a sliver provides none.

    Small suites (Graph500, HPCG…) may not fill the budget; that matches
    the paper, whose single-program sets are short too.
    """
    out: list[TraceBundle] = []
    remaining = limit
    for w in catalog.suite(suite):
        b = campaign[w.name]
        if remaining <= 0:
            break
        take = min(len(b), remaining)
        if take < min_len:
            break
        out.append(b.slice(0, take) if take < len(b) else b)
        remaining -= take
    if not out:
        raise ExperimentError(f"suite {suite} produced no samples")
    return out


@dataclass(frozen=True)
class SplitDatasets:
    """Train/test bundles for one Table-3 rotation, both protocols.

    ``seen_pairs`` keeps each full bundle together with its train/test cut
    index: TRR models need contiguous traces (sparse readings span the whole
    run) and are scored only on the samples past the cut.
    """

    test_suite: str
    train_seen: list[TraceBundle]
    test_seen: list[TraceBundle]
    train_unseen: list[TraceBundle]
    test_unseen: list[TraceBundle]
    seen_pairs: list[tuple[TraceBundle, int]]

    def flat(self, seen: bool) -> tuple[FlatDataset, FlatDataset]:
        if seen:
            return build_flat_dataset(self.train_seen), build_flat_dataset(self.test_seen)
        return build_flat_dataset(self.train_unseen), build_flat_dataset(self.test_unseen)


def build_split(
    settings: EvalSettings,
    campaign: dict[str, TraceBundle],
    catalog: BenchmarkCatalog,
    test_suite: str,
) -> SplitDatasets:
    """Materialise one suite-rotation split under both protocols."""
    all_suites = catalog.suites
    if test_suite not in all_suites:
        raise ExperimentError(f"unknown test suite {test_suite!r}")
    min_len = 4 * settings.miss_interval + 2
    per_set = {
        s: _suite_samples(campaign, catalog, s, settings.samples_per_set, min_len)
        for s in all_suites
    }

    # Unseen: full sets from the other suites train; held-out set tests.
    train_unseen = [b for s in all_suites if s != test_suite for b in per_set[s]]
    test_unseen = list(per_set[test_suite])

    # Seen: leading fraction of every set trains, trailing fraction tests.
    train_seen: list[TraceBundle] = []
    test_seen: list[TraceBundle] = []
    seen_pairs: list[tuple[TraceBundle, int]] = []
    frac = settings.seen_train_fraction
    for s in all_suites:
        for b in per_set[s]:
            cut = int(round(len(b) * frac))
            # Keep both halves long enough for windowing/miss_interval.
            cut = min(max(cut, settings.miss_interval + 2), len(b) - settings.miss_interval - 2)
            if cut <= 0 or cut >= len(b):
                train_seen.append(b)
                continue
            train_seen.append(b.slice(0, cut))
            test_seen.append(b.slice(cut, len(b)))
            seen_pairs.append((b, cut))
    if not test_seen:
        raise ExperimentError("seen protocol produced no test bundles")
    return SplitDatasets(
        test_suite=test_suite,
        train_seen=train_seen,
        test_seen=test_seen,
        train_unseen=train_unseen,
        test_unseen=test_unseen,
        seen_pairs=seen_pairs,
    )


# --------------------------------------------------------------------------
# Model evaluation helpers
# --------------------------------------------------------------------------

def evaluate_flat_model(
    name: str,
    train: FlatDataset,
    test: FlatDataset,
    target: str = "p_node",
) -> ScoreReport:
    """Fit one Table-4 flat baseline on PMCs → power; score on the test set."""
    model = make_baseline(name)
    y_train = getattr(train, target)
    y_test = getattr(test, target)
    model.fit(train.X, y_train)
    return score_report(y_test, model.predict(test.X))


def _pmc_windows(
    bundles: list[TraceBundle], width: int
) -> tuple[np.ndarray, np.ndarray]:
    """PMC-only sliding windows with last-step power labels (RNN baselines).

    Unlike DynamicTRR's Fig.-4 windows these carry *no* node-power feature —
    the RNN baselines are pure PMC models, which is exactly the handicap the
    paper demonstrates.
    """
    xs, ys = [], []
    for b in bundles:
        if len(b) < width:
            continue
        xs.append(sliding_windows(b.pmcs.matrix, width))
        ys.append(sliding_windows(b.node.values, width)[:, -1])
    if not xs:
        raise ExperimentError("no bundle long enough for the window width")
    return np.concatenate(xs), np.concatenate(ys)


def evaluate_rnn_model(
    name: str,
    train_bundles: list[TraceBundle],
    test_bundles: list[TraceBundle],
    settings: EvalSettings,
    target: str = "node",
) -> ScoreReport:
    """Fit an RNN baseline on PMC windows; score on test windows."""
    model = make_baseline(name)
    model.set_params(max_iter=settings.rnn_iters)
    width = settings.miss_interval

    def windows(bundles: list[TraceBundle]):
        xs, ys = [], []
        for b in bundles:
            if len(b) < width:
                continue
            xs.append(sliding_windows(b.pmcs.matrix, width))
            ys.append(sliding_windows(getattr(b, target).values, width)[:, -1])
        if not xs:
            raise ExperimentError("no bundle long enough for the window width")
        return np.concatenate(xs), np.concatenate(ys)

    X_train, y_train = windows(train_bundles)
    X_test, y_test = windows(test_bundles)
    model.fit(X_train, y_train)
    return score_report(y_test, model.predict(X_test))
