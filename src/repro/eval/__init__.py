"""Evaluation harness: the paper's protocol (§5) as reusable code.

``harness`` builds measurement campaigns and seen/unseen datasets per the
Table-3 suite-rotation protocol; ``experiments`` defines one entry point per
paper table/figure; ``tables`` renders results in the paper's row format.
Benchmarks under ``benchmarks/`` are thin wrappers that call these and
print the comparison against the paper's reported numbers.
"""

from .harness import (
    EvalSettings,
    SplitDatasets,
    build_campaign,
    build_split,
    evaluate_flat_model,
    evaluate_rnn_model,
)
from .tables import format_table

__all__ = [
    "EvalSettings",
    "SplitDatasets",
    "build_campaign",
    "build_split",
    "evaluate_flat_model",
    "evaluate_rnn_model",
    "format_table",
]
