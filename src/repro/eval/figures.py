"""Figure experiments (Figs. 1, 2, 7, 8, 9) and §6.4 discussion studies."""

from __future__ import annotations

import time
from dataclasses import replace

import numpy as np

from ..core.dynamic_trr import DynamicTRR
from ..core.highrpm import HighRPM
from ..core.static_trr import StaticTRR
from ..errors import ExperimentError
from ..hardware.node import NodeSimulator
from ..hardware.platform import get_platform
from ..interp.spline import CubicSplineInterpolator
from ..ml.metrics import mape
from ..monitor.capping import CappingPolicy, run_capped
from ..monitor.energy import EnergyAccount
from ..sensors.ipmi import IPMISensor
from .experiments import ExperimentResult, _config
from .harness import EvalSettings
from ..workloads.catalog import default_catalog


# --------------------------------------------------------------------------
# Fig. 1 — power capping under different PI / AI
# --------------------------------------------------------------------------

def fig1(settings: "EvalSettings | None" = None,
         duration_s: int = 240) -> ExperimentResult:
    """Graph500 under a cap, sweeping reading and action intervals.

    The paper's observation: PI 1 s→10 s hides the spikes; AI 1 s→30 s lets
    the peak run to ~50 W (CPU) and costs ~1.1 kJ extra energy.
    """
    settings = settings or EvalSettings.from_env()
    spec = get_platform(settings.platform)
    sim = NodeSimulator(spec, seed=settings.seed)
    workload = default_catalog(settings.seed).get("graph500_bfs")
    cap_w = 75.0  # node-level cap that the BFS bursts routinely violate

    configs = [
        ("uncapped", None, None),
        ("PI=1  AI=1", 1, 1),
        ("PI=10 AI=1", 10, 1),
        ("PI=1  AI=10", 1, 10),
        ("PI=1  AI=30", 1, 30),
    ]
    rows = []
    extras = {}
    for label, pi, ai in configs:
        if pi is None:
            # Uncapped baseline through the same closed-loop path (identical
            # activity and condition streams) with the governor pinned at max.
            bundle = sim.run_controlled(
                workload, lambda t, h: spec.default_freq_ghz, duration_s=duration_s
            )
        else:
            policy = CappingPolicy(cap_w=cap_w, reading_interval_s=pi,
                                   action_interval_s=ai)
            bundle, _ = run_capped(sim, workload, policy, duration_s=duration_s)
        account = EnergyAccount.from_trace(bundle.node, cap_w=cap_w)
        rows.append([
            label, account.peak_w, account.mean_w,
            account.energy_kj, account.time_above_cap_s,
        ])
        extras[label] = account
    return ExperimentResult(
        title=f"Fig. 1 — Graph500 power capping at {cap_w:.0f} W "
        f"(node level, {duration_s}s)",
        columns=["Config", "Peak W", "Mean W", "Energy kJ", "Time>cap s"],
        rows=rows,
        notes="Paper: slower capping (AI 1->30 s) raises peak power and adds "
        "~1.1 kJ (37.3->38.4 kJ).",
        extras=extras,
    )


# --------------------------------------------------------------------------
# Fig. 2 — FFT vs Stream component divergence
# --------------------------------------------------------------------------

def fig2(settings: "EvalSettings | None" = None,
         duration_s: int = 200) -> ExperimentResult:
    """FFT vs Stream component breakdown on the ARM node (paper Fig. 2)."""
    settings = settings or EvalSettings.from_env()
    spec = get_platform(settings.platform)
    sim = NodeSimulator(spec, seed=settings.seed)
    catalog = default_catalog(settings.seed)
    rows = []
    extras = {}
    for name in ("hpcc_fft", "hpcc_stream"):
        b = sim.run(catalog.get(name), duration_s=duration_s)
        rows.append([
            name, b.node.mean_power(), b.cpu.mean_power(),
            b.mem.mean_power(), b.other.mean_power(),
        ])
        extras[name] = b
    return ExperimentResult(
        title="Fig. 2 — FFT vs Stream power breakdown (ARM node)",
        columns=["Benchmark", "Node W", "CPU W", "MEM W", "Other W"],
        rows=rows,
        notes="Paper: both near the 90 W node line; CPU dominates FFT, RAM "
        "dominates Stream; peripherals a constant ~25 W.",
        extras=extras,
    )


# --------------------------------------------------------------------------
# Figs. 7 & 8 — miss_interval sensitivity
# --------------------------------------------------------------------------

def fig7(settings: "EvalSettings | None" = None,
         intervals: tuple[int, ...] = (10, 30, 60, 100),
         duration_s: int = 600) -> ExperimentResult:
    """Spline vs StaticTRR as the readings grow sparser."""
    settings = settings or EvalSettings.from_env()
    spec = get_platform(settings.platform)
    sim = NodeSimulator(spec, seed=settings.seed)
    catalog = default_catalog(settings.seed)
    tests = [catalog.get(n) for n in ("spec_gcc", "parsec_ferret", "graph500_bfs")]
    rows = []
    for interval in intervals:
        if duration_s < 6 * interval:
            raise ExperimentError("duration too short for the widest interval")
        spline_scores, static_scores = [], []
        for w in tests:
            bundle = sim.run(w, duration_s=duration_s)
            sensor = IPMISensor(spec, interval_s=interval, seed=settings.seed + 3)
            readings = sensor.sample(bundle)
            t_all = np.arange(len(bundle), dtype=np.float64)
            spline = CubicSplineInterpolator().fit(
                readings.indices.astype(float), readings.values)
            spline_scores.append(mape(bundle.node.values, spline.predict(t_all)))
            cfg = replace(_config(settings), miss_interval=interval)
            static = StaticTRR(cfg, p_upper=spec.max_node_power_w,
                               p_bottom=spec.min_node_power_w)
            p = static.fit_restore(bundle.pmcs.matrix, readings).p_trr
            static_scores.append(mape(bundle.node.values, p))
        rows.append([
            f"{interval}s", float(np.mean(spline_scores)),
            float(np.mean(static_scores)),
        ])
    return ExperimentResult(
        title="Fig. 7 — impact of miss_interval on spline vs StaticTRR",
        columns=["miss_interval", "Spline MAPE%", "StaticTRR MAPE%"],
        rows=rows,
        notes="Paper: spline most precise at 10 s; it degrades as the "
        "interval grows while StaticTRR holds up.",
    )


def fig8(settings: "EvalSettings | None" = None,
         intervals: tuple[int, ...] = (10, 30, 60, 100),
         duration_s: int = 600) -> ExperimentResult:
    """HighRPM (DynamicTRR) node MAPE across miss_intervals — roughly flat."""
    settings = settings or EvalSettings.from_env()
    spec = get_platform(settings.platform)
    sim = NodeSimulator(spec, seed=settings.seed)
    catalog = default_catalog(settings.seed)
    train = [sim.run(catalog.get(n), duration_s=duration_s // 2)
             for n in ("spec_gcc", "spec_mcf", "parsec_ferret",
                       "hpcc_hpl", "hpcc_stream", "parsec_radix")]
    test_w = catalog.get("hpcc_fft")
    rows = []
    for interval in intervals:
        cfg = replace(_config(settings), miss_interval=interval)
        dyn = DynamicTRR(cfg)
        dyn.fit(train, p_bottom=spec.min_node_power_w, p_upper=spec.max_node_power_w)
        bundle = sim.run(test_w, duration_s=duration_s)
        sensor = IPMISensor(spec, interval_s=interval, seed=settings.seed + 5)
        readings = sensor.sample(bundle)
        p = dyn.restore(bundle.pmcs.matrix, readings)
        rows.append([f"{interval}s", mape(bundle.node.values, p)])
    return ExperimentResult(
        title="Fig. 8 — HighRPM sensitivity to miss_interval",
        columns=["miss_interval", "Node MAPE%"],
        rows=rows,
        notes="Paper: MAPE stays roughly consistent over 10-100 s.",
    )


# --------------------------------------------------------------------------
# Fig. 9 — CPU frequency sensitivity
# --------------------------------------------------------------------------

def fig9(settings: "EvalSettings | None" = None,
         duration_s: int = 240) -> ExperimentResult:
    """Graph500 at min/mid/max frequency: component MAPE per level."""
    settings = settings or EvalSettings.from_env()
    spec = get_platform(settings.platform)
    sim = NodeSimulator(spec, seed=settings.seed)
    catalog = default_catalog(settings.seed)
    train_names = ("spec_gcc", "spec_mcf", "parsec_ferret", "hpcc_hpl",
                   "hpcc_stream", "parsec_radix", "spec_lbm", "hpcc_dgemm")
    # Mixed-frequency training campaign so the models see the DVFS law.
    train = [
        sim.run(catalog.get(n), duration_s=duration_s // 2, freq_ghz=f, run_id=i)
        for i, n in enumerate(train_names)
        for f in spec.freq_levels_ghz
    ]
    cfg = _config(settings)
    hr = HighRPM(cfg, p_bottom=spec.min_node_power_w * 0.7,
                 p_upper=spec.max_node_power_w)
    hr.fit_initial(train)
    sensor = IPMISensor(spec, seed=settings.seed + 7)
    workload = catalog.get("graph500_bfs")
    rows = []
    for level, freq in zip(("min", "mid", "max"), sorted(spec.freq_levels_ghz)):
        bundle = sim.run(workload, duration_s=duration_s, freq_ghz=freq)
        readings = sensor.sample(bundle)
        result = hr.monitor_online(bundle.pmcs.matrix, readings)
        rows.append([
            f"{level} ({freq} GHz)",
            mape(bundle.cpu.values, result.p_cpu),
            mape(bundle.mem.values, result.p_mem),
            mape(bundle.node.values, result.p_node),
        ])
    return ExperimentResult(
        title="Fig. 9 — HighRPM accuracy across CPU frequency levels "
        "(Graph500)",
        columns=["Frequency", "Pcpu MAPE%", "Pmem MAPE%", "Pnode MAPE%"],
        rows=rows,
        notes="Paper: accuracy drops as frequency rises, but stays <=10% CPU "
        "and <=14% MEM.",
    )


# --------------------------------------------------------------------------
# §6.4.5 — training / fine-tuning / prediction overhead
# --------------------------------------------------------------------------

def overhead(settings: "EvalSettings | None" = None) -> ExperimentResult:
    """Training / fine-tuning / prediction latency vs the paper bounds (§6.4.5)."""
    settings = settings or EvalSettings.from_env()
    spec = get_platform(settings.platform)
    sim = NodeSimulator(spec, seed=settings.seed)
    catalog = default_catalog(settings.seed)
    train = [sim.run(catalog.get(n), duration_s=150)
             for n in ("spec_gcc", "spec_mcf", "parsec_ferret", "hpcc_hpl")]
    test = sim.run(catalog.get("hpcc_fft"), duration_s=150)
    cfg = _config(settings)
    hr = HighRPM(cfg, p_bottom=spec.min_node_power_w, p_upper=spec.max_node_power_w)

    t0 = time.perf_counter()
    hr.fit_initial(train)
    train_s = time.perf_counter() - t0

    sensor = IPMISensor(spec, seed=settings.seed)
    readings = sensor.sample(test)
    session = hr.dynamic_trr.session()
    # Fine-tune latency: one measured step.
    for t in range(cfg.miss_interval):
        session.step(test.pmcs.matrix[t])
    t0 = time.perf_counter()
    session.step(test.pmcs.matrix[cfg.miss_interval], im_reading=float(readings.values[0]))
    finetune_s = time.perf_counter() - t0
    # Prediction latency: one unmeasured step plus one SRR row.
    t0 = time.perf_counter()
    session.step(test.pmcs.matrix[cfg.miss_interval + 1])
    predict_node_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    hr.srr.predict(test.pmcs.matrix[:1], np.array([test.node.values[0]]))
    predict_comp_s = time.perf_counter() - t0

    rows = [
        ["offline training", f"{train_s:.2f} s", "< 10 min"],
        ["online fine-tune (1 reading)", f"{finetune_s * 1e3:.1f} ms", "< 2 s"],
        ["node prediction (1 sample)", f"{predict_node_s * 1e3:.2f} ms", "< 1 ms"],
        ["component prediction (1 sample)", f"{predict_comp_s * 1e3:.2f} ms", "< 1 ms"],
    ]
    return ExperimentResult(
        title="§6.4.5 — HighRPM overhead",
        columns=["Operation", "Measured", "Paper bound"],
        rows=rows,
    )
