"""Plain-text table rendering in the paper's row format."""

from __future__ import annotations

from typing import Sequence

from ..ml.metrics import ScoreReport


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Render a fixed-width table with a title banner."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(col)), *(len(r[i]) for r in str_rows)) if str_rows else len(str(col))
        for i, col in enumerate(columns)
    ]
    sep = "-+-".join("-" * w for w in widths)
    header = " | ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    body = "\n".join(
        " | ".join(cell.ljust(w) for cell, w in zip(row, widths)) for row in str_rows
    )
    banner = "=" * len(sep)
    return f"{banner}\n{title}\n{banner}\n{header}\n{sep}\n{body}"


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def score_row(name: str, seen: "ScoreReport | None", unseen: "ScoreReport | None") -> list[object]:
    """One Table-5/7 style row: model, seen MAPE/RMSE/MAE, unseen ditto."""
    def cols(r: "ScoreReport | None") -> list[object]:
        return ["-", "-", "-"] if r is None else [r.mape, r.rmse, r.mae]

    return [name, *cols(seen), *cols(unseen)]


def metric_columns(prefixes: Sequence[str]) -> list[str]:
    """['Model', '<p> MAPE%', '<p> RMSE', '<p> MAE', ...] column headers."""
    cols = ["Model"]
    for p in prefixes:
        cols.extend([f"{p} MAPE%", f"{p} RMSE", f"{p} MAE"])
    return cols


def mean_report(reports: Sequence[ScoreReport]) -> ScoreReport:
    """Average metric bundle across splits (the paper reports averages)."""
    if not reports:
        raise ValueError("cannot average zero reports")
    n = len(reports)
    return ScoreReport(
        mape=sum(r.mape for r in reports) / n,
        rmse=sum(r.rmse for r in reports) / n,
        mae=sum(r.mae for r in reports) / n,
        r2=sum(r.r2 for r in reports) / n,
    )
