"""Accuracy-vs-overhead frontier for the sampling governor.

The paper's overhead story (§6.3, Table 9) prices HighRPM at a fixed
1 Sa/s-equivalent sampling rate. The :class:`~repro.monitor.SamplingGovernor`
makes that rate adaptive: confident nodes are sampled sparsely, uncertain
ones densely. This experiment sweeps the governor's aggressiveness on a
small heterogeneous fleet (CPU hosts + accelerated nodes) and reports the
resulting frontier — surviving IM readings (the monitoring overhead that
scales with sampling density) against node-power restoration MAPE.

The gate the CI smoke run checks: some governed arm must reach **≤ half**
the fixed-rate arm's measured-reading count at **≤ 1.1×** its node MAPE.
"""

from __future__ import annotations

import numpy as np

from ..core import HighRPM, HighRPMConfig
from ..core.highrpm import PROV_MEASURED
from ..gpu import GPUSRR, AcceleratedNodeSimulator, gpu_workload
from ..hardware.node import NodeSimulator
from ..hardware.platform import get_platform
from ..monitor import (
    GovernorPolicy,
    GPUSRRHead,
    NodeProfile,
    PowerMonitorService,
    SamplingGovernor,
)
from ..obs import MetricsRegistry
from ..workloads.catalog import default_catalog
from .experiments import ExperimentResult
from .harness import EvalSettings

#: Governor arms swept (0.0 is the fixed-rate baseline).
AGGRESSIVENESS_ARMS = (0.0, 0.25, 0.5, 0.75, 1.0)

#: Fleet shape: CPU hosts + accelerated nodes, and observation rounds per
#: arm. Round 0 is the dense warm-up that seeds the governor's confidence;
#: the frontier is measured over the governed rounds that follow.
N_CPU_NODES = 6
N_GPU_NODES = 2
ROUNDS = 3

#: Governor knobs held fixed across the sweep. The budget fraction is
#: pinned (determinism: the curve must regenerate bit-identically).
MAX_STRIDE = 4
PINNED_BUDGET_FRACTION = 0.05
CONFIDENCE_FLOOR = 0.5

#: Monitored-run length and fixed-rate IM interval. The run must carry
#: enough readings that strides up to ``MAX_STRIDE`` leave a usable anchor
#: set, and the baseline interval sits in the sparse-IM regime the paper's
#: overhead story targets (IPMI-class sensors poll at tens of seconds):
#: at dense anchor spacings the restoration error is anchor-bound, so any
#: thinning costs well over the gate ratio; from ~25 s the model carries a
#: larger share of the signal and the marginal reading is cheap to drop.
FRONTIER_RUN_SECONDS = 300
FRONTIER_INTERVAL_S = 25

#: Gate thresholds (see module docstring / ISSUE acceptance criteria).
GATE_OVERHEAD = 0.5
GATE_MAPE_RATIO = 1.1

#: Training mixes, and the monitored fleet mix. Monitored workloads are
#: held out of the training sets; the CPU list cycles across the CPU
#: nodes, the GPU list across the accelerated ones.
CPU_TRAIN = ("spec_gcc", "hpcc_hpl", "hpcc_stream")
GPU_TRAIN = ("gemm", "stencil", "training_loop")
CPU_MONITORED = ("parsec_ferret", "parsec_streamcluster",
                 "parsec_blackscholes")
GPU_MONITORED = ("inference_serving", "graph_analytics")


def _models(settings: EvalSettings):
    """Train the CPU and GPU device classes once for the whole sweep."""
    spec = get_platform(settings.platform)
    config = HighRPMConfig(
        miss_interval=settings.miss_interval,
        lstm_iters=settings.lstm_iters,
        srr_iters=settings.srr_iters,
        seed=settings.seed,
    )
    catalog = default_catalog(settings.seed)
    sim = NodeSimulator(spec, seed=settings.seed)
    cpu_train = [
        sim.run(catalog.get(name), duration_s=settings.seconds_per_benchmark)
        for name in CPU_TRAIN
    ]
    cpu_model = HighRPM(
        config, p_bottom=spec.min_node_power_w, p_upper=spec.max_node_power_w
    )
    cpu_model.fit_initial(cpu_train)

    accel = AcceleratedNodeSimulator(host_spec=spec, seed=settings.seed)
    gpu_train = [
        accel.run(gpu_workload(name, seed=settings.seed),
                  duration_s=settings.seconds_per_benchmark)
        for name in GPU_TRAIN
    ]
    gpu_model = HighRPM(
        config, p_bottom=accel.min_node_power_w, p_upper=accel.max_node_power_w
    )
    gpu_model.fit_initial(gpu_train)
    gpu_srr = GPUSRR(config)
    gpu_srr.fit(
        np.vstack([b.pmcs.matrix for b in gpu_train]),
        np.concatenate([b.node.values for b in gpu_train]),
        np.concatenate([b.cpu.values for b in gpu_train]),
        np.concatenate([b.mem.values for b in gpu_train]),
        np.concatenate([b.gpu.values for b in gpu_train]),
    )
    return spec, cpu_model, gpu_model, gpu_srr


def _bundles(settings: EvalSettings, spec):
    """One monitored run per fleet node (truth bundles, mixed classes)."""
    catalog = default_catalog(settings.seed)
    out = {}
    for i in range(N_CPU_NODES + N_GPU_NODES):
        node_id = f"node{i}"
        if i < N_CPU_NODES:
            workload = catalog.get(CPU_MONITORED[i % len(CPU_MONITORED)])
            out[node_id] = ("cpu", NodeSimulator(
                spec, seed=settings.seed + i
            ).run(workload, duration_s=FRONTIER_RUN_SECONDS))
        else:
            accel = gpu_workload(
                GPU_MONITORED[(i - N_CPU_NODES) % len(GPU_MONITORED)],
                seed=settings.seed,
            )
            out[node_id] = ("gpu", AcceleratedNodeSimulator(
                host_spec=spec, seed=settings.seed + i
            ).run(accel, duration_s=FRONTIER_RUN_SECONDS))
    return out


def _run_arm(aggressiveness, settings, spec, cpu_model, gpu_model, gpu_srr,
             bundles):
    """Observe the fleet for ROUNDS under one governor aggressiveness.

    Returns (measured readings, node MAPE %, mean final stride) over the
    governed rounds (round 0 warms the governor up and is excluded — it
    is dense in every arm by construction).
    """
    service = PowerMonitorService(cpu_model, spec, registry=MetricsRegistry())
    service.register_device_class("gpu", gpu_model, head=GPUSRRHead(gpu_srr))
    service.set_governor(SamplingGovernor(GovernorPolicy(
        aggressiveness=aggressiveness,
        max_stride=MAX_STRIDE,
        confidence_floor=CONFIDENCE_FLOOR,
        pinned_budget_fraction=PINNED_BUDGET_FRACTION,
        seed=settings.seed,
    )))
    for node_id, (device_class, _) in bundles.items():
        index = int(node_id.removeprefix("node"))
        service.register_node(node_id, profile=NodeProfile(
            device_class=device_class,
            seed=settings.seed + index,
            interval_s=FRONTIER_INTERVAL_S,
        ))
    measured = 0
    ape_sum = 0.0
    n_samples = 0
    for round_i in range(ROUNDS):
        for node_id, (_, bundle) in bundles.items():
            result = service.observe_run(node_id, bundle, online=True)
            if round_i == 0:
                continue
            measured += int((result.provenance == PROV_MEASURED).sum())
            truth = bundle.node.values
            ape_sum += float(
                np.abs((result.p_node - truth) / truth).sum()
            )
            n_samples += len(result)
    mape = 100.0 * ape_sum / n_samples
    strides = [service.sampling_stride(node_id) for node_id in bundles]
    return measured, mape, float(np.mean(strides))


def frontier_experiment(settings: "EvalSettings | None" = None) -> ExperimentResult:
    """Sweep governor aggressiveness; report the accuracy/overhead curve."""
    settings = settings or EvalSettings.from_env()
    spec, cpu_model, gpu_model, gpu_srr = _models(settings)
    bundles = _bundles(settings, spec)
    arms = []
    for aggressiveness in AGGRESSIVENESS_ARMS:
        measured, mape, mean_stride = _run_arm(
            aggressiveness, settings, spec, cpu_model, gpu_model, gpu_srr,
            bundles,
        )
        arms.append({
            "aggressiveness": aggressiveness,
            "measured": measured,
            "mape": mape,
            "mean_stride": mean_stride,
        })
    base = arms[0]
    rows = []
    for arm in arms:
        arm["overhead_ratio"] = arm["measured"] / base["measured"]
        arm["mape_ratio"] = arm["mape"] / base["mape"]
        rows.append([
            f"{arm['aggressiveness']:.2f}",
            f"{arm['mean_stride']:.2f}",
            str(arm["measured"]),
            f"{arm['overhead_ratio']:.2f}",
            f"{arm['mape']:.2f}",
            f"{arm['mape_ratio']:.2f}",
        ])
    qualifying = [
        arm for arm in arms[1:]
        if arm["overhead_ratio"] <= GATE_OVERHEAD
        and arm["mape_ratio"] <= GATE_MAPE_RATIO
    ]
    if qualifying:
        best = min(qualifying, key=lambda arm: arm["overhead_ratio"])
        gate = (
            f"gate: PASS — aggressiveness {best['aggressiveness']:.2f} "
            f"reaches {best['overhead_ratio']:.2f}x the fixed-rate sampling "
            f"overhead at {best['mape_ratio']:.2f}x its node MAPE "
            f"(thresholds: <= {GATE_OVERHEAD}x overhead, "
            f"<= {GATE_MAPE_RATIO}x MAPE)."
        )
    else:
        gate = (
            f"gate: FAIL — no governed arm reached <= {GATE_OVERHEAD}x "
            f"overhead at <= {GATE_MAPE_RATIO}x MAPE."
        )
    notes = (
        f"Mixed fleet: {N_CPU_NODES} CPU + {N_GPU_NODES} GPU nodes on a "
        f"mixed held-out workload set, {ROUNDS} online (DynamicTRR) rounds "
        f"per arm (round 0 dense, excluded); "
        f"IM interval {FRONTIER_INTERVAL_S} s, max stride {MAX_STRIDE}, "
        f"pinned budget fraction {PINNED_BUDGET_FRACTION}. "
        f"Overhead column counts surviving IM readings relative to the "
        f"aggressiveness-0.00 arm. {gate}"
    )
    return ExperimentResult(
        title="Accuracy-vs-overhead frontier (adaptive sampling governor)",
        columns=["aggr", "mean stride", "IM readings", "overhead x",
                 "node MAPE %", "MAPE x"],
        rows=rows,
        notes=notes,
        extras={"arms": arms, "gate_passed": bool(qualifying)},
    )
