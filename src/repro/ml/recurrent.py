"""Recurrent regressors: LSTM and GRU with full backpropagation through time.

DynamicTRR (paper §4.2.2) is a compact LSTM — an input layer, two hidden
(recurrent) layers, and a fully-connected head — trained on sliding windows
of ``(PMCs, P'_node)`` rows and fine-tuned online whenever a real IM reading
arrives. The GRU variant is the second RNN baseline from Table 4.

Both networks share one implementation skeleton: stacked recurrent layers
over sequences shaped ``(batch, time, features)``, a linear head applied to
every timestep, MSE loss averaged over predicted steps, Adam updates, and
input/target standardisation handled internally.

The time loop is a Python loop over ``T`` steps (windows are short —
``miss_interval`` ≈ 10), with everything inside vectorised over the batch,
per the HPC guide's "vectorise the hot axis" rule.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConvergenceError, ValidationError
from ..utils.rng import as_generator
from ..utils.validation import check_positive
from .base import Regressor


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def _check_sequences(X) -> np.ndarray:
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 3:
        raise ValidationError(
            f"recurrent models need (batch, time, features) input, got shape {X.shape}"
        )
    return X


class _RecurrentBase(Regressor):
    """Shared training loop; subclasses provide cell forward/backward."""

    #: gates per cell (4 for LSTM, 3 for GRU); set by subclass.
    _n_gates: int = 0

    def __init__(
        self,
        hidden_size: int = 16,
        num_layers: int = 2,
        max_iter: int = 400,
        lr: float = 5e-3,
        batch_size: int = 64,
        alpha: float = 1e-6,
        clip: float = 5.0,
        random_state: "int | None" = 0,
    ) -> None:
        check_positive(hidden_size, "hidden_size")
        check_positive(num_layers, "num_layers")
        check_positive(max_iter, "max_iter")
        self.hidden_size = int(hidden_size)
        self.num_layers = int(num_layers)
        self.max_iter = int(max_iter)
        self.lr = float(lr)
        self.batch_size = int(batch_size)
        self.alpha = float(alpha)
        self.clip = float(clip)
        self.random_state = random_state
        self.params_: "list[dict[str, np.ndarray]] | None" = None
        self.head_w_: np.ndarray | None = None
        self.head_b_: float = 0.0
        self.loss_curve_: list[float] = []
        self._x_mean = self._x_scale = None
        self._y_mean = self._y_scale = 1.0

    # -- subclass hooks ------------------------------------------------------
    def _cell_forward(self, layer, x_t, state):
        raise NotImplementedError

    def _cell_backward(self, layer, cache, d_h, d_state, grads):
        raise NotImplementedError

    def _zero_state(self, layer_idx: int, batch: int):
        raise NotImplementedError

    # -- parameter management --------------------------------------------------
    def _init_params(self, n_features: int, rng) -> None:
        self.params_ = []
        for layer in range(self.num_layers):
            d_in = n_features if layer == 0 else self.hidden_size
            h = self.hidden_size
            scale_w = 1.0 / np.sqrt(d_in)
            scale_u = 1.0 / np.sqrt(h)
            self.params_.append(
                {
                    "W": rng.uniform(-scale_w, scale_w, size=(d_in, self._n_gates * h)),
                    "U": rng.uniform(-scale_u, scale_u, size=(h, self._n_gates * h)),
                    "b": np.zeros(self._n_gates * h),
                }
            )
        scale = 1.0 / np.sqrt(self.hidden_size)
        self.head_w_ = rng.uniform(-scale, scale, size=self.hidden_size)
        self.head_b_ = 0.0

    def _flat_params(self) -> list[np.ndarray]:
        flat = []
        for p in self.params_:
            flat.extend([p["W"], p["U"], p["b"]])
        flat.append(self.head_w_)
        return flat

    # -- forward over a batch of sequences -------------------------------------
    def _forward(self, X: np.ndarray, collect: bool = False):
        """Run the stack; returns per-step predictions (batch, T) and caches."""
        batch, T, _ = X.shape
        h_all = X
        caches: list[list] = [[] for _ in range(self.num_layers)]
        for layer in range(self.num_layers):
            state = self._zero_state(layer, batch)
            outs = np.empty((batch, T, self.hidden_size))
            for t in range(T):
                h_t, state, cache = self._cell_forward(layer, h_all[:, t, :], state)
                outs[:, t, :] = h_t
                if collect:
                    caches[layer].append(cache)
            h_all = outs
        preds = h_all @ self.head_w_ + self.head_b_  # (batch, T)
        return preds, h_all, caches

    # -- training ---------------------------------------------------------------
    def fit(self, X, y, warm_start: bool = False, max_iter: "int | None" = None):
        """Train on sequences ``X (n, T, d)``.

        ``y`` may be ``(n,)`` (label = power at the final step) or ``(n, T)``
        (full per-step labels, the DynamicTRR construction from Fig. 4).
        """
        X = _check_sequences(X)
        y_arr = np.asarray(y, dtype=np.float64)
        n, T, d = X.shape
        if y_arr.ndim == 1:
            Y = np.full((n, T), np.nan)
            Y[:, -1] = y_arr
        elif y_arr.shape == (n, T):
            Y = y_arr.copy()
        else:
            raise ValidationError(
                f"y must have shape ({n},) or ({n},{T}); got {y_arr.shape}"
            )
        rng = as_generator(self.random_state)
        if not (warm_start and self.params_ is not None):
            self._x_mean = X.reshape(-1, d).mean(axis=0)
            xs = X.reshape(-1, d).std(axis=0)
            xs[xs == 0.0] = 1.0
            self._x_scale = xs
            finite = Y[np.isfinite(Y)]
            self._y_mean = float(finite.mean())
            ysc = float(finite.std())
            self._y_scale = ysc if ysc > 0 else 1.0
            self._init_params(d, rng)
            self.loss_curve_ = []

        Xs = (X - self._x_mean) / self._x_scale
        Ys = (Y - self._y_mean) / self._y_scale
        label_mask = np.isfinite(Ys)

        flat = self._flat_params()
        m1 = [np.zeros_like(p) for p in flat] + [0.0]
        m2 = [np.zeros_like(p) for p in flat] + [0.0]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        bs = min(self.batch_size, n)
        iters = self.max_iter if max_iter is None else int(max_iter)
        step = 0
        for it in range(iters):
            idx = rng.integers(0, n, size=bs)
            xb, yb, mb = Xs[idx], Ys[idx], label_mask[idx]
            preds, h_all, caches = self._forward(xb, collect=True)
            err = np.where(mb, preds - np.where(mb, yb, 0.0), 0.0)
            n_labels = int(mb.sum())
            loss = float((err**2).sum() / max(n_labels, 1))
            if not np.isfinite(loss):
                raise ConvergenceError("RNN training diverged")
            self.loss_curve_.append(loss)

            # Backward.
            d_pred = 2.0 * err / max(n_labels, 1)  # (batch, T)
            grads = [
                {k: np.zeros_like(v) for k, v in p.items()} for p in self.params_
            ]
            g_head_w = np.einsum("bt,bth->h", d_pred, h_all)
            g_head_b = float(d_pred.sum())
            d_h_top = d_pred[:, :, None] * self.head_w_[None, None, :]
            T_steps = xb.shape[1]
            d_below = d_h_top
            for layer in range(self.num_layers - 1, -1, -1):
                d_state = self._zero_state(layer, bs)
                d_x_seq = np.empty(
                    (bs, T_steps, self.params_[layer]["W"].shape[0])
                )
                for t in range(T_steps - 1, -1, -1):
                    d_x, d_state = self._cell_backward(
                        layer, caches[layer][t], d_below[:, t, :], d_state,
                        grads[layer],
                    )
                    d_x_seq[:, t, :] = d_x
                d_below = d_x_seq

            # L2 penalty.
            for p, g in zip(self.params_, grads):
                for k in p:
                    g[k] += self.alpha * p[k]

            # Gradient clipping by global norm.
            flat_grads = []
            for g in grads:
                flat_grads.extend([g["W"], g["U"], g["b"]])
            flat_grads.append(g_head_w)
            norm = np.sqrt(sum(float((g**2).sum()) for g in flat_grads) + g_head_b**2)
            if norm > self.clip:
                scale = self.clip / norm
                flat_grads = [g * scale for g in flat_grads]
                g_head_b *= scale

            # Adam.
            step += 1
            flat = self._flat_params()
            for i, (p, g) in enumerate(zip(flat, flat_grads)):
                m1[i] = beta1 * m1[i] + (1 - beta1) * g
                m2[i] = beta2 * m2[i] + (1 - beta2) * g**2
                p -= self.lr * (m1[i] / (1 - beta1**step)) / (
                    np.sqrt(m2[i] / (1 - beta2**step)) + eps
                )
            m1[-1] = beta1 * m1[-1] + (1 - beta1) * g_head_b
            m2[-1] = beta2 * m2[-1] + (1 - beta2) * g_head_b**2
            self.head_b_ -= self.lr * (m1[-1] / (1 - beta1**step)) / (
                np.sqrt(m2[-1] / (1 - beta2**step)) + eps
            )
        return self

    def partial_fit(self, X, y, n_steps: int = 20):
        """Online fine-tuning with a small step budget (DynamicTRR §4.2.2)."""
        return self.fit(X, y, warm_start=True, max_iter=n_steps)

    # -- inference ----------------------------------------------------------------
    def predict(self, X, return_sequences: bool = False) -> np.ndarray:
        """Predict power for each window; last step by default."""
        self._check_fitted("params_")
        X = _check_sequences(X)
        Xs = (X - self._x_mean) / self._x_scale
        preds, _, _ = self._forward(Xs, collect=True)
        preds = preds * self._y_scale + self._y_mean
        return preds if return_sequences else preds[:, -1]


class LSTMRegressor(_RecurrentBase):
    """Stacked LSTM (Table 4: ``#units=2`` — two recurrent layers)."""

    _n_gates = 4

    def _zero_state(self, layer_idx: int, batch: int):
        h = np.zeros((batch, self.hidden_size))
        c = np.zeros((batch, self.hidden_size))
        return (h, c)

    def _cell_forward(self, layer, x_t, state):
        h_prev, c_prev = state
        p = self.params_[layer]
        H = self.hidden_size
        z = x_t @ p["W"] + h_prev @ p["U"] + p["b"]
        i = _sigmoid(z[:, :H])
        f = _sigmoid(z[:, H : 2 * H])
        g = np.tanh(z[:, 2 * H : 3 * H])
        o = _sigmoid(z[:, 3 * H :])
        c = f * c_prev + i * g
        tanh_c = np.tanh(c)
        h = o * tanh_c
        cache = (x_t, h_prev, c_prev, i, f, g, o, c, tanh_c)
        return h, (h, c), cache

    def _cell_backward(self, layer, cache, d_h_ext, d_state, grads):
        x_t, h_prev, c_prev, i, f, g, o, c, tanh_c = cache
        d_h_rec, d_c_rec = d_state
        d_h = d_h_ext + d_h_rec
        p = self.params_[layer]
        H = self.hidden_size
        d_o = d_h * tanh_c
        d_c = d_h * o * (1.0 - tanh_c**2) + d_c_rec
        d_f = d_c * c_prev
        d_i = d_c * g
        d_g = d_c * i
        d_c_prev = d_c * f
        dz = np.empty((x_t.shape[0], 4 * H))
        dz[:, :H] = d_i * i * (1 - i)
        dz[:, H : 2 * H] = d_f * f * (1 - f)
        dz[:, 2 * H : 3 * H] = d_g * (1 - g**2)
        dz[:, 3 * H :] = d_o * o * (1 - o)
        grads["W"] += x_t.T @ dz
        grads["U"] += h_prev.T @ dz
        grads["b"] += dz.sum(axis=0)
        d_x = dz @ p["W"].T
        d_h_prev = dz @ p["U"].T
        return d_x, (d_h_prev, d_c_prev)


class GRURegressor(_RecurrentBase):
    """Stacked GRU (the second RNN baseline in Table 4)."""

    _n_gates = 3

    def _zero_state(self, layer_idx: int, batch: int):
        return np.zeros((batch, self.hidden_size))

    def _cell_forward(self, layer, x_t, state):
        h_prev = state
        p = self.params_[layer]
        H = self.hidden_size
        zx = x_t @ p["W"] + p["b"]
        zh = h_prev @ p["U"]
        r = _sigmoid(zx[:, :H] + zh[:, :H])
        u = _sigmoid(zx[:, H : 2 * H] + zh[:, H : 2 * H])
        n = np.tanh(zx[:, 2 * H :] + r * zh[:, 2 * H :])
        h = (1.0 - u) * n + u * h_prev
        cache = (x_t, h_prev, r, u, n, zh[:, 2 * H :])
        return h, h, cache

    def _cell_backward(self, layer, cache, d_h_ext, d_state, grads):
        x_t, h_prev, r, u, n, zh_n = cache
        d_h = d_h_ext + d_state
        p = self.params_[layer]
        H = self.hidden_size
        d_u = d_h * (h_prev - n)
        d_n = d_h * (1.0 - u)
        d_h_prev = d_h * u
        d_n_pre = d_n * (1.0 - n**2)
        d_r = d_n_pre * zh_n
        dzx = np.empty((x_t.shape[0], 3 * H))
        dzh = np.empty_like(dzx)
        dzx[:, :H] = d_r * r * (1 - r)
        dzx[:, H : 2 * H] = d_u * u * (1 - u)
        dzx[:, 2 * H :] = d_n_pre
        dzh[:, :H] = dzx[:, :H]
        dzh[:, H : 2 * H] = dzx[:, H : 2 * H]
        dzh[:, 2 * H :] = d_n_pre * r
        grads["W"] += x_t.T @ dzx
        grads["U"] += h_prev.T @ dzh
        grads["b"] += dzx.sum(axis=0)
        d_x = dzx @ p["W"].T
        d_h_prev = d_h_prev + dzh @ p["U"].T
        return d_x, d_h_prev
