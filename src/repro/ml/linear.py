"""Linear baselines from Table 4: LR, Lasso, Ridge, SGD.

* :class:`LinearRegression` — ordinary least squares via ``lstsq`` (SVD),
  robust to rank deficiency.
* :class:`RidgeRegression` — closed-form Tikhonov solution.
* :class:`LassoRegression` — cyclical coordinate descent with soft
  thresholding, the standard solver.
* :class:`SGDRegressor` — minibatch SGD on squared error, matching the
  paper's ``squared_error, max_iter=10000`` configuration.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConvergenceError
from ..utils.rng import as_generator
from ..utils.validation import check_2d, check_positive
from .base import Regressor


class LinearRegression(Regressor):
    """Ordinary least squares, ``y ≈ X @ coef_ + intercept_``."""

    def __init__(self, fit_intercept: bool = True) -> None:
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X, y) -> "LinearRegression":
        X, y = self._validate_xy(X, y)
        if self.fit_intercept:
            Xb = np.column_stack([X, np.ones(X.shape[0])])
        else:
            Xb = X
        beta, *_ = np.linalg.lstsq(Xb, y, rcond=None)
        if self.fit_intercept:
            self.coef_, self.intercept_ = beta[:-1], float(beta[-1])
        else:
            self.coef_, self.intercept_ = beta, 0.0
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted("coef_")
        X = check_2d(X, "X")
        return X @ self.coef_ + self.intercept_


class RidgeRegression(Regressor):
    """L2-regularised least squares (closed form).

    The intercept is never penalised: data is centred before solving.
    """

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True) -> None:
        check_positive(alpha, "alpha", strict=False)
        self.alpha = float(alpha)
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X, y) -> "RidgeRegression":
        X, y = self._validate_xy(X, y)
        if self.fit_intercept:
            x_mean, y_mean = X.mean(axis=0), y.mean()
            Xc, yc = X - x_mean, y - y_mean
        else:
            x_mean, y_mean = np.zeros(X.shape[1]), 0.0
            Xc, yc = X, y
        n_features = X.shape[1]
        gram = Xc.T @ Xc + self.alpha * np.eye(n_features)
        self.coef_ = np.linalg.solve(gram, Xc.T @ yc)
        self.intercept_ = float(y_mean - x_mean @ self.coef_)
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted("coef_")
        X = check_2d(X, "X")
        return X @ self.coef_ + self.intercept_


class LassoRegression(Regressor):
    """L1-regularised least squares via cyclical coordinate descent.

    Objective: ``(1/2n)||y - Xb||² + alpha ||b||₁``. Features are used as
    given; callers should scale them (the registry wraps models in a
    StandardScaler pipeline).
    """

    def __init__(
        self,
        alpha: float = 0.1,
        max_iter: int = 1000,
        tol: float = 1e-6,
        fit_intercept: bool = True,
    ) -> None:
        check_positive(alpha, "alpha", strict=False)
        check_positive(max_iter, "max_iter")
        self.alpha = float(alpha)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.n_iter_: int = 0

    def fit(self, X, y) -> "LassoRegression":
        X, y = self._validate_xy(X, y)
        n, d = X.shape
        if self.fit_intercept:
            x_mean, y_mean = X.mean(axis=0), y.mean()
            Xc, yc = X - x_mean, y - y_mean
        else:
            x_mean, y_mean = np.zeros(d), 0.0
            Xc, yc = X, y
        col_sq = (Xc**2).sum(axis=0)
        beta = np.zeros(d)
        resid = yc.copy()  # resid = yc - Xc @ beta, maintained incrementally
        thresh = self.alpha * n
        for it in range(self.max_iter):
            max_delta = 0.0
            for j in range(d):
                if col_sq[j] == 0.0:
                    continue
                rho = Xc[:, j] @ resid + col_sq[j] * beta[j]
                new = np.sign(rho) * max(abs(rho) - thresh, 0.0) / col_sq[j]
                delta = new - beta[j]
                if delta != 0.0:
                    resid -= delta * Xc[:, j]
                    beta[j] = new
                    max_delta = max(max_delta, abs(delta))
            if max_delta < self.tol:
                break
        self.n_iter_ = it + 1
        self.coef_ = beta
        self.intercept_ = float(y_mean - x_mean @ beta)
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted("coef_")
        X = check_2d(X, "X")
        return X @ self.coef_ + self.intercept_


class SGDRegressor(Regressor):
    """Minibatch SGD on squared error with inverse-scaling learning rate.

    Matches Table 4's ``squared_error, max_iter=10000`` setup. An optional
    L2 penalty stabilises the walk on collinear PMC features.
    """

    def __init__(
        self,
        max_iter: int = 10000,
        eta0: float = 0.01,
        alpha: float = 1e-4,
        batch_size: int = 32,
        tol: float = 1e-8,
        random_state: "int | None" = 0,
        fit_intercept: bool = True,
    ) -> None:
        check_positive(max_iter, "max_iter")
        check_positive(eta0, "eta0")
        check_positive(batch_size, "batch_size")
        self.max_iter = int(max_iter)
        self.eta0 = float(eta0)
        self.alpha = float(alpha)
        self.batch_size = int(batch_size)
        self.tol = float(tol)
        self.random_state = random_state
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.n_iter_: int = 0

    def fit(self, X, y) -> "SGDRegressor":
        X, y = self._validate_xy(X, y)
        rng = as_generator(self.random_state)
        n, d = X.shape
        w = np.zeros(d)
        b = 0.0
        prev_loss = np.inf
        bs = min(self.batch_size, n)
        for it in range(self.max_iter):
            idx = rng.integers(0, n, size=bs)
            Xb, yb = X[idx], y[idx]
            err = Xb @ w + b - yb
            eta = self.eta0 / (1.0 + 0.01 * it)
            grad_w = Xb.T @ err / bs + self.alpha * w
            w -= eta * grad_w
            if self.fit_intercept:
                b -= eta * float(err.mean())
            if it % 200 == 0:
                loss = float(np.mean((X @ w + b - y) ** 2))
                if not np.isfinite(loss):
                    raise ConvergenceError(
                        "SGD diverged; lower eta0 or scale the features"
                    )
                if abs(prev_loss - loss) < self.tol:
                    break
                prev_loss = loss
        self.n_iter_ = it + 1
        self.coef_, self.intercept_ = w, float(b)
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted("coef_")
        X = check_2d(X, "X")
        return X @ self.coef_ + self.intercept_
