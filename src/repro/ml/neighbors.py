"""K-nearest-neighbour regression (Table 4: ``#neighbors=3``).

Brute-force Euclidean search, chunked so the pairwise-distance workspace
stays cache-friendly instead of materialising an (n_query × n_train) matrix
for large campaigns.
"""

from __future__ import annotations

import numpy as np

from ..utils.validation import check_2d, check_positive
from .base import Regressor


class KNeighborsRegressor(Regressor):
    """Mean (or inverse-distance-weighted) target of the k nearest points."""

    def __init__(
        self,
        n_neighbors: int = 3,
        weights: str = "uniform",
        chunk_size: int = 2048,
    ) -> None:
        check_positive(n_neighbors, "n_neighbors")
        if weights not in ("uniform", "distance"):
            raise ValueError("weights must be 'uniform' or 'distance'")
        self.n_neighbors = int(n_neighbors)
        self.weights = weights
        self.chunk_size = int(chunk_size)
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None

    def fit(self, X, y) -> "KNeighborsRegressor":
        X, y = self._validate_xy(X, y)
        if X.shape[0] < self.n_neighbors:
            raise ValueError(
                f"need at least n_neighbors={self.n_neighbors} training rows"
            )
        self._X, self._y = X, y
        # Precompute the squared norms once (used in every query chunk).
        self._sq_norms = (X**2).sum(axis=1)
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted("_X")
        Xq = check_2d(X, "X")
        k = self.n_neighbors
        out = np.empty(Xq.shape[0])
        for start in range(0, Xq.shape[0], self.chunk_size):
            chunk = Xq[start : start + self.chunk_size]
            # ||a-b||² = ||a||² - 2 a·b + ||b||², computed without sqrt until
            # the weighting step needs real distances.
            d2 = (
                (chunk**2).sum(axis=1)[:, None]
                - 2.0 * chunk @ self._X.T
                + self._sq_norms[None, :]
            )
            np.maximum(d2, 0.0, out=d2)
            nn = np.argpartition(d2, k - 1, axis=1)[:, :k]
            rows = np.arange(chunk.shape[0])[:, None]
            if self.weights == "uniform":
                out[start : start + chunk.shape[0]] = self._y[nn].mean(axis=1)
            else:
                dist = np.sqrt(d2[rows, nn])
                w = 1.0 / np.maximum(dist, 1e-12)
                out[start : start + chunk.shape[0]] = (
                    (w * self._y[nn]).sum(axis=1) / w.sum(axis=1)
                )
        return out
