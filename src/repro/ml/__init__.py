"""From-scratch NumPy machine-learning substrate.

The paper compares HighRPM against 12 baseline regressors (Table 4): four
linear models, six classic nonlinear models, and two recurrent networks. No
ML framework is assumed to be installed, so every one of them is implemented
here on top of NumPy, along with the supporting infrastructure the paper's
protocol needs (scalers, metrics, K-fold cross-validation, grid search).

All estimators follow one tiny contract (:class:`repro.ml.base.Regressor`):
``fit(X, y) -> self`` and ``predict(X) -> ndarray``, with ``get_params`` /
``set_params`` / ``clone`` for model selection.
"""

from .base import Regressor, clone
from .ensemble import GradientBoostingRegressor, RandomForestRegressor
from .linear import (
    LassoRegression,
    LinearRegression,
    RidgeRegression,
    SGDRegressor,
)
from .metrics import mae, mape, r2_score, rmse, score_report
from .model_selection import GridSearchCV, KFold, train_test_split
from .neighbors import KNeighborsRegressor
from .neural import MLPRegressor
from .diagnostics import learning_curve, permutation_importance
from .preprocessing import MinMaxScaler, PolynomialFeatures, StandardScaler
from .recurrent import GRURegressor, LSTMRegressor
from .registry import BASELINE_MODELS, make_baseline, baseline_names
from .svm import SVR
from .tree import DecisionTreeRegressor

__all__ = [
    "Regressor",
    "clone",
    "LinearRegression",
    "LassoRegression",
    "RidgeRegression",
    "SGDRegressor",
    "DecisionTreeRegressor",
    "RandomForestRegressor",
    "GradientBoostingRegressor",
    "KNeighborsRegressor",
    "SVR",
    "MLPRegressor",
    "GRURegressor",
    "LSTMRegressor",
    "StandardScaler",
    "MinMaxScaler",
    "PolynomialFeatures",
    "learning_curve",
    "permutation_importance",
    "KFold",
    "GridSearchCV",
    "train_test_split",
    "mape",
    "rmse",
    "mae",
    "r2_score",
    "score_report",
    "BASELINE_MODELS",
    "make_baseline",
    "baseline_names",
]
